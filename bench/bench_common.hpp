// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper. All
// benches are deterministic; request counts default to a scaled-down
// version of the paper's traces so the whole suite runs in minutes. Set
// IDICN_BENCH_SCALE (a float in (0, 1], relative to the paper's full trace
// sizes) to change fidelity, e.g.
//     IDICN_BENCH_SCALE=1.0 ./bench_fig6_baseline_proportional
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "topology/pop_topology.hpp"
#include "workload/synthetic_cdn.hpp"

namespace idicn::bench {

/// Scale factor for the workload sizes (fraction of the paper's counts).
inline double bench_scale() {
  if (const char* env = std::getenv("IDICN_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0.0 && value <= 1.0) return value;
    std::fprintf(stderr, "warning: ignoring invalid IDICN_BENCH_SCALE=%s\n", env);
  }
  return 0.05;  // default: 5% of the paper's request counts
}

/// Baseline access tree: binary, depth 5 (§4.1).
inline topology::AccessTreeShape baseline_tree() {
  return topology::AccessTreeShape(2, 5);
}

/// Build a named evaluation topology with the baseline access tree.
inline topology::HierarchicalNetwork make_network(
    const std::string& topology_name,
    topology::LatencyModel latency = {}) {
  return topology::HierarchicalNetwork(topology::make_topology(topology_name),
                                       baseline_tree(), std::move(latency));
}

/// The Asia-profile synthetic trace bound to a network (the baseline
/// workload of §4.2), with optional overrides.
inline core::BoundWorkload asia_workload(const topology::HierarchicalNetwork& network,
                                         double scale, std::uint64_t seed = 0xa51aULL) {
  const workload::RegionProfile profile = workload::paper_region_profile("Asia", scale);
  const workload::Trace trace = workload::generate_trace(profile);
  return core::bind_trace(network, trace, seed);
}

/// The five representative designs of Figures 6–7, in plot order.
inline std::vector<core::DesignSpec> representative_designs() {
  return {core::icn_sp(), core::icn_nr(), core::edge(), core::edge_coop(),
          core::edge_norm()};
}

/// Parameters of one §5 sensitivity point (ICN-NR vs EDGE on ATT).
struct SensitivityPoint {
  std::string topology = "ATT";
  topology::AccessTreeShape tree = topology::AccessTreeShape(2, 5);
  topology::LatencyModel latency;  ///< empty = uniform
  double alpha = 1.04;             ///< Asia-trace fit (the §4 baseline)
  double spatial_skew = 0.0;
  double budget_fraction = 0.05;
  cache::BudgetSplit split = cache::BudgetSplit::PopulationProportional;
  core::OriginAssignment origins = core::OriginAssignment::PopulationProportional;
  std::uint64_t requests = 0;   ///< 0 = scale-derived default
  std::uint32_t objects = 0;    ///< 0 = requests/9 density
  std::optional<std::uint32_t> serving_capacity;
};

/// Run ICN-NR and EDGE on one configuration and return the three-metric
/// gap RelImprov(ICN-NR) − RelImprov(EDGE) (§5's normalized measure).
inline core::Improvements nr_minus_edge(const SensitivityPoint& point) {
  const double scale = bench_scale();
  const std::uint64_t requests =
      point.requests ? point.requests
                     : static_cast<std::uint64_t>(1.8e6 * scale);
  const std::uint32_t objects =
      point.objects ? point.objects
                    : static_cast<std::uint32_t>(
                          std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  topology::HierarchicalNetwork network(topology::make_topology(point.topology),
                                        point.tree, point.latency);
  core::SyntheticWorkloadSpec spec;
  spec.request_count = requests;
  spec.object_count = objects;
  spec.alpha = point.alpha;
  spec.spatial_skew = point.spatial_skew;
  spec.seed = 0xa51a;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);

  core::SimulationConfig config;
  config.budget_fraction = point.budget_fraction;
  config.split = point.split;
  config.origin_assignment = point.origins;
  config.serving_capacity = point.serving_capacity;
  const core::OriginMap origins(network, objects, point.origins, 0x0419);

  const core::ComparisonResult cmp = core::compare_designs(
      network, origins, {core::icn_nr(), core::edge()}, config, workload);
  return cmp.gap(0, 1);
}

/// Print one row of a fixed-width table.
inline void print_row(const std::string& label, const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (const double v : values) std::printf(" %10.2f", v);
  std::printf("\n");
}

inline void print_header(const std::string& label,
                         const std::vector<std::string>& columns) {
  std::printf("%-22s", label.c_str());
  for (const std::string& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

inline void print_rule(std::size_t columns) {
  std::printf("%-22s", "----------------------");
  for (std::size_t i = 0; i < columns; ++i) std::printf(" %10s", "----------");
  std::printf("\n");
}

}  // namespace idicn::bench
