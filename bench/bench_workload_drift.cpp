// §7 "workload evolution": does popularity drift change the EDGE-vs-ICN
// calculus?
//
// Sweeps the churn rate of a drifting Zipf workload (rank↔object swaps as
// the stream progresses) and reports absolute improvements plus the
// ICN-NR − EDGE gap. The paper argues against over-fitting the network to
// today's workload; the question here is whether a moving workload makes
// in-network caching more worthwhile (interior caches aggregate the miss
// stream of newly-hot objects and adapt faster than per-leaf caches).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Workload drift (ATT): churn of the popularity ranking ==\n");
  std::printf("(churn = fraction of objects re-ranked per %llu requests)\n\n",
              static_cast<unsigned long long>(requests / 20));
  std::printf("%8s %14s %14s | %10s %12s %14s\n", "churn", "EDGE lat%", "ICN-NR lat%",
              "gap-lat", "gap-cong", "gap-origin");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  const core::OriginMap origins(network, objects,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  core::SimulationConfig config;

  for (const double churn : {0.0, 0.005, 0.02, 0.05, 0.2}) {
    core::SyntheticWorkloadSpec base;
    base.request_count = requests;
    base.object_count = objects;
    base.alpha = 1.04;
    base.seed = 0xa51a;
    core::DriftSpec drift;
    drift.period = requests / 20;  // 20 churn steps across the stream
    drift.churn_fraction = churn;
    const core::BoundWorkload workload = core::bind_drifting(network, base, drift);

    const core::ComparisonResult cmp = core::compare_designs(
        network, origins, {core::edge(), core::icn_nr()}, config, workload);
    const double edge_latency = cmp.designs[0].improvements.latency_pct;
    const double nr_latency = cmp.designs[1].improvements.latency_pct;
    const core::Improvements gap = cmp.gap(1, 0);
    std::printf("%8.3f %14.2f %14.2f | %10.2f %12.2f %14.2f\n", churn, edge_latency,
                nr_latency, gap.latency_pct, gap.congestion_pct, gap.origin_load_pct);
  }
  std::printf("\nmeasured shape: drift lowers everyone's improvement, and the gap\n"
              "GROWS with churn -- newly-hot objects keep the system perpetually\n"
              "cold at the edge, and interior caches (which aggregate the miss\n"
              "stream) adapt faster. At realistic slow churn the gap stays within\n"
              "a couple points of the static baseline; only implausibly fast\n"
              "churn (20%% of the catalog re-ranked every few thousand requests)\n"
              "makes pervasive caching pull away. This quantifies the boundary of\n"
              "the paper's claim under its own 'workload evolution' caveat (§7).\n");
  return 0;
}
