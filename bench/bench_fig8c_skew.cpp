// Figure 8(c): sensitivity of the ICN-NR − EDGE gap to spatial popularity
// skew.
//
// Sweeps the skew intensity (0 = one global ranking, 1 = independent
// per-PoP rankings). Paper's shape: the gap grows with skew — objects
// unpopular at one PoP are popular (hence cached) nearby, which only
// nearest-replica routing exploits. In our steady-state methodology the
// effect is clearest on the origin-load and congestion gaps; the latency
// gap moves little because warm pervasive pop-root caches already serve as
// a distributed second-level cache either way (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  std::printf("== Figure 8(c): NR-EDGE gap vs spatial skew (ATT) ==\n\n");
  std::printf("%8s %10s %12s %14s\n", "skew", "delay", "congestion", "origin-load");

  for (const double skew : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    bench::SensitivityPoint point;
    point.spatial_skew = skew;
    const core::Improvements gap = bench::nr_minus_edge(point);
    std::printf("%8.1f %10.2f %12.2f %14.2f\n", skew, gap.latency_pct,
                gap.congestion_pct, gap.origin_load_pct);
  }
  std::printf("\npaper reference: higher skew favors ICN-NR\n");
  return 0;
}
