// Figure 6: trace-driven baseline comparison, population-proportional cache
// budgets and origin assignment.
//
// For each of the eight evaluation topologies, runs the five representative
// designs (ICN-SP, ICN-NR, EDGE, EDGE-Coop, EDGE-Norm) on the Asia-profile
// trace and prints the improvement over no caching in (a) query latency,
// (b) max-link congestion, and (c) max origin server load.
//
// Paper's takeaways to check against: the spread across designs is small
// (≤ ~9%), EDGE-Coop tracks ICN-NR within a few percent, and ICN-NR gains
// ≤ ~2% over ICN-SP.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();

  std::printf("== Figure 6: baseline comparison, population-proportional budgets ==\n");
  std::printf("(Asia-profile synthetic trace at scale %.3g; improvement %% over no cache)\n\n",
              scale);

  const std::vector<core::DesignSpec> designs = bench::representative_designs();
  const char* metric_names[3] = {"(a) query latency", "(b) congestion",
                                 "(c) origin server load"};
  // results[metric][topology][design]
  std::vector<std::vector<std::vector<double>>> results(
      3, std::vector<std::vector<double>>());

  std::vector<std::string> design_names;
  for (const auto& d : designs) design_names.push_back(d.name);

  for (const std::string& topo : topology::evaluation_topology_names()) {
    const topology::HierarchicalNetwork network = bench::make_network(topo);
    const core::BoundWorkload workload = bench::asia_workload(network, scale);

    core::SimulationConfig config;
    config.split = cache::BudgetSplit::PopulationProportional;
    config.origin_assignment = core::OriginAssignment::PopulationProportional;
    const core::OriginMap origins(network, workload.object_count,
                                  config.origin_assignment, 0x0419);

    const core::ComparisonResult cmp =
        core::compare_designs(network, origins, designs, config, workload);
    for (int m = 0; m < 3; ++m) results[m].emplace_back();
    for (const core::DesignResult& r : cmp.designs) {
      results[0].back().push_back(r.improvements.latency_pct);
      results[1].back().push_back(r.improvements.congestion_pct);
      results[2].back().push_back(r.improvements.origin_load_pct);
    }
  }

  const auto& names = topology::evaluation_topology_names();
  for (int m = 0; m < 3; ++m) {
    std::printf("-- %s improvement (%%) --\n", metric_names[m]);
    bench::print_header("topology", design_names);
    bench::print_rule(design_names.size());
    double max_spread = 0.0, max_nr_minus_sp = 0.0, max_nr_minus_coop = 0.0;
    for (std::size_t t = 0; t < names.size(); ++t) {
      bench::print_row(names[t], results[m][t]);
      const auto& row = results[m][t];
      const double spread = *std::max_element(row.begin(), row.end()) -
                            *std::min_element(row.begin(), row.end());
      max_spread = std::max(max_spread, spread);
      max_nr_minus_sp = std::max(max_nr_minus_sp, row[1] - row[0]);
      max_nr_minus_coop = std::max(max_nr_minus_coop, row[1] - row[3]);
    }
    std::printf("max design spread: %.2f%%   max ICN-NR - ICN-SP: %.2f%%   "
                "max ICN-NR - EDGE-Coop: %.2f%%\n\n",
                max_spread, max_nr_minus_sp, max_nr_minus_coop);
  }
  std::printf("paper reference: spread <= ~9%%, NR-SP <= ~2%%, NR-Coop <= ~3-4%%\n");
  return 0;
}
