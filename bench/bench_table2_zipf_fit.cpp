// Table 2: Zipf fit parameters for the three CDN vantage points.
//
// Regenerates each regional trace and fits the Zipf exponent with both the
// log–log least-squares estimator (what the paper's "best-fit" uses) and
// the MLE cross-check. Paper's values: US 0.99 (1.1M requests), Europe 0.92
// (3.1M), Asia 1.04 (1.8M).
#include <cstdio>

#include "bench_common.hpp"
#include "workload/zipf_fit.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  std::printf("== Table 2: Zipf fits per region (scale %.3g) ==\n\n", scale);
  std::printf("%-10s %12s %12s %10s %10s %10s %10s\n", "Location", "Requests",
              "Objects", "paper-a", "LSQ-a", "MLE-a", "R^2");

  for (const workload::RegionProfile& profile :
       workload::paper_region_profiles(scale)) {
    const workload::Trace trace = workload::generate_trace(profile);
    std::vector<std::uint32_t> stream;
    stream.reserve(trace.requests.size());
    for (const workload::Request& r : trace.requests) stream.push_back(r.object);
    const std::vector<std::uint64_t> counts = workload::rank_frequencies(stream);
    const workload::ZipfFit lsq = workload::fit_zipf_least_squares(counts);
    const double mle = workload::fit_zipf_mle(counts);

    std::printf("%-10s %12zu %12u %10.2f %10.3f %10.3f %10.3f\n",
                profile.name.c_str(), trace.requests.size(), trace.object_count,
                profile.alpha, lsq.alpha, mle, lsq.r_squared);
  }
  std::printf("\npaper reference: US 0.99, Europe 0.92, Asia 1.04; MLE should "
              "recover the generator alpha closely\n");
  return 0;
}
