// Figure 10: bridging the best-case-for-ICN-NR gap with simple EDGE
// extensions.
//
// Fixes the workload to ICN-NR's best-case configuration from Figure 9
// (α = 0.1, skew 1, uniform budgeting, F = 2%) and measures the gap of
// ICN-NR over each EDGE variant: Baseline (plain EDGE), 2-Levels, Coop,
// 2-Levels-Coop, Norm, Norm-Coop, Double-Budget-Coop, plus the Section-4
// baseline configuration and the Inf-Budget reference. Paper's punchline:
// EDGE-Norm + cooperation brings even the best case down to ~6%, and
// doubling the budget makes EDGE beat ICN-NR.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace idicn;

core::Improvements gap_over(const core::ComparisonResult& cmp, const char* variant) {
  const core::DesignResult& nr = cmp.by_name("ICN-NR");
  const core::DesignResult& edge_variant = cmp.by_name(variant);
  core::Improvements gap;
  gap.latency_pct =
      nr.improvements.latency_pct - edge_variant.improvements.latency_pct;
  gap.congestion_pct =
      nr.improvements.congestion_pct - edge_variant.improvements.congestion_pct;
  gap.origin_load_pct =
      nr.improvements.origin_load_pct - edge_variant.improvements.origin_load_pct;
  return gap;
}

void print_gap(const char* label, const core::Improvements& gap) {
  std::printf("%-20s %10.2f %12.2f %14.2f\n", label, gap.latency_pct,
              gap.congestion_pct, gap.origin_load_pct);
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Figure 10: ICN-NR's best case vs EDGE variants (ATT) ==\n");
  std::printf("(alpha=0.1, skew=1, uniform budgets, F=2%%; gap of ICN-NR over "
              "each variant, %%)\n\n");
  std::printf("%-20s %10s %12s %14s\n", "variant", "Latency", "Congestion",
              "Origin-Load");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  core::SyntheticWorkloadSpec spec;
  spec.request_count = requests;
  spec.object_count = objects;
  spec.alpha = 0.1;
  spec.spatial_skew = 1.0;
  spec.seed = 0xa51a;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);

  core::SimulationConfig config;
  config.split = cache::BudgetSplit::Uniform;
  config.budget_fraction = 0.02;
  const core::OriginMap origins(network, objects,
                                core::OriginAssignment::PopulationProportional, 0x0419);

  const core::ComparisonResult cmp = core::compare_designs(
      network, origins,
      {core::icn_nr(), core::edge(), core::two_levels(), core::edge_coop(),
       core::two_levels_coop(), core::edge_norm(), core::norm_coop(),
       core::double_budget_coop()},
      config, workload);

  print_gap("Baseline", gap_over(cmp, "EDGE"));
  print_gap("2-Levels", gap_over(cmp, "2-Levels"));
  print_gap("Coop", gap_over(cmp, "EDGE-Coop"));
  print_gap("2-Levels-Coop", gap_over(cmp, "2-Levels-Coop"));
  print_gap("Norm", gap_over(cmp, "EDGE-Norm"));
  print_gap("Norm-Coop", gap_over(cmp, "Norm-Coop"));
  print_gap("Double-Budget-Coop", gap_over(cmp, "Double-Budget-Coop"));

  // Section-4 reference: the baseline configuration's plain NR-EDGE gap.
  bench::SensitivityPoint section4;
  print_gap("Section-4", bench::nr_minus_edge(section4));

  // Inf-Budget reference: with unbounded caches at steady state every
  // request is served by its own leaf under BOTH designs, so the gap is
  // identically zero; we report it analytically rather than materializing
  // all-object caches at every router (see EXPERIMENTS.md).
  print_gap("Inf-Budget", core::Improvements{});

  std::printf("\npaper reference: Norm-Coop brings the best case down to ~6%%; "
              "Double-Budget-Coop goes negative (EDGE wins)\n");
  return 0;
}
