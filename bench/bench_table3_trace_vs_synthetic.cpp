// Table 3: does a best-fit-Zipf synthetic log predict the trace-driven
// performance gap?
//
// The paper compares, per topology, the ICN-NR − EDGE query-latency gap
// under (a) the real trace and (b) a synthetic log with the trace's
// best-fit Zipf. We treat an independently sampled finite trace as the
// "real" one, refit its exponent, regenerate a fresh synthetic log from
// the fit, and compare the two simulated gaps. The paper's result: the
// difference stays under ~1.7%.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/zipf_fit.hpp"

namespace {

using namespace idicn;

double latency_gap(const topology::HierarchicalNetwork& network,
                   const core::BoundWorkload& workload) {
  core::SimulationConfig config;
  const core::OriginMap origins(network, workload.object_count,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  const core::ComparisonResult cmp = core::compare_designs(
      network, origins, {core::icn_nr(), core::edge()}, config, workload);
  return cmp.gap(0, 1).latency_pct;
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  std::printf("== Table 3: ICN-NR - EDGE latency gap, trace vs synthetic ==\n");
  std::printf("(Asia profile at scale %.3g)\n\n", scale);
  std::printf("%-10s %10s %10s %12s\n", "Topology", "Trace", "Synthetic", "Difference");

  // The "real" trace (one finite sample) and its refit.
  const workload::RegionProfile profile = workload::paper_region_profile("Asia", scale);
  const workload::Trace trace = workload::generate_trace(profile);
  std::vector<std::uint32_t> stream;
  stream.reserve(trace.requests.size());
  for (const workload::Request& r : trace.requests) stream.push_back(r.object);
  const double fitted_alpha =
      workload::fit_zipf_mle(workload::rank_frequencies(stream));

  double max_difference = 0.0;
  for (const std::string& topo : topology::evaluation_topology_names()) {
    const topology::HierarchicalNetwork network = bench::make_network(topo);

    const core::BoundWorkload trace_bound = core::bind_trace(network, trace, 0xa51a);
    const double trace_gap = latency_gap(network, trace_bound);

    core::SyntheticWorkloadSpec spec;
    spec.request_count = trace.requests.size();
    spec.object_count = trace.object_count;
    spec.alpha = fitted_alpha;
    spec.seed = 0xfeed;  // an independent sample from the fitted model
    const core::BoundWorkload synthetic_bound = core::bind_synthetic(network, spec);
    const double synthetic_gap = latency_gap(network, synthetic_bound);

    const double difference = synthetic_gap - trace_gap;
    max_difference = std::max(max_difference, std::abs(difference));
    std::printf("%-10s %10.2f %10.2f %12.2f\n", topo.c_str(), trace_gap, synthetic_gap,
                difference);
  }
  std::printf("\nfitted alpha = %.3f (generator %.2f); max |difference| = %.2f%%\n",
              fitted_alpha, profile.alpha, max_difference);
  std::printf("paper reference: max difference 1.67%% -> synthetic logs are a "
              "sound stand-in for traces\n");
  return 0;
}
