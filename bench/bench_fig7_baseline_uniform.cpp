// Figure 7: trace-driven baseline comparison with UNIFORM cache budgets and
// origin assignment (the Figure-6 counterpart; the paper reports "no major
// change in the relative performances").
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();

  std::printf("== Figure 7: baseline comparison, uniform budgets ==\n");
  std::printf("(Asia-profile synthetic trace at scale %.3g; improvement %% over no cache)\n\n",
              scale);

  const std::vector<core::DesignSpec> designs = bench::representative_designs();
  std::vector<std::string> design_names;
  for (const auto& d : designs) design_names.push_back(d.name);

  const char* metric_names[3] = {"(a) query latency", "(b) congestion",
                                 "(c) origin server load"};
  std::vector<std::vector<std::vector<double>>> results(3);

  for (const std::string& topo : topology::evaluation_topology_names()) {
    const topology::HierarchicalNetwork network = bench::make_network(topo);
    const core::BoundWorkload workload = bench::asia_workload(network, scale);

    core::SimulationConfig config;
    config.split = cache::BudgetSplit::Uniform;
    config.origin_assignment = core::OriginAssignment::Uniform;
    const core::OriginMap origins(network, workload.object_count,
                                  config.origin_assignment, 0x0419);

    const core::ComparisonResult cmp =
        core::compare_designs(network, origins, designs, config, workload);
    for (int m = 0; m < 3; ++m) results[m].emplace_back();
    for (const core::DesignResult& r : cmp.designs) {
      results[0].back().push_back(r.improvements.latency_pct);
      results[1].back().push_back(r.improvements.congestion_pct);
      results[2].back().push_back(r.improvements.origin_load_pct);
    }
  }

  const auto& names = topology::evaluation_topology_names();
  for (int m = 0; m < 3; ++m) {
    std::printf("-- %s improvement (%%) --\n", metric_names[m]);
    bench::print_header("topology", design_names);
    bench::print_rule(design_names.size());
    double max_spread = 0.0;
    for (std::size_t t = 0; t < names.size(); ++t) {
      bench::print_row(names[t], results[m][t]);
      const auto& row = results[m][t];
      max_spread = std::max(max_spread, *std::max_element(row.begin(), row.end()) -
                                            *std::min_element(row.begin(), row.end()));
    }
    std::printf("max design spread: %.2f%%\n\n", max_spread);
  }
  std::printf("paper reference: same relative ordering as Figure 6\n");
  return 0;
}
