// Figure 2: utility of different cache levels under optimal static
// placement on a 6-level binary distribution tree.
//
// For α ∈ {0.7, 1.1, 1.5}, prints the fraction of requests served at each
// paper level (1 = leaves … 6 = origin) for the closed-form optimum, the
// bottom-up greedy optimizer (cross-check), and the expected-hops figures
// the paper's §2.2 arithmetic uses. F = 5% per cache (the paper's baseline
// provisioning).
#include <cstdio>

#include "analysis/tree_model.hpp"
#include "bench_common.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace idicn;
  constexpr unsigned kDepth = 5;       // 6 paper levels
  constexpr std::uint32_t kObjects = 10'000;
  constexpr std::uint32_t kCapacity = 500;  // 5% of the universe per cache

  std::printf("== Figure 2: fraction of requests served per tree level ==\n");
  std::printf("(6-level binary tree, %u objects, %u-object caches at levels 1-5)\n\n",
              kObjects, kCapacity);
  std::printf("%-8s", "alpha");
  for (unsigned level = 1; level <= kDepth + 1; ++level) {
    std::printf("   level-%u", level);
  }
  std::printf("   E[hops]   E[hops,edge+origin only]\n");

  for (const double alpha : {0.7, 1.1, 1.5}) {
    const workload::ZipfDistribution zipf(kObjects, alpha);
    std::vector<double> probabilities(kObjects);
    for (std::uint32_t rank = 1; rank <= kObjects; ++rank) {
      probabilities[rank - 1] = zipf.probability(rank);
    }
    const analysis::TreeCacheOptimizer optimizer(
        topology::AccessTreeShape(2, kDepth), probabilities, kCapacity);
    const analysis::TreePlacementResult optimal = optimizer.chunk_solution();
    const analysis::TreePlacementResult greedy = optimizer.solve_greedy();

    std::printf("%-8.1f", alpha);
    for (const double fraction : optimal.level_fraction) {
      std::printf("   %7.3f", fraction);
    }
    // The §2.2 thought experiment: drop levels 2..5, everything they served
    // goes to the origin.
    const double edge = optimal.level_fraction[0];
    const double no_interior_cost =
        edge * 1.0 + (1.0 - edge) * static_cast<double>(kDepth + 1);
    std::printf("   %7.3f   %7.3f", optimal.expected_cost, no_interior_cost);
    std::printf("   (greedy E[hops] %.3f)\n", greedy.expected_cost);
  }
  std::printf("\npaper reference (alpha=0.7): ~0.4 at the edge; interior levels add\n"
              "little -- dropping them raises E[hops] only ~3 -> ~4 (25%%)\n");
  return 0;
}
