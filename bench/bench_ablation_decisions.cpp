// Ablation: on-path cache decisions and scoped replica routing.
//
// The paper fixes leave-copy-everywhere and all-or-nothing routing; the
// broader ICN literature asks whether smarter decisions (LCD, probabilistic
// caching) or intermediate routing scopes change the calculus. This bench
// runs the Figure-6 baseline point (ATT) across those axes. If the paper's
// thesis is robust, none of them should open a large gap over plain EDGE.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Ablation: cache decisions & routing scopes (ATT baseline) ==\n\n");
  std::printf("%-18s %12s %14s %12s %12s\n", "design", "latency%", "congestion%",
              "origin%", "gap-vs-EDGE");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  core::SyntheticWorkloadSpec spec;
  spec.request_count = requests;
  spec.object_count = objects;
  spec.alpha = 1.04;
  spec.seed = 0xa51a;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);
  const core::OriginMap origins(network, objects,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  core::SimulationConfig config;

  core::DesignSpec edge_doorkeeper = core::edge();
  edge_doorkeeper.name = "EDGE-Doorkeeper";
  edge_doorkeeper.admission_doorkeeper = true;
  core::DesignSpec nr_doorkeeper = core::icn_nr();
  nr_doorkeeper.name = "ICN-NR-Doorkeeper";
  nr_doorkeeper.admission_doorkeeper = true;

  const core::ComparisonResult cmp = core::compare_designs(
      network, origins,
      {core::edge(), edge_doorkeeper, core::icn_sp(), core::icn_sp_lcd(),
       core::icn_sp_prob(0.5), core::icn_sp_prob(0.1), core::icn_scoped_nr(3.0),
       core::icn_scoped_nr(8.0), core::icn_nr(), nr_doorkeeper},
      config, workload);

  const double edge_latency = cmp.designs[0].improvements.latency_pct;
  for (const core::DesignResult& r : cmp.designs) {
    std::printf("%-18s %12.2f %14.2f %12.2f %12.2f\n", r.design.name.c_str(),
                r.improvements.latency_pct, r.improvements.congestion_pct,
                r.improvements.origin_load_pct,
                r.improvements.latency_pct - edge_latency);
  }
  std::printf("\nexpected shape: no decision/scoping variant buys pervasive\n"
              "caching materially more than plain ICN-SP/NR already get over\n"
              "EDGE — the paper's conclusion is robust to these knobs.\n");
  return 0;
}
