// Ablation: replacement policies (§3).
//
// The paper uses LRU throughout, citing near-optimal behavior, and notes
// LFU was qualitatively similar. This bench re-runs the Figure-6 baseline
// point (ATT) with LRU, LFU, FIFO, and RANDOM at every cache and reports
// both the absolute improvements and the ICN-NR − EDGE gap per policy —
// the paper's conclusions should not hinge on the policy choice.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Ablation: cache replacement policies (ATT, Figure-6 baseline) ==\n\n");
  std::printf("%-8s %14s %14s %14s | %18s\n", "policy", "ICN-NR lat%", "EDGE lat%",
              "gap lat%", "gap cong%/origin%");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  core::SyntheticWorkloadSpec spec;
  spec.request_count = requests;
  spec.object_count = objects;
  spec.alpha = 1.04;
  spec.seed = 0xa51a;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);
  const core::OriginMap origins(network, objects,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  core::SimulationConfig config;

  for (const cache::PolicyKind policy :
       {cache::PolicyKind::Lru, cache::PolicyKind::Lfu, cache::PolicyKind::Fifo,
        cache::PolicyKind::Random}) {
    core::DesignSpec nr = core::icn_nr();
    core::DesignSpec edge = core::edge();
    nr.policy = policy;
    edge.policy = policy;
    const core::ComparisonResult cmp =
        core::compare_designs(network, origins, {nr, edge}, config, workload);
    const core::Improvements gap = cmp.gap(0, 1);
    std::printf("%-8s %14.2f %14.2f %14.2f | %8.2f / %8.2f\n",
                cache::to_string(policy).c_str(),
                cmp.designs[0].improvements.latency_pct,
                cmp.designs[1].improvements.latency_pct, gap.latency_pct,
                gap.congestion_pct, gap.origin_load_pct);
  }
  std::printf("\npaper reference: LRU is near-optimal; LFU qualitatively similar; "
              "conclusions are policy-insensitive\n");
  return 0;
}
