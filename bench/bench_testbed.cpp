// Testbed benchmark: EDGE vs EDGE-Coop over real sockets, diffed against
// the in-process simulator.
//
// Builds two testbed::Cluster deployments of the same topology/seed — one
// without cooperation (EDGE), one with the hint-fed sibling redirect
// (EDGE-Coop) — replays the *identical* bound workload through both, and
// reports per-PoP latency, core-link congestion, origin load, and hit
// ratios, plus the origin-load gap against each scenario's simulator
// counterpart on the same workload (EDGE should match exactly; EDGE-Coop
// trails its zero-lag oracle).
//
// Knobs (flag wins over env):
//   --topology NAME / IDICN_BENCH_TESTBED_TOPOLOGY   (default Abilene)
//   --requests N    / IDICN_BENCH_TESTBED_REQUESTS   (default 1500)
//   --objects N     / IDICN_BENCH_TESTBED_OBJECTS    (default 60)
//   --check    exit nonzero unless the cooperation invariants hold
//              (no errors, sibling serves > 0, coop origin load < EDGE's)
//   IDICN_BENCH_OUT  JSON artifact path (default BENCH_testbed.json)
//
// The last stdout line is the JSON object written to the artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/bound_workload.hpp"
#include "testbed/cluster.hpp"
#include "testbed/comparison.hpp"
#include "testbed/driver.hpp"
#include "testbed/metrics.hpp"

namespace {

using namespace idicn;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

struct Scenario {
  testbed::TestbedMetrics metrics;
  testbed::ComparisonResult comparison;
};

Scenario run_scenario(const testbed::ClusterOptions& cluster_options,
                      const testbed::DriverOptions& driver_options,
                      const core::BoundWorkload& workload) {
  testbed::Cluster cluster(cluster_options);
  testbed::TraceDriver driver(cluster, driver_options);
  Scenario scenario;
  scenario.metrics = driver.run(workload);
  scenario.comparison =
      testbed::compare_with_simulator(cluster, workload, scenario.metrics);
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  testbed::ClusterOptions cluster_options;
  cluster_options.topology = [] {
    const char* name = std::getenv("IDICN_BENCH_TESTBED_TOPOLOGY");
    return name ? std::string(name) : std::string("Abilene");
  }();
  cluster_options.object_count = static_cast<std::uint32_t>(
      env_u64("IDICN_BENCH_TESTBED_OBJECTS", 60));
  cluster_options.cache_fraction = 0.10;

  testbed::DriverOptions driver_options;
  driver_options.request_count = env_u64("IDICN_BENCH_TESTBED_REQUESTS", 1'500);
  driver_options.alpha = 0.9;
  driver_options.hint_interval = 75;
  driver_options.ranged_fraction = 0.05;

  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      cluster_options.topology = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      driver_options.request_count = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--objects") == 0 && i + 1 < argc) {
      cluster_options.object_count =
          static_cast<std::uint32_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check] [--topology NAME] [--requests N] "
                   "[--objects N]\n",
                   argv[0]);
      return 2;
    }
  }

  // One binding serves every scenario and the simulator — identical
  // request sequences are what make the diffs meaningful.
  const core::BoundWorkload workload = [&] {
    testbed::Cluster binding_probe(testbed::ClusterOptions{
        cluster_options});  // network shape only; cheap at these sizes
    return testbed::TraceDriver(binding_probe, driver_options).bind();
  }();

  cluster_options.cooperation = false;
  const Scenario edge = run_scenario(cluster_options, driver_options, workload);
  std::printf("EDGE:      %s\n", edge.comparison.summary().c_str());

  cluster_options.cooperation = true;
  const Scenario coop = run_scenario(cluster_options, driver_options, workload);
  std::printf("EDGE-Coop: %s\n", coop.comparison.summary().c_str());
  std::printf("EDGE-Coop sibling serves: %llu, hints sent: %llu\n",
              static_cast<unsigned long long>(coop.metrics.sibling_serves),
              static_cast<unsigned long long>(coop.metrics.hints_sent));

  std::string json = "{\"edge\":" + edge.metrics.to_json() +
                     ",\"edge_coop\":" + coop.metrics.to_json();
  char tail[256];
  std::snprintf(tail, sizeof tail,
                ",\"edge_sim_origin_served\":%llu"
                ",\"edge_origin_gap_pct\":%.4f"
                ",\"coop_sim_origin_served\":%llu"
                ",\"coop_origin_gap_pct\":%.4f}",
                static_cast<unsigned long long>(
                    edge.comparison.simulated_origin_served),
                edge.comparison.origin_load_gap_pct,
                static_cast<unsigned long long>(
                    coop.comparison.simulated_origin_served),
                coop.comparison.origin_load_gap_pct);
  json += tail;
  std::printf("%s\n", json.c_str());

  const char* out_path = std::getenv("IDICN_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_testbed.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
  }

  if (check) {
    bool ok = true;
    if (edge.metrics.errors != 0 || coop.metrics.errors != 0) {
      std::fprintf(stderr, "CHECK FAILED: request errors (edge=%llu coop=%llu)\n",
                   static_cast<unsigned long long>(edge.metrics.errors),
                   static_cast<unsigned long long>(coop.metrics.errors));
      ok = false;
    }
    if (coop.metrics.sibling_serves == 0) {
      std::fprintf(stderr, "CHECK FAILED: no sibling serves under EDGE-Coop\n");
      ok = false;
    }
    if (coop.metrics.origin_served >= edge.metrics.origin_served) {
      std::fprintf(stderr,
                   "CHECK FAILED: cooperation did not reduce origin load "
                   "(coop=%llu edge=%llu)\n",
                   static_cast<unsigned long long>(coop.metrics.origin_served),
                   static_cast<unsigned long long>(edge.metrics.origin_served));
      ok = false;
    }
    if (!ok) return 1;
    std::printf("check passed\n");
  }
  return 0;
}
