// §2.2's second optimization: where should a fixed total cache budget live?
//
// "We also extended this optimization-driven analysis with another degree
// of freedom, where we also vary the sizes of the cache allocated to
// different locations. The results showed that the optimal solution under
// a Zipf workload involves assigning a majority of the total caching
// budget to the leaves of the tree." (The paper omits the detailed
// results for space; this bench regenerates them.)
//
// For each α, optimally splits a fixed slot budget across the levels of a
// 6-level binary tree and prints the per-level budget shares.
#include <cstdio>

#include "analysis/tree_model.hpp"
#include "bench_common.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace idicn;
  constexpr unsigned kDepth = 5;
  constexpr std::uint32_t kObjects = 10'000;
  // Same total budget as the Figure-2 configuration: 62 caches × 500 slots.
  constexpr std::uint64_t kTotalBudget = 62 * 500;

  std::printf("== Optimal per-level budget allocation (6-level binary tree) ==\n");
  std::printf("(%u objects, %llu total cache slots; share of budget per level)\n\n",
              kObjects, static_cast<unsigned long long>(kTotalBudget));
  std::printf("%-8s", "alpha");
  for (unsigned level = 1; level <= kDepth; ++level) {
    std::printf("   level-%u", level);
  }
  std::printf("   E[hops]   (uniform-split E[hops])\n");

  for (const double alpha : {0.7, 1.04, 1.1, 1.5}) {
    const workload::ZipfDistribution zipf(kObjects, alpha);
    std::vector<double> probabilities(kObjects);
    for (std::uint32_t rank = 1; rank <= kObjects; ++rank) {
      probabilities[rank - 1] = zipf.probability(rank);
    }
    const analysis::TreeCacheOptimizer optimizer(
        topology::AccessTreeShape(2, kDepth), probabilities, 500);
    const auto allocation = optimizer.optimize_level_budgets(kTotalBudget);
    const auto uniform = optimizer.chunk_solution();

    std::printf("%-8.1f", alpha);
    for (const double share : allocation.budget_share) {
      std::printf("   %6.1f%%", share * 100.0);
    }
    std::printf("   %7.3f   (%7.3f)\n", allocation.expected_cost,
                uniform.expected_cost);
  }
  std::printf("\npaper reference: \"the optimal solution under a Zipf workload\n"
              "involves assigning a majority of the total caching budget to the\n"
              "leaves\". Measured: level 1 takes the largest share of any level at\n"
              "every realistic alpha and crosses 50%% as alpha grows; flatter\n"
              "popularity (alpha << 1) shifts budget toward aggregation points,\n"
              "where one slot serves many leaves.\n");
  return 0;
}
