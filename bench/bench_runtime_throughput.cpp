// Real-socket runtime throughput benchmark.
//
// Deploys the full §6 stack — NRS, origin, reverse proxy, edge proxy —
// each behind its own runtime server on real loopback TCP, publishes a
// small catalog, then drives the edge proxy with closed-loop keep-alive
// HTTP clients and reports request rate and latency percentiles. The
// steady-state path is the paper's common case: a proxy cache HIT served
// straight from memory over one keep-alive connection.
//
// Multi-reactor scaling (PR 4): with `--workers N` (or
// IDICN_BENCH_WORKERS=N) the proxy runs behind an N-worker
// runtime::ServerGroup; the bench measures a 1-worker window first and
// then the N-worker window against the same warmed proxy, reporting
// per-worker request rates and the scaling efficiency
// req_per_s(N) / (N * req_per_s(1)).
//
// Knobs (flag wins over env):
//   --workers N / IDICN_BENCH_WORKERS   proxy reactor threads (default 1)
//   IDICN_BENCH_RUNTIME_SECONDS  measurement window (default 3; CI uses 1)
//   IDICN_BENCH_RUNTIME_CLIENTS  closed-loop client threads
//                                (default max(2, workers))
//   IDICN_BENCH_RUNTIME_BODY    object body bytes (default 512)
//   IDICN_BENCH_SIZE_MODEL      unit | lognormal | pareto (default unit:
//                               every object is IDICN_BENCH_RUNTIME_BODY
//                               bytes). The heavy-tailed models draw each
//                               catalog object's size independently — the
//                               paper's heterogeneous-size variation (§5).
//   IDICN_BENCH_SIZE_MEAN       mean body bytes for the heavy-tailed
//                               models (default IDICN_BENCH_RUNTIME_BODY)
//   IDICN_BENCH_OUT             JSON artifact path (default
//                               BENCH_runtime.json in the cwd)
//   IDICN_BENCH_LATENCY_UNDER_MISS=1
//                               append a latency-under-miss window: a
//                               driver thread fetches cold objects through
//                               a 200 ms FaultInjector Latency rule on the
//                               upstream while the closed-loop clients
//                               keep hammering warmed objects. The HIT
//                               latency percentiles sampled while a MISS
//                               was in flight land in the JSON
//                               (hit_p99_us_during_miss) — the mutual-
//                               stall regression number: before the async
//                               MISS path, every co-scheduled HIT paid the
//                               injected delay.
//   IDICN_BENCH_LATENCY_TAIL=1
//                               append a latency-tail pair of cold-MISS
//                               sweeps over objects replicated on two
//                               reverse proxies, with a FaultInjector
//                               degradation schedule stepping one replica
//                               to 800 ms after a few healthy sends. The
//                               first sweep runs with hedging disabled,
//                               the second with the multi-source
//                               fetcher's defaults; the JSON lands
//                               unhedged_p99_us vs hedged_p99_us plus
//                               hedges_sent / hedge_wins /
//                               hedges_suppressed / range_failovers and
//                               the per-destination rtt_p95_us map — the
//                               tail-latency headline for DESIGN.md §13.
//
// The last stdout line is a single JSON object with the results — the
// same object written to the artifact file — so CI and scripts can scrape
// `req_per_s` / `p99_us` / `scaling_efficiency` without parsing prose.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/perf_counters.hpp"
#include "core/sync.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "net/fault_injector.hpp"
#include "runtime/host_server.hpp"
#include "runtime/http_client.hpp"
#include "runtime/socket_net.hpp"
#include "workload/size_model.hpp"

namespace {

using namespace idicn;
using namespace ::idicn::idicn;
using Clock = std::chrono::steady_clock;

long env_long(const char* name, long fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// Open keep-alive connections until every reactor has one. SO_REUSEPORT
/// assigns a connection to a worker by flow hash, and with only a handful
/// of long-lived client connections the hash can collapse onto a subset of
/// the workers — the historical bench artifact showed a 4-worker run where
/// one worker served 8 req/s against a 22k mean. Each fresh connect draws
/// a new ephemeral source port (re-rolling the hash); a probe request
/// reveals which worker the connection landed on via the live
/// requests_served counters, and the connection is kept only when it
/// covers a new worker. Must run with no other traffic in flight so the
/// counter delta attributes unambiguously. Gives up (returning a partial
/// cover) after a generous attempt budget; round-robin over the pool still
/// spreads whatever was won.
std::vector<std::unique_ptr<runtime::HttpClient>> connect_cover(
    runtime::HostServer& server, const std::string& probe_target,
    std::size_t workers) {
  std::vector<std::unique_ptr<runtime::HttpClient>> pool;
  std::vector<bool> covered(workers, false);
  std::size_t hit = 0;
  for (std::size_t attempt = 0; attempt < 64 * workers && hit < workers;
       ++attempt) {
    auto client =
        std::make_unique<runtime::HttpClient>("127.0.0.1", server.port());
    std::vector<std::uint64_t> before(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      before[w] = server.worker_stats(w).requests_served;
    }
    const auto response = client->get(probe_target);
    if (!response || response->status != 200) continue;
    for (std::size_t w = 0; w < workers; ++w) {
      if (server.worker_stats(w).requests_served == before[w]) continue;
      if (!covered[w]) {
        covered[w] = true;
        ++hit;
        pool.push_back(std::move(client));
      }
      break;
    }
  }
  if (pool.empty()) {
    pool.push_back(
        std::make_unique<runtime::HttpClient>("127.0.0.1", server.port()));
  }
  return pool;
}

/// One measured window: `workers` reactors serving `client_count`
/// closed-loop keep-alive clients for ~`seconds`.
struct WindowResult {
  std::size_t workers = 1;
  bool used_reuseport = false;
  double elapsed_s = 0.0;
  std::size_t requests = 0;
  std::uint64_t errors = 0;
  double req_per_s = 0.0;
  double gbps = 0.0;  ///< proxy wire bytes out × 8 / elapsed
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, max_us = 0.0;
  std::vector<double> per_worker_req_per_s;
  runtime::HostServer::Stats server_stats;
};

WindowResult run_window(Proxy& proxy, runtime::SocketNet& net,
                        std::size_t workers, long client_count, long seconds,
                        const std::vector<std::string>& targets) {
  runtime::HostServer::Options options;
  options.workers = workers;
  runtime::HostServer proxy_server(&proxy, "cache.ad1", options);
  proxy_server.start();
  net.register_endpoint(proxy_server);

  // (Re)warm so the window measures the HIT fast path only.
  {
    runtime::HttpClient warm("127.0.0.1", proxy_server.port());
    for (const auto& target : targets) {
      const auto response = warm.get(target);
      if (!response || response->status != 200) {
        std::fprintf(stderr, "warmup fetch failed for %s\n", target.c_str());
        std::exit(1);
      }
    }
  }

  // Pre-built connection pools, one per client thread, each covering every
  // worker — built serially before the clock starts so probe attribution
  // is unambiguous and the window measures steady-state traffic only.
  std::vector<std::vector<std::unique_ptr<runtime::HttpClient>>> pools(
      static_cast<std::size_t>(client_count));
  for (auto& pool : pools) {
    if (proxy_server.using_reuseport() && proxy_server.worker_count() > 1) {
      pool = connect_cover(proxy_server, targets.front(),
                           proxy_server.worker_count());
    } else {
      pool.push_back(
          std::make_unique<runtime::HttpClient>("127.0.0.1", proxy_server.port()));
    }
  }

  std::atomic<bool> running{true};
  std::vector<std::vector<std::uint64_t>> latencies_ns(
      static_cast<std::size_t>(client_count));
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(client_count), 0);
  std::vector<core::sync::Thread> clients;
  clients.reserve(static_cast<std::size_t>(client_count));

  const auto start = Clock::now();
  for (long c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      auto& pool = pools[static_cast<std::size_t>(c)];
      auto& samples = latencies_ns[static_cast<std::size_t>(c)];
      samples.reserve(1 << 18);
      std::size_t i = static_cast<std::size_t>(c);
      while (running.load(std::memory_order_relaxed)) {
        // Round-robin over the per-worker connections so every reactor
        // sees a share of this client's closed loop.
        runtime::HttpClient& client = *pool[i % pool.size()];
        const auto t0 = Clock::now();
        const auto response = client.get(targets[i % targets.size()]);
        const auto t1 = Clock::now();
        if (!response || response->status != 200) {
          ++errors[static_cast<std::size_t>(c)];
          ++i;
          continue;
        }
        samples.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  running.store(false);
  for (auto& thread : clients) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  WindowResult result;
  result.workers = proxy_server.worker_count();
  result.used_reuseport = proxy_server.using_reuseport();
  result.elapsed_s = elapsed_s;

  std::vector<std::uint64_t> all;
  for (const auto& samples : latencies_ns) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  for (const auto error_count : errors) result.errors += error_count;
  std::sort(all.begin(), all.end());
  result.requests = all.size();
  result.req_per_s = static_cast<double>(all.size()) / elapsed_s;
  result.p50_us = static_cast<double>(percentile(all, 0.50)) / 1000.0;
  result.p90_us = static_cast<double>(percentile(all, 0.90)) / 1000.0;
  result.p99_us = static_cast<double>(percentile(all, 0.99)) / 1000.0;
  result.max_us = all.empty() ? 0.0 : static_cast<double>(all.back()) / 1000.0;

  // Per-worker request rates (worker_stats snapshots survive stop()).
  proxy_server.stop();
  for (std::size_t w = 0; w < result.workers; ++w) {
    result.per_worker_req_per_s.push_back(
        static_cast<double>(proxy_server.worker_stats(w).requests_served) /
        elapsed_s);
  }
  result.server_stats = proxy_server.stats();
  // Wire throughput from the proxy server's own byte counter (headers
  // included): with heavy-tailed bodies req/s alone hides the data-path
  // cost, so the bench reports both.
  result.gbps = static_cast<double>(result.server_stats.bytes_out) * 8.0 /
                elapsed_s / 1e9;
  return result;
}

/// Latency-under-miss window: HIT latency percentiles restricted to
/// samples whose whole round trip overlapped an in-flight (latency-
/// injected) MISS on the same proxy.
struct LatencyUnderMissResult {
  std::size_t miss_fetches = 0;      ///< cold objects pulled through the delay
  double miss_p50_ms = 0.0;
  std::size_t hit_samples_during_miss = 0;
  double hit_p50_us_during_miss = 0.0;
  double hit_p99_us_during_miss = 0.0;
  std::uint64_t errors = 0;
};

LatencyUnderMissResult run_latency_under_miss(
    Proxy& proxy, runtime::SocketNet& net, net::FaultInjector& faulty,
    std::size_t workers, long client_count, long seconds,
    const std::vector<std::string>& warm_targets,
    const std::vector<std::string>& cold_targets) {
  runtime::HostServer::Options options;
  options.workers = workers;
  runtime::HostServer proxy_server(&proxy, "cache.ad1", options);
  proxy_server.start();
  net.register_endpoint(proxy_server);

  {
    runtime::HttpClient warm("127.0.0.1", proxy_server.port());
    for (const auto& target : warm_targets) {
      const auto response = warm.get(target);
      if (!response || response->status != 200) {
        std::fprintf(stderr, "warmup fetch failed for %s\n", target.c_str());
        std::exit(1);
      }
    }
  }

  // Every upstream hop now costs 200 ms — each cold fetch parks its
  // FetchOp on a worker loop for at least that long.
  net::FaultInjector::Rule slow;
  slow.to = "rp.pub";
  slow.kind = net::FaultInjector::FaultKind::Latency;
  slow.latency_ms = 200;
  faulty.add_rule(slow);

  std::atomic<bool> running{true};
  std::atomic<bool> miss_inflight{false};
  std::atomic<std::uint64_t> errors{0};

  std::vector<std::uint64_t> miss_ns;
  core::sync::Thread miss_driver([&] {
    runtime::HttpClient client("127.0.0.1", proxy_server.port());
    for (const auto& target : cold_targets) {
      if (!running.load(std::memory_order_relaxed)) break;
      const auto t0 = Clock::now();
      miss_inflight.store(true, std::memory_order_release);
      const auto response = client.get(target);
      miss_inflight.store(false, std::memory_order_release);
      if (!response || response->status != 200) {
        errors.fetch_add(1);
        continue;
      }
      miss_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()));
    }
  });

  std::vector<std::vector<std::uint64_t>> during_ns(
      static_cast<std::size_t>(client_count));
  {
    std::vector<core::sync::Thread> clients;
    clients.reserve(static_cast<std::size_t>(client_count));
    for (long c = 0; c < client_count; ++c) {
      clients.emplace_back([&, c] {
        runtime::HttpClient client("127.0.0.1", proxy_server.port());
        auto& samples = during_ns[static_cast<std::size_t>(c)];
        std::size_t i = static_cast<std::size_t>(c);
        while (running.load(std::memory_order_relaxed)) {
          const bool miss_at_start = miss_inflight.load(std::memory_order_acquire);
          const auto t0 = Clock::now();
          const auto response = client.get(warm_targets[i % warm_targets.size()]);
          const auto t1 = Clock::now();
          if (!response || response->status != 200) {
            errors.fetch_add(1);
            continue;
          }
          // Conservative bucketing: count a sample only when a MISS was
          // parked for the sample's entire round trip.
          if (miss_at_start && miss_inflight.load(std::memory_order_acquire)) {
            samples.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
          }
          ++i;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    running.store(false);
  }  // hit clients joined
  miss_driver.join();
  proxy_server.stop();

  LatencyUnderMissResult result;
  result.errors = errors.load();
  result.miss_fetches = miss_ns.size();
  std::sort(miss_ns.begin(), miss_ns.end());
  result.miss_p50_ms = static_cast<double>(percentile(miss_ns, 0.50)) / 1e6;
  std::vector<std::uint64_t> all;
  for (const auto& samples : during_ns) {
    all.insert(all.end(), samples.begin(), samples.end());
  }
  std::sort(all.begin(), all.end());
  result.hit_samples_during_miss = all.size();
  result.hit_p50_us_during_miss =
      static_cast<double>(percentile(all, 0.50)) / 1000.0;
  result.hit_p99_us_during_miss =
      static_cast<double>(percentile(all, 0.99)) / 1000.0;
  return result;
}

/// One latency-tail sweep: a fresh proxy (so RTT estimators start cold)
/// pulls `targets` — all replicated on rp.pub + rp2.pub — once each while
/// a degradation schedule steps rp.pub from healthy to an 800 ms stall
/// after its first 5 matched sends. Cold fetches only: the p99 of the
/// sweep *is* the MISS tail under a decaying replica.
struct LatencyTailSweep {
  std::size_t fetches = 0;
  std::uint64_t errors = 0;
  double p99_us = 0.0;
  std::uint64_t hedges_sent = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_suppressed = 0;
  std::uint64_t range_failovers = 0;
  std::uint64_t rtt_p95_rp_us = 0;
  std::uint64_t rtt_p95_rp2_us = 0;
};

LatencyTailSweep run_latency_tail_sweep(runtime::SocketNet& net,
                                        net::FaultInjector& faulty,
                                        net::DnsService& dns, bool hedging,
                                        std::size_t workers,
                                        const std::vector<std::string>& targets) {
  Proxy::Options options;
  options.cache_shards = workers;
  options.fetch.hedging_enabled = hedging;
  // Loopback RTTs sit well under this floor, so the hedge timer only
  // fires for genuinely degraded sends — same setting the chaos e2e pins.
  options.fetch.hedge_min_delay_ms = 25;
  Proxy proxy(&faulty, "cache.ad1", "nrs.consortium", &dns, options);

  runtime::HostServer::Options host;
  host.workers = workers;
  runtime::HostServer proxy_server(&proxy, "cache.ad1", host);
  proxy_server.start();
  net.register_endpoint(proxy_server);

  // Fresh schedule per sweep: each keeps a private matched-send counter,
  // so both sweeps see the identical healthy→800 ms step at send 6.
  net::FaultInjector::Degradation ramp;
  ramp.to = "rp.pub";
  ramp.start_latency_ms = 800;
  ramp.peak_latency_ms = 800;
  ramp.ramp_start = 6;  // first sends seed honest RTT estimates
  faulty.add_degradation(ramp);

  std::vector<std::uint64_t> sample_us;
  LatencyTailSweep result;
  {
    runtime::HttpClient client("127.0.0.1", proxy_server.port());
    for (const auto& target : targets) {
      const auto t0 = Clock::now();
      const auto response = client.get(target);
      const auto t1 = Clock::now();
      if (!response || response->status != 200) {
        ++result.errors;
        continue;
      }
      sample_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
    }
  }
  faulty.clear_degradations();

  const auto& stats = proxy.fetcher().stats();
  result.hedges_sent = stats.hedges_sent.value();
  result.hedge_wins = stats.hedge_wins.value();
  result.hedges_suppressed = stats.hedges_suppressed.value();
  result.range_failovers = stats.range_failovers.value();
  result.rtt_p95_rp_us = proxy.fetcher().rtt_p95_us("rp.pub");
  result.rtt_p95_rp2_us = proxy.fetcher().rtt_p95_us("rp2.pub");
  proxy_server.stop();

  result.fetches = sample_us.size();
  std::sort(sample_us.begin(), sample_us.end());
  if (!sample_us.empty()) {
    // Nearest-rank (ceil) p99, matching the chaos e2e: with one scripted
    // straggler in a small sweep the tail must not hide behind
    // interpolation.
    const std::size_t rank = (sample_us.size() * 99 + 99) / 100;
    result.p99_us = static_cast<double>(
        sample_us[std::max<std::size_t>(rank, 1) - 1]);
  }
  return result;
}

void print_window(const WindowResult& w) {
  std::printf("  [%zu worker%s, %s]\n", w.workers, w.workers == 1 ? "" : "s",
              w.used_reuseport ? "SO_REUSEPORT" : "single-acceptor");
  std::printf("    requests         %zu ok, %llu errors in %.2f s\n",
              w.requests, static_cast<unsigned long long>(w.errors),
              w.elapsed_s);
  std::printf("    throughput       %.0f req/s, %.3f Gbps out\n", w.req_per_s,
              w.gbps);
  std::printf("    latency          p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us\n",
              w.p50_us, w.p90_us, w.p99_us, w.max_us);
  std::printf("    per-worker req/s ");
  for (std::size_t i = 0; i < w.per_worker_req_per_s.size(); ++i) {
    std::printf("%s%.0f", i == 0 ? "" : ", ", w.per_worker_req_per_s[i]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers =
      static_cast<std::size_t>(env_long("IDICN_BENCH_WORKERS", 1));
  bool check = env_long("IDICN_BENCH_CHECK", 0) != 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed > 0) workers = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--workers N] [--check]\n", argv[0]);
      return 2;
    }
  }

  const long seconds = env_long("IDICN_BENCH_RUNTIME_SECONDS", 3);
  const long client_count = env_long("IDICN_BENCH_RUNTIME_CLIENTS",
                                     std::max<long>(2, static_cast<long>(workers)));
  const long body_bytes = env_long("IDICN_BENCH_RUNTIME_BODY", 512);

  // Heavy-tailed object sizes (tentpole (d)): pick the model from the env,
  // sample each catalog object's body size once at publish time. Unit (the
  // default) preserves the historical fixed-size behaviour exactly.
  workload::SizeModel size_model;
  if (const char* model_env = std::getenv("IDICN_BENCH_SIZE_MODEL")) {
    const auto kind = workload::parse_size_model_kind(model_env);
    if (!kind) {
      std::fprintf(stderr,
                   "IDICN_BENCH_SIZE_MODEL must be unit|lognormal|pareto, got %s\n",
                   model_env);
      return 2;
    }
    if (*kind != workload::SizeModelKind::Unit) {
      const long mean = env_long("IDICN_BENCH_SIZE_MEAN", body_bytes);
      size_model = workload::SizeModel(*kind, static_cast<double>(mean));
    }
  }

  const bool latency_under_miss =
      env_long("IDICN_BENCH_LATENCY_UNDER_MISS", 0) != 0;
  const bool latency_tail = env_long("IDICN_BENCH_LATENCY_TAIL", 0) != 0;

  // --- deploy the socketed stack -----------------------------------------
  runtime::SocketNet net;
  // The proxy's upstream rides a FaultInjector so the latency-under-miss
  // window can script a slow origin. Rule-free it is pass-through, and the
  // measured windows are pure HIT traffic (no upstream sends), so wrapping
  // unconditionally does not perturb the throughput numbers.
  net::FaultInjector faulty(&net);
  net::DnsService dns;
  // 512 one-time keys: each publish burns two (content metadata + NRS
  // registration), and the latency-tail leg republishes its catalog on a
  // second reverse proxy.
  crypto::MerkleSigner signer(0xbe9c, 9);
  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.pub", "origin.pub", "nrs.consortium",
                             &signer);
  Proxy::Options proxy_options;
  proxy_options.cache_shards = workers;  // one lock stripe per reactor
  Proxy proxy(&faulty, "cache.ad1", "nrs.consortium", &dns, proxy_options);

  runtime::HostServer nrs_server(&nrs, "nrs.consortium");
  runtime::HostServer origin_server(&origin, "origin.pub");
  runtime::HostServer rp_server(&reverse_proxy, "rp.pub");
  nrs_server.start();
  origin_server.start();
  rp_server.start();
  net.register_endpoint(nrs_server);
  net.register_endpoint(origin_server);
  net.register_endpoint(rp_server);

  // Second replica for the latency-tail leg: shares the signer, so the
  // same label published on both reverse proxies yields one
  // self-certifying name with two NRS location rows (rp.pub first, by
  // registration order — the degradation schedule targets it).
  std::unique_ptr<ReverseProxy> reverse_proxy2;
  std::unique_ptr<runtime::HostServer> rp2_server;
  if (latency_tail) {
    reverse_proxy2 = std::make_unique<ReverseProxy>(
        &net, "rp2.pub", "origin.pub", "nrs.consortium", &signer);
    rp2_server =
        std::make_unique<runtime::HostServer>(reverse_proxy2.get(), "rp2.pub");
    rp2_server->start();
    net.register_endpoint(*rp2_server);
  }

  // Publish a small catalog (each publish costs one-time keys).
  constexpr int kCatalog = 16;
  std::vector<std::string> targets;
  std::mt19937_64 size_rng(0x1d1c4u);  // fixed seed: same catalog every run
  std::uint64_t catalog_bytes = 0;
  for (int i = 0; i < kCatalog; ++i) {
    const std::string label = "object-" + std::to_string(i);
    std::size_t object_bytes = static_cast<std::size_t>(body_bytes);
    if (size_model.kind() != workload::SizeModelKind::Unit) {
      object_bytes = static_cast<std::size_t>(size_model.sample(size_rng));
    }
    catalog_bytes += object_bytes;
    // The origin and reverse proxy belong to their worker threads while
    // their servers run: publish through run_on_loop, not directly.
    origin_server.run_on_loop([&] {
      origin.put(label, std::string(object_bytes, 'x'));
    });
    std::optional<SelfCertifyingName> name;
    rp_server.run_on_loop([&] { name = reverse_proxy.publish(label); });
    if (!name) {
      std::fprintf(stderr, "publish failed for %s\n", label.c_str());
      return 1;
    }
    targets.push_back("http://" + name->host() + "/");
  }

  // Cold catalog for the latency-under-miss window: never warmed, fetched
  // one at a time through the injected delay (~200 ms each), so the count
  // scales with the window. Capped by the signer's one-time key budget.
  std::vector<std::string> cold_targets;
  if (latency_under_miss) {
    const long cold_count = std::min<long>(200, seconds * 6 + 4);
    for (long i = 0; i < cold_count; ++i) {
      const std::string label = "cold-" + std::to_string(i);
      origin_server.run_on_loop([&] {
        origin.put(label, std::string(static_cast<std::size_t>(body_bytes), 'c'));
      });
      std::optional<SelfCertifyingName> name;
      rp_server.run_on_loop([&] { name = reverse_proxy.publish(label); });
      if (!name) {
        std::fprintf(stderr, "publish failed for %s\n", label.c_str());
        return 1;
      }
      cold_targets.push_back("http://" + name->host() + "/");
    }
  }

  // Two cold catalogs for the latency-tail sweeps (one per hedging mode,
  // so both start as true MISSes), each replicated on rp.pub and rp2.pub.
  std::vector<std::string> tail_unhedged_targets;
  std::vector<std::string> tail_hedged_targets;
  if (latency_tail) {
    constexpr int kTailCatalog = 40;
    const auto publish_replicated =
        [&](const std::string& label, std::vector<std::string>& out) -> bool {
      origin_server.run_on_loop([&] {
        origin.put(label, std::string(static_cast<std::size_t>(body_bytes), 't'));
      });
      std::optional<SelfCertifyingName> name;
      std::optional<SelfCertifyingName> twin;
      rp_server.run_on_loop([&] { name = reverse_proxy.publish(label); });
      if (!name) return false;
      rp2_server->run_on_loop([&] { twin = reverse_proxy2->publish(label); });
      if (!twin || twin->flat() != name->flat()) return false;
      out.push_back("http://" + name->host() + "/");
      return true;
    };
    for (int i = 0; i < kTailCatalog; ++i) {
      if (!publish_replicated("tail-u-" + std::to_string(i),
                              tail_unhedged_targets) ||
          !publish_replicated("tail-h-" + std::to_string(i),
                              tail_hedged_targets)) {
        std::fprintf(stderr, "replicated publish failed for tail object %d\n",
                     i);
        return 1;
      }
    }
  }

  // --- measured windows ---------------------------------------------------
  // With workers > 1: a 1-worker baseline window first, then the N-worker
  // window against the same warmed proxy, so the comparison isolates the
  // reactor count.
  std::printf("runtime throughput: %ld client(s), %ld s window, %zu worker(s), "
              "%s sizes (catalog mean %.0f B)\n",
              client_count, seconds, workers,
              workload::to_string(size_model.kind()).c_str(),
              static_cast<double>(catalog_bytes) / kCatalog);
  std::optional<WindowResult> baseline;
  if (workers > 1) {
    baseline = run_window(proxy, net, 1, client_count, seconds, targets);
    print_window(*baseline);
  }
  const WindowResult measured =
      run_window(proxy, net, workers, client_count, seconds, targets);
  print_window(measured);

  const double scaling_efficiency =
      baseline && baseline->req_per_s > 0.0
          ? measured.req_per_s /
                (static_cast<double>(workers) * baseline->req_per_s)
          : 1.0;
  if (baseline) {
    std::printf("  scaling            %.2fx over 1 worker (efficiency %.2f)\n",
                measured.req_per_s / baseline->req_per_s, scaling_efficiency);
  }

  // Worker-coverage check (--check / IDICN_BENCH_CHECK=1): with the
  // connection pools pinned per worker, no reactor should sit idle. A
  // worker under 5% of the mean means the SO_REUSEPORT flow-hash collapse
  // is back (or a reactor wedged) — fail loudly instead of publishing a
  // scaling number measured on fewer workers than claimed.
  bool coverage_failed = false;
  if (check && measured.per_worker_req_per_s.size() > 1) {
    double mean = 0.0;
    for (const double rate : measured.per_worker_req_per_s) mean += rate;
    mean /= static_cast<double>(measured.per_worker_req_per_s.size());
    for (std::size_t w = 0; w < measured.per_worker_req_per_s.size(); ++w) {
      if (measured.per_worker_req_per_s[w] < 0.05 * mean) {
        std::fprintf(stderr,
                     "worker coverage check FAILED: worker %zu served "
                     "%.1f req/s against a %.1f req/s mean (< 5%%)\n",
                     w, measured.per_worker_req_per_s[w], mean);
        coverage_failed = true;
      }
    }
  }

  // Latency-tail sweeps (opt-in): the same degradation schedule twice —
  // once with hedging off, once with the fetcher defaults. Runs before
  // the latency-under-miss window because that window installs a
  // persistent Latency rule on rp.pub.
  std::optional<LatencyTailSweep> tail_unhedged;
  std::optional<LatencyTailSweep> tail_hedged;
  if (latency_tail) {
    tail_unhedged = run_latency_tail_sweep(net, faulty, dns, false, workers,
                                           tail_unhedged_targets);
    tail_hedged = run_latency_tail_sweep(net, faulty, dns, true, workers,
                                         tail_hedged_targets);
    std::printf("  latency tail       unhedged p99 %.1f ms vs hedged p99 %.1f ms "
                "over %zu cold fetches (%llu hedges sent, %llu won, "
                "%llu suppressed, %llu range failovers)\n",
                tail_unhedged->p99_us / 1000.0, tail_hedged->p99_us / 1000.0,
                tail_hedged->fetches,
                static_cast<unsigned long long>(tail_hedged->hedges_sent),
                static_cast<unsigned long long>(tail_hedged->hedge_wins),
                static_cast<unsigned long long>(tail_hedged->hedges_suppressed),
                static_cast<unsigned long long>(tail_hedged->range_failovers));
  }

  // Latency-under-miss window (opt-in): cold fetches crawl through the
  // injected upstream delay while the closed-loop clients stay on the hit
  // path. The p99 sampled during in-flight misses is the headline — the
  // synchronous MISS path put it at ~the injected 200 ms; the parked
  // FetchOp keeps it at cache-hit scale.
  std::optional<LatencyUnderMissResult> lum;
  if (latency_under_miss) {
    lum = run_latency_under_miss(proxy, net, faulty, workers, client_count,
                                 seconds, targets, cold_targets);
    std::printf("  latency under miss %zu miss fetches (p50 %.0f ms), "
                "%zu hit samples during miss: p50 %.1f us, p99 %.1f us\n",
                lum->miss_fetches, lum->miss_p50_ms,
                lum->hit_samples_during_miss, lum->hit_p50_us_during_miss,
                lum->hit_p99_us_during_miss);
  }

  if (rp2_server) rp2_server->stop();
  rp_server.stop();
  origin_server.stop();
  nrs_server.stop();

  const auto& proxy_stats = proxy.stats();
  std::printf("  proxy cache        %llu hits, %llu misses\n",
              static_cast<unsigned long long>(proxy_stats.hits.value()),
              static_cast<unsigned long long>(proxy_stats.misses.value()));
  std::printf("  proxy bytes        %llu served, %llu from origin\n",
              static_cast<unsigned long long>(proxy_stats.bytes_served.value()),
              static_cast<unsigned long long>(proxy_stats.bytes_from_origin.value()));
  std::printf("  server sockets     %llu conns, %llu B in, %llu B out\n",
              static_cast<unsigned long long>(measured.server_stats.connections_accepted),
              static_cast<unsigned long long>(measured.server_stats.bytes_in),
              static_cast<unsigned long long>(measured.server_stats.bytes_out));
  // All four should be 0 in a clean run: the bench exercises the hit path
  // with breakers armed but no faults, so this doubles as a sanity check
  // that fault tolerance costs nothing when nothing fails.
  std::printf("  fault tolerance    %llu retries, %llu fast-fails, "
              "%llu stale, %llu upstream errors\n",
              static_cast<unsigned long long>(net.stats().retries),
              static_cast<unsigned long long>(net.stats().breaker_fast_fails),
              static_cast<unsigned long long>(proxy_stats.stale_served.value()),
              static_cast<unsigned long long>(proxy_stats.upstream_errors.value()));
  if constexpr (core::kPerfCountersEnabled) {
    // perf() merges the per-shard counters under their locks — safe here
    // and safe live.
    std::printf("  perf counters      proxy_bytes_served=%llu proxy_bytes_from_origin=%llu\n",
                static_cast<unsigned long long>(proxy.perf().proxy_bytes_served),
                static_cast<unsigned long long>(proxy.perf().proxy_bytes_from_origin));
  }

  // Machine-readable result (last stdout line + the JSON artifact).
  std::string per_worker_json = "[";
  for (std::size_t i = 0; i < measured.per_worker_req_per_s.size(); ++i) {
    char item[32];
    std::snprintf(item, sizeof(item), "%s%.1f", i == 0 ? "" : ",",
                  measured.per_worker_req_per_s[i]);
    per_worker_json += item;
  }
  per_worker_json += "]";
  char json[1536];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"runtime_throughput\",\"workers\":%zu,\"reuseport\":%s,"
      "\"clients\":%ld,\"seconds\":%.2f,\"requests\":%zu,\"errors\":%llu,"
      "\"req_per_s\":%.1f,\"gbps\":%.3f,\"single_worker_req_per_s\":%.1f,"
      "\"scaling_efficiency\":%.3f,\"per_worker_req_per_s\":%s,"
      "\"size_model\":\"%s\",\"catalog_mean_bytes\":%.1f,"
      "\"p50_us\":%.1f,\"p90_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f,"
      "\"bytes_served\":%llu,"
      "\"retries\":%llu,\"breaker_fast_fails\":%llu,"
      "\"stale_served\":%llu,\"upstream_errors\":%llu}",
      measured.workers, measured.used_reuseport ? "true" : "false",
      client_count, measured.elapsed_s, measured.requests,
      static_cast<unsigned long long>(measured.errors + (baseline ? baseline->errors : 0)),
      measured.req_per_s, measured.gbps,
      baseline ? baseline->req_per_s : measured.req_per_s, scaling_efficiency,
      per_worker_json.c_str(),
      workload::to_string(size_model.kind()).c_str(),
      static_cast<double>(catalog_bytes) / kCatalog,
      measured.p50_us, measured.p90_us,
      measured.p99_us, measured.max_us,
      static_cast<unsigned long long>(proxy_stats.bytes_served.value()),
      static_cast<unsigned long long>(net.stats().retries),
      static_cast<unsigned long long>(net.stats().breaker_fast_fails),
      static_cast<unsigned long long>(proxy_stats.stale_served.value()),
      static_cast<unsigned long long>(proxy_stats.upstream_errors.value()));
  std::string json_out(json);
  if (tail_unhedged && tail_hedged) {
    char extra[512];
    std::snprintf(
        extra, sizeof(extra),
        ",\"unhedged_p99_us\":%.1f,\"hedged_p99_us\":%.1f,"
        "\"tail_fetches\":%zu,\"tail_errors\":%llu,"
        "\"hedges_sent\":%llu,\"hedge_wins\":%llu,"
        "\"hedges_suppressed\":%llu,\"range_failovers\":%llu,"
        "\"rtt_p95_us\":{\"rp.pub\":%llu,\"rp2.pub\":%llu}}",
        tail_unhedged->p99_us, tail_hedged->p99_us, tail_hedged->fetches,
        static_cast<unsigned long long>(tail_unhedged->errors +
                                        tail_hedged->errors),
        static_cast<unsigned long long>(tail_hedged->hedges_sent),
        static_cast<unsigned long long>(tail_hedged->hedge_wins),
        static_cast<unsigned long long>(tail_hedged->hedges_suppressed),
        static_cast<unsigned long long>(tail_hedged->range_failovers),
        static_cast<unsigned long long>(tail_hedged->rtt_p95_rp_us),
        static_cast<unsigned long long>(tail_hedged->rtt_p95_rp2_us));
    json_out.pop_back();  // the closing brace moves behind the new fields
    json_out += extra;
  }
  if (lum) {
    char extra[384];
    std::snprintf(
        extra, sizeof(extra),
        ",\"miss_fetches\":%zu,\"miss_p50_ms\":%.1f,"
        "\"hit_samples_during_miss\":%zu,"
        "\"hit_p50_us_during_miss\":%.1f,\"hit_p99_us_during_miss\":%.1f}",
        lum->miss_fetches, lum->miss_p50_ms, lum->hit_samples_during_miss,
        lum->hit_p50_us_during_miss, lum->hit_p99_us_during_miss);
    json_out.pop_back();  // the closing brace moves behind the new fields
    json_out += extra;
  }
  std::printf("%s\n", json_out.c_str());

  const char* out_path = std::getenv("IDICN_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_runtime.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out, "%s\n", json_out.c_str());
    std::fclose(out);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
  }

  std::uint64_t total_errors =
      measured.errors + (baseline ? baseline->errors : 0);
  if (lum) total_errors += lum->errors;
  if (tail_unhedged) total_errors += tail_unhedged->errors;
  if (tail_hedged) total_errors += tail_hedged->errors;
  return total_errors == 0 && !coverage_failed ? 0 : 1;
}
