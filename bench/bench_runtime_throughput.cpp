// Real-socket runtime throughput benchmark.
//
// Deploys the full §6 stack — NRS, origin, reverse proxy, edge proxy —
// each behind its own runtime::HostServer on real loopback TCP, publishes
// a small catalog, then drives the edge proxy with closed-loop keep-alive
// HTTP clients and reports request rate and latency percentiles. The
// steady-state path is the paper's common case: a proxy cache HIT served
// straight from memory over one keep-alive connection.
//
// Environment knobs:
//   IDICN_BENCH_RUNTIME_SECONDS  measurement window (default 3; CI uses 1)
//   IDICN_BENCH_RUNTIME_CLIENTS  closed-loop client threads (default 2)
//   IDICN_BENCH_RUNTIME_BODY    object body bytes (default 512)
//
// The last stdout line is a single JSON object with the results, so CI and
// scripts can scrape `req_per_s` / `p99_us` without parsing prose.
#include <algorithm>
#include <atomic>
#include <optional>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/perf_counters.hpp"
#include "core/sync.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "runtime/host_server.hpp"
#include "runtime/http_client.hpp"
#include "runtime/socket_net.hpp"

namespace {

long env_long(const char* name, long fallback) {
  if (const char* value = std::getenv(name)) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;
  using Clock = std::chrono::steady_clock;

  const long seconds = env_long("IDICN_BENCH_RUNTIME_SECONDS", 3);
  const long client_count = env_long("IDICN_BENCH_RUNTIME_CLIENTS", 2);
  const long body_bytes = env_long("IDICN_BENCH_RUNTIME_BODY", 512);

  // --- deploy the socketed stack -----------------------------------------
  runtime::SocketNet net;
  net::DnsService dns;
  crypto::MerkleSigner signer(0xbe9c, 8);  // 256 one-time keys
  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.pub", "origin.pub", "nrs.consortium",
                             &signer);
  Proxy proxy(&net, "cache.ad1", "nrs.consortium", &dns);

  runtime::HostServer nrs_server(&nrs, "nrs.consortium");
  runtime::HostServer origin_server(&origin, "origin.pub");
  runtime::HostServer rp_server(&reverse_proxy, "rp.pub");
  runtime::HostServer proxy_server(&proxy, "cache.ad1");
  nrs_server.start();
  origin_server.start();
  rp_server.start();
  proxy_server.start();
  net.register_endpoint(nrs_server);
  net.register_endpoint(origin_server);
  net.register_endpoint(rp_server);
  net.register_endpoint(proxy_server);

  // Publish a small catalog (each publish costs one-time keys).
  constexpr int kCatalog = 16;
  std::vector<std::string> targets;
  for (int i = 0; i < kCatalog; ++i) {
    const std::string label = "object-" + std::to_string(i);
    // The origin and reverse proxy belong to their worker threads while
    // their servers run: publish through run_on_loop, not directly.
    origin_server.run_on_loop([&] {
      origin.put(label, std::string(static_cast<std::size_t>(body_bytes), 'x'));
    });
    std::optional<SelfCertifyingName> name;
    rp_server.run_on_loop([&] { name = reverse_proxy.publish(label); });
    if (!name) {
      std::fprintf(stderr, "publish failed for %s\n", label.c_str());
      return 1;
    }
    targets.push_back("http://" + name->host() + "/");
  }

  // Warm the proxy cache so the measured window is the HIT fast path.
  {
    runtime::HttpClient warm("127.0.0.1", proxy_server.port());
    for (const auto& target : targets) {
      const auto response = warm.get(target);
      if (!response || response->status != 200) {
        std::fprintf(stderr, "warmup fetch failed for %s\n", target.c_str());
        return 1;
      }
    }
  }

  // --- closed-loop load ---------------------------------------------------
  std::atomic<bool> running{true};
  std::vector<std::vector<std::uint64_t>> latencies_ns(
      static_cast<std::size_t>(client_count));
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(client_count), 0);
  std::vector<core::sync::Thread> clients;
  clients.reserve(static_cast<std::size_t>(client_count));

  const auto start = Clock::now();
  for (long c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      runtime::HttpClient client("127.0.0.1", proxy_server.port());
      auto& samples = latencies_ns[static_cast<std::size_t>(c)];
      samples.reserve(1 << 18);
      std::size_t i = static_cast<std::size_t>(c);
      while (running.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        const auto response = client.get(targets[i % targets.size()]);
        const auto t1 = Clock::now();
        if (!response || response->status != 200) {
          ++errors[static_cast<std::size_t>(c)];
          continue;
        }
        samples.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  running.store(false);
  for (auto& thread : clients) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Stop the stack before sampling counters: stats() snapshots are safe
  // live, but proxy.perf() is owner-thread-only (plain hot-path counters)
  // and must not be read until the worker has been joined.
  proxy_server.stop();
  rp_server.stop();
  origin_server.stop();
  nrs_server.stop();

  // --- aggregate -----------------------------------------------------------
  std::vector<std::uint64_t> all;
  std::uint64_t total_errors = 0;
  for (const auto& samples : latencies_ns) all.insert(all.end(), samples.begin(), samples.end());
  for (const auto error_count : errors) total_errors += error_count;
  std::sort(all.begin(), all.end());

  const double req_per_s = static_cast<double>(all.size()) / elapsed_s;
  const double p50_us = static_cast<double>(percentile(all, 0.50)) / 1000.0;
  const double p90_us = static_cast<double>(percentile(all, 0.90)) / 1000.0;
  const double p99_us = static_cast<double>(percentile(all, 0.99)) / 1000.0;
  const double max_us = all.empty() ? 0.0 : static_cast<double>(all.back()) / 1000.0;

  const auto proxy_stats = proxy.stats();
  const auto server_stats = proxy_server.stats();

  std::printf("runtime throughput: %ld client(s), %ld s window, %ld-byte bodies\n",
              client_count, seconds, body_bytes);
  std::printf("  backend            epoll-preferred (HostServer default)\n");
  std::printf("  requests           %zu ok, %llu errors\n", all.size(),
              static_cast<unsigned long long>(total_errors));
  std::printf("  throughput         %.0f req/s\n", req_per_s);
  std::printf("  latency            p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us\n",
              p50_us, p90_us, p99_us, max_us);
  std::printf("  proxy cache        %llu hits, %llu misses\n",
              static_cast<unsigned long long>(proxy_stats.hits.value()),
              static_cast<unsigned long long>(proxy_stats.misses.value()));
  std::printf("  proxy bytes        %llu served, %llu from origin\n",
              static_cast<unsigned long long>(proxy_stats.bytes_served.value()),
              static_cast<unsigned long long>(proxy_stats.bytes_from_origin.value()));
  std::printf("  server sockets     %llu conns, %llu B in, %llu B out\n",
              static_cast<unsigned long long>(server_stats.connections_accepted),
              static_cast<unsigned long long>(server_stats.bytes_in),
              static_cast<unsigned long long>(server_stats.bytes_out));
  if constexpr (core::kPerfCountersEnabled) {
    std::printf("  perf counters      proxy_bytes_served=%llu proxy_bytes_from_origin=%llu\n",
                static_cast<unsigned long long>(proxy.perf().proxy_bytes_served),
                static_cast<unsigned long long>(proxy.perf().proxy_bytes_from_origin));
  }

  // Machine-readable result line (last line of stdout).
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"clients\":%ld,\"seconds\":%.2f,"
      "\"requests\":%zu,\"errors\":%llu,\"req_per_s\":%.1f,"
      "\"p50_us\":%.1f,\"p90_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f,"
      "\"bytes_served\":%llu}\n",
      client_count, elapsed_s, all.size(),
      static_cast<unsigned long long>(total_errors), req_per_s, p50_us, p90_us,
      p99_us, max_us,
      static_cast<unsigned long long>(proxy_stats.bytes_served.value()));

  return total_errors == 0 ? 0 : 1;
}
