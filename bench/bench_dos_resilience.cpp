// §7's request-flood claim, quantified.
//
// "An architecture based on edge caching provides approximately the same
// hit-ratios as a pervasively deployed ICN, indicating that such an edge
// cache deployment can provide much of the same request flood protection."
//
// Injects a flash crowd (a window in which a large share of requests
// target a handful of previously unseen objects) and reports the load on
// the most-hit origin and the flood-window hit ratios under NO-CACHE,
// EDGE, EDGE-Norm, ICN-SP, and ICN-NR.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Request-flood resilience (ATT) ==\n");
  std::printf("(flash crowd: 25%% of the stream at 70%% intensity on 5 new objects)\n\n");
  std::printf("%-10s %18s %18s %14s\n", "design", "max origin load",
              "origin-load impr%", "hit ratio");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  core::SyntheticWorkloadSpec base;
  base.request_count = requests;
  base.object_count = objects;
  base.alpha = 1.04;
  base.seed = 0xa51a;
  core::FlashCrowdSpec crowd;
  crowd.start = 0.5;
  crowd.duration = 0.25;
  crowd.intensity = 0.7;
  crowd.hot_objects = 5;
  const core::BoundWorkload workload = core::bind_flash_crowd(network, base, crowd);
  const core::OriginMap origins(network, workload.object_count,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  core::SimulationConfig config;

  const core::ComparisonResult cmp = core::compare_designs(
      network, origins,
      {core::edge(), core::edge_norm(), core::icn_sp(), core::icn_nr()}, config,
      workload);

  std::printf("%-10s %18llu %18s %14s\n", "NO-CACHE",
              static_cast<unsigned long long>(cmp.baseline.max_origin_served), "-",
              "-");
  for (const core::DesignResult& r : cmp.designs) {
    std::printf("%-10s %18llu %18.2f %14.3f\n", r.design.name.c_str(),
                static_cast<unsigned long long>(r.metrics.max_origin_served),
                r.improvements.origin_load_pct, r.metrics.cache_hit_ratio());
  }

  const double edge_impr = cmp.by_name("EDGE").improvements.origin_load_pct;
  const double nr_impr = cmp.by_name("ICN-NR").improvements.origin_load_pct;
  std::printf("\nEDGE absorbs %.1f%% of the flood vs ICN-NR's %.1f%% — \"much of\n"
              "the same request flood protection\" without router support.\n",
              edge_impr, nr_impr);
  return 0;
}
