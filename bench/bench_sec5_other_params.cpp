// §5 "Other parameters": latency models, request serving capacity, and
// heterogeneous object sizes.
//
// The paper reports each of these moves the ICN-NR − EDGE gap by at most
// ~1–2%. Each block below compares the baseline gap against the varied
// configuration.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/size_model.hpp"

namespace {

using namespace idicn;

void report(const char* label, const core::Improvements& gap) {
  std::printf("%-28s %10.2f %12.2f %14.2f\n", label, gap.latency_pct,
              gap.congestion_pct, gap.origin_load_pct);
}

}  // namespace

int main() {
  std::printf("== Section 5 'other parameters': NR-EDGE gap under model "
              "variations (ATT) ==\n\n");
  std::printf("%-28s %10s %12s %14s\n", "variation", "delay", "congestion",
              "origin-load");

  bench::SensitivityPoint baseline;
  report("baseline (unit latency)", bench::nr_minus_edge(baseline));

  // Latency variation 1: arithmetic progression toward the core.
  {
    bench::SensitivityPoint point;
    point.latency = topology::LatencyModel::arithmetic(point.tree.depth());
    report("arithmetic latency", bench::nr_minus_edge(point));
  }
  // Latency variation 2: core hops cost d x more.
  for (const double factor : {3.0, 10.0}) {
    bench::SensitivityPoint point;
    point.latency = topology::LatencyModel::core_weighted(point.tree.depth(), factor);
    char label[64];
    std::snprintf(label, sizeof(label), "core x%.0f latency", factor);
    report(label, bench::nr_minus_edge(point));
  }

  // Request serving capacity: overloaded caches pass requests onward.
  for (const std::uint32_t capacity : {8u, 32u}) {
    bench::SensitivityPoint point;
    point.serving_capacity = capacity;
    char label[64];
    std::snprintf(label, sizeof(label), "serving capacity %u/window", capacity);
    report(label, bench::nr_minus_edge(point));
  }

  // Heterogeneous object sizes, uncorrelated with popularity. Budgets stay
  // object-denominated (mean size 1 unit → mean-size-scaled capacity), so
  // this isolates the size-spread effect the paper examines.
  {
    const double scale = bench::bench_scale();
    const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
    const auto objects = static_cast<std::uint32_t>(
        std::max<double>(2000.0, static_cast<double>(requests) / 9.0));
    const topology::HierarchicalNetwork network = bench::make_network("ATT");
    core::SyntheticWorkloadSpec spec;
    spec.request_count = requests;
    spec.object_count = objects;
    spec.alpha = 1.04;
    spec.seed = 0xa51a;
    spec.sizes = workload::SizeModel(workload::SizeModelKind::LogNormal, 4.0);
    const core::BoundWorkload workload = core::bind_synthetic(network, spec);

    core::SimulationConfig config;
    // Budget in units: F·O objects of mean size 4 units each.
    config.budget_fraction = 0.05 * 4.0;
    const core::OriginMap origins(network, objects,
                                  core::OriginAssignment::PopulationProportional,
                                  0x0419);
    const core::ComparisonResult cmp = core::compare_designs(
        network, origins, {core::icn_nr(), core::edge()}, config, workload);
    report("lognormal sizes (mean 4)", cmp.gap(0, 1));
  }

  std::printf("\npaper reference: every variation moves the gap by <= ~2%%\n");
  return 0;
}
