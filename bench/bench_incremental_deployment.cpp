// §4.3's incremental-deployment argument, quantified.
//
// "There is an immediate benefit to a group of users who have a cache
// server deployed near their access gateways … this benefit is independent
// of deployments (or the lack thereof) in the rest of the network."
//
// Sweeps the fraction of PoPs that deploy edge caches (a deterministic
// subset, constant across rows) and reports, separately for deploying and
// non-deploying PoPs, the mean latency improvement over no caching.
// Expected shape: deployers' improvement is flat in the deployment
// fraction (you don't need anyone else); non-deployers sit near zero —
// unlike pervasive ICN, whose value to any one PoP depends on global
// adoption.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Incremental deployment (ATT): who benefits when only some "
              "PoPs deploy edge caches ==\n\n");
  std::printf("%10s %12s | %22s %22s\n", "deployed", "PoPs w/cache",
              "deployers latency-impr%", "others latency-impr%");

  const topology::HierarchicalNetwork network = bench::make_network("ATT");
  core::SyntheticWorkloadSpec spec;
  spec.request_count = requests;
  spec.object_count = objects;
  spec.alpha = 1.04;
  spec.seed = 0xa51a;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);
  const core::OriginMap origins(network, objects,
                                core::OriginAssignment::PopulationProportional, 0x0419);
  core::SimulationConfig config;

  const core::SimulationMetrics baseline =
      core::run_design(network, origins, core::no_cache(), config, workload);

  for (const double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const core::DesignSpec design = core::edge_partial(fraction);
    core::Simulator simulator(network, origins, design, config);

    // Which pops actually deployed (deterministic per fraction).
    std::vector<bool> deployed(network.pop_count(), false);
    std::size_t deployed_count = 0;
    for (topology::PopId pop = 0; pop < network.pop_count(); ++pop) {
      deployed[pop] = simulator.is_cache_site(network.leaf(pop, 0));
      deployed_count += deployed[pop];
    }

    const core::SimulationMetrics metrics = simulator.run(workload);

    double deployer_base = 0.0, deployer_now = 0.0;
    double other_base = 0.0, other_now = 0.0;
    std::uint64_t deployer_requests = 0, other_requests = 0;
    for (topology::PopId pop = 0; pop < network.pop_count(); ++pop) {
      if (deployed[pop]) {
        deployer_base += baseline.pop_latency[pop];
        deployer_now += metrics.pop_latency[pop];
        deployer_requests += metrics.pop_requests[pop];
      } else {
        other_base += baseline.pop_latency[pop];
        other_now += metrics.pop_latency[pop];
        other_requests += metrics.pop_requests[pop];
      }
    }
    const auto improvement = [](double base, double now) {
      return base > 0.0 ? 100.0 * (base - now) / base : 0.0;
    };
    std::printf("%9.0f%% %12zu | %22.2f %22.2f\n", fraction * 100.0, deployed_count,
                improvement(deployer_base, deployer_now),
                other_requests ? improvement(other_base, other_now) : 0.0);
  }

  std::printf("\nexpected shape: the deployers' column is flat — an AD's benefit\n"
              "does not depend on anyone else deploying (the paper's deployment\n"
              "incentive); non-deployers gain ~nothing.\n");
  return 0;
}
