// idICN prototype microbenchmark (§6): end-to-end functional exercise with
// message/byte/virtual-latency accounting.
//
// Deploys a complete idICN stack on the simulated internetwork, publishes a
// content catalog, replays a Zipf request stream through the edge proxy,
// and reports hit ratios, per-request message costs, and virtual latency —
// the "edge caching + end-to-end security" operating point the paper
// argues for.
#include <cstdio>
#include <random>

#include "idicn/client.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "idicn/wpad.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;

  constexpr int kCatalog = 200;
  constexpr int kRequests = 5000;
  constexpr double kAlpha = 1.0;

  net::SimNet net;
  net.set_default_latency_ms(2);
  net.set_latency_ms("origin.pub", 40);  // the origin is far
  net.set_latency_ms("rp.pub", 30);      // the reverse proxy nearly as far
  net.set_latency_ms("cache.ad1", 2);    // the AD proxy is near

  net::DnsService dns;
  crypto::MerkleSigner signer(0xbeef, 10);  // 1024 one-time keys
  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.pub", "origin.pub", "nrs.consortium", &signer);
  Proxy proxy(&net, "cache.ad1", "nrs.consortium", &dns,
              Proxy::Options{1 << 22, 3'600'000, true});
  Client client(&net, "host.ad1", &dns);
  client.configure(PacFile::idicn_default("cache.ad1"));

  net.attach("nrs.consortium", &nrs);
  net.attach("origin.pub", &origin);
  net.attach("rp.pub", &reverse_proxy);
  net.attach("cache.ad1", &proxy);

  // Publish the catalog.
  std::vector<std::string> hosts;
  for (int i = 0; i < kCatalog; ++i) {
    const std::string label = "object-" + std::to_string(i);
    origin.put(label, "content-body-" + std::to_string(i) + std::string(512, 'x'));
    const auto name = reverse_proxy.publish(label);
    if (!name) {
      std::fprintf(stderr, "publish failed for %s\n", label.c_str());
      return 1;
    }
    hosts.push_back(name->host());
  }
  const std::uint64_t publish_messages = net.messages_sent();
  const std::uint64_t publish_clock = net.now_ms();

  // Replay a Zipf stream through the proxy.
  const workload::ZipfDistribution zipf(kCatalog, kAlpha);
  std::mt19937_64 rng(7);
  std::uint64_t ok = 0;
  double total_latency = 0.0;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t before = net.now_ms();
    const auto result = client.get("http://" + hosts[zipf.sample(rng) - 1] + "/");
    total_latency += static_cast<double>(net.now_ms() - before);
    ok += result.response.status == 200;
  }

  const Proxy::Stats& stats = proxy.stats();
  std::printf("== idICN prototype microbenchmark ==\n");
  std::printf("catalog: %d objects; requests: %d (Zipf alpha %.1f)\n\n", kCatalog,
              kRequests, kAlpha);
  std::printf("publish phase : %llu messages, %llu virtual ms\n",
              static_cast<unsigned long long>(publish_messages),
              static_cast<unsigned long long>(publish_clock));
  std::printf("request phase : %llu messages total, %.2f msgs/request\n",
              static_cast<unsigned long long>(net.messages_sent() - publish_messages),
              static_cast<double>(net.messages_sent() - publish_messages) / kRequests);
  std::printf("success       : %llu/%d\n", static_cast<unsigned long long>(ok),
              kRequests);
  std::printf("proxy hits    : %llu (%.1f%%), misses %llu, verification failures %llu\n",
              static_cast<unsigned long long>(stats.hits),
              100.0 * static_cast<double>(stats.hits) / kRequests,
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.verification_failures));
  std::printf("mean latency  : %.2f virtual ms/request (origin RTT would be %.0f)\n",
              total_latency / kRequests, 2.0 * (40.0 + 2.0));
  std::printf("proxy cache   : %zu objects, %llu bytes\n", proxy.cached_objects(),
              static_cast<unsigned long long>(proxy.cached_bytes()));
  std::printf("\nexpected shape: hit ratio near the Zipf cacheable mass; hits cost\n"
              "2 messages and ~8 virtual ms; only misses touch the far reverse proxy\n");
  return ok == kRequests ? 0 : 1;
}
