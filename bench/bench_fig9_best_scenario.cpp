// Figure 9: the best possible scenario for ICN-NR.
//
// Starting from the §4 baseline, progressively sets each configuration
// knob to the value most favorable to ICN-NR: Alpha* (α = 0.1), Skew*
// (spatial skew 1), Budget-Dist* (uniform budgeting), and Node-Budget*
// (F = 2%). Paper's punchline: even the best combination caps ICN-NR's
// advantage at ~17% over EDGE.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  std::printf("== Figure 9: progressively best-casing ICN-NR (ATT) ==\n\n");
  std::printf("%-18s %10s %12s %14s\n", "configuration", "Latency", "Congestion",
              "Origin-Load");

  bench::SensitivityPoint point;  // the §4 baseline
  const auto report = [&](const char* label) {
    const core::Improvements gap = bench::nr_minus_edge(point);
    std::printf("%-18s %10.2f %12.2f %14.2f\n", label, gap.latency_pct,
                gap.congestion_pct, gap.origin_load_pct);
    return std::max({gap.latency_pct, gap.congestion_pct, gap.origin_load_pct});
  };

  report("Baseline");
  point.alpha = 0.1;
  report("Alpha*");
  point.spatial_skew = 1.0;
  report("Skew*");
  point.split = cache::BudgetSplit::Uniform;
  report("Budget-Dist*");
  point.budget_fraction = 0.02;
  const double best = report("Node-Budget*");

  std::printf("\nbest-case max gap across metrics: %.2f%%\n", best);
  std::printf("paper reference: the fully best-cased gap tops out around 17%%\n");
  return 0;
}
