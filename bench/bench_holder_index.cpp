// Microbench: the nearest-replica hot path (HolderIndex) under churn.
//
// Replays one deterministic, pre-generated operation sequence — zipf-skewed
// nearest() queries, capacity-style bounded candidate walks, and add/remove
// eviction churn — against BOTH the optimized HolderIndex and the
// pre-overhaul exhaustive-sort implementation (ReferenceHolderIndex), on an
// ATT-scale network. Defaults to 10^6 objects at IDICN_BENCH_SCALE=1.0 and
// scales down with it like every other bench. Both replays fold their serve
// decisions into a checksum that must match: the speedup is only meaningful
// if the two indexes return identical answers.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <random>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "core/holder_index.hpp"
#include "core/holder_index_reference.hpp"

namespace {

using namespace idicn;
using core::HolderIndex;
using core::ReferenceHolderIndex;
using topology::GlobalNodeId;

enum class OpKind : std::uint8_t { Add, Remove, Nearest, Walk };

struct Op {
  OpKind kind;
  std::uint32_t object;
  GlobalNodeId node;  ///< holder for Add/Remove, arrival leaf for queries
  double bound;       ///< origin cost bounding queries
};

struct OpSequence {
  std::vector<Op> populate;  ///< initial adds (zipf-skewed replica counts)
  std::vector<Op> churn;     ///< interleaved queries + add/remove churn
};

// Zipf-ish rank sampler: u^3 concentrates queries on hot (low-rank) objects,
// mirroring how the simulator hammers popular objects that are replicated in
// hundreds of caches.
std::uint32_t hot_rank(std::mt19937_64& rng, std::uint32_t objects) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double x = u(rng);
  return static_cast<std::uint32_t>(static_cast<double>(objects - 1) * x * x * x);
}

OpSequence generate_ops(const topology::HierarchicalNetwork& net,
                        std::uint32_t objects, std::uint64_t churn_ops) {
  std::mt19937_64 rng(0x401d37);
  OpSequence seq;

  // Replica counts follow a clamped zipf curve (hot objects are cached in
  // up to `cap` nodes, the tail in one), averaging a few replicas/object.
  // A flat (object, node) hash keeps generation linear in the pair count.
  const double c = 3.0 * static_cast<double>(objects) /
                   std::log(static_cast<double>(objects) + 2.0);
  const std::uint32_t cap =
      std::min<std::uint32_t>(2000, net.node_count() / 2);
  std::vector<std::vector<GlobalNodeId>> shadow(objects);
  std::unordered_set<std::uint64_t> members;
  const auto pair_key = [](std::uint32_t o, GlobalNodeId n) {
    return (static_cast<std::uint64_t>(o) << 32) | n;
  };
  for (std::uint32_t o = 0; o < objects; ++o) {
    const auto replicas = static_cast<std::uint32_t>(std::min<double>(
        cap, 1.0 + c / static_cast<double>(o + 1)));
    for (std::uint32_t i = 0; i < replicas; ++i) {
      const auto node = static_cast<GlobalNodeId>(rng() % net.node_count());
      if (!members.insert(pair_key(o, node)).second) continue;
      shadow[o].push_back(node);
      seq.populate.push_back(Op{OpKind::Add, o, node, 0.0});
    }
  }

  const auto random_leaf = [&]() {
    return net.leaf(static_cast<topology::PopId>(rng() % net.pop_count()),
                    static_cast<std::uint32_t>(rng() % net.tree().leaf_count()));
  };

  // Churn: 70% queries (3:1 nearest:walk, like an NR run with a capacity
  // phase), 30% eviction churn (paired remove+add keeps population stable).
  seq.churn.reserve(churn_ops + churn_ops / 3);
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    const std::uint32_t object = hot_rank(rng, objects);
    const int dice = static_cast<int>(rng() % 10);
    if (dice < 7) {
      const GlobalNodeId leaf = random_leaf();
      // Bound queries by the distance to a random origin pop's root — the
      // exact bound the simulator passes.
      const double bound = net.distance(
          leaf, net.pop_root(static_cast<topology::PopId>(rng() % net.pop_count())));
      seq.churn.push_back(
          Op{dice < 5 ? OpKind::Nearest : OpKind::Walk, object, leaf, bound});
    } else {
      auto& nodes = shadow[object];
      if (!nodes.empty()) {
        const std::size_t pick = rng() % nodes.size();
        seq.churn.push_back(Op{OpKind::Remove, object, nodes[pick], 0.0});
        members.erase(pair_key(object, nodes[pick]));
        nodes[pick] = nodes.back();
        nodes.pop_back();
      }
      const auto node = static_cast<GlobalNodeId>(rng() % net.node_count());
      if (members.insert(pair_key(object, node)).second) {
        shadow[object].push_back(node);
        seq.churn.push_back(Op{OpKind::Add, object, node, 0.0});
      }
    }
  }
  return seq;
}

struct Timing {
  double populate_s = 0.0;
  double churn_s = 0.0;
  std::uint64_t checksum = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// The capacity predicate: the two nearest candidates are "overloaded", the
// third in bound order serves — forcing a real (but short) ordered walk.
constexpr int kServeRank = 2;

template <typename Index>
Timing replay(const topology::HierarchicalNetwork& net, const OpSequence& seq) {
  Timing t;
  Index index(net);

  auto start = std::chrono::steady_clock::now();
  for (const Op& op : seq.populate) index.add(op.object, op.node);
  t.populate_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  for (const Op& op : seq.churn) {
    switch (op.kind) {
      case OpKind::Add:
        index.add(op.object, op.node);
        break;
      case OpKind::Remove:
        index.remove(op.object, op.node);
        break;
      case OpKind::Nearest: {
        const auto best = index.nearest(op.object, op.node);
        if (best && best->cost <= op.bound) {
          t.checksum = t.checksum * 1099511628211ULL + best->node;
        }
        break;
      }
      case OpKind::Walk: {
        int rank = 0;
        if constexpr (std::is_same_v<Index, HolderIndex>) {
          auto walk = index.walk(op.object, op.node, op.bound);
          while (const auto c = walk.next()) {
            if (rank++ == kServeRank) {
              t.checksum = t.checksum * 1099511628211ULL + c->node;
              break;
            }
          }
        } else {
          for (const auto& c : index.candidates_by_cost(op.object, op.node)) {
            if (c.cost > op.bound) break;
            if (rank++ == kServeRank) {
              t.checksum = t.checksum * 1099511628211ULL + c.node;
              break;
            }
          }
        }
        break;
      }
    }
  }
  t.churn_s = seconds_since(start);
  return t;
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const auto objects = static_cast<std::uint32_t>(
      std::max(20'000.0, 1e6 * scale));
  const auto churn_ops =
      static_cast<std::uint64_t>(std::max(100'000.0, 2e6 * scale));

  std::printf("== HolderIndex microbench: nearest-replica churn (ATT, k=2 d=5) ==\n\n");
  std::printf("objects %" PRIu32 ", churn ops %" PRIu64
              " (IDICN_BENCH_SCALE=%.3g; 1.0 = 10^6 objects)\n\n",
              objects, churn_ops, scale);

  const topology::HierarchicalNetwork net = bench::make_network("ATT");
  const OpSequence seq = generate_ops(net, objects, churn_ops);
  std::printf("replica pairs: %zu, churn sequence: %zu ops\n\n",
              seq.populate.size(), seq.churn.size());

  const Timing slow = replay<ReferenceHolderIndex>(net, seq);
  const Timing fast = replay<HolderIndex>(net, seq);

  const auto rate = [](std::size_t ops, double s) {
    return s > 0.0 ? static_cast<double>(ops) / s / 1e6 : 0.0;
  };
  std::printf("%-26s %14s %14s %10s\n", "phase", "reference", "optimized",
              "speedup");
  std::printf("%-26s %11.2f Mops %11.2f Mops %9.2fx\n", "populate (add)",
              rate(seq.populate.size(), slow.populate_s),
              rate(seq.populate.size(), fast.populate_s),
              slow.populate_s / fast.populate_s);
  std::printf("%-26s %11.2f Mops %11.2f Mops %9.2fx\n",
              "nearest-replica churn", rate(seq.churn.size(), slow.churn_s),
              rate(seq.churn.size(), fast.churn_s), slow.churn_s / fast.churn_s);
  std::printf("\nchecksums: reference %016" PRIx64 ", optimized %016" PRIx64 " — %s\n",
              slow.checksum, fast.checksum,
              slow.checksum == fast.checksum ? "identical serve decisions"
                                             : "MISMATCH (bug!)");
  return slow.checksum == fast.checksum ? 0 : 1;
}
