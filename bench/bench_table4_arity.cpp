// Table 4: effect of access-tree arity on the ICN-NR − EDGE gap.
//
// Sweeps arity ∈ {2, 4, 8, 64} while holding the per-tree leaf count fixed
// at 64 (adjusting the depth), as the paper does. The paper reports the
// percentage gap shrinking monotonically (10.3% → 1.8% on latency),
// explained by EDGE's total-budget share (k−1)/k approaching 1.
//
// Our steady-state methodology reproduces a sharper version of the paper's
// own thesis instead: the ABSOLUTE hop saving that pervasive caching buys
// over EDGE is essentially constant across arities (≈ the pop-root
// aggregation layer, which the arity sweep does not change), so the
// *percentage* gap — normalized by a no-cache baseline that shrinks as the
// tree flattens — drifts up rather than down. Deep interior levels add
// ≈ nothing at any arity, which is Figure 2's claim. Both views are
// printed; see EXPERIMENTS.md for the full discussion.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  const auto requests = static_cast<std::uint64_t>(1.8e6 * scale);
  const auto objects = static_cast<std::uint32_t>(
      std::max<double>(2000.0, static_cast<double>(requests) / 9.0));

  std::printf("== Table 4: NR-EDGE gap vs access-tree arity (ATT, 64 leaves/tree) ==\n\n");
  std::printf("%6s %6s | %12s %12s %12s | %12s %14s %12s\n", "arity", "depth",
              "lat-gap(%)", "cong-gap(%)", "orig-gap(%)", "base hops",
              "abs hops saved", "EDGE lat(%)");

  for (const unsigned arity : {2u, 4u, 8u, 64u}) {
    const topology::AccessTreeShape tree =
        topology::AccessTreeShape::with_leaf_count(arity, 64);
    const topology::HierarchicalNetwork network(topology::make_topology("ATT"), tree);
    core::SyntheticWorkloadSpec spec;
    spec.request_count = requests;
    spec.object_count = objects;
    spec.alpha = 1.04;
    spec.seed = 0xa51a;
    const core::BoundWorkload workload = core::bind_synthetic(network, spec);
    const core::OriginMap origins(network, objects,
                                  core::OriginAssignment::PopulationProportional,
                                  0x0419);
    core::SimulationConfig config;
    const core::ComparisonResult cmp = core::compare_designs(
        network, origins, {core::icn_nr(), core::edge()}, config, workload);
    const core::Improvements gap = cmp.gap(0, 1);
    const double base = cmp.baseline.mean_hops();
    const double saved = cmp.designs[1].metrics.mean_hops() -
                         cmp.designs[0].metrics.mean_hops();

    std::printf("%6u %6u | %12.2f %12.2f %12.2f | %12.2f %14.3f %12.2f\n", arity,
                tree.depth(), gap.latency_pct, gap.congestion_pct,
                gap.origin_load_pct, base, saved,
                cmp.designs[1].improvements.latency_pct);
  }
  std::printf("\npaper reference: percentage gap falls 10.3 -> 1.8 with arity\n"
              "(capacity-dominated regime); at steady state the ABSOLUTE saving is\n"
              "flat -- interior value is the arity-invariant pop-root layer.\n");
  return 0;
}
