// Figure 8(a): sensitivity of the ICN-NR − EDGE gap to the Zipf exponent.
//
// Sweeps α over the paper's range on the largest topology (AT&T). Paper's
// shape: the gap shrinks as α grows (popular objects concentrate at the
// edge), peaking around ~10% at low α and approaching zero past α ≈ 1.2.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  std::printf("== Figure 8(a): NR-EDGE gap vs Zipf alpha (ATT) ==\n\n");
  std::printf("%8s %10s %12s %14s\n", "alpha", "delay", "congestion", "origin-load");

  for (const double alpha : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}) {
    bench::SensitivityPoint point;
    point.alpha = alpha;
    const core::Improvements gap = bench::nr_minus_edge(point);
    std::printf("%8.1f %10.2f %12.2f %14.2f\n", alpha, gap.latency_pct,
                gap.congestion_pct, gap.origin_load_pct);
  }
  std::printf("\npaper reference: gap becomes less positive as alpha increases\n");
  return 0;
}
