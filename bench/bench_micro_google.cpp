// Google-benchmark microbenchmarks for the hot primitives: cache policies,
// Zipf sampling, SHA-256/signatures, nearest-replica queries, and the
// simulator's end-to-end request rate.
#include <benchmark/benchmark.h>

#include <random>

#include "cache/cache.hpp"
#include "core/experiment.hpp"
#include "crypto/lamport.hpp"
#include "crypto/sha256.hpp"
#include "topology/pop_topology.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace idicn;

void BM_CacheInsertLookup(benchmark::State& state) {
  const auto kind = static_cast<cache::PolicyKind>(state.range(0));
  auto cache = cache::make_cache(kind, 1000, 1);
  std::mt19937_64 rng(3);
  std::vector<cache::ObjectId> evicted;
  for (auto _ : state) {
    const auto object = static_cast<cache::ObjectId>(rng() % 10000);
    if (!cache->lookup(object)) {
      evicted.clear();
      cache->insert(object, 1, evicted);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)
    ->Arg(static_cast<int>(cache::PolicyKind::Lru))
    ->Arg(static_cast<int>(cache::PolicyKind::Lfu))
    ->Arg(static_cast<int>(cache::PolicyKind::Fifo))
    ->Arg(static_cast<int>(cache::PolicyKind::Random));

void BM_ZipfSample(benchmark::State& state) {
  const workload::ZipfDistribution zipf(static_cast<std::uint32_t>(state.range(0)),
                                        1.0);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_Sha256(benchmark::State& state) {
  const std::string message(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(message));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleSign(benchmark::State& state) {
  crypto::MerkleSigner signer(11, 12);  // 4096 signatures available
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.sign("message " + std::to_string(i++)));
    if (signer.remaining() == 0) state.SkipWithError("signer exhausted");
  }
}
BENCHMARK(BM_MerkleSign)->Iterations(256);

void BM_MerkleVerify(benchmark::State& state) {
  crypto::MerkleSigner signer(12, 4);
  const crypto::MerkleSignature signature = signer.sign("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::MerkleSigner::verify(signer.root(), "benchmark message", signature));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleVerify);

void BM_SimulatorRequestRate(benchmark::State& state) {
  const topology::HierarchicalNetwork network(topology::make_topology("Sprint"),
                                              topology::AccessTreeShape(2, 5));
  core::SyntheticWorkloadSpec spec;
  spec.request_count = 50'000;
  spec.object_count = 5'000;
  spec.alpha = 1.0;
  spec.seed = 9;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);
  const core::OriginMap origins(network, spec.object_count,
                                core::OriginAssignment::PopulationProportional, 3);
  core::SimulationConfig config;
  const core::DesignSpec design =
      state.range(0) == 0 ? core::edge() : core::icn_nr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_design(network, origins, design, config, workload));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(spec.request_count));
}
BENCHMARK(BM_SimulatorRequestRate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
