// Figure 8(b): sensitivity of the ICN-NR − EDGE gap to per-cache budget.
//
// Sweeps the per-router cache size (as a fraction of the object universe)
// over the paper's log range. Paper's shape: non-monotonic — tiny caches
// help nobody, a ~2% budget maximizes ICN-NR's advantage (~10%), and past
// ~10% the edge alone absorbs the workload and the gap collapses.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace idicn;
  std::printf("== Figure 8(b): NR-EDGE gap vs per-cache budget (ATT) ==\n\n");
  std::printf("%12s %10s %12s %14s\n", "budget-F", "delay", "congestion",
              "origin-load");

  for (const double fraction :
       {1e-5, 1e-4, 1e-3, 5e-3, 0.02, 0.05, 0.1, 0.3, 1.0}) {
    bench::SensitivityPoint point;
    point.budget_fraction = fraction;
    const core::Improvements gap = bench::nr_minus_edge(point);
    std::printf("%12g %10.2f %12.2f %14.2f\n", fraction, gap.latency_pct,
                gap.congestion_pct, gap.origin_load_pct);
  }
  std::printf("\npaper reference: non-monotonic, max ~10%% near F=2%%, collapsing "
              "for F > 10%%\n");
  return 0;
}
