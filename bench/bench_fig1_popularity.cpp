// Figure 1 + Table 2 inputs: request popularity distribution across the
// three CDN vantage points (US / Europe / Asia).
//
// Prints, per region, a down-sampled rank–frequency series (the log–log
// curve of Figure 1). The paper's visual takeaway — nearly linear on a
// log–log plot, i.e. Zipfian — shows as a near-constant slope column.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "workload/zipf_fit.hpp"

int main() {
  using namespace idicn;
  const double scale = bench::bench_scale();
  std::printf("== Figure 1: request popularity by region (scale %.3g) ==\n\n", scale);

  for (const workload::RegionProfile& profile :
       workload::paper_region_profiles(scale)) {
    const workload::Trace trace = workload::generate_trace(profile);
    std::vector<std::uint32_t> stream;
    stream.reserve(trace.requests.size());
    for (const workload::Request& r : trace.requests) stream.push_back(r.object);
    const std::vector<std::uint64_t> counts = workload::rank_frequencies(stream);

    std::printf("-- %s: %zu requests, %u objects (%zu requested) --\n",
                profile.name.c_str(), trace.requests.size(), trace.object_count,
                counts.size());
    std::printf("%12s %12s %14s %12s\n", "rank", "frequency", "log10(rank)",
                "log10(freq)");
    // Log-spaced sample of the rank–frequency curve.
    for (double exponent = 0.0;; exponent += 0.5) {
      const auto rank = static_cast<std::size_t>(std::pow(10.0, exponent));
      if (rank > counts.size()) break;
      const std::uint64_t freq = counts[rank - 1];
      if (freq == 0) break;
      std::printf("%12zu %12llu %14.3f %12.3f\n", rank,
                  static_cast<unsigned long long>(freq),
                  std::log10(static_cast<double>(rank)),
                  std::log10(static_cast<double>(freq)));
    }
    std::printf("\n");
  }
  std::printf("paper reference: each curve is almost linear on a log-log plot\n");
  return 0;
}
