// Quickstart: the library in ~40 lines.
//
// Builds the Abilene backbone with binary access trees, generates a Zipf
// workload, and compares edge caching against a full ICN (pervasive caches
// + nearest-replica routing) — the paper's headline experiment in
// miniature.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "topology/pop_topology.hpp"

int main() {
  using namespace idicn;

  // 1. Network: a real PoP-level backbone, each PoP rooting a binary
  //    access tree of depth 5 (the paper's baseline shape).
  topology::HierarchicalNetwork network(topology::make_abilene(),
                                        topology::AccessTreeShape(2, 5));

  // 2. Workload: 200k Zipf(1.0) requests over 20k objects, attached to
  //    PoPs by population and to leaves uniformly.
  core::SyntheticWorkloadSpec spec;
  spec.request_count = 200'000;
  spec.object_count = 20'000;
  spec.alpha = 1.0;
  spec.seed = 42;
  const core::BoundWorkload workload = core::bind_synthetic(network, spec);

  // 3. Origins: each PoP owns a population-proportional slice of objects.
  const core::OriginMap origins(network, spec.object_count,
                                core::OriginAssignment::PopulationProportional, 7);

  // 4. Compare designs (every run replays the identical request sequence).
  core::SimulationConfig config;  // F=5%, LRU, prefill+warmup steady state
  const core::ComparisonResult result = core::compare_designs(
      network, origins,
      {core::edge(), core::edge_coop(), core::edge_norm(), core::icn_sp(),
       core::icn_nr()},
      config, workload);

  std::printf("no-cache baseline: %.2f mean hops\n\n", result.baseline.mean_hops());
  std::printf("%-12s %10s %12s %12s %12s\n", "design", "latency%", "congestion%",
              "origin%", "hit-ratio");
  for (const core::DesignResult& r : result.designs) {
    std::printf("%-12s %10.2f %12.2f %12.2f %12.3f\n", r.design.name.c_str(),
                r.improvements.latency_pct, r.improvements.congestion_pct,
                r.improvements.origin_load_pct, r.metrics.cache_hit_ratio());
  }

  const core::Improvements gap = result.gap(4, 0);  // ICN-NR over EDGE
  std::printf("\nICN-NR buys only %.1f%% latency / %.1f%% congestion / %.1f%% origin\n"
              "load over plain edge caching -- the paper's point.\n",
              gap.latency_pct, gap.congestion_pct, gap.origin_load_pct);
  return 0;
}
