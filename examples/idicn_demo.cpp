// idICN end-to-end walkthrough — the paper's Figure 11 flow, narrated.
//
// Publishes content through a reverse proxy, auto-configures a client via
// WPAD, fetches by self-certifying name through the AD's edge proxy, shows
// the cache hit on re-fetch, and demonstrates that a tampering middlebox is
// caught by content-oriented verification.
//
//   $ ./examples/idicn_demo
#include <cstdio>

#include "idicn/client.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "idicn/wpad.hpp"

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;

  net::SimNet net;
  net::DnsService dns;

  // The publisher's long-lived hash-based key; its fingerprint is the P
  // component of every name this publisher registers.
  crypto::MerkleSigner publisher_key(2024, 6);

  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.publisher.example", "origin.publisher.example",
                             "nrs.idicn.org", &publisher_key);
  Proxy edge_proxy(&net, "cache.ad1.example", "nrs.idicn.org", &dns);
  WpadService wpad(PacFile::idicn_default("cache.ad1.example"));

  net.attach("nrs.idicn.org", &nrs);
  net.attach("origin.publisher.example", &origin);
  net.attach("rp.publisher.example", &reverse_proxy);
  net.attach("cache.ad1.example", &edge_proxy);
  net.attach("wpad.ad1", &wpad);
  dns.update("wpad.ad1", "wpad.ad1");

  std::printf("== idICN walkthrough ==\n\n");
  std::printf("publisher id (P): %s\n\n", reverse_proxy.publisher_id().c_str());

  // Steps P1–P2: the origin publishes through the reverse proxy.
  origin.put("headlines", "<html><h1>All the news</h1></html>", "text/html");
  const auto name = reverse_proxy.publish("headlines");
  if (!name) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  std::printf("[P1,P2] published %s\n", name->host().c_str());

  // Step 1: the client discovers its proxy automatically.
  Client client(&net, "laptop.ad1", &dns, Client::Options{/*verify_end_to_end=*/true});
  NetworkEnvironment env;
  env.dns_domain = "ad1";
  if (!client.auto_configure(env)) {
    std::fprintf(stderr, "WPAD discovery failed\n");
    return 1;
  }
  std::printf("[1]     WPAD configured the client to use cache.ad1.example\n");

  // Steps 2–7: fetch by name; proxy resolves, fetches, verifies, caches.
  const std::string url = "http://" + name->host() + "/";
  const auto first = client.get(url);
  std::printf("[2-7]   GET %s -> %d (%s), verified=%s\n", url.c_str(),
              first.response.status,
              first.response.headers.get("X-Cache").value_or("?").c_str(),
              first.verified ? "yes" : "no");

  const auto second = client.get(url);
  std::printf("[2,7]   GET again            -> %d (%s)  [served from the edge]\n",
              second.response.status,
              second.response.headers.get("X-Cache").value_or("?").c_str());

  // A tampering middlebox: flips bytes in transit. The client's
  // content-oriented verification catches it without trusting any channel.
  class Tamperer : public net::SimHost {
  public:
    explicit Tamperer(Proxy* upstream) : upstream_(upstream) {}
    net::HttpResponse handle_http(const net::HttpRequest& request,
                                  const net::Address& from) override {
      net::HttpResponse response = upstream_->handle_http(request, from);
      if (!response.body.empty()) response.body[0] ^= 0x20;
      response.headers.set("Content-Length", std::to_string(response.body.size()));
      return response;
    }
    Proxy* upstream_;
  } tamperer(&edge_proxy);
  net.attach("mitm.ad1", &tamperer);

  Client victim(&net, "victim.ad1", &dns, Client::Options{true});
  victim.configure(PacFile::idicn_default("mitm.ad1"));
  const auto attacked = victim.get(url);
  std::printf("[sec]   via tampering proxy  -> %d (%s)\n", attacked.response.status,
              attacked.verify_result
                  ? to_string(*attacked.verify_result)
                  : "no-verdict");

  std::printf("\nTotal: %llu messages, %llu bytes on the simulated wire.\n",
              static_cast<unsigned long long>(net.messages_sent()),
              static_cast<unsigned long long>(net.bytes_sent()));
  return attacked.response.status == 502 && second.verified ? 0 : 1;
}
