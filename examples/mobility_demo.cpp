// Mobility — §6.3: a large download survives the server moving twice.
//
// The mobile server announces each new address with a dynamic DNS update;
// the client downloads in byte ranges, re-resolves on connectivity loss,
// and resumes from its current offset under the same HTTP session.
//
//   $ ./examples/mobility_demo
#include <cstdio>

#include "idicn/mobility.hpp"

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;

  net::SimNet net;
  net::DnsService dns;

  MobileServer server(&net, &dns, "files.roaming.example", "addr-cafe");
  std::string payload;
  payload.reserve(64 * 1024);
  while (payload.size() < 64 * 1024) payload += "data-block-";
  server.put("/video.bin", payload);

  MobileClient client(&net, &dns, "tablet");
  std::printf("== Mobile download with dynamic DNS ==\n\n");
  std::printf("server starts at addr-cafe; file is %zu bytes\n\n", payload.size());

  client.between_chunks = [&](std::uint64_t offset) {
    if (offset == 16 * 1024) {
      std::printf("  [%6llu bytes] server moves: cafe -> train\n",
                  static_cast<unsigned long long>(offset));
      server.move_to("addr-train");
    }
    if (offset == 40 * 1024) {
      std::printf("  [%6llu bytes] server moves: train -> office\n",
                  static_cast<unsigned long long>(offset));
      server.move_to("addr-office");
    }
  };

  const auto result = client.download("files.roaming.example", "/video.bin", 4096);

  std::printf("\ndownload complete : %s\n", result.complete ? "yes" : "NO");
  std::printf("bytes             : %zu (intact: %s)\n", result.body.size(),
              result.body == payload ? "yes" : "NO");
  std::printf("chunks            : %u ranged requests\n", result.chunks);
  std::printf("server moves      : %llu (HTTP session '%s' survived them all)\n",
              static_cast<unsigned long long>(server.moves()),
              result.session_id.c_str());
  std::printf("final DNS record  : files.roaming.example -> %s\n",
              dns.resolve("files.roaming.example").value_or("?").c_str());
  return result.complete && result.body == payload ? 0 : 1;
}
