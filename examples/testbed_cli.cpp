// testbed_cli — stand up a real-socket PoP testbed and replay a workload.
//
// Every PoP of the chosen core topology (Abilene or Geant) becomes a live
// edge proxy behind its own runtime::ServerGroup on 127.0.0.1; a shared NRS
// and origin tier complete the deployment. The driver replays a synthetic
// Zipf workload through real HttpClients pinned to their home PoPs, with
// periodic digest/hint exchange between siblings when cooperation is on,
// then prints the metrics JSON followed by a simulator diff.
//
//   testbed_cli [--topology Abilene|Geant] [--requests N] [--objects N]
//               [--alpha A] [--cache-fraction F] [--no-coop]
//               [--ms-per-hop MS] [--ranged-fraction F] [--seed S]
//
// Example:
//   testbed_cli --topology Abilene --requests 2000 --objects 80
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/bound_workload.hpp"
#include "testbed/cluster.hpp"
#include "testbed/comparison.hpp"
#include "testbed/driver.hpp"
#include "testbed/metrics.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology Abilene|Geant] [--requests N] "
               "[--objects N] [--alpha A] [--cache-fraction F] [--no-coop] "
               "[--ms-per-hop MS] [--ranged-fraction F] [--seed S]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idicn;

  testbed::ClusterOptions cluster_options;
  cluster_options.cache_fraction = 0.10;
  testbed::DriverOptions driver_options;
  driver_options.request_count = 2'000;

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (std::strcmp(flag, "--no-coop") == 0) {
      cluster_options.cooperation = false;
    } else if (std::strcmp(flag, "--topology") == 0 && (value = next())) {
      cluster_options.topology = value;
    } else if (std::strcmp(flag, "--requests") == 0 && (value = next())) {
      driver_options.request_count = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(flag, "--objects") == 0 && (value = next())) {
      cluster_options.object_count =
          static_cast<std::uint32_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(flag, "--alpha") == 0 && (value = next())) {
      driver_options.alpha = std::strtod(value, nullptr);
    } else if (std::strcmp(flag, "--cache-fraction") == 0 && (value = next())) {
      cluster_options.cache_fraction = std::strtod(value, nullptr);
    } else if (std::strcmp(flag, "--ms-per-hop") == 0 && (value = next())) {
      cluster_options.ms_per_hop = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(flag, "--ranged-fraction") == 0 && (value = next())) {
      driver_options.ranged_fraction = std::strtod(value, nullptr);
    } else if (std::strcmp(flag, "--seed") == 0 && (value = next())) {
      cluster_options.seed = std::strtoull(value, nullptr, 10);
      driver_options.seed = cluster_options.seed;
    } else {
      return usage(argv[0]);
    }
  }

  std::printf("starting %s testbed: %u objects, cooperation %s...\n",
              cluster_options.topology.c_str(), cluster_options.object_count,
              cluster_options.cooperation ? "on" : "off");

  testbed::Cluster cluster(cluster_options);
  std::printf("%u PoPs live:", cluster.pop_count());
  for (topology::PopId p = 0; p < cluster.pop_count(); ++p) {
    std::printf(" %s:%u", cluster.pop_name(p).c_str(), cluster.proxy_port(p));
  }
  std::printf("\n");

  testbed::TraceDriver driver(cluster, driver_options);
  const core::BoundWorkload workload = driver.bind();
  std::printf("replaying %zu requests...\n", workload.requests.size());
  const testbed::TestbedMetrics metrics = driver.run(workload);

  std::printf("%s\n", metrics.to_json().c_str());
  const testbed::ComparisonResult comparison =
      testbed::compare_with_simulator(cluster, workload, metrics);
  std::printf("simulator diff — %s\n", comparison.summary().c_str());
  return metrics.errors == 0 ? 0 : 1;
}
