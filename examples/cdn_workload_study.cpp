// CDN workload study: reconstruct the paper's three regional request logs,
// verify their Zipf fits (Table 2), and measure how the caching-design gap
// varies with the region's exponent on a large ISP topology.
//
//   $ ./examples/cdn_workload_study [scale]     (default scale 0.02)
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "topology/pop_topology.hpp"
#include "workload/synthetic_cdn.hpp"
#include "workload/zipf_fit.hpp"

int main(int argc, char** argv) {
  using namespace idicn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "usage: %s [scale in (0,1]]\n", argv[0]);
    return 1;
  }

  const topology::HierarchicalNetwork network(topology::make_topology("Level3"),
                                              topology::AccessTreeShape(2, 5));

  std::printf("%-8s %10s %8s %8s | %12s %12s %10s\n", "region", "requests",
              "alpha", "fit", "EDGE lat%", "ICN-NR lat%", "gap");
  for (const workload::RegionProfile& profile :
       workload::paper_region_profiles(scale)) {
    const workload::Trace trace = workload::generate_trace(profile);

    // Fit the exponent back from the trace (the Table-2 task).
    std::vector<std::uint32_t> stream;
    stream.reserve(trace.requests.size());
    for (const workload::Request& r : trace.requests) stream.push_back(r.object);
    const double fitted = workload::fit_zipf_mle(workload::rank_frequencies(stream));

    // Replay through the simulator.
    const core::BoundWorkload workload_bound = core::bind_trace(network, trace, 99);
    const core::OriginMap origins(network, trace.object_count,
                                  core::OriginAssignment::PopulationProportional, 7);
    core::SimulationConfig config;
    const core::ComparisonResult cmp = core::compare_designs(
        network, origins, {core::edge(), core::icn_nr()}, config, workload_bound);

    std::printf("%-8s %10zu %8.2f %8.3f | %12.2f %12.2f %10.2f\n",
                profile.name.c_str(), trace.requests.size(), profile.alpha, fitted,
                cmp.designs[0].improvements.latency_pct,
                cmp.designs[1].improvements.latency_pct,
                cmp.gap(1, 0).latency_pct);
  }
  std::printf("\nHigher-alpha regions concentrate their popularity, so edge caches\n"
              "capture more and the residual value of full ICN shrinks.\n");
  return 0;
}
