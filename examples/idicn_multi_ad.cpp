// Multi-AD idICN deployment — the prototype and the simulator telling the
// same story.
//
// Builds four administrative domains, each with its own WPAD-configured
// edge proxy (pairs of ADs cooperate ICP-style), one publisher behind a
// far-away reverse proxy, and a shared name resolution consortium. Per-AD
// clients replay Zipf streams; the printed per-AD hit ratios approximate
// Che's analytic LRU prediction — the same edge-caching arithmetic the
// request-level simulator uses at ISP scale (§4's point, reproduced at the
// application layer).
//
//   $ ./examples/idicn_multi_ad
#include <cstdio>
#include <memory>
#include <random>

#include "analysis/che_approximation.hpp"
#include "idicn/client.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "idicn/wpad.hpp"
#include "workload/zipf.hpp"

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;

  constexpr int kAds = 4;
  constexpr int kCatalog = 400;
  constexpr int kRequestsPerAd = 4000;
  constexpr double kAlpha = 0.9;
  constexpr std::uint64_t kProxyBytes = 30'000;  // forces eviction pressure

  net::SimNet net;
  net.set_default_latency_ms(2);
  net.set_latency_ms("rp.pub", 35);  // the publisher is far from every AD

  net::DnsService dns;
  crypto::MerkleSigner signer(0xad5, 10);
  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.pub", "origin.pub", "nrs", &signer);
  net.attach("nrs", &nrs);
  net.attach("origin.pub", &origin);
  net.attach("rp.pub", &reverse_proxy);

  // One proxy per AD; ADs 0/1 and 2/3 cooperate pairwise.
  std::vector<std::unique_ptr<Proxy>> proxies;
  for (int ad = 0; ad < kAds; ++ad) {
    const std::string address = "cache.ad" + std::to_string(ad);
    proxies.push_back(std::make_unique<Proxy>(
        &net, address, "nrs", &dns, Proxy::Options{kProxyBytes, 3'600'000, true}));
    net.attach(address, proxies.back().get());
  }
  proxies[0]->add_peer("cache.ad1");
  proxies[1]->add_peer("cache.ad0");
  proxies[2]->add_peer("cache.ad3");
  proxies[3]->add_peer("cache.ad2");

  // Publish the catalog (~150 bytes per object).
  std::vector<std::string> hosts;
  for (int i = 0; i < kCatalog; ++i) {
    const std::string label = "item-" + std::to_string(i);
    origin.put(label, "body-" + std::to_string(i) + std::string(140, 'd'));
    const auto name = reverse_proxy.publish(label);
    if (!name) return 1;
    hosts.push_back(name->host());
  }

  // Per-AD clients, auto-configured through their AD's WPAD.
  std::vector<std::unique_ptr<WpadService>> wpads;
  std::vector<std::unique_ptr<Client>> clients;
  for (int ad = 0; ad < kAds; ++ad) {
    wpads.push_back(
        std::make_unique<WpadService>(PacFile::idicn_default("cache.ad" + std::to_string(ad))));
    net.attach("wpad.ad" + std::to_string(ad), wpads.back().get());
    dns.update("wpad.ad" + std::to_string(ad), "wpad.ad" + std::to_string(ad));
    clients.push_back(std::make_unique<Client>(
        &net, "host.ad" + std::to_string(ad), &dns));
    NetworkEnvironment env;
    env.dns_domain = "ad" + std::to_string(ad);
    if (!clients.back()->auto_configure(env)) return 1;
  }

  // Replay interleaved Zipf streams.
  const workload::ZipfDistribution zipf(kCatalog, kAlpha);
  std::mt19937_64 rng(99);
  int failures = 0;
  for (int round = 0; round < kRequestsPerAd; ++round) {
    for (int ad = 0; ad < kAds; ++ad) {
      const auto result =
          clients[static_cast<std::size_t>(ad)]->get("http://" + hosts[zipf.sample(rng) - 1] + "/");
      failures += result.response.status != 200;
    }
  }

  // Compare against Che's prediction for an LRU cache of this byte budget.
  std::vector<double> popularity(kCatalog);
  for (int rank = 1; rank <= kCatalog; ++rank) {
    popularity[rank - 1] = zipf.probability(static_cast<std::uint32_t>(rank));
  }
  const double slots = static_cast<double>(kProxyBytes) / 150.0;  // ≈ objects that fit
  const double predicted = analysis::che_lru(popularity, slots).hit_ratio;

  std::printf("== Four-AD idICN deployment ==\n");
  std::printf("catalog %d objects, %d requests/AD, Zipf alpha %.1f, proxy %llu bytes\n\n",
              kCatalog, kRequestsPerAd, kAlpha,
              static_cast<unsigned long long>(kProxyBytes));
  std::printf("%-6s %10s %10s %10s %12s %14s\n", "AD", "hits", "misses", "peer-hits",
              "hit-ratio", "evictions");
  for (int ad = 0; ad < kAds; ++ad) {
    const Proxy::Stats& s = proxies[static_cast<std::size_t>(ad)]->stats();
    const double ratio =
        static_cast<double>(s.hits) / static_cast<double>(s.hits + s.misses);
    std::printf("%-6d %10llu %10llu %10llu %11.1f%% %14llu\n", ad,
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.peer_hits), ratio * 100,
                static_cast<unsigned long long>(s.evictions));
  }
  std::printf("\nChe approximation predicts %.1f%% for an LRU cache of ~%.0f objects\n",
              predicted * 100, slots);
  std::printf("failures: %d\n", failures);
  std::printf("\nEach AD gets its edge-cache benefit independently (and a little\n"
              "more from its one cooperating peer) -- no router support, no\n"
              "global adoption required.\n");
  return failures == 0 ? 0 : 1;
}
