// idicn_serve: the §6 prototype on real TCP ports, for stock HTTP clients.
//
// Boots a complete single-AD idICN deployment in one process — consortium
// NRS, publisher origin + reverse proxy, and an AD edge proxy — each on
// its own loopback port behind a runtime::HostServer, publishes a few
// demo objects, and prints ready-to-paste curl commands.
//
// The edge proxy runs `workers` reactor threads (multi-reactor
// ServerGroup with a matching number of content-store lock stripes).
// SIGINT/SIGTERM triggers an ordered graceful shutdown: stop accepting,
// drain in-flight requests (bounded grace period), stop the workers.
//
// Usage: idicn_serve [proxy_port] [workers]
//   proxy_port  default 8642; 0 = ephemeral
//   workers     default $IDICN_SERVE_WORKERS or 1
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "runtime/host_server.hpp"
#include "runtime/socket_net.hpp"

namespace {
std::atomic<bool> interrupted{false};
void on_signal(int) { interrupted.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace idicn;
  using namespace ::idicn::idicn;

  std::uint16_t proxy_port = 8642;
  if (argc > 1) proxy_port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  std::size_t workers = 1;
  if (const char* env = std::getenv("IDICN_SERVE_WORKERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) workers = static_cast<std::size_t>(parsed);
  }
  if (argc > 2) {
    const int parsed = std::atoi(argv[2]);
    if (parsed > 0) workers = static_cast<std::size_t>(parsed);
  }

  runtime::SocketNet net;
  net::DnsService dns;
  crypto::MerkleSigner signer(20130812, 8);  // SIGCOMM'13 vintage seed
  NameResolutionSystem nrs(&dns);
  OriginServer origin;
  ReverseProxy reverse_proxy(&net, "rp.pub", "origin.pub", "nrs.consortium",
                             &signer);
  Proxy::Options proxy_options;
  proxy_options.cache_shards = workers;  // one lock stripe per reactor
  Proxy proxy(&net, "cache.ad1", "nrs.consortium", &dns, proxy_options);

  runtime::HostServer::Options server_options;
  server_options.workers = workers;

  runtime::HostServer nrs_server(&nrs, "nrs.consortium");
  runtime::HostServer origin_server(&origin, "origin.pub");
  runtime::HostServer rp_server(&reverse_proxy, "rp.pub");
  runtime::HostServer proxy_server(&proxy, "cache.ad1", server_options);
  try {
    nrs_server.start();
    origin_server.start();
    rp_server.start();
    proxy_server.start(proxy_port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "startup failed: %s\n", e.what());
    return 1;
  }
  net.register_endpoint(nrs_server);
  net.register_endpoint(origin_server);
  net.register_endpoint(rp_server);
  net.register_endpoint(proxy_server);

  // Publish demo content.
  struct Object {
    const char* label;
    const char* body;
  };
  const std::vector<Object> catalog = {
      {"hello", "Hello from an incrementally deployable ICN.\n"},
      {"paper", "Less pain, most of the gain. SIGCOMM 2013.\n"},
      {"readme", "Names are L.P.idicn.org; P certifies the publisher key.\n"},
  };
  std::vector<std::string> hosts;
  for (const auto& object : catalog) {
    // The servers are live: the origin and reverse proxy belong to their
    // worker threads, so publish on those threads via run_on_loop.
    origin_server.run_on_loop([&] { origin.put(object.label, object.body); });
    std::optional<SelfCertifyingName> name;
    rp_server.run_on_loop([&] { name = reverse_proxy.publish(object.label); });
    if (!name) {
      std::fprintf(stderr, "publish failed for %s\n", object.label);
      return 1;
    }
    hosts.push_back(name->host());
  }

  std::printf("idICN deployment is up (single AD, loopback):\n");
  std::printf("  NRS            127.0.0.1:%u\n", nrs_server.port());
  std::printf("  origin server  127.0.0.1:%u\n", origin_server.port());
  std::printf("  reverse proxy  127.0.0.1:%u\n", rp_server.port());
  std::printf("  edge proxy     127.0.0.1:%u   <- point your client here\n",
              proxy_server.port());
  std::printf("                 %zu worker(s), %s\n\n",
              proxy_server.worker_count(),
              proxy_server.using_reuseport() ? "SO_REUSEPORT"
                                             : "single acceptor");
  std::printf("Fetch by self-certifying name through the proxy:\n");
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::printf("  curl -x http://127.0.0.1:%u \"http://%s/\"   # %s\n",
                proxy_server.port(), hosts[i].c_str(), catalog[i].label);
  }
  std::printf(
      "\nRepeat a fetch and watch X-Cache flip MISS -> HIT (curl -v).\n"
      "Add -H \"X-IdICN-Want-Metadata: 1\" to receive the publisher key and\n"
      "one-time signature for end-to-end verification.\n"
      "Resolve a name directly against the NRS:\n"
      "  curl \"http://127.0.0.1:%u/resolve?name=%s\"\n\nCtrl-C to stop.\n",
      nrs_server.port(), hosts[0].c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (!interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  // Ordered graceful shutdown (ServerGroup::stop): each server stops
  // accepting, drains in-flight requests up to its drain deadline, then
  // stops and joins its workers — front of the chain first so upstream
  // servers stay reachable while the proxy drains.
  std::printf("\ndraining in-flight requests...\n");
  std::fflush(stdout);
  proxy_server.stop();
  rp_server.stop();
  origin_server.stop();
  nrs_server.stop();

  const auto stats = proxy_server.stats();
  std::printf("shut down cleanly: %llu connections, %llu requests served\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_served));
  return 0;
}
