// Deployment planner — the §7 "when is it viable to deploy a cache"
// question, answered with the library's analytic tools.
//
// For each PoP of a topology: estimate the local request rate (population
// share of a daily trace), predict the edge cache's hit ratio with Che's
// LRU approximation, and compare yearly transit savings against amortized
// hardware + operating costs. Prints the viability frontier.
//
//   $ ./examples/deployment_planner [topology] [daily-requests-millions]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/che_approximation.hpp"
#include "analysis/economics.hpp"
#include "topology/pop_topology.hpp"
#include "workload/zipf.hpp"

int main(int argc, char** argv) {
  using namespace idicn;
  const std::string topology_name = argc > 1 ? argv[1] : "Level3";
  const double daily_requests = (argc > 2 ? std::atof(argv[2]) : 50.0) * 1e6;

  constexpr std::uint32_t kObjects = 200'000;
  constexpr double kAlpha = 1.04;             // Asia-trace fit
  constexpr double kCacheFraction = 0.05;     // F = 5%
  constexpr double kMeanObjectBytes = 800e3;  // mixed web/video content

  const topology::Graph graph = topology::make_topology(topology_name);
  const double total_population = graph.total_population();

  // Predicted hit ratio of an F·O-object LRU cache under the Zipf workload
  // (identical at every PoP, since popularity is shared).
  const workload::ZipfDistribution zipf(kObjects, kAlpha);
  std::vector<double> popularity(kObjects);
  for (std::uint32_t rank = 1; rank <= kObjects; ++rank) {
    popularity[rank - 1] = zipf.probability(rank);
  }
  const analysis::CheResult che =
      analysis::che_lru(popularity, kCacheFraction * kObjects);

  analysis::CacheCostModel costs;  // defaults documented in economics.hpp
  const double break_even =
      analysis::break_even_requests_per_day(costs, che.hit_ratio, kMeanObjectBytes);

  std::printf("== Edge-cache deployment plan: %s ==\n", topology_name.c_str());
  std::printf("workload: %.0fM requests/day, Zipf(%.2f) over %u objects\n",
              daily_requests / 1e6, kAlpha, kObjects);
  std::printf("cache: F=%.0f%% -> predicted LRU hit ratio %.1f%% (Che approximation)\n",
              kCacheFraction * 100, che.hit_ratio * 100);
  std::printf("economics: $%.0f capex / %.0fy + $%.0f/y opex vs $%.3f/GB transit\n",
              costs.hardware_cost, costs.lifetime_years, costs.opex_per_year,
              costs.transit_cost_per_gb);
  std::printf("break-even: %.0f requests/day per cache site\n\n", break_even);

  std::printf("%-22s %12s %14s %12s %10s\n", "PoP", "pop-share", "requests/day",
              "savings/y", "viable?");
  int viable_count = 0;
  for (topology::NodeId n = 0; n < graph.node_count(); ++n) {
    const double share = graph.node(n).population / total_population;
    const double pop_requests = share * daily_requests;
    const double savings =
        analysis::yearly_savings(costs, pop_requests, che.hit_ratio, kMeanObjectBytes);
    const bool ok =
        analysis::viable(costs, pop_requests, che.hit_ratio, kMeanObjectBytes);
    viable_count += ok;
    if (n < 12 || ok) {  // keep the listing short: head + all viable sites
      std::printf("%-22s %11.2f%% %14.0f %11.0f$ %10s\n", graph.node(n).name.c_str(),
                  share * 100, pop_requests, savings, ok ? "YES" : "no");
    }
  }
  std::printf("\n%d of %zu PoPs clear the paper's \"profitable within the\n"
              "hardware lifetime\" bar at this traffic level.\n",
              viable_count, graph.node_count());
  return 0;
}
