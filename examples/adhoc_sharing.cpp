// Ad hoc sharing — the paper's §6.2 airplane scenario.
//
// Alice and Bob sit on a plane with no network infrastructure: no DHCP, no
// DNS, no internet. Alice's browser cache has the CNN front page from
// before boarding. Both devices self-assign link-local addresses; Alice's
// ad hoc proxy announces "cnn.com" over mDNS; Bob's fallback resolver finds
// her and his GET is served from her browser cache.
//
//   $ ./examples/adhoc_sharing
#include <cstdio>

#include "idicn/adhoc.hpp"

int main() {
  using namespace idicn;
  using namespace ::idicn::idicn;

  net::SimNet cabin;  // the airplane's isolated link

  std::printf("== Ad hoc sharing (no infrastructure) ==\n\n");

  AdHocNode alice(&cabin, "alice-phone");
  AdHocNode bob(&cabin, "bob-laptop");
  std::printf("alice-phone  self-assigned %s\n", alice.address().c_str());
  std::printf("bob-laptop   self-assigned %s\n\n", bob.address().c_str());

  alice.browser_cache().put("http://cnn.com/",
                            "<html><h1>CNN headlines (cached at the gate)</h1></html>");
  alice.browser_cache().put("http://cnn.com/weather", "<html>Sunny at 35k ft</html>");
  std::printf("alice's browser cache publishes: ");
  for (const std::string& domain : alice.browser_cache().domains()) {
    std::printf("%s ", domain.c_str());
  }
  std::printf("(over mDNS)\n\n");

  // Bob types cnn.com. His DNS lookup has no server to contact, so the name
  // switching service falls back to multicast DNS.
  const auto resolved = bob.mdns_resolve("cnn.com");
  if (!resolved) {
    std::fprintf(stderr, "mDNS found nobody serving cnn.com\n");
    return 1;
  }
  std::printf("bob: mDNS resolved cnn.com -> %s\n", resolved->c_str());

  const net::HttpResponse page = bob.fetch("http://cnn.com/");
  std::printf("bob: GET http://cnn.com/ -> %d, served by '%s'\n", page.status,
              page.headers.get("X-AdHoc-Source").value_or("?").c_str());
  std::printf("     %s\n\n", page.body.c_str());

  // A page Alice never cached stays unreachable — no magic, just her cache.
  const net::HttpResponse missing = bob.fetch("http://cnn.com/sports");
  std::printf("bob: GET http://cnn.com/sports -> %d (not in alice's cache)\n",
              missing.status);

  const net::HttpResponse other = bob.fetch("http://nytimes.com/");
  std::printf("bob: GET http://nytimes.com/ -> %d (nobody publishes it)\n",
              other.status);
  return page.status == 200 ? 0 : 1;
}
