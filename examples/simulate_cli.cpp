// simulate_cli — run a custom caching-design experiment from the command
// line, no C++ required. The knobs mirror the paper's §4–§5 configuration
// space.
//
//   $ ./examples/simulate_cli --topology ATT --alpha 1.04 --budget 0.05 \
//         --requests 100000 --objects 11000 --skew 0 --arity 2 --depth 5 \
//         --designs ICN-SP,ICN-NR,EDGE,EDGE-Coop,EDGE-Norm
//
// Prints the improvement of every requested design over the no-cache
// baseline on the paper's three metrics.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "topology/pop_topology.hpp"

namespace {

using namespace idicn;

core::DesignSpec design_by_name(const std::string& name) {
  if (name == "ICN-SP") return core::icn_sp();
  if (name == "ICN-NR") return core::icn_nr();
  if (name == "ICN-SP-LCD") return core::icn_sp_lcd();
  if (name == "EDGE") return core::edge();
  if (name == "EDGE-Coop") return core::edge_coop();
  if (name == "EDGE-Norm") return core::edge_norm();
  if (name == "2-Levels") return core::two_levels();
  if (name == "2-Levels-Coop") return core::two_levels_coop();
  if (name == "Norm-Coop") return core::norm_coop();
  if (name == "Double-Budget-Coop") return core::double_budget_coop();
  throw std::invalid_argument("unknown design: " + name);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --topology NAME     Abilene|Geant|Telstra|Sprint|Verio|Tiscali|Level3|ATT\n"
      "  --alpha A           Zipf exponent (default 1.04)\n"
      "  --skew S            spatial skew in [0,1] (default 0)\n"
      "  --budget F          per-router budget fraction (default 0.05)\n"
      "  --requests N        request count (default 100000)\n"
      "  --objects N         object universe (default requests/9)\n"
      "  --arity K --depth D access-tree shape (default 2, 5)\n"
      "  --split uniform|proportional   budget split (default proportional)\n"
      "  --seed N            workload seed (default 42)\n"
      "  --designs A,B,...   comma-separated design names\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) usage(argv[0]);
    options[argv[i] + 2] = argv[i + 1];
  }
  if (argc % 2 == 0) usage(argv[0]);

  const auto get = [&options](const char* key, const std::string& fallback) {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  };

  try {
    const std::string topology_name = get("topology", "ATT");
    const double alpha = std::stod(get("alpha", "1.04"));
    const double skew = std::stod(get("skew", "0"));
    const double budget = std::stod(get("budget", "0.05"));
    const auto requests = static_cast<std::uint64_t>(std::stoull(get("requests", "100000")));
    const auto objects = static_cast<std::uint32_t>(
        std::stoull(get("objects", std::to_string(std::max<std::uint64_t>(1000, requests / 9)))));
    const unsigned arity = static_cast<unsigned>(std::stoul(get("arity", "2")));
    const unsigned depth = static_cast<unsigned>(std::stoul(get("depth", "5")));
    const std::uint64_t seed = std::stoull(get("seed", "42"));
    const std::string split_name = get("split", "proportional");

    std::vector<core::DesignSpec> designs;
    std::stringstream list(get("designs", "ICN-SP,ICN-NR,EDGE,EDGE-Coop,EDGE-Norm"));
    std::string item;
    while (std::getline(list, item, ',')) designs.push_back(design_by_name(item));

    const topology::HierarchicalNetwork network(
        topology::make_topology(topology_name), topology::AccessTreeShape(arity, depth));
    core::SyntheticWorkloadSpec spec;
    spec.request_count = requests;
    spec.object_count = objects;
    spec.alpha = alpha;
    spec.spatial_skew = skew;
    spec.seed = seed;
    const core::BoundWorkload workload = core::bind_synthetic(network, spec);

    core::SimulationConfig config;
    config.budget_fraction = budget;
    config.split = split_name == "uniform" ? cache::BudgetSplit::Uniform
                                           : cache::BudgetSplit::PopulationProportional;
    const core::OriginMap origins(network, objects,
                                  core::OriginAssignment::PopulationProportional,
                                  seed ^ 0x0419);

    const core::ComparisonResult cmp =
        core::compare_designs(network, origins, designs, config, workload);

    std::printf("topology=%s arity=%u depth=%u alpha=%.2f skew=%.2f F=%.3g "
                "requests=%llu objects=%u split=%s\n",
                topology_name.c_str(), arity, depth, alpha, skew, budget,
                static_cast<unsigned long long>(requests), objects,
                split_name.c_str());
    std::printf("no-cache baseline: %.3f mean hops, max-link %llu, max-origin %llu\n\n",
                cmp.baseline.mean_hops(),
                static_cast<unsigned long long>(cmp.baseline.max_link_transfers),
                static_cast<unsigned long long>(cmp.baseline.max_origin_served));
    std::printf("%-20s %10s %12s %12s %10s\n", "design", "latency%", "congestion%",
                "origin%", "hit-ratio");
    for (const core::DesignResult& r : cmp.designs) {
      std::printf("%-20s %10.2f %12.2f %12.2f %10.3f\n", r.design.name.c_str(),
                  r.improvements.latency_pct, r.improvements.congestion_pct,
                  r.improvements.origin_load_pct, r.metrics.cache_hit_ratio());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
