# Empty compiler generated dependencies file for adhoc_sharing.
# This may be replaced when dependencies are built.
