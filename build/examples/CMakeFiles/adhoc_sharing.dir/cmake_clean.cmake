file(REMOVE_RECURSE
  "CMakeFiles/adhoc_sharing.dir/adhoc_sharing.cpp.o"
  "CMakeFiles/adhoc_sharing.dir/adhoc_sharing.cpp.o.d"
  "adhoc_sharing"
  "adhoc_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
