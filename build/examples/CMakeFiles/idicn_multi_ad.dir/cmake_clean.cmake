file(REMOVE_RECURSE
  "CMakeFiles/idicn_multi_ad.dir/idicn_multi_ad.cpp.o"
  "CMakeFiles/idicn_multi_ad.dir/idicn_multi_ad.cpp.o.d"
  "idicn_multi_ad"
  "idicn_multi_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_multi_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
