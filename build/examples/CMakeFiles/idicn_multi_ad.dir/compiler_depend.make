# Empty compiler generated dependencies file for idicn_multi_ad.
# This may be replaced when dependencies are built.
