# Empty dependencies file for mobility_demo.
# This may be replaced when dependencies are built.
