# Empty compiler generated dependencies file for idicn_demo.
# This may be replaced when dependencies are built.
