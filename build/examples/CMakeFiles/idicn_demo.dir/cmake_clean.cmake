file(REMOVE_RECURSE
  "CMakeFiles/idicn_demo.dir/idicn_demo.cpp.o"
  "CMakeFiles/idicn_demo.dir/idicn_demo.cpp.o.d"
  "idicn_demo"
  "idicn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
