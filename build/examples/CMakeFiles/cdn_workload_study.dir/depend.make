# Empty dependencies file for cdn_workload_study.
# This may be replaced when dependencies are built.
