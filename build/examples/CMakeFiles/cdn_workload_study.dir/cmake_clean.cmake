file(REMOVE_RECURSE
  "CMakeFiles/cdn_workload_study.dir/cdn_workload_study.cpp.o"
  "CMakeFiles/cdn_workload_study.dir/cdn_workload_study.cpp.o.d"
  "cdn_workload_study"
  "cdn_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
