
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/idicn_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/idicn_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/http_message.cpp" "src/net/CMakeFiles/idicn_net.dir/http_message.cpp.o" "gcc" "src/net/CMakeFiles/idicn_net.dir/http_message.cpp.o.d"
  "/root/repo/src/net/sim_net.cpp" "src/net/CMakeFiles/idicn_net.dir/sim_net.cpp.o" "gcc" "src/net/CMakeFiles/idicn_net.dir/sim_net.cpp.o.d"
  "/root/repo/src/net/uri.cpp" "src/net/CMakeFiles/idicn_net.dir/uri.cpp.o" "gcc" "src/net/CMakeFiles/idicn_net.dir/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
