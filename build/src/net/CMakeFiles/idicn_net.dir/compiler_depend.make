# Empty compiler generated dependencies file for idicn_net.
# This may be replaced when dependencies are built.
