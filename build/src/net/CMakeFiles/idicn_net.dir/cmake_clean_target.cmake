file(REMOVE_RECURSE
  "libidicn_net.a"
)
