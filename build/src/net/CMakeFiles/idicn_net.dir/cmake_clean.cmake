file(REMOVE_RECURSE
  "CMakeFiles/idicn_net.dir/dns.cpp.o"
  "CMakeFiles/idicn_net.dir/dns.cpp.o.d"
  "CMakeFiles/idicn_net.dir/http_message.cpp.o"
  "CMakeFiles/idicn_net.dir/http_message.cpp.o.d"
  "CMakeFiles/idicn_net.dir/sim_net.cpp.o"
  "CMakeFiles/idicn_net.dir/sim_net.cpp.o.d"
  "CMakeFiles/idicn_net.dir/uri.cpp.o"
  "CMakeFiles/idicn_net.dir/uri.cpp.o.d"
  "libidicn_net.a"
  "libidicn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
