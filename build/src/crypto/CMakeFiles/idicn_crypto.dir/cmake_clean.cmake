file(REMOVE_RECURSE
  "CMakeFiles/idicn_crypto.dir/base32.cpp.o"
  "CMakeFiles/idicn_crypto.dir/base32.cpp.o.d"
  "CMakeFiles/idicn_crypto.dir/hex.cpp.o"
  "CMakeFiles/idicn_crypto.dir/hex.cpp.o.d"
  "CMakeFiles/idicn_crypto.dir/hmac.cpp.o"
  "CMakeFiles/idicn_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/idicn_crypto.dir/lamport.cpp.o"
  "CMakeFiles/idicn_crypto.dir/lamport.cpp.o.d"
  "CMakeFiles/idicn_crypto.dir/sha256.cpp.o"
  "CMakeFiles/idicn_crypto.dir/sha256.cpp.o.d"
  "libidicn_crypto.a"
  "libidicn_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
