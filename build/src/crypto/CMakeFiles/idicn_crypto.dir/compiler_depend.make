# Empty compiler generated dependencies file for idicn_crypto.
# This may be replaced when dependencies are built.
