file(REMOVE_RECURSE
  "libidicn_crypto.a"
)
