# Empty compiler generated dependencies file for idicn_topology.
# This may be replaced when dependencies are built.
