file(REMOVE_RECURSE
  "CMakeFiles/idicn_topology.dir/access_tree.cpp.o"
  "CMakeFiles/idicn_topology.dir/access_tree.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/graph.cpp.o"
  "CMakeFiles/idicn_topology.dir/graph.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/network.cpp.o"
  "CMakeFiles/idicn_topology.dir/network.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/pop_topology.cpp.o"
  "CMakeFiles/idicn_topology.dir/pop_topology.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/rocketfuel_gen.cpp.o"
  "CMakeFiles/idicn_topology.dir/rocketfuel_gen.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/shortest_path.cpp.o"
  "CMakeFiles/idicn_topology.dir/shortest_path.cpp.o.d"
  "CMakeFiles/idicn_topology.dir/topology_io.cpp.o"
  "CMakeFiles/idicn_topology.dir/topology_io.cpp.o.d"
  "libidicn_topology.a"
  "libidicn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
