
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/access_tree.cpp" "src/topology/CMakeFiles/idicn_topology.dir/access_tree.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/access_tree.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/idicn_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/idicn_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/network.cpp.o.d"
  "/root/repo/src/topology/pop_topology.cpp" "src/topology/CMakeFiles/idicn_topology.dir/pop_topology.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/pop_topology.cpp.o.d"
  "/root/repo/src/topology/rocketfuel_gen.cpp" "src/topology/CMakeFiles/idicn_topology.dir/rocketfuel_gen.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/rocketfuel_gen.cpp.o.d"
  "/root/repo/src/topology/shortest_path.cpp" "src/topology/CMakeFiles/idicn_topology.dir/shortest_path.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/shortest_path.cpp.o.d"
  "/root/repo/src/topology/topology_io.cpp" "src/topology/CMakeFiles/idicn_topology.dir/topology_io.cpp.o" "gcc" "src/topology/CMakeFiles/idicn_topology.dir/topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
