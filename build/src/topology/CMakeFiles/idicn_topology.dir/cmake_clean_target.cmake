file(REMOVE_RECURSE
  "libidicn_topology.a"
)
