file(REMOVE_RECURSE
  "libidicn_workload.a"
)
