
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/size_model.cpp" "src/workload/CMakeFiles/idicn_workload.dir/size_model.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/size_model.cpp.o.d"
  "/root/repo/src/workload/spatial_skew.cpp" "src/workload/CMakeFiles/idicn_workload.dir/spatial_skew.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/spatial_skew.cpp.o.d"
  "/root/repo/src/workload/synthetic_cdn.cpp" "src/workload/CMakeFiles/idicn_workload.dir/synthetic_cdn.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/synthetic_cdn.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/idicn_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/workload/CMakeFiles/idicn_workload.dir/zipf.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/zipf.cpp.o.d"
  "/root/repo/src/workload/zipf_fit.cpp" "src/workload/CMakeFiles/idicn_workload.dir/zipf_fit.cpp.o" "gcc" "src/workload/CMakeFiles/idicn_workload.dir/zipf_fit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
