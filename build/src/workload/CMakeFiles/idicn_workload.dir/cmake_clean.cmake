file(REMOVE_RECURSE
  "CMakeFiles/idicn_workload.dir/size_model.cpp.o"
  "CMakeFiles/idicn_workload.dir/size_model.cpp.o.d"
  "CMakeFiles/idicn_workload.dir/spatial_skew.cpp.o"
  "CMakeFiles/idicn_workload.dir/spatial_skew.cpp.o.d"
  "CMakeFiles/idicn_workload.dir/synthetic_cdn.cpp.o"
  "CMakeFiles/idicn_workload.dir/synthetic_cdn.cpp.o.d"
  "CMakeFiles/idicn_workload.dir/trace.cpp.o"
  "CMakeFiles/idicn_workload.dir/trace.cpp.o.d"
  "CMakeFiles/idicn_workload.dir/zipf.cpp.o"
  "CMakeFiles/idicn_workload.dir/zipf.cpp.o.d"
  "CMakeFiles/idicn_workload.dir/zipf_fit.cpp.o"
  "CMakeFiles/idicn_workload.dir/zipf_fit.cpp.o.d"
  "libidicn_workload.a"
  "libidicn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
