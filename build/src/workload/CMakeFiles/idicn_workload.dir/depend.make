# Empty dependencies file for idicn_workload.
# This may be replaced when dependencies are built.
