file(REMOVE_RECURSE
  "libidicn_cache.a"
)
