
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/admission.cpp" "src/cache/CMakeFiles/idicn_cache.dir/admission.cpp.o" "gcc" "src/cache/CMakeFiles/idicn_cache.dir/admission.cpp.o.d"
  "/root/repo/src/cache/budget.cpp" "src/cache/CMakeFiles/idicn_cache.dir/budget.cpp.o" "gcc" "src/cache/CMakeFiles/idicn_cache.dir/budget.cpp.o.d"
  "/root/repo/src/cache/lfu_cache.cpp" "src/cache/CMakeFiles/idicn_cache.dir/lfu_cache.cpp.o" "gcc" "src/cache/CMakeFiles/idicn_cache.dir/lfu_cache.cpp.o.d"
  "/root/repo/src/cache/lru_cache.cpp" "src/cache/CMakeFiles/idicn_cache.dir/lru_cache.cpp.o" "gcc" "src/cache/CMakeFiles/idicn_cache.dir/lru_cache.cpp.o.d"
  "/root/repo/src/cache/simple_caches.cpp" "src/cache/CMakeFiles/idicn_cache.dir/simple_caches.cpp.o" "gcc" "src/cache/CMakeFiles/idicn_cache.dir/simple_caches.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/idicn_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
