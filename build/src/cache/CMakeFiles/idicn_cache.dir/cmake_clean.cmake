file(REMOVE_RECURSE
  "CMakeFiles/idicn_cache.dir/admission.cpp.o"
  "CMakeFiles/idicn_cache.dir/admission.cpp.o.d"
  "CMakeFiles/idicn_cache.dir/budget.cpp.o"
  "CMakeFiles/idicn_cache.dir/budget.cpp.o.d"
  "CMakeFiles/idicn_cache.dir/lfu_cache.cpp.o"
  "CMakeFiles/idicn_cache.dir/lfu_cache.cpp.o.d"
  "CMakeFiles/idicn_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/idicn_cache.dir/lru_cache.cpp.o.d"
  "CMakeFiles/idicn_cache.dir/simple_caches.cpp.o"
  "CMakeFiles/idicn_cache.dir/simple_caches.cpp.o.d"
  "libidicn_cache.a"
  "libidicn_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
