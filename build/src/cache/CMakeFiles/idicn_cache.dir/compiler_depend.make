# Empty compiler generated dependencies file for idicn_cache.
# This may be replaced when dependencies are built.
