# Empty dependencies file for idicn_idicn.
# This may be replaced when dependencies are built.
