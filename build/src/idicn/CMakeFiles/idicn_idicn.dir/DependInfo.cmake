
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idicn/adhoc.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/adhoc.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/adhoc.cpp.o.d"
  "/root/repo/src/idicn/client.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/client.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/client.cpp.o.d"
  "/root/repo/src/idicn/metalink.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/metalink.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/metalink.cpp.o.d"
  "/root/repo/src/idicn/mobility.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/mobility.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/mobility.cpp.o.d"
  "/root/repo/src/idicn/name.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/name.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/name.cpp.o.d"
  "/root/repo/src/idicn/nrs.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/nrs.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/nrs.cpp.o.d"
  "/root/repo/src/idicn/origin_server.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/origin_server.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/origin_server.cpp.o.d"
  "/root/repo/src/idicn/proxy.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/proxy.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/proxy.cpp.o.d"
  "/root/repo/src/idicn/reverse_proxy.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/reverse_proxy.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/reverse_proxy.cpp.o.d"
  "/root/repo/src/idicn/wpad.cpp" "src/idicn/CMakeFiles/idicn_idicn.dir/wpad.cpp.o" "gcc" "src/idicn/CMakeFiles/idicn_idicn.dir/wpad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/idicn_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idicn_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
