file(REMOVE_RECURSE
  "libidicn_idicn.a"
)
