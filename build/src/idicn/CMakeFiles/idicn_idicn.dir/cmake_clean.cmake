file(REMOVE_RECURSE
  "CMakeFiles/idicn_idicn.dir/adhoc.cpp.o"
  "CMakeFiles/idicn_idicn.dir/adhoc.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/client.cpp.o"
  "CMakeFiles/idicn_idicn.dir/client.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/metalink.cpp.o"
  "CMakeFiles/idicn_idicn.dir/metalink.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/mobility.cpp.o"
  "CMakeFiles/idicn_idicn.dir/mobility.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/name.cpp.o"
  "CMakeFiles/idicn_idicn.dir/name.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/nrs.cpp.o"
  "CMakeFiles/idicn_idicn.dir/nrs.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/origin_server.cpp.o"
  "CMakeFiles/idicn_idicn.dir/origin_server.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/proxy.cpp.o"
  "CMakeFiles/idicn_idicn.dir/proxy.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/reverse_proxy.cpp.o"
  "CMakeFiles/idicn_idicn.dir/reverse_proxy.cpp.o.d"
  "CMakeFiles/idicn_idicn.dir/wpad.cpp.o"
  "CMakeFiles/idicn_idicn.dir/wpad.cpp.o.d"
  "libidicn_idicn.a"
  "libidicn_idicn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_idicn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
