file(REMOVE_RECURSE
  "libidicn_analysis.a"
)
