file(REMOVE_RECURSE
  "CMakeFiles/idicn_analysis.dir/che_approximation.cpp.o"
  "CMakeFiles/idicn_analysis.dir/che_approximation.cpp.o.d"
  "CMakeFiles/idicn_analysis.dir/economics.cpp.o"
  "CMakeFiles/idicn_analysis.dir/economics.cpp.o.d"
  "CMakeFiles/idicn_analysis.dir/stats.cpp.o"
  "CMakeFiles/idicn_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/idicn_analysis.dir/tree_model.cpp.o"
  "CMakeFiles/idicn_analysis.dir/tree_model.cpp.o.d"
  "libidicn_analysis.a"
  "libidicn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
