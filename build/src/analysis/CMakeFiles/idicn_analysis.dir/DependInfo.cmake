
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/che_approximation.cpp" "src/analysis/CMakeFiles/idicn_analysis.dir/che_approximation.cpp.o" "gcc" "src/analysis/CMakeFiles/idicn_analysis.dir/che_approximation.cpp.o.d"
  "/root/repo/src/analysis/economics.cpp" "src/analysis/CMakeFiles/idicn_analysis.dir/economics.cpp.o" "gcc" "src/analysis/CMakeFiles/idicn_analysis.dir/economics.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/idicn_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/idicn_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/tree_model.cpp" "src/analysis/CMakeFiles/idicn_analysis.dir/tree_model.cpp.o" "gcc" "src/analysis/CMakeFiles/idicn_analysis.dir/tree_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/idicn_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
