# Empty compiler generated dependencies file for idicn_analysis.
# This may be replaced when dependencies are built.
