
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bound_workload.cpp" "src/core/CMakeFiles/idicn_core.dir/bound_workload.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/bound_workload.cpp.o.d"
  "/root/repo/src/core/design.cpp" "src/core/CMakeFiles/idicn_core.dir/design.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/design.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/idicn_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/holder_index.cpp" "src/core/CMakeFiles/idicn_core.dir/holder_index.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/holder_index.cpp.o.d"
  "/root/repo/src/core/origin_map.cpp" "src/core/CMakeFiles/idicn_core.dir/origin_map.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/origin_map.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/idicn_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/idicn_core.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/idicn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/idicn_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idicn_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
