file(REMOVE_RECURSE
  "libidicn_core.a"
)
