# Empty compiler generated dependencies file for idicn_core.
# This may be replaced when dependencies are built.
