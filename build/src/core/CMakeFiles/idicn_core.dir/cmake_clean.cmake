file(REMOVE_RECURSE
  "CMakeFiles/idicn_core.dir/bound_workload.cpp.o"
  "CMakeFiles/idicn_core.dir/bound_workload.cpp.o.d"
  "CMakeFiles/idicn_core.dir/design.cpp.o"
  "CMakeFiles/idicn_core.dir/design.cpp.o.d"
  "CMakeFiles/idicn_core.dir/experiment.cpp.o"
  "CMakeFiles/idicn_core.dir/experiment.cpp.o.d"
  "CMakeFiles/idicn_core.dir/holder_index.cpp.o"
  "CMakeFiles/idicn_core.dir/holder_index.cpp.o.d"
  "CMakeFiles/idicn_core.dir/origin_map.cpp.o"
  "CMakeFiles/idicn_core.dir/origin_map.cpp.o.d"
  "CMakeFiles/idicn_core.dir/simulator.cpp.o"
  "CMakeFiles/idicn_core.dir/simulator.cpp.o.d"
  "libidicn_core.a"
  "libidicn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idicn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
