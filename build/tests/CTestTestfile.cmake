# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_access_tree[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_tree_model[1]_include.cmake")
include("/root/repo/build/tests/test_holder_index[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_idicn_naming[1]_include.cmake")
include("/root/repo/build/tests/test_nrs[1]_include.cmake")
include("/root/repo/build/tests/test_idicn_flow[1]_include.cmake")
include("/root/repo/build/tests/test_adhoc[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_wpad[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_extra[1]_include.cmake")
include("/root/repo/build/tests/test_topology_io[1]_include.cmake")
include("/root/repo/build/tests/test_proxy_cooperation[1]_include.cmake")
include("/root/repo/build/tests/test_http_property[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
