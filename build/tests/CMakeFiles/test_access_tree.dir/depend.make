# Empty dependencies file for test_access_tree.
# This may be replaced when dependencies are built.
