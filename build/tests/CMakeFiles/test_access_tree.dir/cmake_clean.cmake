file(REMOVE_RECURSE
  "CMakeFiles/test_access_tree.dir/test_access_tree.cpp.o"
  "CMakeFiles/test_access_tree.dir/test_access_tree.cpp.o.d"
  "test_access_tree"
  "test_access_tree.pdb"
  "test_access_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
