
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_idicn_naming.cpp" "tests/CMakeFiles/test_idicn_naming.dir/test_idicn_naming.cpp.o" "gcc" "tests/CMakeFiles/test_idicn_naming.dir/test_idicn_naming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idicn/CMakeFiles/idicn_idicn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idicn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idicn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/idicn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/idicn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/idicn_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/idicn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/idicn_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
