# Empty dependencies file for test_idicn_naming.
# This may be replaced when dependencies are built.
