file(REMOVE_RECURSE
  "CMakeFiles/test_idicn_naming.dir/test_idicn_naming.cpp.o"
  "CMakeFiles/test_idicn_naming.dir/test_idicn_naming.cpp.o.d"
  "test_idicn_naming"
  "test_idicn_naming.pdb"
  "test_idicn_naming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idicn_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
