# Empty dependencies file for test_idicn_flow.
# This may be replaced when dependencies are built.
