file(REMOVE_RECURSE
  "CMakeFiles/test_idicn_flow.dir/test_idicn_flow.cpp.o"
  "CMakeFiles/test_idicn_flow.dir/test_idicn_flow.cpp.o.d"
  "test_idicn_flow"
  "test_idicn_flow.pdb"
  "test_idicn_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idicn_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
