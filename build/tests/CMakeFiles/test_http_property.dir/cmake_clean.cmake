file(REMOVE_RECURSE
  "CMakeFiles/test_http_property.dir/test_http_property.cpp.o"
  "CMakeFiles/test_http_property.dir/test_http_property.cpp.o.d"
  "test_http_property"
  "test_http_property.pdb"
  "test_http_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
