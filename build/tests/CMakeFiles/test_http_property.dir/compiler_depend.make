# Empty compiler generated dependencies file for test_http_property.
# This may be replaced when dependencies are built.
