# Empty compiler generated dependencies file for test_holder_index.
# This may be replaced when dependencies are built.
