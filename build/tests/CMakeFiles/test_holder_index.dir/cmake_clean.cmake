file(REMOVE_RECURSE
  "CMakeFiles/test_holder_index.dir/test_holder_index.cpp.o"
  "CMakeFiles/test_holder_index.dir/test_holder_index.cpp.o.d"
  "test_holder_index"
  "test_holder_index.pdb"
  "test_holder_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_holder_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
