# Empty compiler generated dependencies file for test_proxy_cooperation.
# This may be replaced when dependencies are built.
