file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_cooperation.dir/test_proxy_cooperation.cpp.o"
  "CMakeFiles/test_proxy_cooperation.dir/test_proxy_cooperation.cpp.o.d"
  "test_proxy_cooperation"
  "test_proxy_cooperation.pdb"
  "test_proxy_cooperation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
