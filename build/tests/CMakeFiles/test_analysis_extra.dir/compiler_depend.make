# Empty compiler generated dependencies file for test_analysis_extra.
# This may be replaced when dependencies are built.
