file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_extra.dir/test_analysis_extra.cpp.o"
  "CMakeFiles/test_analysis_extra.dir/test_analysis_extra.cpp.o.d"
  "test_analysis_extra"
  "test_analysis_extra.pdb"
  "test_analysis_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
