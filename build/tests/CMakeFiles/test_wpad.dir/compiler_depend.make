# Empty compiler generated dependencies file for test_wpad.
# This may be replaced when dependencies are built.
