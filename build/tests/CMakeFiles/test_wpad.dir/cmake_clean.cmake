file(REMOVE_RECURSE
  "CMakeFiles/test_wpad.dir/test_wpad.cpp.o"
  "CMakeFiles/test_wpad.dir/test_wpad.cpp.o.d"
  "test_wpad"
  "test_wpad.pdb"
  "test_wpad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
