file(REMOVE_RECURSE
  "CMakeFiles/test_tree_model.dir/test_tree_model.cpp.o"
  "CMakeFiles/test_tree_model.dir/test_tree_model.cpp.o.d"
  "test_tree_model"
  "test_tree_model.pdb"
  "test_tree_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
