# Empty compiler generated dependencies file for test_tree_model.
# This may be replaced when dependencies are built.
