file(REMOVE_RECURSE
  "CMakeFiles/test_nrs.dir/test_nrs.cpp.o"
  "CMakeFiles/test_nrs.dir/test_nrs.cpp.o.d"
  "test_nrs"
  "test_nrs.pdb"
  "test_nrs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
