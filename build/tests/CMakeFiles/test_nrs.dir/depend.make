# Empty dependencies file for test_nrs.
# This may be replaced when dependencies are built.
