file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decisions.dir/bench_ablation_decisions.cpp.o"
  "CMakeFiles/bench_ablation_decisions.dir/bench_ablation_decisions.cpp.o.d"
  "bench_ablation_decisions"
  "bench_ablation_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
