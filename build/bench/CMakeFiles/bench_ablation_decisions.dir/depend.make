# Empty dependencies file for bench_ablation_decisions.
# This may be replaced when dependencies are built.
