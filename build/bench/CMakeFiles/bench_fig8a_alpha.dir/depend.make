# Empty dependencies file for bench_fig8a_alpha.
# This may be replaced when dependencies are built.
