# Empty compiler generated dependencies file for bench_fig9_best_scenario.
# This may be replaced when dependencies are built.
