# Empty compiler generated dependencies file for bench_fig10_bridge_gap.
# This may be replaced when dependencies are built.
