file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_arity.dir/bench_table4_arity.cpp.o"
  "CMakeFiles/bench_table4_arity.dir/bench_table4_arity.cpp.o.d"
  "bench_table4_arity"
  "bench_table4_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
