# Empty compiler generated dependencies file for bench_table4_arity.
# This may be replaced when dependencies are built.
