file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_other_params.dir/bench_sec5_other_params.cpp.o"
  "CMakeFiles/bench_sec5_other_params.dir/bench_sec5_other_params.cpp.o.d"
  "bench_sec5_other_params"
  "bench_sec5_other_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_other_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
