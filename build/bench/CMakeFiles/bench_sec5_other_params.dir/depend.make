# Empty dependencies file for bench_sec5_other_params.
# This may be replaced when dependencies are built.
