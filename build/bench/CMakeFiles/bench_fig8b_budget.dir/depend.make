# Empty dependencies file for bench_fig8b_budget.
# This may be replaced when dependencies are built.
