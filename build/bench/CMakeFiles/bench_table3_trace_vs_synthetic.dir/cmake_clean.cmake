file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_trace_vs_synthetic.dir/bench_table3_trace_vs_synthetic.cpp.o"
  "CMakeFiles/bench_table3_trace_vs_synthetic.dir/bench_table3_trace_vs_synthetic.cpp.o.d"
  "bench_table3_trace_vs_synthetic"
  "bench_table3_trace_vs_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_trace_vs_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
