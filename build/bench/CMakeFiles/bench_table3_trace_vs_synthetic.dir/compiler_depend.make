# Empty compiler generated dependencies file for bench_table3_trace_vs_synthetic.
# This may be replaced when dependencies are built.
