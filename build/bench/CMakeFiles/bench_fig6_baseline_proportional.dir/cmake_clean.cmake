file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_baseline_proportional.dir/bench_fig6_baseline_proportional.cpp.o"
  "CMakeFiles/bench_fig6_baseline_proportional.dir/bench_fig6_baseline_proportional.cpp.o.d"
  "bench_fig6_baseline_proportional"
  "bench_fig6_baseline_proportional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_baseline_proportional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
