# Empty dependencies file for bench_fig6_baseline_proportional.
# This may be replaced when dependencies are built.
