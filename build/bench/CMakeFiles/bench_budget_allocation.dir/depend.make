# Empty dependencies file for bench_budget_allocation.
# This may be replaced when dependencies are built.
