file(REMOVE_RECURSE
  "CMakeFiles/bench_budget_allocation.dir/bench_budget_allocation.cpp.o"
  "CMakeFiles/bench_budget_allocation.dir/bench_budget_allocation.cpp.o.d"
  "bench_budget_allocation"
  "bench_budget_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
