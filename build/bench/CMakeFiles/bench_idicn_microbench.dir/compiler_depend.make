# Empty compiler generated dependencies file for bench_idicn_microbench.
# This may be replaced when dependencies are built.
