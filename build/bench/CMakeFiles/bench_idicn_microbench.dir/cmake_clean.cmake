file(REMOVE_RECURSE
  "CMakeFiles/bench_idicn_microbench.dir/bench_idicn_microbench.cpp.o"
  "CMakeFiles/bench_idicn_microbench.dir/bench_idicn_microbench.cpp.o.d"
  "bench_idicn_microbench"
  "bench_idicn_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idicn_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
