# Empty dependencies file for bench_table2_zipf_fit.
# This may be replaced when dependencies are built.
