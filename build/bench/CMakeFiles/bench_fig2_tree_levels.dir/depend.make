# Empty dependencies file for bench_fig2_tree_levels.
# This may be replaced when dependencies are built.
