# Empty compiler generated dependencies file for bench_fig1_popularity.
# This may be replaced when dependencies are built.
