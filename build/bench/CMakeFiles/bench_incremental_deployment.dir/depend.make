# Empty dependencies file for bench_incremental_deployment.
# This may be replaced when dependencies are built.
