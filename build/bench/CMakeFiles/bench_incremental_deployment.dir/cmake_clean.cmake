file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_deployment.dir/bench_incremental_deployment.cpp.o"
  "CMakeFiles/bench_incremental_deployment.dir/bench_incremental_deployment.cpp.o.d"
  "bench_incremental_deployment"
  "bench_incremental_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
