# Empty dependencies file for bench_micro_google.
# This may be replaced when dependencies are built.
