file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_drift.dir/bench_workload_drift.cpp.o"
  "CMakeFiles/bench_workload_drift.dir/bench_workload_drift.cpp.o.d"
  "bench_workload_drift"
  "bench_workload_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
