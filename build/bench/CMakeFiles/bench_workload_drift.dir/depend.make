# Empty dependencies file for bench_workload_drift.
# This may be replaced when dependencies are built.
