# Empty dependencies file for bench_fig8c_skew.
# This may be replaced when dependencies are built.
