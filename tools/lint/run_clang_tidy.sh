#!/usr/bin/env bash
# Run the project clang-tidy gate (.clang-tidy, WarningsAsErrors) over
# every first-party translation unit in the compilation database.
#
# Usage:  tools/lint/run_clang_tidy.sh [build-dir]
#
#   build-dir   directory holding compile_commands.json (default: build/;
#               the top-level CMakeLists exports the database by default
#               and symlinks it to the repo root).
#
# Environment:
#   CLANG_TIDY  clang-tidy executable to use (default: clang-tidy). CI
#               pins a concrete major version so local drift cannot make
#               the gate flap.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "run_clang_tidy: '${TIDY}' not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json missing;" >&2
  echo "  configure first: cmake -B '${BUILD_DIR}' -S '${ROOT}'" >&2
  exit 2
fi

# First-party translation units only — gtest/benchmark internals are not
# ours to lint. Headers are pulled in via HeaderFilterRegex.
mapfile -t FILES < <(cd "${ROOT}" && git ls-files \
  'src/**/*.cpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp' 'fuzz/*.cpp')
if [[ "${#FILES[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 2
fi

echo "run_clang_tidy: ${TIDY} over ${#FILES[@]} translation units" >&2
status=0
for file in "${FILES[@]}"; do
  # --quiet suppresses the "N warnings generated" chatter; findings still
  # print and (via WarningsAsErrors) fail the run.
  if ! "${TIDY}" --quiet -p "${BUILD_DIR}" "${ROOT}/${file}"; then
    status=1
    echo "run_clang_tidy: FAILED ${file}" >&2
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "run_clang_tidy: violations found (see above)" >&2
else
  echo "run_clang_tidy: clean" >&2
fi
exit "${status}"
