#!/usr/bin/env python3
"""Project-specific concurrency lint (AST-free, stdlib-only).

Enforces the repo's threading contract (DESIGN.md, "Threading model")
where clang-tidy and -Wthread-safety cannot: rules about *which files*
may use which primitives. Runs as a ctest (`idicn_lint`) and in the CI
`lint` job; exits non-zero with file:line diagnostics on any violation.

Rules
  raw-sync     std::mutex / std::condition_variable / lock_guard /
               unique_lock / scoped_lock / shared_mutex /
               recursive_mutex — and the <mutex> / <condition_variable>
               / <shared_mutex> includes — only in src/core/sync.hpp.
               Everything else uses the annotated wrappers so Clang
               thread-safety analysis sees every acquisition.
  raw-thread   std::thread (the type, not std::thread::id or
               std::this_thread) only in src/core/sync.hpp; everyone
               else uses core::sync::Thread (join-on-destruction).
  loop-blocking  No sleeps, process spawns, or synchronous connect/HTTP
               helpers inside the event-loop implementation files —
               callbacks run on the loop thread and a blocked loop
               stalls every connection it owns. When a compilation
               database exists (any configured build), this rule is
               delegated to the call-graph analyzer
               (tools/analysis/idicn_analysis.py --rule loop-blocking),
               which checks the property *transitively* from every
               IDICN_REQUIRES(<role>) handler instead of per-file; the
               regex form below is the fallback for unconfigured trees.
  perf-macro   The IDICN_PERF_COUNTERS token stays inside
               src/core/perf_counters.hpp; code branches on the toggle
               via `if constexpr (core::kPerfCountersEnabled)` so the
               zero-cost contract cannot be broken by a stray #ifdef.
  iostream-in-src  No std::cout/cerr/clog in library code (src/);
               libraries report through return values and exceptions,
               binaries (bench/, examples/, tools/) own the terminal.
  raw-backoff  No raw sleeps (sleep_for / sleep_until / usleep /
               nanosleep) anywhere in src/ outside the fault injector's
               latency leg (src/net/fault_injector.cpp). Hand-rolled
               sleep-and-retry loops dodge the jitter, deadline, and
               token-budget discipline — all backoff goes through
               runtime::RetryPolicy::schedule_backoff, which reschedules
               on the owning executor's timer wheel instead of sleeping
               the loop thread.
  body-copy    No whole-body materialization on the serving data path
               (src/runtime/): `<response>.serialize()` flattens head +
               body into one string (request.serialize() is fine —
               requests are small), and `body.assign(...)` re-buffers
               bytes that already live in shared chunks. Responses leave
               the runtime through the chunk queue / BodyProducer write
               path (serialize_head() + core::Chunk), never as one flat
               copy per connection.
  hedge-timer  The multi-source fetch policy files (the fetcher, the RTT
               estimator, the CUBIC window) take all time as injected
               arguments (now_ms from the transport, explicit now
               parameters) and arm every delay — the hedge timer above
               all — via Executor::schedule, i.e. the owning loop's
               TimerWheel. Reading a wall clock directly
               (steady_clock::now, clock_gettime, gettimeofday) or
               creating an OS timer (timerfd, setitimer, alarm) there
               would break the virtual-clock determinism the unit tests
               rely on and dodge the Karn-shifted hedge-delay
               discipline.
  unguarded-sync  In the concurrent layers (src/runtime/, src/cache/)
               every declared core::sync::Mutex / ThreadRole must be
               referenced by at least one thread-safety annotation
               (IDICN_GUARDED_BY / IDICN_PT_GUARDED_BY / IDICN_REQUIRES
               / IDICN_EXCLUDES / IDICN_ASSERT_CAPABILITY) in the same
               file — a capability nothing is annotated against guards
               nothing the analysis can see, i.e. un-annotated mutable
               shared state.

Comments and string literals are stripped before matching, so prose
mentioning std::mutex is fine; code using it is not.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

# Directories holding first-party C++ sources.
SCAN_DIRS = ("src", "tests", "bench", "examples", "fuzz")
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

SYNC_HEADER = Path("src/core/sync.hpp")
PERF_HEADER = Path("src/core/perf_counters.hpp")

# Event-loop implementation files: their code runs on the loop thread.
LOOP_FILES = {
    Path("src/runtime/event_loop.cpp"),
    Path("src/runtime/event_loop.hpp"),
    Path("src/runtime/server_group.cpp"),
    Path("src/runtime/poller.cpp"),
    Path("src/runtime/timer_wheel.cpp"),
}

# Concurrent layers where every sync capability must be annotated against.
GUARDED_DIRS = ("src/runtime", "src/cache", "src/testbed")

# The serving data path: whole-body copies here scale memory with
# clients × object_size (the PR-6 bug class).
BODY_COPY_DIR = "src/runtime"

# The only library file allowed to block the calling thread on purpose:
# the fault injector's latency leg (chaos harness, never on a serving
# loop). RetryPolicy lost its seat when backoff moved to timer-wheel
# rescheduling (schedule_backoff) — nothing in src/runtime sleeps anymore.
RAW_BACKOFF_ALLOWED = {
    Path("src/net/fault_injector.cpp"),
}

# Multi-source fetch policy files: time is injected (now_ms / explicit
# now arguments) and timers arm only via Executor::schedule on the
# owning loop's TimerWheel. retry.cpp is deliberately absent — its
# RetryPolicy::sleep is the documented off-loop blocking wait.
HEDGE_TIMER_FILES = {
    Path("src/runtime/multi_source_fetcher.hpp"),
    Path("src/runtime/multi_source_fetcher.cpp"),
    Path("src/runtime/rtt_estimator.hpp"),
    Path("src/runtime/rtt_estimator.cpp"),
    Path("src/runtime/congestion_window.hpp"),
    Path("src/runtime/congestion_window.cpp"),
}

RAW_SYNC = re.compile(
    r"std::(?:mutex|recursive_mutex|recursive_timed_mutex|timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
SYNC_INCLUDE = re.compile(
    r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
# std::thread the type — but not std::thread::id / std::this_thread.
RAW_THREAD = re.compile(r"std::thread\b(?!\s*::)")
LOOP_BLOCKING = re.compile(
    r"\b(?:sleep_for|sleep_until|usleep|nanosleep|system|popen"
    r"|connect_tcp|HttpClient)\s*\(|\bHttpClient\b"
)
RAW_SLEEP = re.compile(r"\b(?:sleep_for|sleep_until|usleep|nanosleep)\s*\(")
# Direct wall-clock reads and OS timer primitives: banned in the hedge
# policy files, where every delay must arm on the executor's timer wheel.
RAW_CLOCK = re.compile(
    r"\bstd::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"::now\b"
    r"|\b(?:clock_gettime|gettimeofday|timerfd_create|timerfd_settime"
    r"|setitimer|alarm)\s*\("
)
PERF_MACRO = re.compile(r"\bIDICN_PERF_COUNTERS\b")
IOSTREAM_PRINT = re.compile(r"std::(?:cout|cerr|clog)\b")
# A Mutex/ThreadRole declaration (member or local; not a reference,
# pointer, or parameter — those alias a capability declared elsewhere).
SYNC_DECL = re.compile(
    r"\b(?:core::sync::)?(?:Mutex|ThreadRole)\s+(\w+)\s*(?:;|\{)"
)
# Identifiers referenced inside any thread-safety annotation's argument
# list (qualified references like shard.mutex contribute every token).
SYNC_ANNOTATION = re.compile(
    r"\bIDICN_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES"
    r"|ASSERT_CAPABILITY)\s*\(([^)]*)\)"
)
# `<x>.serialize(` — matches serialize() calls but not serialize_head().
BODY_COPY_SERIALIZE = re.compile(r"\b(\w+)\.serialize\s*\(")
BODY_COPY_ASSIGN = re.compile(r"\bbody\.assign\s*\(")

_STRIP = re.compile(
    r'"(?:\\.|[^"\\])*"'      # string literals
    r"|'(?:\\.|[^'\\])*'"     # char literals (digit separators strip harmlessly)
    r"|//[^\n]*"              # line comments
    r"|/\*.*?\*/",            # block comments
    re.S,
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments/strings, preserving newlines for line numbers."""
    return _STRIP.sub(lambda m: "\n" * m.group(0).count("\n"), text)


def run_callgraph_loop_blocking() -> list[str] | None:
    """Delegate loop-blocking to the call-graph analyzer when it can run.

    Returns the analyzer's diagnostics (empty list = clean) or None when
    no compilation database exists — the caller then keeps the per-file
    regex rule. The analyzer subsumes the regex: it walks transitive
    reachability from every IDICN_REQUIRES(<role>) handler, so a sleep
    three calls below a loop callback is caught even when it lives in a
    file the regex never singles out.
    """
    compile_db = REPO_ROOT / "compile_commands.json"
    analyzer = REPO_ROOT / "tools" / "analysis" / "idicn_analysis.py"
    if not compile_db.exists() or not analyzer.exists():
        return None
    import subprocess
    proc = subprocess.run(
        [sys.executable, str(analyzer), "--rule", "loop-blocking",
         "--compile-db", str(compile_db)],
        capture_output=True, text=True)
    if proc.returncode == 0:
        return []
    return [line for line in (proc.stdout + proc.stderr).splitlines()
            if line.strip()]


def check_file(rel: Path, text: str,
               skip_loop_blocking: bool = False) -> list[str]:
    findings: list[str] = []
    code = strip_comments_and_strings(text)

    def report(line_index: int, rule: str, message: str) -> None:
        findings.append(f"{rel}:{line_index + 1}: [{rule}] {message}")

    for i, line in enumerate(code.splitlines()):
        if rel != SYNC_HEADER:
            if RAW_SYNC.search(line) or SYNC_INCLUDE.search(line):
                report(i, "raw-sync",
                       "raw standard sync primitive; use the annotated "
                       "wrappers in core/sync.hpp (Mutex, MutexLock, CondVar)")
            if RAW_THREAD.search(line):
                report(i, "raw-thread",
                       "raw std::thread; use core::sync::Thread "
                       "(join-on-destruction, annotation-friendly)")
        if rel in LOOP_FILES and not skip_loop_blocking and \
                LOOP_BLOCKING.search(line):
            report(i, "loop-blocking",
                   "blocking call in event-loop code; loop callbacks must "
                   "not sleep, spawn, or issue synchronous network I/O")
        if (rel.parts[0] == "src" and rel not in RAW_BACKOFF_ALLOWED
                and RAW_SLEEP.search(line)):
            report(i, "raw-backoff",
                   "raw sleep in library code; all retry backoff goes "
                   "through runtime::RetryPolicy (jitter, deadlines, "
                   "token budget) — see RetryPolicy::sleep")
        if rel in HEDGE_TIMER_FILES and RAW_CLOCK.search(line):
            report(i, "hedge-timer",
                   "raw clock/OS-timer in fetch policy code; hedging and "
                   "backoff delays arm via Executor::schedule (the loop's "
                   "TimerWheel) and all time is injected (now_ms / explicit "
                   "now arguments) so virtual-clock tests stay exact")
        if rel != PERF_HEADER and PERF_MACRO.search(line):
            report(i, "perf-macro",
                   "IDICN_PERF_COUNTERS must not leak outside "
                   "core/perf_counters.hpp; branch on "
                   "`if constexpr (core::kPerfCountersEnabled)` instead")
        if rel.parts[0] == "src" and IOSTREAM_PRINT.search(line):
            report(i, "iostream-in-src",
                   "no std::cout/cerr/clog in library code; report through "
                   "return values/exceptions, let binaries own the terminal")
        if str(rel.parent).replace("\\", "/") == BODY_COPY_DIR:
            for call in BODY_COPY_SERIALIZE.finditer(line):
                if call.group(1) != "request":
                    report(i, "body-copy",
                           f"'{call.group(1)}.serialize()' flattens a whole "
                           "response on the serving path; send "
                           "serialize_head() plus shared chunks through the "
                           "connection's output queue instead")
            if BODY_COPY_ASSIGN.search(line):
                report(i, "body-copy",
                       "body.assign() re-buffers bytes on the serving path; "
                       "keep bodies as shared core::Chunk references")

    if str(rel.parent).replace("\\", "/") in GUARDED_DIRS:
        annotated: set[str] = set()
        for match in SYNC_ANNOTATION.finditer(code):
            annotated.update(re.findall(r"\w+", match.group(1)))
        for i, line in enumerate(code.splitlines()):
            for decl in SYNC_DECL.finditer(line):
                if decl.group(1) not in annotated:
                    report(i, "unguarded-sync",
                           f"'{decl.group(1)}' is never named by an "
                           "IDICN_GUARDED_BY / IDICN_PT_GUARDED_BY / "
                           "IDICN_REQUIRES / IDICN_EXCLUDES / "
                           "IDICN_ASSERT_CAPABILITY annotation in this "
                           "file; un-annotated mutable shared state is "
                           "invisible to -Wthread-safety")
    return findings


def main() -> int:
    findings: list[str] = []
    scanned = 0
    delegated = run_callgraph_loop_blocking()
    if delegated is not None:
        findings.extend(f"[loop-blocking/callgraph] {line}"
                        for line in delegated)
    for top in SCAN_DIRS:
        base = REPO_ROOT / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(REPO_ROOT)
            scanned += 1
            findings.extend(check_file(rel, path.read_text(encoding="utf-8"),
                                       skip_loop_blocking=delegated is not None))

    if findings:
        print("\n".join(findings))
        print(f"\nidicn_lint: {len(findings)} violation(s) "
              f"in {scanned} files", file=sys.stderr)
        return 1
    print(f"idicn_lint: OK ({scanned} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
