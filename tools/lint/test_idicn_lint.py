#!/usr/bin/env python3
"""Unit tests for the concurrency lint (stdlib unittest only).

Each case feeds a synthetic source through check_file and asserts on the
rule tags in the produced diagnostics — the same path `ctest -R
idicn_lint` exercises against the real tree, minus the filesystem walk.

Run:  python3 tools/lint/test_idicn_lint.py -v
"""

import os
import sys
import unittest
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import idicn_lint
from idicn_lint import check_file


def rules_of(findings):
    out = []
    for f in findings:
        out.append(f.split("[", 1)[1].split("]", 1)[0])
    return out


class RawPrimitiveTest(unittest.TestCase):
    def test_raw_mutex_flagged_outside_sync_header(self):
        findings = check_file(Path("src/idicn/proxy.cpp"),
                              "std::mutex mu_;\n")
        self.assertEqual(rules_of(findings), ["raw-sync"])

    def test_raw_mutex_allowed_in_sync_header(self):
        findings = check_file(idicn_lint.SYNC_HEADER,
                              "std::mutex raw_;\n#include <mutex>\n")
        self.assertEqual(findings, [])

    def test_sync_include_flagged(self):
        findings = check_file(Path("src/cache/sharded_cache.cpp"),
                              "#include <condition_variable>\n")
        self.assertEqual(rules_of(findings), ["raw-sync"])

    def test_raw_thread_flagged_but_this_thread_ok(self):
        bad = check_file(Path("src/runtime/http_client.cpp"),
                         "std::thread worker(run);\n")
        self.assertEqual(rules_of(bad), ["raw-thread"])
        ok = check_file(Path("src/runtime/http_client.cpp"),
                        "auto id = std::thread::id{};\n")
        self.assertEqual(ok, [])

    def test_prose_mentions_are_not_violations(self):
        findings = check_file(
            Path("src/idicn/proxy.cpp"),
            "// std::mutex is banned here\n"
            "const char* doc = \"std::thread usleep(3)\";\n")
        self.assertEqual(findings, [])


class LoopBlockingTest(unittest.TestCase):
    LOOP_FILE = Path("src/runtime/event_loop.cpp")

    def test_sleep_in_loop_file_flagged(self):
        findings = check_file(self.LOOP_FILE, "sleep_for(backoff);\n")
        self.assertIn("loop-blocking", rules_of(findings))

    def test_skip_flag_disables_regex_rule(self):
        findings = check_file(self.LOOP_FILE, "sleep_for(backoff);\n",
                              skip_loop_blocking=True)
        self.assertNotIn("loop-blocking", rules_of(findings))
        # the raw-backoff rule still applies: delegation replaces only
        # the per-file loop heuristic, not the library-wide sleep ban
        self.assertIn("raw-backoff", rules_of(findings))

    def test_non_loop_file_not_subject_to_rule(self):
        findings = check_file(Path("src/idicn/nrs.cpp"),
                              "client.connect_tcp(host);\n")
        self.assertNotIn("loop-blocking", rules_of(findings))

    def test_delegation_contract(self):
        """With a compile db (configured tree) the analyzer runs and the
        checked-in baselines make it clean; without one it returns None
        and the regex fallback stays active."""
        delegated = idicn_lint.run_callgraph_loop_blocking()
        has_db = (idicn_lint.REPO_ROOT / "compile_commands.json").exists()
        if has_db:
            self.assertEqual(delegated, [])
        else:
            self.assertIsNone(delegated)


class BackoffAndPerfTest(unittest.TestCase):
    def test_raw_sleep_in_library_flagged(self):
        findings = check_file(Path("src/idicn/reverse_proxy.cpp"),
                              "usleep(1000);\n")
        self.assertEqual(rules_of(findings), ["raw-backoff"])

    def test_sanctioned_backoff_files_allowed(self):
        for rel in idicn_lint.RAW_BACKOFF_ALLOWED:
            findings = check_file(rel, "sleep_for(jittered);\n")
            self.assertNotIn("raw-backoff", rules_of(findings))

    def test_retry_policy_lost_its_backoff_seat(self):
        # Backoff is timer-wheel rescheduling now; a raw sleep creeping
        # back into retry.cpp must be flagged like any other library file.
        findings = check_file(Path("src/runtime/retry.cpp"),
                              "sleep_for(jittered);\n")
        self.assertEqual(rules_of(findings), ["raw-backoff"])

    def test_perf_macro_containment(self):
        findings = check_file(Path("src/net/sim_net.cpp"),
                              "#ifdef IDICN_PERF_COUNTERS\n")
        self.assertEqual(rules_of(findings), ["perf-macro"])
        ok = check_file(idicn_lint.PERF_HEADER,
                        "#ifdef IDICN_PERF_COUNTERS\n")
        self.assertEqual(ok, [])


class HedgeTimerTest(unittest.TestCase):
    FETCHER = Path("src/runtime/multi_source_fetcher.cpp")

    def test_raw_clock_in_fetcher_flagged(self):
        findings = check_file(
            self.FETCHER,
            "const auto t0 = std::chrono::steady_clock::now();\n")
        self.assertEqual(rules_of(findings), ["hedge-timer"])

    def test_os_timer_in_estimator_flagged(self):
        findings = check_file(Path("src/runtime/rtt_estimator.cpp"),
                              "int fd = timerfd_create(CLOCK_MONOTONIC, 0);\n")
        self.assertEqual(rules_of(findings), ["hedge-timer"])

    def test_executor_schedule_is_the_sanctioned_path(self):
        findings = check_file(
            self.FETCHER,
            "hedge_timer = exec->schedule(delay, [self] { go(); });\n"
            "attempt.started_ms = fetcher->net_->now_ms();\n")
        self.assertEqual(findings, [])

    def test_rule_scoped_to_policy_files(self):
        # The blocking HttpClient legitimately reads the wall clock.
        findings = check_file(Path("src/runtime/http_client.cpp"),
                              "const auto t0 = std::chrono::steady_clock::now();\n")
        self.assertNotIn("hedge-timer", rules_of(findings))

    def test_retry_sleep_keeps_its_off_loop_seat(self):
        # retry.cpp's RetryPolicy::sleep is the documented off-loop wait;
        # the hedge-timer rule must not claim it.
        findings = check_file(Path("src/runtime/retry.cpp"),
                              "deadline - std::chrono::steady_clock::now();\n")
        self.assertNotIn("hedge-timer", rules_of(findings))


class BodyCopyTest(unittest.TestCase):
    def test_response_serialize_on_serving_path_flagged(self):
        findings = check_file(Path("src/runtime/server_group.cpp"),
                              "auto wire = response.serialize();\n")
        self.assertIn("body-copy", rules_of(findings))

    def test_request_serialize_is_fine(self):
        findings = check_file(Path("src/runtime/http_client.cpp"),
                              "auto wire = request.serialize();\n")
        self.assertNotIn("body-copy", rules_of(findings))

    def test_body_assign_flagged(self):
        findings = check_file(Path("src/runtime/server_group.cpp"),
                              "body.assign(chunk.begin(), chunk.end());\n")
        self.assertIn("body-copy", rules_of(findings))


class UnguardedSyncTest(unittest.TestCase):
    def test_unreferenced_mutex_flagged(self):
        findings = check_file(Path("src/runtime/worker.cpp"),
                              "core::sync::Mutex mu_;\n")
        self.assertEqual(rules_of(findings), ["unguarded-sync"])

    def test_annotated_mutex_ok(self):
        findings = check_file(
            Path("src/runtime/worker.cpp"),
            "core::sync::Mutex mu_;\n"
            "int pending_ IDICN_GUARDED_BY(mu_);\n")
        self.assertEqual(findings, [])

    def test_rule_only_in_concurrent_layers(self):
        findings = check_file(Path("src/idicn/proxy.cpp"),
                              "core::sync::Mutex mu_;\n")
        self.assertNotIn("unguarded-sync", rules_of(findings))


if __name__ == "__main__":
    unittest.main()
