#!/usr/bin/env python3
"""idicn_analysis — call-graph–aware static analyzer for idICN.

Usage:
  python3 tools/analysis/idicn_analysis.py [--rule RULE] \
      [--frontend auto|clang|internal] [--compile-db PATH] \
      [--write-baseline] [--list] [--json PATH]

Builds a whole-project call graph from the sources named by
compile_commands.json (plus all project headers) and enforces the three
transitive properties defined in callgraph.py: hot-path-alloc,
loop-blocking, lock-across-io. See DESIGN.md §12.

Findings are compared against checked-in baselines under
tools/analysis/baselines/. The comparison is a ratchet:

  * a finding NOT in the baseline fails the run (new violation);
  * a baseline entry with NO matching finding also fails the run (the
    violation was fixed — delete the entry so it cannot regress).

Exit status: 0 clean, 1 violations/stale entries, 2 usage/environment.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import callgraph  # noqa: E402
from callgraph import CallGraph, RULES  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")
#: Directories whose code the rules govern. Tests/bench/fuzz harnesses may
#: allocate and block freely.
ANALYZED_DIRS = ("src",)


def source_files(compile_db: str | None) -> list:
    """Repo-relative paths to analyze: TU sources from the compilation
    database intersected with ANALYZED_DIRS, plus every project header
    (headers are not TUs but hold inline hot-path definitions)."""
    files = set()
    if compile_db and os.path.exists(compile_db):
        with open(compile_db, encoding="utf-8") as fh:
            for entry in json.load(fh):
                path = os.path.normpath(os.path.join(
                    entry.get("directory", ""), entry["file"]))
                rel = os.path.relpath(path, REPO_ROOT)
                if rel.startswith(ANALYZED_DIRS):
                    files.add(rel)
    for base in ANALYZED_DIRS:
        for dirpath, _dirs, names in os.walk(os.path.join(REPO_ROOT, base)):
            for name in names:
                if name.endswith((".hpp", ".h")) or (
                        not files and name.endswith(".cpp")):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          REPO_ROOT)
                    files.add(rel)
    return sorted(files)


def build_graph(files, frontend: str):
    """-> (CallGraph, problems: list[str], frontend_used: str)"""
    problems = []
    functions = []
    use = frontend
    if frontend in ("auto", "clang"):
        try:
            import clang_frontend
            use = "clang"
        except Exception as exc:  # libclang genuinely optional
            if frontend == "clang":
                raise SystemExit(
                    f"idicn_analysis: --frontend clang unavailable: {exc}")
            use = "internal"
    if use == "clang":
        import clang_frontend
        for rel in files:
            fns, supp = clang_frontend.parse_file(
                rel, os.path.join(REPO_ROOT, rel))
            functions.extend(fns)
            for line in supp.missing_reason:
                problems.append(
                    f"{rel}:{line}: suppression without justification")
    else:
        import cpp_frontend
        use = "internal"
        for rel in files:
            with open(os.path.join(REPO_ROOT, rel), encoding="utf-8",
                      errors="replace") as fh:
                text = fh.read()
            fns, supp = cpp_frontend.parse_file(rel, text)
            functions.extend(fns)
            for line in supp.missing_reason:
                problems.append(
                    f"{rel}:{line}: suppression without justification "
                    "(write `// idicn-analysis: allow(<rule>): <why>`)")
    return CallGraph(functions), problems, use


# --- baselines --------------------------------------------------------------

def baseline_path(rule: str) -> str:
    return os.path.join(BASELINE_DIR, f"{rule}.baseline")


def load_baseline(rule: str) -> dict:
    """{finding-key: justification}"""
    entries = {}
    path = baseline_path(rule)
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            key, _, why = line.partition("  #")
            entries[key.strip()] = why.strip()
    return entries


def write_baseline(rule: str, findings) -> None:
    os.makedirs(BASELINE_DIR, exist_ok=True)
    with open(baseline_path(rule), "w", encoding="utf-8") as fh:
        fh.write(
            f"# {rule} baseline — known violations, ratcheted.\n"
            "# A new finding not listed here fails CI; an entry no longer\n"
            "# found also fails CI (delete it — the ratchet only tightens).\n"
            "# Format: <function> -> <sink>  # justification\n")
        for f in sorted(findings, key=lambda f: f.key()):
            fh.write(f"{f.key()}  # TODO justify\n")


def compare(rule: str, findings, baseline: dict):
    """-> (new_findings, stale_keys, known_count)"""
    found_keys = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline]
    stale = sorted(k for k in baseline if k not in found_keys)
    return new, stale, len(found_keys & set(baseline))


# --- main -------------------------------------------------------------------

def run(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rule", choices=sorted(RULES), action="append",
                    help="run only this rule (repeatable; default: all)")
    ap.add_argument("--frontend", choices=("auto", "clang", "internal"),
                    default="auto")
    ap.add_argument("--compile-db",
                    default=os.path.join(REPO_ROOT, "compile_commands.json"))
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite baseline files from current findings")
    ap.add_argument("--list", action="store_true",
                    help="dump the call graph roots and exit")
    ap.add_argument("--json", help="write findings as JSON to this path")
    args = ap.parse_args(argv)

    files = source_files(args.compile_db)
    if not files:
        print("idicn_analysis: no sources found", file=sys.stderr)
        return 2
    graph, problems, used = build_graph(files, args.frontend)
    rules = args.rule or sorted(RULES)

    if args.list:
        hot = sorted(f.name for f in graph.functions.values() if f.hot_path)
        loop = sorted(f.name for f in graph.functions.values() if f.loop_root)
        print(f"frontend: {used}; functions: {len(graph.functions)}")
        print(f"hot-path roots ({len(hot)}):")
        for name in hot:
            print(f"  {name}")
        print(f"loop roots ({len(loop)}):")
        for name in loop:
            print(f"  {name}")
        return 0

    failed = False
    all_json = {}
    for line in problems:
        print(f"error: {line}")
        failed = True
    for rule in rules:
        findings = RULES[rule](graph)
        if args.write_baseline:
            write_baseline(rule, findings)
            print(f"{rule}: wrote {len(findings)} entries to "
                  f"{os.path.relpath(baseline_path(rule), REPO_ROOT)}")
            continue
        baseline = load_baseline(rule)
        new, stale, known = compare(rule, findings, baseline)
        all_json[rule] = {
            "new": [f.__dict__ for f in new],
            "stale": stale,
            "baselined": known,
        }
        for f in sorted(new, key=lambda f: (f.file, f.line)):
            print(f"error: NEW {f.render()}")
            failed = True
        for key in stale:
            print(f"error: STALE [{rule}] baseline entry no longer found: "
                  f"'{key}' — the violation was fixed; delete the entry "
                  f"from {os.path.relpath(baseline_path(rule), REPO_ROOT)} "
                  "so it cannot regress")
            failed = True
        status = "FAIL" if (new or stale) else "ok"
        print(f"{rule}: {status} ({len(findings)} finding(s), "
              f"{known} baselined, {len(new)} new, {len(stale)} stale) "
              f"[frontend={used}]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(all_json, fh, indent=2, default=str)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(run())
