"""Optional libclang frontend: a real AST instead of the structural scan.

Used when `import clang.cindex` succeeds and a libclang shared object can
be loaded (CI installs clang-18 + python3-clang; the dev container usually
has neither, which is why cpp_frontend is the default). The output
contract is identical to cpp_frontend.parse_file: (list[Function],
Suppressions) — the rule engine in callgraph.py cannot tell the frontends
apart.

What the AST buys over the internal frontend:
  * call edges come from CALL_EXPR / CXX_NEW_EXPR nodes, so calls hidden
    behind operator overloads or template instantiation are seen;
  * member calls carry their qualified callee when the referenced
    declaration is resolvable, improving resolution precision;
  * annotations are read from the expanded attributes
    (`annotate("idicn_hot_path")`, `requires_capability(...)`) instead of
    macro tokens, so aliasing the macros still works.

Lock liveness stays source-extent based (a MutexLock variable is live for
call sites after its declaration inside the enclosing compound statement)
— the same approximation the internal frontend makes, and exact for this
repo's RAII usage.
"""

from __future__ import annotations

import json
import os
import re

import clang.cindex as cindex

from callgraph import Call, Function
from cpp_frontend import Suppressions, _SUPPRESS_RE

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_FUNCTION_KINDS = frozenset({
    cindex.CursorKind.FUNCTION_DECL,
    cindex.CursorKind.CXX_METHOD,
    cindex.CursorKind.CONSTRUCTOR,
    cindex.CursorKind.DESTRUCTOR,
    cindex.CursorKind.FUNCTION_TEMPLATE,
})

_DEFAULT_ARGS = ["-std=c++20", "-xc++",
                 "-I", os.path.join(_REPO_ROOT, "src")]

# Created at import so a missing libclang.so fails the import itself —
# idicn_analysis.build_graph catches that and falls back to cpp_frontend.
_index = cindex.Index.create()
_compile_args: dict[str, list] | None = None


def _load_compile_args() -> dict:
    """file -> clang args, from the repo compile_commands.json. Headers
    are not TUs; they parse with _DEFAULT_ARGS."""
    global _compile_args
    if _compile_args is not None:
        return _compile_args
    _compile_args = {}
    db = os.path.join(_REPO_ROOT, "compile_commands.json")
    if os.path.exists(db):
        with open(db, encoding="utf-8") as fh:
            for entry in json.load(fh):
                path = os.path.normpath(os.path.join(
                    entry.get("directory", ""), entry["file"]))
                args = entry.get("arguments")
                if args is None:
                    args = entry.get("command", "").split()
                # strip compiler, -c/-o pairs, and the input file itself
                cleaned = []
                skip = False
                for arg in args[1:]:
                    if skip:
                        skip = False
                        continue
                    if arg in ("-c", path, entry["file"]):
                        continue
                    if arg == "-o":
                        skip = True
                        continue
                    cleaned.append(arg)
                _compile_args[os.path.relpath(path, _REPO_ROOT)] = cleaned
    return _compile_args


def _harvest_suppressions(text: str) -> Suppressions:
    supp = Suppressions()
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            supp.add(lineno, m.group(1), m.group(2))
    return supp


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
        if c.kind in (cindex.CursorKind.NAMESPACE,
                      cindex.CursorKind.CLASS_DECL,
                      cindex.CursorKind.STRUCT_DECL,
                      cindex.CursorKind.CLASS_TEMPLATE) or c is cursor:
            spelling = c.spelling
            if spelling:  # anonymous namespaces elide, matching cpp_frontend
                parts.append(spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _attr_tokens(cursor) -> list:
    try:
        return [t.spelling for t in cursor.get_tokens()]
    except Exception:
        return []


def _annotations(cursor) -> tuple:
    """(hot_path, loop_root) from the declaration's attributes."""
    hot = False
    loop_root = False
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            if child.spelling == "idicn_hot_path":
                hot = True
        elif child.kind.is_attribute():
            toks = _attr_tokens(child)
            if any("IDICN_REQUIRES" in t for t in toks) or \
                    "requires_capability" in toks:
                if any("role" in t for t in toks):
                    loop_root = True
    # GCC-configured compile commands expand IDICN_HOT_PATH to nothing; the
    # declaration tokens still spell the macro, so fall back to them.
    if not hot:
        decl_tokens = _attr_tokens(cursor)
        # only look before the body brace
        head = decl_tokens[:decl_tokens.index("{")] \
            if "{" in decl_tokens else decl_tokens
        if "IDICN_HOT_PATH" in head:
            hot = True
        if not loop_root and "IDICN_REQUIRES" in head:
            k = head.index("IDICN_REQUIRES")
            if any("role" in t for t in head[k:k + 8]):
                loop_root = True
    return hot, loop_root


def _callee_of(call_cursor) -> tuple:
    """(callee_name, is_member) for a CALL_EXPR."""
    ref = call_cursor.referenced
    if ref is not None and ref.spelling:
        name = _qualified_name(ref) or ref.spelling
        is_member = ref.kind == cindex.CursorKind.CXX_METHOD
        return name, is_member
    return call_cursor.spelling or "", False


class _LockTracker:
    """MutexLock declarations live until the end of their enclosing
    compound statement (source-extent containment)."""

    def __init__(self):
        self.locks = []  # (varname, end_line)

    def note_decl(self, cursor, enclosing_end_line: int):
        type_spelling = cursor.type.spelling if cursor.type else ""
        if re.search(r"\bMutexLock\b", type_spelling):
            self.locks.append((cursor.spelling or "lock", enclosing_end_line))

    def held_at(self, line: int) -> tuple:
        return tuple(name for name, end in self.locks if line <= end)


def _walk_body(cursor, fn: Function, supp: Suppressions, tracker,
               compound_end: int):
    for child in cursor.get_children():
        kind = child.kind
        line = child.location.line or fn.line
        if kind == cindex.CursorKind.COMPOUND_STMT:
            end = child.extent.end.line or compound_end
            _walk_body(child, fn, supp, tracker, end)
            continue
        if kind == cindex.CursorKind.VAR_DECL:
            tracker.note_decl(child, compound_end)
        if kind == cindex.CursorKind.CXX_NEW_EXPR:
            suppressed = frozenset(supp.rules_near(line))
            if "*" not in suppressed:
                fn.calls.append(Call(
                    callee="new", line=line, suppressed=suppressed,
                    locks_held=tracker.held_at(line)))
        elif kind == cindex.CursorKind.CALL_EXPR:
            callee, is_member = _callee_of(child)
            if callee:
                suppressed = frozenset(supp.rules_near(line))
                if "*" not in suppressed:
                    fn.calls.append(Call(
                        callee=callee, line=line, is_member=is_member,
                        suppressed=suppressed,
                        locks_held=tracker.held_at(line)))
        _walk_body(child, fn, supp, tracker, compound_end)


def parse_file(rel_path: str, abs_path: str):
    """-> (list[Function], Suppressions) — cpp_frontend-compatible."""
    with open(abs_path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    supp = _harvest_suppressions(text)
    args = _load_compile_args().get(rel_path, _DEFAULT_ARGS)
    tu = _index.parse(abs_path, args=args)
    functions = []

    def visit(cursor):
        for child in cursor.get_children():
            loc_file = child.location.file
            if loc_file is not None and \
                    os.path.normpath(loc_file.name) != \
                    os.path.normpath(abs_path):
                continue  # skip included headers; they are parsed as files
            if child.kind in _FUNCTION_KINDS and child.is_definition():
                hot, loop_root = _annotations(child)
                def_line = child.location.line or 1
                fn = Function(
                    name=_qualified_name(child), file=rel_path,
                    line=def_line, hot_path=hot, loop_root=loop_root,
                    suppressed_rules=frozenset(supp.rules_near(def_line)))
                tracker = _LockTracker()
                body_end = child.extent.end.line or def_line
                _walk_body(child, fn, supp, tracker, body_end)
                functions.append(fn)
            elif child.kind in (cindex.CursorKind.NAMESPACE,
                                cindex.CursorKind.CLASS_DECL,
                                cindex.CursorKind.STRUCT_DECL,
                                cindex.CursorKind.CLASS_TEMPLATE,
                                cindex.CursorKind.UNEXPOSED_DECL):
                visit(child)

    visit(tu.cursor)
    return functions, supp
