#!/usr/bin/env python3
"""Self-tests for the idICN static analyzer (stdlib unittest only).

The fixtures are synthetic C++ translation units fed through the internal
frontend and the rule engine. The acceptance-critical case is
`test_seeded_transitive_blocking_violation`: an event-loop root that
reaches a sleep only through two layers of project calls MUST be flagged,
with the full root→sink path reported — that is the property the CI job
relies on to catch the next DESIGN.md §11-style stall before it ships.

Run:  python3 tools/analysis/test_analysis.py -v
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import callgraph
import cpp_frontend
import idicn_analysis
from callgraph import CallGraph, Finding


def parse(text, rel="fixture.cpp"):
    functions, supp = cpp_frontend.parse_file(rel, text)
    return functions, supp


def graph_of(*texts_and_paths):
    functions = []
    for text, rel in texts_and_paths:
        fns, _ = parse(text, rel)
        functions.extend(fns)
    return CallGraph(functions)


class FrontendTest(unittest.TestCase):
    def test_qualified_names_and_annotations(self):
        fns, _ = parse("""
            namespace idicn { namespace net {
            class Decoder {
             public:
              IDICN_HOT_PATH void feed(std::string_view bytes);
            };
            IDICN_HOT_PATH void Decoder::feed(std::string_view bytes) {
              buffer_.append(bytes.data(), bytes.size());
            }
            void helper() { feed(""); }
            }  // namespace net
            }  // namespace idicn
        """)
        by_name = {f.name: f for f in fns}
        self.assertIn("idicn::net::Decoder::feed", by_name)
        self.assertTrue(by_name["idicn::net::Decoder::feed"].hot_path)
        self.assertFalse(by_name["idicn::net::helper"].hot_path)
        callees = [c.callee for c in by_name["idicn::net::Decoder::feed"].calls]
        self.assertIn("append", callees)

    def test_loop_root_annotation_requires_role_argument(self):
        fns, _ = parse("""
            namespace idicn::runtime {
            struct Worker {
              void on_readable(int fd) IDICN_REQUIRES(loop_role_) {
                drain(fd);
              }
              void helper(int fd) IDICN_REQUIRES(mu_) {
                drain(fd);
              }
            };
            }
        """)
        by_name = {f.name: f for f in fns}
        self.assertTrue(by_name["idicn::runtime::Worker::on_readable"].loop_root)
        self.assertFalse(by_name["idicn::runtime::Worker::helper"].loop_root)

    def test_mutexlock_scoping(self):
        fns, _ = parse("""
            namespace idicn {
            void locked_then_released(Transport* net_) {
              {
                core::MutexLock lock(&mu_);
                snapshot();
              }
              net_->send(peer, msg);
            }
            void held_across(Transport* net_) {
              core::MutexLock lock(&mu_);
              net_->send(peer, msg);
            }
            }
        """)
        by_name = {f.name: f for f in fns}
        released = by_name["idicn::locked_then_released"]
        send_call = [c for c in released.calls if c.callee == "send"][0]
        self.assertEqual(send_call.locks_held, ())
        held = by_name["idicn::held_across"]
        send_call = [c for c in held.calls if c.callee == "send"][0]
        self.assertEqual(send_call.locks_held, ("lock",))

    def test_suppression_harvest_and_missing_reason(self):
        _, supp = parse("""
            void f() {
              // idicn-analysis: allow(lock-across-io): probe never waits
              g();
              // idicn-analysis: allow(loop-blocking):
              h();
            }
        """)
        lines_with = [ln for ln, rules in supp.by_line.items()
                      if "lock-across-io" in rules]
        self.assertEqual(len(lines_with), 1)
        self.assertEqual(len(supp.missing_reason), 1)

    def test_strings_comments_do_not_produce_calls(self):
        fns, _ = parse("""
            void f() {
              const char* s = "sleep_for(1s) connect(fd)";
              // sleep_for(2s) in a comment
              /* connect(fd) in a block comment */
              const char* r = R"(usleep(5))";
            }
        """)
        self.assertEqual(fns[0].calls, [])


class ResolutionTest(unittest.TestCase):
    def test_global_spelling_never_resolves_to_project(self):
        g = graph_of(("""
            namespace idicn {
            void send(int fd) { helper(); }
            void caller(int fd) { ::send(fd, buf, len, 0); }
            }
        """, "a.cpp"))
        caller = g.functions["idicn::caller"]
        call = [c for c in caller.calls if c.terminal == "send"][0]
        self.assertTrue(call.is_global)
        self.assertEqual(g.resolve(call, caller.file), set())

    def test_ambient_names_excluded(self):
        g = graph_of(("""
            namespace idicn {
            struct Client { void get(int id) { fetch(id); } };
            void caller(FileDescriptor fd) { int raw = fd.get(); }
            }
        """, "a.cpp"))
        caller = g.functions["idicn::caller"]
        call = [c for c in caller.calls if c.terminal == "get"][0]
        self.assertEqual(g.resolve(call, caller.file), set())

    def test_unqualified_free_calls_prefer_same_file(self):
        g = graph_of(
            ("namespace idicn { namespace { void fail() { abort(); } } "
             "void a() { fail(); } }", "a.cpp"),
            ("namespace idicn { namespace { void fail() { retry(); } } "
             "void b() { fail(); } }", "b.cpp"))
        caller = g.functions["idicn::a"]
        call = [c for c in caller.calls if c.terminal == "fail"][0]
        resolved = g.resolve(call, caller.file)
        self.assertEqual({g.functions[n].file for n in resolved}, {"a.cpp"})

    def test_qualified_calls_suffix_match(self):
        g = graph_of(("""
            namespace idicn { namespace net {
            HttpResponse make_response(int status) { return {}; }
            } }
            namespace idicn {
            void caller() { auto r = net::make_response(200); }
            }
        """, "a.cpp"))
        caller = g.functions["idicn::caller"]
        call = [c for c in caller.calls if c.terminal == "make_response"][0]
        self.assertEqual(g.resolve(call, caller.file),
                         {"idicn::net::make_response"})


class RuleTest(unittest.TestCase):
    # The acceptance case: an intentionally-introduced blocking call two
    # project-call hops below an event-loop root must be flagged, and the
    # report must carry the full path so the fix is obvious.
    def test_seeded_transitive_blocking_violation(self):
        g = graph_of(("""
            namespace idicn::runtime {
            void refresh_counter(int peer) {
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
            void maybe_refresh(int peer) {
              refresh_counter(peer);
            }
            struct Worker {
              void on_readable(int fd) IDICN_REQUIRES(loop_role_) {
                maybe_refresh(fd);
              }
            };
            }
        """, "worker.cpp"))
        findings = callgraph.check_loop_blocking(g)
        self.assertEqual(len(findings), 1)
        f = findings[0]
        self.assertEqual(f.sink, "sleep_for")
        self.assertEqual(f.function, "idicn::runtime::refresh_counter")
        self.assertEqual(f.path, (
            "idicn::runtime::Worker::on_readable",
            "idicn::runtime::maybe_refresh",
            "idicn::runtime::refresh_counter"))

    def test_blocking_unreachable_from_loop_is_clean(self):
        g = graph_of(("""
            namespace idicn::runtime {
            void background_task() {
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
            struct Worker {
              void on_readable(int fd) IDICN_REQUIRES(loop_role_) {
                enqueue(fd);
              }
            };
            }
        """, "worker.cpp"))
        self.assertEqual(callgraph.check_loop_blocking(g), [])

    def test_blocking_project_suffix_is_a_sink(self):
        g = graph_of(("""
            namespace idicn::runtime {
            struct Worker {
              void on_timer() IDICN_REQUIRES(loop_role_) {
                retry_.sleep(attempt);
              }
            };
            void RetryPolicy::sleep(int attempt) { usleep(1000); }
            }
        """, "worker.cpp"))
        findings = callgraph.check_loop_blocking(g)
        sinks = {f.sink for f in findings}
        self.assertIn("sleep", sinks)

    def test_hot_path_transitive_allocation(self):
        g = graph_of(("""
            namespace idicn {
            void record(std::vector<int>& v, int x) { v.push_back(x); }
            IDICN_HOT_PATH void serve(std::vector<int>& v) { record(v, 1); }
            void cold(std::vector<int>& v) { v.push_back(2); }
            }
        """, "serve.cpp"))
        findings = callgraph.check_hot_path_allocations(g)
        self.assertEqual([(f.function, f.sink) for f in findings],
                         [("idicn::record", "push_back")])
        self.assertEqual(findings[0].path, ("idicn::serve", "idicn::record"))

    def test_hot_path_flags_new_and_string_ctor(self):
        g = graph_of(("""
            namespace idicn {
            IDICN_HOT_PATH void serve(const char* p) {
              std::string copy(p);
              auto* node = new Node();
            }
            }
        """, "serve.cpp"))
        sinks = {f.sink for f in callgraph.check_hot_path_allocations(g)}
        self.assertIn("new", sinks)
        self.assertTrue(any(s.endswith("string") for s in sinks))

    def test_lock_across_io_direct_and_transitive(self):
        g = graph_of(("""
            namespace idicn {
            void forward(Transport* net_, int peer) { net_->send(peer, m); }
            void direct_bad(Transport* net_) {
              core::MutexLock lock(&mu_);
              net_->send(peer, m);
            }
            void transitive_bad(Transport* net_) {
              core::MutexLock lock(&mu_);
              forward(net_, peer);
            }
            void fine(Transport* net_) {
              { core::MutexLock lock(&mu_); snapshot(); }
              forward(net_, peer);
            }
            }
        """, "proxy.cpp"))
        findings = callgraph.check_lock_across_io(g)
        flagged = {f.function for f in findings}
        self.assertEqual(flagged, {"idicn::direct_bad", "idicn::transitive_bad"})

    def test_call_site_suppression_clears_finding(self):
        g = graph_of(("""
            namespace idicn {
            void probe(Transport* net_) {
              core::MutexLock lock(&mu_);
              // idicn-analysis: allow(lock-across-io): nonblocking MSG_PEEK
              net_->recv(fd, buf);
            }
            }
        """, "probe.cpp"))
        self.assertEqual(callgraph.check_lock_across_io(g), [])


class BaselineTest(unittest.TestCase):
    @staticmethod
    def finding(function, sink):
        return Finding(rule="loop-blocking", function=function, file="f.cpp",
                       line=1, sink=sink, path=(function,))

    def test_compare_classifies_new_known_stale(self):
        baseline = {"a::f -> sleep_for": "why", "a::gone -> usleep": "why"}
        findings = [self.finding("a::f", "sleep_for"),
                    self.finding("a::fresh", "sleep")]
        new, stale, known = idicn_analysis.compare(
            "loop-blocking", findings, baseline)
        self.assertEqual([f.key() for f in new], ["a::fresh -> sleep"])
        self.assertEqual(stale, ["a::gone -> usleep"])
        self.assertEqual(known, 1)

    def test_baseline_file_roundtrip(self):
        findings = [self.finding("a::f", "sleep_for")]
        with tempfile.TemporaryDirectory() as tmp:
            old = idicn_analysis.BASELINE_DIR
            idicn_analysis.BASELINE_DIR = tmp
            try:
                idicn_analysis.write_baseline("loop-blocking", findings)
                loaded = idicn_analysis.load_baseline("loop-blocking")
            finally:
                idicn_analysis.BASELINE_DIR = old
        self.assertEqual(list(loaded), ["a::f -> sleep_for"])


class FullTreeTest(unittest.TestCase):
    """The analyzer, run exactly as CI runs it, is clean on the tree it
    ships with: every finding baselined, none stale, roots all present."""

    def test_repo_is_clean_against_baselines(self):
        self.assertEqual(idicn_analysis.run([]), 0)

    def test_annotated_roots_are_discovered(self):
        files = idicn_analysis.source_files(
            os.path.join(idicn_analysis.REPO_ROOT, "compile_commands.json"))
        graph, problems, _ = idicn_analysis.build_graph(files, "internal")
        self.assertEqual(problems, [])
        hot = {f.name for f in graph.functions.values() if f.hot_path}
        self.assertIn("idicn::net::HttpDecoder::feed", hot)
        self.assertIn("idicn::idicn::Proxy::serve_entry", hot)
        self.assertIn("idicn::cache::ShardedCache::lookup", hot)
        loop = {f.name for f in graph.functions.values() if f.loop_root}
        self.assertTrue(any(n.endswith("::flush") for n in loop))


if __name__ == "__main__":
    unittest.main()
