"""Call-graph model and rule engine for the idICN static analyzer.

Frontends (cpp_frontend, clang_frontend) produce `Function` records —
definitions with their outgoing calls, annotations, and the set of
MutexLock-style locks live at each call site. This module owns everything
frontend-independent: name resolution, transitive reachability, and the
three enforced properties:

  hot-path-alloc   No function annotated IDICN_HOT_PATH may transitively
                   reach an allocation (operator new / malloc / growing a
                   std container / building a std::string). Known residual
                   allocations live in a checked-in baseline that can only
                   shrink (the ratchet toward ROADMAP item 2's
                   zero-allocation hot path).
  loop-blocking    No function that runs on an event-loop thread (any
                   definition annotated IDICN_REQUIRES(<...role...>)) may
                   transitively reach a blocking call: sleeps, process
                   spawns, synchronous connect/HTTP-client traffic, condvar
                   waits, RetryPolicy::sleep. This is the transitive form
                   of the PR 7 sibling counter-fetch stall (DESIGN.md §11).
  lock-across-io   No MutexLock may be live in scope at a call that
                   performs (or transitively reaches) network I/O — the
                   "snapshot → revalidate unlocked → re-lock" invariant
                   PR 4 established by convention.

Resolution is name-based and deliberately over-approximate: a member call
`x->send(...)` links to every project definition whose terminal name is
`send` (virtual dispatch without type inference). False edges are absorbed
by the baseline/suppression machinery; missing edges would be silent, so
the primitive tables below classify the std/libc names we cannot see into.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Optional

# --- primitive classification tables ---------------------------------------

#: Terminal call names that allocate (or may allocate by growing). Member
#: spellings (`v.push_back`) and free spellings (`malloc`) both land here
#: once the frontend reduces a call to its terminal name.
ALLOCATING_NAMES = frozenset({
    "new",  # frontends emit `new` for new-expressions
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_shared", "make_unique", "to_string",
    # std container / string growth
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert", "resize", "reserve", "append", "assign", "substr",
    "shrink_to_fit", "str", "stringstream", "ostringstream",
})

#: std::string-ish type names whose constructor call materializes a buffer.
ALLOCATING_TYPES = frozenset({
    "string", "vector", "deque", "map", "set", "unordered_map",
    "unordered_set", "list", "function",
})

#: Terminal names that block the calling thread outright.
BLOCKING_NAMES = frozenset({
    "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep",
    "system", "popen", "getaddrinfo", "wait", "wait_for", "wait_until",
    "join",
})

#: Project functions that are blocking by contract even though their
#: terminal names are not in BLOCKING_NAMES (suffix-matched, `::`-separated).
BLOCKING_PROJECT_SUFFIXES = (
    "RetryPolicy::sleep",
    "HttpClient::request",
    "HttpClient::request_streaming",
    "HttpClient::ensure_connected",
    "connect_tcp",
)

#: Terminal names that perform network I/O (the lock-across-io sinks).
#: Bare `send`/`recv` cover both the libc syscalls and Transport-style
#: member calls (`net_->send`), which is exactly the PR 4 convention.
IO_NAMES = frozenset({
    "send", "recv", "sendmsg", "recvmsg", "sendto", "recvfrom",
    "connect", "accept", "send_streaming", "connect_tcp",
})

#: Ubiquitous accessor names excluded from unqualified resolution: a
#: member call `fd.get()` must not edge into every project function named
#: `get` (that one link would pull the whole proxy into ServerWorker::flush's
#: reachable set). The cost — project functions with these names are only
#: reachable via qualified calls — is documented in DESIGN.md §12.
AMBIENT_NAMES = frozenset({
    "get", "size", "empty", "begin", "end", "data", "clear", "reset",
    "release", "count", "value", "front", "back", "str", "c_str", "what",
    "at", "swap", "first", "second", "length", "max", "min", "load",
    "store",
})

#: Names never worth recording as calls (annotation macros, control flow,
#: casts, assert machinery). Shared with the frontends.
NOISE_NAMES = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "decltype", "static_assert", "assert", "defined",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "noexcept", "throw", "delete", "typeid", "alignas", "explicit",
    "__attribute__",
})


@dataclasses.dataclass
class Call:
    """One call site inside a function body."""
    callee: str                 #: as written: `serve_entry`, `net::make_response`
    line: int
    locks_held: tuple = ()      #: MutexLock variable names live at this site
    is_ctor: bool = False       #: `Type name(args)` / `Type(args)` style
    is_member: bool = False     #: spelled `obj.name(...)` / `obj->name(...)`
    is_global: bool = False     #: spelled `::name(...)` — libc, never project
    suppressed: frozenset = frozenset()  #: rules allowed at this call site

    @property
    def terminal(self) -> str:
        """Last `::` segment — the name used for primitive classification."""
        return self.callee.rsplit("::", 1)[-1]


@dataclasses.dataclass
class Function:
    """One function definition."""
    name: str                   #: fully qualified (anonymous namespaces elided)
    file: str                   #: repo-relative path
    line: int
    calls: list = dataclasses.field(default_factory=list)
    hot_path: bool = False      #: carries IDICN_HOT_PATH
    loop_root: bool = False     #: carries IDICN_REQUIRES(<...role...>)
    suppressed_rules: frozenset = frozenset()  #: idicn-analysis: allow(...)

    @property
    def terminal(self) -> str:
        return self.name.rsplit("::", 1)[-1]


@dataclasses.dataclass
class Finding:
    rule: str
    function: str               #: qualified name of the offending function
    file: str
    line: int
    sink: str                   #: primitive / blocking callee reached
    path: tuple                 #: root → … → function (qualified names)
    detail: str = ""

    def key(self) -> str:
        """Stable identity for baseline matching: file-independent so a
        function can move without churning the baseline, but per-sink so
        each allocation/blocking site ratchets individually."""
        return f"{self.function} -> {self.sink}"

    def render(self) -> str:
        via = " -> ".join(self.path) if self.path else self.function
        text = (f"{self.file}:{self.line}: [{self.rule}] {self.function} "
                f"reaches '{self.sink}'")
        if self.detail:
            text += f" ({self.detail})"
        return text + f"\n    path: {via}"


class CallGraph:
    """Whole-project call graph with suffix-based name resolution."""

    def __init__(self, functions: Iterable[Function]):
        self.functions: dict[str, Function] = {}
        self.by_terminal: dict[str, set[str]] = {}
        for fn in functions:
            existing = self.functions.get(fn.name)
            if existing is not None:
                # Overloads / redefinitions across TUs merge into one node:
                # reachability is a union over overload sets anyway.
                existing.calls.extend(fn.calls)
                existing.hot_path = existing.hot_path or fn.hot_path
                existing.loop_root = existing.loop_root or fn.loop_root
                existing.suppressed_rules = frozenset(
                    existing.suppressed_rules | fn.suppressed_rules)
            else:
                self.functions[fn.name] = fn
                self.by_terminal.setdefault(fn.terminal, set()).add(fn.name)

    def resolve(self, call: Call, caller_file: str = "") -> set:
        """Project definitions a call might dispatch to (over-approximate:
        name-based virtual dispatch). Precision rules:
          * `::name(...)` is a libc/syscall spelling — never a project edge;
          * qualified calls suffix-match (`net::make_response`);
          * unqualified member calls fan out to every definition of that
            terminal name, except AMBIENT_NAMES (see above);
          * unqualified free calls prefer same-file definitions when any
            exist — anonymous-namespace helpers are file-local, and two
            files defining a helper `fail()` must not cross-link."""
        if call.is_global:
            return set()
        if "::" in call.callee:
            suffix = call.callee.split("::")
            out = set()
            for name in self.by_terminal.get(suffix[-1], ()):  # cheap prefilter
                if name.split("::")[-len(suffix):] == suffix or name == call.callee:
                    out.add(name)
            return out
        if call.callee in AMBIENT_NAMES:
            return set()
        candidates = set(self.by_terminal.get(call.callee, ()))
        if not call.is_member and caller_file and len(candidates) > 1:
            local = {n for n in candidates
                     if self.functions[n].file == caller_file}
            if local:
                return local
        return candidates

    # --- reachability helpers ---------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> dict:
        """BFS over resolved edges; returns {function: parent-or-None}."""
        parents: dict[str, Optional[str]] = {}
        queue = deque()
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            name = queue.popleft()
            fn = self.functions[name]
            if "*" in fn.suppressed_rules:
                continue
            for call in fn.calls:
                for target in self.resolve(call, fn.file):
                    if target not in parents:
                        parents[target] = name
                        queue.append(target)
        return parents

    def path_to(self, parents: dict, name: str) -> tuple:
        path = []
        cursor: Optional[str] = name
        while cursor is not None:
            path.append(cursor)
            cursor = parents.get(cursor)
        return tuple(reversed(path))

    def transitive_sinks(self, is_direct_sink) -> set:
        """Project functions that reach a sink call, directly or through
        other project functions. `is_direct_sink(fn, call) -> bool`."""
        hits = set()
        callers: dict[str, set[str]] = {}
        for fn in self.functions.values():
            for call in fn.calls:
                if is_direct_sink(fn, call):
                    hits.add(fn.name)
                for target in self.resolve(call, fn.file):
                    callers.setdefault(target, set()).add(fn.name)
        queue = deque(hits)
        while queue:
            name = queue.popleft()
            for caller in callers.get(name, ()):
                if caller not in hits:
                    hits.add(caller)
                    queue.append(caller)
        return hits


# --- the three rules --------------------------------------------------------

def _call_allocates(call: Call) -> bool:
    if call.terminal in ALLOCATING_NAMES:
        return True
    return call.is_ctor and call.terminal in ALLOCATING_TYPES


def _matches_suffix(name: str, suffix: str) -> bool:
    return name == suffix or name.endswith("::" + suffix)


def _is_blocking_call(graph: CallGraph, call: Call, caller_file: str) -> bool:
    if call.terminal in BLOCKING_NAMES:
        return True
    if any(_matches_suffix(call.callee, s) for s in BLOCKING_PROJECT_SUFFIXES):
        return True
    return any(_matches_suffix(t, s)
               for t in graph.resolve(call, caller_file)
               for s in BLOCKING_PROJECT_SUFFIXES)


def check_hot_path_allocations(graph: CallGraph) -> list:
    """Every allocation site reachable from an IDICN_HOT_PATH root."""
    roots = [f.name for f in graph.functions.values() if f.hot_path]
    parents = graph.reachable_from(roots)
    findings = []
    for name in parents:
        fn = graph.functions[name]
        if {"hot-path-alloc", "*"} & fn.suppressed_rules:
            continue
        seen = set()
        for call in fn.calls:
            if not _call_allocates(call) or "hot-path-alloc" in call.suppressed:
                continue
            sink = call.terminal if not call.is_ctor else call.callee
            if sink in seen:
                continue  # one finding per (function, sink)
            seen.add(sink)
            findings.append(Finding(
                rule="hot-path-alloc", function=name, file=fn.file,
                line=call.line, sink=sink,
                path=graph.path_to(parents, name),
                detail="allocates on the annotated hot path"))
    return findings


def check_loop_blocking(graph: CallGraph) -> list:
    """Every blocking call reachable from an event-loop handler root."""
    roots = [f.name for f in graph.functions.values() if f.loop_root]
    parents = graph.reachable_from(roots)
    findings = []
    for name in parents:
        fn = graph.functions[name]
        if {"loop-blocking", "*"} & fn.suppressed_rules:
            continue
        seen = set()
        for call in fn.calls:
            if not _is_blocking_call(graph, call, fn.file) or \
                    "loop-blocking" in call.suppressed:
                continue
            if call.terminal in seen:
                continue
            seen.add(call.terminal)
            findings.append(Finding(
                rule="loop-blocking", function=name, file=fn.file,
                line=call.line, sink=call.terminal,
                path=graph.path_to(parents, name),
                detail="blocks a thread reachable from an event-loop root"))
    return findings


def check_lock_across_io(graph: CallGraph) -> list:
    """Calls made with a MutexLock live that perform / reach network I/O."""
    def direct_io(_fn: Function, call: Call) -> bool:
        return call.terminal in IO_NAMES

    io_set = graph.transitive_sinks(direct_io)
    findings = []
    for fn in graph.functions.values():
        if {"lock-across-io", "*"} & fn.suppressed_rules:
            continue
        for call in fn.calls:
            if not call.locks_held or "lock-across-io" in call.suppressed:
                continue
            reaches = call.terminal in IO_NAMES or any(
                t in io_set for t in graph.resolve(call, fn.file))
            if not reaches:
                continue
            findings.append(Finding(
                rule="lock-across-io", function=fn.name, file=fn.file,
                line=call.line, sink=call.terminal,
                path=(fn.name,),
                detail=f"lock(s) {', '.join(call.locks_held)} held across "
                       "network I/O"))
    return findings


RULES = {
    "hot-path-alloc": check_hot_path_allocations,
    "loop-blocking": check_loop_blocking,
    "lock-across-io": check_lock_across_io,
}
