"""Internal C++ frontend: stdlib-only tokenizer + structural parser.

This is the frontend the analyzer trusts everywhere: it needs nothing but
Python 3. It is not a C++ parser — it is a brace/paren-accurate structural
scanner tuned to this repo's idiom (clang-format-clean C++20, no macros
that hide braces, no K&R surprises). It extracts, per translation unit:

  * function definitions with fully qualified names (namespace and class
    scopes tracked through brace nesting),
  * every call site inside each body, reduced to a terminal callee name
    (`net::make_response`, `push_back`, `new`, ...),
  * which MutexLock-style guards are live in scope at each call site
    (brace-depth scoped, so `{ MutexLock l(m); ... }` releases at `}`),
  * IDICN_HOT_PATH / IDICN_REQUIRES(<...role...>) annotations on the
    definition, and
  * `// idicn-analysis: allow(<rule>): <why>` suppression comments.

Known, documented approximations (DESIGN.md §12):
  * calls through stored std::function (e.g. `loop_->post(lambda)`) are
    not edges — the lambda body's calls are attributed to the enclosing
    function, which is the thread they were written on, not necessarily
    the thread they run on;
  * overloads merge into one call-graph node;
  * a `{` inside parentheses (brace-init arguments) never opens a scope,
    but a delegating-constructor body after such an argument may be
    attributed one statement late. Neither affects reachability answers.
"""

from __future__ import annotations

import re

from callgraph import Call, Function, NOISE_NAMES

# C++ keywords and repo macros that can precede `(` without being calls.
_NON_CALL = NOISE_NAMES | {
    "and", "or", "not", "new", "co_await", "co_return", "co_yield",
    "do", "else", "try", "template", "typename", "using", "operator",
    "case", "default", "goto", "requires", "concept",
}
_NON_CALL_PREFIXES = ("IDICN_",)  # annotation macro family, never calls

_KEYWORD_NO_DEF = frozenset({
    "if", "for", "while", "switch", "catch", "return", "else", "do",
    "sizeof", "new", "delete", "throw", "case",
})

_SUPPRESS_RE = re.compile(
    r"idicn-analysis:\s*allow\(([a-z*-]+)\)\s*:?\s*(.*)")

_TOKEN_RE = re.compile(r"""
      ::\s*~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*   # ::qualified
    | ~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*        # name or a::b::c
    | ->\*? | \+\+ | -- | << | >> | <= | >= | == | != | && | \|\|
    | [{}()\[\];:,.<>=+\-*/%!&|^?~]
    | \d[\w.]*                                         # numeric literal
""", re.VERBOSE)


class Suppressions:
    """Per-line rule suppressions with mandatory justifications."""

    def __init__(self):
        self.by_line: dict[int, set[str]] = {}
        self.missing_reason: list[int] = []

    def add(self, line: int, rule: str, reason: str):
        if not reason.strip():
            self.missing_reason.append(line)
            return
        self.by_line.setdefault(line, set()).add(rule)

    def rules_near(self, line: int) -> set:
        """A suppression applies on its own line or the line above."""
        return self.by_line.get(line, set()) | self.by_line.get(line - 1, set())


def strip_comments_and_strings(text: str, supp: Suppressions) -> str:
    """Blank out comments, string/char literals, and preprocessor lines,
    preserving newlines so token line numbers stay true. Suppression
    comments are harvested before they disappear."""
    out = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            m = _SUPPRESS_RE.search(text[i:j])
            if m:
                supp.add(line, m.group(1), m.group(2))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            block = text[i:j]
            m = _SUPPRESS_RE.search(block)
            if m:
                supp.add(line, m.group(1), m.group(2))
            out.append("\n" * block.count("\n"))
            line += block.count("\n")
            i = j + 2
        elif c in "\"'":
            if c == '"' and text[i - 1:i] == "R" and \
                    not text[i - 2:i - 1].isalnum():
                # raw string: R"delim( ... )delim"
                delim_end = text.find("(", i)
                delim = text[i + 1:delim_end] if delim_end > 0 else ""
                close = text.find(")" + delim + '"', delim_end)
                close = n if close < 0 else close + len(delim) + 2
                skipped = text[i:close]
                out.append("\n" * skipped.count("\n"))
                line += skipped.count("\n")
                i = close
                continue
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append('""' if c == '"' else "'x'")
            i = j + 1
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            # preprocessor line incl. backslash continuations
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k < 0 else k
                if text[k - 1:k] == "\\":
                    out.append("\n")
                    line += 1
                    j = k + 1
                else:
                    j = k
                    break
            i = j
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out)


def tokenize(text: str) -> list:
    """[(token, line)] with `a :: b` / `operator+` merged."""
    tokens = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        tok = re.sub(r"\s+", "", m.group(0))
        if tokens and tokens[-1][0] == "operator":
            prev_tok, prev_line = tokens.pop()
            tokens.append((prev_tok + tok, prev_line))
            continue
        tokens.append((tok, line))
    return tokens


def _is_name(tok: str) -> bool:
    return bool(tok) and (tok[0].isalpha() or tok[0] in "_~:" or
                          tok.startswith("operator"))


class _Scope:
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str = ""):
        self.kind = kind   # namespace | class | function | block
        self.name = name


class Parser:
    """One pass over a token stream; collects Function records."""

    def __init__(self, rel_path: str, supp: Suppressions):
        self.rel = rel_path
        self.supp = supp
        self.functions: list[Function] = []

    # -- declaration-head analysis -----------------------------------------

    @staticmethod
    def _find_definition(pending) -> tuple:
        """Given the tokens since the last statement boundary (ending just
        before a `{` at paren-depth 0), decide whether they form a function
        definition head. Returns (name, hot, loop_root) or (None, ...)."""
        hot = any(t == "IDICN_HOT_PATH" for t, _ in pending)
        loop_root = False
        name = None
        depth = 0
        for idx, (tok, _ln) in enumerate(pending):
            if tok == "(":
                depth += 1
                continue
            if tok == ")":
                depth -= 1
                continue
            if depth:
                continue
            nxt = pending[idx + 1][0] if idx + 1 < len(pending) else ""
            if tok.startswith("IDICN_REQUIRES") or (
                    tok == "IDICN_REQUIRES"):
                # args live in the following paren group
                args = []
                d = 0
                for t2, _ in pending[idx + 1:]:
                    if t2 == "(":
                        d += 1
                    elif t2 == ")":
                        d -= 1
                        if d == 0:
                            break
                    elif d:
                        args.append(t2)
                if any("role" in a for a in args):
                    loop_root = True
                continue
            if name is None and _is_name(tok) and nxt == "(" and \
                    tok not in _KEYWORD_NO_DEF and \
                    not any(tok.startswith(p) for p in _NON_CALL_PREFIXES):
                name = tok.lstrip(":")
        if name is None:
            return None, hot, loop_root
        # `foo() = default;`-style heads never reach here (they end in `;`),
        # but lambdas assigned at namespace scope would: reject heads whose
        # candidate is preceded by `=` capture-style brackets.
        return name, hot, loop_root

    # -- main loop ----------------------------------------------------------

    def parse(self, tokens):
        scopes: list[_Scope] = []
        pending: list = []          # tokens since last ; { }
        paren_depth = 0
        current_fn: Function | None = None
        fn_base_depth = 0           # scope-stack length where fn body began
        locks: list = []            # (varname, scope_depth)
        i = 0
        n = len(tokens)
        while i < n:
            tok, line = tokens[i]
            if tok == "(":
                paren_depth += 1
                self._maybe_record_call(pending, tokens, i, line,
                                        current_fn, locks, len(scopes))
                pending.append((tok, line))
            elif tok == ")":
                paren_depth = max(0, paren_depth - 1)
                pending.append((tok, line))
            elif tok == "{" and paren_depth == 0:
                self._open_brace(pending, scopes, line,
                                 current_fn_ref := [current_fn])
                current_fn = current_fn_ref[0]
                if current_fn is not None and fn_base_depth == 0:
                    fn_base_depth = len(scopes)
                pending = []
            elif tok == "}" and paren_depth == 0:
                if scopes:
                    closing = scopes.pop()
                    locks = [lk for lk in locks if lk[1] <= len(scopes)]
                    if closing.kind == "function":
                        current_fn = None
                        fn_base_depth = 0
                        locks = []
                pending = []
            elif tok == ";" and paren_depth == 0:
                pending = []
            else:
                if current_fn is not None and tok == "new":
                    current_fn.calls.append(Call(
                        callee="new", line=line,
                        locks_held=tuple(lk[0] for lk in locks)))
                if current_fn is not None and paren_depth == 0 and \
                        tok.endswith("MutexLock"):
                    # `MutexLock name(...)` / `MutexLock name{...}` /
                    # possibly cv-qualified and namespace-qualified.
                    if i + 1 < n and _is_name(tokens[i + 1][0]):
                        locks.append((tokens[i + 1][0], len(scopes)))
                pending.append((tok, line))
            i += 1

    def _open_brace(self, pending, scopes, line, current_fn_ref):
        toks = [t for t, _ in pending]
        in_function = any(s.kind == "function" for s in scopes)
        if in_function:
            scopes.append(_Scope("block"))
            return
        if toks and toks[0] == "namespace":
            name = toks[1] if len(toks) > 1 and _is_name(toks[1]) else ""
            scopes.append(_Scope("namespace", name))
            return
        # `class X`, `struct X`, possibly after template<...> or with a
        # base clause; also `enum class X`.
        for kw in ("class", "struct"):
            if kw in toks and "enum" not in toks:
                k = toks.index(kw)
                if k + 1 < len(toks) and _is_name(toks[k + 1]) and \
                        "(" not in toks[:k]:
                    # not a `struct X` used as a return type of a function:
                    # a definition head would contain a `(` after the name.
                    if "(" not in toks[k + 1:] or ":" in toks[k + 2:k + 3]:
                        scopes.append(_Scope("class", toks[k + 1]))
                        return
        if "enum" in toks or (toks and toks[0] == "union"):
            scopes.append(_Scope("block"))
            return
        name, hot, loop_root = self._find_definition(pending)
        if name is not None:
            qual = [s.name for s in scopes if s.kind in ("namespace", "class")
                    and s.name]
            fq = "::".join(qual + [name]) if "::" not in name else \
                "::".join(qual[:self._overlap(qual, name)] + [name])
            def_line = pending[0][1] if pending else line
            fn = Function(
                name=fq, file=self.rel, line=def_line,
                hot_path=hot, loop_root=loop_root,
                suppressed_rules=frozenset(self.supp.rules_near(def_line)))
            self.functions.append(fn)
            scopes.append(_Scope("function", name))
            current_fn_ref[0] = fn
        else:
            scopes.append(_Scope("block"))

    @staticmethod
    def _overlap(qual, name):
        """Avoid `idicn::idicn::Proxy::Proxy::serve` when an out-of-line
        member `Proxy::serve` is defined inside namespace idicn::idicn."""
        head = name.split("::")[0]
        for k in range(len(qual)):
            if qual[k] == head:
                return k
        return len(qual)

    def _maybe_record_call(self, pending, tokens, i, line, current_fn,
                           locks, _depth):
        if current_fn is None or not pending:
            return
        callee_tok, _ = pending[-1]
        if not _is_name(callee_tok) or callee_tok in _NON_CALL or \
                any(callee_tok.startswith(p) for p in _NON_CALL_PREFIXES):
            return
        is_global = callee_tok.startswith("::")
        callee = callee_tok.lstrip(":").lstrip("~")
        if not callee:
            return
        prev = pending[-2][0] if len(pending) >= 2 else ""
        is_member = prev in (".", "->")
        is_ctor = False
        if _is_name(prev) and prev not in _NON_CALL and \
                not prev.startswith("IDICN_"):
            # `Type name(args)` — a declaration whose ctor runs: the
            # interesting callee is the *type*.
            if prev.endswith("MutexLock"):
                return  # handled as a lock acquisition, not a call
            callee = prev.lstrip(":")
            is_ctor = True
            is_global = prev.startswith("::")
            is_member = False
        suppressed = self.supp.rules_near(line)
        if "*" in suppressed:
            return
        current_fn.calls.append(Call(
            callee=callee, line=line, is_ctor=is_ctor,
            is_member=is_member, is_global=is_global,
            suppressed=frozenset(suppressed),
            locks_held=tuple(lk[0] for lk in locks)))


def parse_file(rel_path: str, text: str):
    """-> (list[Function], Suppressions)"""
    supp = Suppressions()
    stripped = strip_comments_and_strings(text, supp)
    tokens = tokenize(stripped)
    parser = Parser(rel_path, supp)
    parser.parse(tokens)
    return parser.functions, supp
