#include "analysis/economics.hpp"

#include <stdexcept>

namespace idicn::analysis {
namespace {
constexpr double kDaysPerYear = 365.0;
constexpr double kBytesPerGb = 1e9;
}  // namespace

double yearly_cost(const CacheCostModel& model) {
  if (model.lifetime_years <= 0.0) {
    throw std::invalid_argument("yearly_cost: lifetime must be positive");
  }
  return model.hardware_cost / model.lifetime_years + model.opex_per_year;
}

double yearly_savings(const CacheCostModel& model, double requests_per_day,
                      double hit_ratio, double mean_object_bytes) {
  if (hit_ratio < 0.0 || hit_ratio > 1.0) {
    throw std::invalid_argument("yearly_savings: hit ratio out of range");
  }
  const double gb_per_year = requests_per_day * kDaysPerYear * hit_ratio *
                             mean_object_bytes / kBytesPerGb;
  return gb_per_year * model.transit_cost_per_gb;
}

double break_even_requests_per_day(const CacheCostModel& model, double hit_ratio,
                                   double mean_object_bytes) {
  if (hit_ratio <= 0.0 || hit_ratio > 1.0 || mean_object_bytes <= 0.0 ||
      model.transit_cost_per_gb <= 0.0) {
    throw std::invalid_argument("break_even: cache can never pay for itself");
  }
  const double savings_per_request =
      hit_ratio * mean_object_bytes / kBytesPerGb * model.transit_cost_per_gb;
  return yearly_cost(model) / kDaysPerYear / savings_per_request;
}

bool viable(const CacheCostModel& model, double requests_per_day, double hit_ratio,
            double mean_object_bytes) {
  return yearly_savings(model, requests_per_day, hit_ratio, mean_object_bytes) >=
         yearly_cost(model);
}

}  // namespace idicn::analysis
