#include "analysis/tree_model.hpp"

#include <algorithm>
#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace idicn::analysis {

using topology::TreeIndex;

TreeCacheOptimizer::TreeCacheOptimizer(topology::AccessTreeShape shape,
                                       std::vector<double> object_probability,
                                       std::uint32_t per_node_capacity)
    : shape_(shape),
      probability_(std::move(object_probability)),
      capacity_(per_node_capacity) {
  if (probability_.empty()) {
    throw std::invalid_argument("TreeCacheOptimizer: no objects");
  }
  double total = 0.0;
  for (const double p : probability_) {
    if (p < 0.0) throw std::invalid_argument("TreeCacheOptimizer: negative probability");
    total += p;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("TreeCacheOptimizer: zero total probability");
  }
  for (double& p : probability_) p /= total;
}

TreePlacementResult TreeCacheOptimizer::chunk_solution() const {
  if (!std::is_sorted(probability_.begin(), probability_.end(), std::greater<>())) {
    throw std::logic_error("chunk_solution: probabilities must be sorted descending");
  }
  const unsigned depth = shape_.depth();
  const auto object_count = static_cast<std::uint32_t>(probability_.size());

  std::vector<std::vector<std::uint32_t>> placement(shape_.node_count());
  // Paper level pl (1 = leaves) maps to shape level depth − pl + 1; each
  // node at that level holds ranks [(pl−1)·C, pl·C).
  for (unsigned pl = 1; pl <= depth; ++pl) {
    const unsigned shape_level = depth - pl + 1;
    const std::uint64_t lo = static_cast<std::uint64_t>(pl - 1) * capacity_;
    const std::uint64_t hi =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(pl) * capacity_, object_count);
    if (lo >= object_count) break;
    std::vector<std::uint32_t> chunk;
    chunk.reserve(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t o = lo; o < hi; ++o) {
      chunk.push_back(static_cast<std::uint32_t>(o));
    }
    const TreeIndex level_begin = shape_.level_start(shape_level);
    const TreeIndex level_end = shape_.level_start(shape_level + 1);
    for (TreeIndex v = level_begin; v < level_end; ++v) {
      placement[v] = chunk;
    }
  }
  return evaluate(std::move(placement));
}

TreePlacementResult TreeCacheOptimizer::evaluate(
    std::vector<std::vector<std::uint32_t>> placement) const {
  if (placement.size() != shape_.node_count()) {
    throw std::invalid_argument("evaluate: placement size mismatch");
  }
  std::vector<std::unordered_set<std::uint32_t>> holds(placement.size());
  for (std::size_t v = 0; v < placement.size(); ++v) {
    holds[v].insert(placement[v].begin(), placement[v].end());
  }

  const unsigned levels = paper_levels();
  const TreeIndex leaf_count = shape_.leaf_count();
  const double leaf_weight = 1.0 / static_cast<double>(leaf_count);

  TreePlacementResult result;
  result.placement = std::move(placement);
  result.level_fraction.assign(levels, 0.0);
  result.expected_cost = 0.0;

  for (std::uint32_t o = 0; o < probability_.size(); ++o) {
    const double p = probability_[o];
    if (p == 0.0) continue;
    for (TreeIndex j = 0; j < leaf_count; ++j) {
      TreeIndex node = shape_.leaf(j);
      unsigned paper_level = 1;
      // Climb until a holder or the root (origin) is reached.
      while (node != 0 && holds[node].find(o) == holds[node].end()) {
        node = shape_.parent(node);
        ++paper_level;
      }
      result.level_fraction[paper_level - 1] += p * leaf_weight;
      result.expected_cost += p * leaf_weight * static_cast<double>(paper_level);
    }
  }
  return result;
}

TreePlacementResult TreeCacheOptimizer::solve_greedy() const {
  // Bottom-up per-level greedy. Because requests only climb toward the
  // root, the value of a placement at node v depends solely on placements
  // *below* v. Filling levels from the leaves upward therefore lets each
  // node independently take its C highest-marginal-gain objects given the
  // already-final lower levels. For identical per-leaf distributions this
  // recovers the exact optimum (the chunk solution); for heterogeneous
  // workloads it is a strong heuristic. (A naive gain-ordered CELF greedy
  // is notably worse here: placing a popular object high in the tree first
  // wastes interior capacity once the edge inevitably takes it too.)
  const unsigned depth = shape_.depth();
  const unsigned levels = paper_levels();
  const TreeIndex node_count = shape_.node_count();
  const TreeIndex leaf_count = shape_.leaf_count();
  const auto object_count = static_cast<std::uint32_t>(probability_.size());

  // Contiguous leaf range [leaf_lo, leaf_hi) under each node.
  std::vector<TreeIndex> leaf_lo(node_count), leaf_hi(node_count);
  for (TreeIndex v = 0; v < node_count; ++v) {
    TreeIndex lo = v, hi = v;
    while (!shape_.is_leaf(lo)) lo = shape_.first_child(lo);
    while (!shape_.is_leaf(hi)) hi = shape_.first_child(hi) + shape_.arity() - 1;
    leaf_lo[v] = lo - shape_.level_start(depth);
    leaf_hi[v] = hi - shape_.level_start(depth) + 1;
  }

  // cur_cost[o * leaf_count + j]: cost of the current serving node for
  // object o requested at leaf j (initially the origin).
  std::vector<float> cur_cost(static_cast<std::size_t>(object_count) * leaf_count,
                              static_cast<float>(levels));

  std::vector<std::vector<std::uint32_t>> placement(node_count);
  std::vector<std::pair<double, std::uint32_t>> gains;  // (gain, object)
  for (unsigned level = depth; level >= 1; --level) {
    const double cv = node_cost(level);
    const TreeIndex begin = shape_.level_start(level);
    const TreeIndex end = shape_.level_start(level + 1);
    for (TreeIndex v = begin; v < end; ++v) {
      gains.clear();
      for (std::uint32_t o = 0; o < object_count; ++o) {
        double saved = 0.0;
        for (TreeIndex j = leaf_lo[v]; j < leaf_hi[v]; ++j) {
          const double cur = cur_cost[static_cast<std::size_t>(o) * leaf_count + j];
          if (cur > cv) saved += cur - cv;
        }
        const double gain = saved * probability_[o];
        if (gain > 0.0) gains.emplace_back(gain, o);
      }
      const std::size_t take = std::min<std::size_t>(capacity_, gains.size());
      std::partial_sort(gains.begin(), gains.begin() + static_cast<std::ptrdiff_t>(take),
                        gains.end(), [](const auto& a, const auto& b) {
                          return a.first > b.first ||
                                 (a.first == b.first && a.second < b.second);
                        });
      for (std::size_t i = 0; i < take; ++i) {
        const std::uint32_t o = gains[i].second;
        placement[v].push_back(o);
        for (TreeIndex j = leaf_lo[v]; j < leaf_hi[v]; ++j) {
          float& cur = cur_cost[static_cast<std::size_t>(o) * leaf_count + j];
          cur = std::min(cur, static_cast<float>(cv));
        }
      }
    }
  }
  return evaluate(std::move(placement));
}

TreeCacheOptimizer::BudgetAllocation TreeCacheOptimizer::optimize_level_budgets(
    std::uint64_t total_budget) const {
  if (!std::is_sorted(probability_.begin(), probability_.end(), std::greater<>())) {
    throw std::logic_error(
        "optimize_level_budgets: probabilities must be sorted descending");
  }
  const unsigned depth = shape_.depth();
  const unsigned levels = paper_levels();
  const auto object_count = static_cast<std::uint64_t>(probability_.size());

  // nodes[l-1] = caches at paper level l (1 = leaves → k^depth nodes).
  std::vector<std::uint64_t> nodes(depth);
  for (unsigned pl = 1; pl <= depth; ++pl) {
    const unsigned shape_level = depth - pl + 1;
    nodes[pl - 1] = shape_.level_start(shape_level + 1) - shape_.level_start(shape_level);
  }

  BudgetAllocation allocation;
  allocation.per_level_capacity.assign(depth, 0);

  // With per-level capacities c_1..c_D and chunk-style service, raising
  // c_l by one moves every chunk boundary at levels ≥ l down by one rank;
  // each boundary object is served one level cheaper, so the gain is the
  // sum of the boundary probabilities from level l upward.
  std::uint64_t remaining = total_budget;
  std::vector<std::uint64_t> boundary(depth + 1, 0);  // boundary[l] = Σ_{j<=l} c_j
  while (true) {
    double best_per_slot = 0.0;
    int best_level = -1;
    for (unsigned pl = 1; pl <= depth; ++pl) {
      if (nodes[pl - 1] > remaining) continue;
      double gain = 0.0;
      for (unsigned j = pl; j <= depth; ++j) {
        const std::uint64_t rank = boundary[j];
        if (rank >= object_count) break;  // chunks above are already empty
        gain += probability_[rank];
      }
      const double per_slot = gain / static_cast<double>(nodes[pl - 1]);
      if (per_slot > best_per_slot) {
        best_per_slot = per_slot;
        best_level = static_cast<int>(pl);
      }
    }
    if (best_level < 0 || best_per_slot <= 0.0) break;
    ++allocation.per_level_capacity[static_cast<std::size_t>(best_level - 1)];
    remaining -= nodes[static_cast<std::size_t>(best_level - 1)];
    for (unsigned j = static_cast<unsigned>(best_level); j <= depth; ++j) {
      ++boundary[j];
    }
  }

  // Budget shares and the resulting expected cost.
  allocation.budget_share.assign(depth, 0.0);
  double spent = 0.0;
  for (unsigned pl = 1; pl <= depth; ++pl) {
    allocation.budget_share[pl - 1] =
        static_cast<double>(allocation.per_level_capacity[pl - 1] * nodes[pl - 1]);
    spent += allocation.budget_share[pl - 1];
  }
  if (spent > 0.0) {
    for (double& share : allocation.budget_share) share /= spent;
  }

  allocation.expected_cost = 0.0;
  std::uint64_t served = 0;
  for (unsigned pl = 1; pl <= depth; ++pl) {
    const std::uint64_t take = std::min<std::uint64_t>(
        allocation.per_level_capacity[pl - 1], object_count - served);
    for (std::uint64_t i = 0; i < take; ++i) {
      allocation.expected_cost +=
          probability_[served + i] * static_cast<double>(pl);
    }
    served += take;
    if (served >= object_count) break;
  }
  for (std::uint64_t rank = served; rank < object_count; ++rank) {
    allocation.expected_cost += probability_[rank] * static_cast<double>(levels);
  }
  return allocation;
}

}  // namespace idicn::analysis
