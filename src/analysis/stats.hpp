// Small statistics helpers shared by benches and tests.
#pragma once

#include <span>

namespace idicn::analysis {

struct Summary {
  double mean = 0.0;
  double stdev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean/stdev/min/max of a sample (population stdev). Empty input yields a
/// zeroed summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Relative improvement in percent: 100·(base − value)/base. Zero base
/// yields 0 (no improvement measurable).
[[nodiscard]] double improvement_pct(double base, double value);

}  // namespace idicn::analysis
