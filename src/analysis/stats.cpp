#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace idicn::analysis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0, sum_sq = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  const double n = static_cast<double>(values.size());
  s.mean = sum / n;
  s.stdev = std::sqrt(std::max(0.0, sum_sq / n - s.mean * s.mean));
  return s;
}

double improvement_pct(double base, double value) {
  if (base == 0.0) return 0.0;
  return 100.0 * (base - value) / base;
}

}  // namespace idicn::analysis
