// Optimal static cache placement on a distribution tree (§2.2, Figure 2).
//
// The paper motivates its study with an analytical optimization on a
// binary tree: given a Zipf workload arriving uniformly at the leaves,
// place objects into equal-size caches at every non-root node (the root is
// the origin and holds everything) so as to minimize the expected number
// of hops; requests climb toward the root and are served by the first node
// that holds the object. The paper solves an ILP; we provide
//
//   * chunk_solution() — the closed-form optimum for this symmetric
//     setting: since requests never cross to siblings and every leaf sees
//     the same distribution, each level ℓ (counting leaves as level 1)
//     optimally holds ranks ((ℓ−1)·C, ℓ·C]; and
//   * solve_greedy() — a general lazy-greedy (CELF) placement for
//     arbitrary per-node capacities and popularity vectors, which tests
//     cross-check against chunk_solution() and against brute force on tiny
//     instances. The objective (expected cost saved) is monotone
//     submodular, so greedy is within (1−1/e) of optimal — and in the
//     symmetric setting it recovers the exact optimum.
//
// Cost accounting follows the paper's Figure 2 arithmetic: a request
// served at paper-level ℓ costs ℓ hops (so a request served by the leaf it
// arrived at costs 1, and a miss served at the origin of an L-level tree
// costs L).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/access_tree.hpp"

namespace idicn::analysis {

struct TreePlacementResult {
  /// placement[node] = object ids cached at that tree node (root excluded —
  /// it is the origin).
  std::vector<std::vector<std::uint32_t>> placement;
  /// level_fraction[l-1] = fraction of requests served at paper level l
  /// (1 = leaves … L = origin/root).
  std::vector<double> level_fraction;
  /// Expected hops per request under the paper's cost accounting.
  double expected_cost = 0.0;
};

class TreeCacheOptimizer {
public:
  /// `shape`: the distribution tree (root = origin at shape level 0,
  /// leaves at shape level depth). `object_probability[o]` = request
  /// probability of object o (need not be sorted). `per_node_capacity` =
  /// objects per cache, identical for all non-root nodes.
  TreeCacheOptimizer(topology::AccessTreeShape shape,
                     std::vector<double> object_probability,
                     std::uint32_t per_node_capacity);

  /// Total paper levels (depth + 1): leaves are level 1, origin is level L.
  [[nodiscard]] unsigned paper_levels() const noexcept { return shape_.depth() + 1; }

  /// Closed-form optimum for the symmetric case (identical distribution at
  /// every leaf). Requires object_probability sorted descending; throws
  /// std::logic_error otherwise.
  [[nodiscard]] TreePlacementResult chunk_solution() const;

  /// Lazy-greedy placement for the general case.
  [[nodiscard]] TreePlacementResult solve_greedy() const;

  /// Evaluate an arbitrary placement: expected cost + per-level fractions.
  [[nodiscard]] TreePlacementResult evaluate(
      std::vector<std::vector<std::uint32_t>> placement) const;

  // -------------------------------------------------------------------
  // Per-level budget allocation (§2.2's second analysis: "we also vary
  // the sizes of the cache allocated to different locations… the optimal
  // solution under a Zipf workload involves assigning a majority of the
  // total caching budget to the leaves").
  // -------------------------------------------------------------------
  struct BudgetAllocation {
    /// per_level_capacity[l-1] = objects per cache at paper level l
    /// (1 = leaves … depth = top cache level).
    std::vector<std::uint32_t> per_level_capacity;
    /// budget_share[l-1] = fraction of the total slot budget spent at that
    /// level (capacity × node count, normalized).
    std::vector<double> budget_share;
    double expected_cost = 0.0;
  };

  /// Distribute `total_budget` cache slots across the tree levels (every
  /// node at a level gets the same capacity) to minimize expected cost,
  /// assuming descending-probability objects (chunk-style service per
  /// level). Greedy marginal-gain-per-slot allocation; tests cross-check
  /// it against exhaustive search on small instances. Requires the
  /// optimizer's probabilities to be sorted descending.
  [[nodiscard]] BudgetAllocation optimize_level_budgets(
      std::uint64_t total_budget) const;

private:
  /// Paper-level cost of serving at a node with the given shape level.
  [[nodiscard]] double node_cost(unsigned shape_level) const noexcept {
    return static_cast<double>(shape_.depth() - shape_level + 1);
  }

  topology::AccessTreeShape shape_;
  std::vector<double> probability_;
  std::uint32_t capacity_;
};

}  // namespace idicn::analysis
