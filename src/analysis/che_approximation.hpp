// Che's approximation for LRU hit ratios under IRM.
//
// A standard analytic tool from the web-caching literature the paper builds
// on: for an LRU cache of C objects under the independent reference model
// with per-object request probabilities p_i, object i's hit ratio is
//     h_i = 1 − exp(−p_i · t_C)
// where the characteristic time t_C solves  Σ_i (1 − exp(−p_i t_C)) = C.
// The approximation is remarkably accurate for C ≳ 10 and gives us an
// independent, simulation-free prediction of edge-cache hit ratios — used
// by tests to validate the simulator, and available to users for capacity
// planning (the §7 "when is it viable to deploy a cache" question).
#pragma once

#include <span>
#include <vector>

namespace idicn::analysis {

struct CheResult {
  double characteristic_time = 0.0;
  double hit_ratio = 0.0;              ///< Σ p_i · h_i
  std::vector<double> per_object_hit;  ///< h_i per object
};

/// Compute the approximation. `popularity` need not be normalized;
/// `cache_size` is in objects and must be positive and smaller than the
/// number of objects with nonzero popularity (otherwise the hit ratio is
/// trivially 1). Throws std::invalid_argument on bad inputs.
[[nodiscard]] CheResult che_lru(std::span<const double> popularity, double cache_size);

}  // namespace idicn::analysis
