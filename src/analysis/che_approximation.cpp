#include "analysis/che_approximation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace idicn::analysis {

CheResult che_lru(std::span<const double> popularity, double cache_size) {
  if (popularity.empty()) throw std::invalid_argument("che_lru: no objects");
  if (cache_size <= 0.0) throw std::invalid_argument("che_lru: cache_size must be > 0");

  double total = 0.0;
  std::size_t nonzero = 0;
  for (const double p : popularity) {
    if (p < 0.0) throw std::invalid_argument("che_lru: negative popularity");
    total += p;
    nonzero += p > 0.0;
  }
  if (total <= 0.0) throw std::invalid_argument("che_lru: zero total popularity");

  CheResult result;
  result.per_object_hit.resize(popularity.size());
  if (cache_size >= static_cast<double>(nonzero)) {
    // Everything with nonzero popularity fits: hit ratio 1.
    result.characteristic_time = std::numeric_limits<double>::infinity();
    result.hit_ratio = 1.0;
    for (std::size_t i = 0; i < popularity.size(); ++i) {
      result.per_object_hit[i] = popularity[i] > 0.0 ? 1.0 : 0.0;
    }
    return result;
  }

  // Expected cache occupancy at time t: f(t) = Σ (1 − exp(−p_i t)).
  const auto occupancy = [&](double t) {
    double sum = 0.0;
    for (const double p : popularity) {
      if (p > 0.0) sum += 1.0 - std::exp(-p / total * t);
    }
    return sum;
  };

  // Bisection for t_C: f is increasing from 0 toward `nonzero`.
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < cache_size) {
    hi *= 2.0;
    if (hi > 1e18) throw std::runtime_error("che_lru: t_C search diverged");
  }
  for (int iteration = 0; iteration < 200 && hi - lo > 1e-9 * hi; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    (occupancy(mid) < cache_size ? lo : hi) = mid;
  }
  const double tc = 0.5 * (lo + hi);

  result.characteristic_time = tc;
  for (std::size_t i = 0; i < popularity.size(); ++i) {
    const double p = popularity[i] / total;
    result.per_object_hit[i] = p > 0.0 ? 1.0 - std::exp(-p * tc) : 0.0;
    result.hit_ratio += p * result.per_object_hit[i];
  }
  return result;
}

}  // namespace idicn::analysis
