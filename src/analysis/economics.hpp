// Cache deployment economics (§7 "When is it viable to deploy a cache").
//
// The paper's rule of thumb: caching hardware lives 3–5 years and must
// serve enough traffic to pay for itself. This module turns that anecdote
// into an explicit model: a cache deployment amortizes capital expenditure
// over its lifetime, pays yearly operating costs (rack space, bandwidth,
// power, cooling), and earns its keep through transit-bandwidth savings on
// every byte served locally instead of fetched upstream.
#pragma once

#include <cstdint>

namespace idicn::analysis {

struct CacheCostModel {
  double hardware_cost = 8000.0;       ///< capex per cache box (USD)
  double lifetime_years = 4.0;         ///< amortization horizon (paper: 3–5)
  double opex_per_year = 3000.0;       ///< rack/power/cooling/ops per year
  double transit_cost_per_gb = 0.02;   ///< upstream bandwidth price (USD/GB)
};

/// Amortized total cost of running one cache for a year.
[[nodiscard]] double yearly_cost(const CacheCostModel& model);

/// Transit savings per year for a cache absorbing `requests_per_day`
/// requests at `hit_ratio` with `mean_object_bytes` objects.
[[nodiscard]] double yearly_savings(const CacheCostModel& model,
                                    double requests_per_day, double hit_ratio,
                                    double mean_object_bytes);

/// Requests/day at which savings equal costs. Throws std::invalid_argument
/// when the hit ratio or object size make savings impossible (≤ 0).
[[nodiscard]] double break_even_requests_per_day(const CacheCostModel& model,
                                                 double hit_ratio,
                                                 double mean_object_bytes);

/// Convenience: is a deployment profitable at this load?
[[nodiscard]] bool viable(const CacheCostModel& model, double requests_per_day,
                          double hit_ratio, double mean_object_bytes);

}  // namespace idicn::analysis
