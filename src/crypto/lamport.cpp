#include "crypto/lamport.hpp"

#include <cstring>
#include <random>
#include <stdexcept>

#include "crypto/hex.hpp"

namespace idicn::crypto {
namespace {

/// Fill a digest-sized buffer from a seeded PRNG (deterministic keygen).
Sha256Digest random_digest(std::mt19937_64& rng) {
  Sha256Digest d{};
  for (std::size_t i = 0; i < d.size(); i += 8) {
    const std::uint64_t word = rng();
    std::memcpy(d.data() + i, &word, 8);
  }
  return d;
}

/// Hash of the concatenation of two digests (Merkle interior node).
Sha256Digest hash_pair(const Sha256Digest& left, const Sha256Digest& right) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(left));
  h.update(std::span<const std::uint8_t>(right));
  return h.finish();
}

/// Extract bit `i` (MSB-first within each byte) of a digest.
bool digest_bit(const Sha256Digest& d, std::size_t i) {
  return (d[i / 8] >> (7 - i % 8)) & 1;
}

}  // namespace

std::vector<std::uint8_t> LamportPublicKey::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(256 * 2 * 32);
  for (const auto& pair : pairs) {
    for (const auto& digest : pair) {
      out.insert(out.end(), digest.begin(), digest.end());
    }
  }
  return out;
}

Sha256Digest LamportPublicKey::fingerprint() const {
  const std::vector<std::uint8_t> bytes = serialize();
  return Sha256::hash(std::span<const std::uint8_t>(bytes));
}

std::vector<std::uint8_t> LamportSignature::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(256 * 32);
  for (const auto& digest : revealed) {
    out.insert(out.end(), digest.begin(), digest.end());
  }
  return out;
}

std::optional<LamportSignature> LamportSignature::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 256 * 32) return std::nullopt;
  LamportSignature sig;
  for (std::size_t i = 0; i < 256; ++i) {
    std::memcpy(sig.revealed[i].data(), bytes.data() + i * 32, 32);
  }
  return sig;
}

LamportKeyPair lamport_keygen(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  LamportKeyPair kp;
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      kp.secret.pairs[i][b] = random_digest(rng);
      kp.pub.pairs[i][b] =
          Sha256::hash(std::span<const std::uint8_t>(kp.secret.pairs[i][b]));
    }
  }
  return kp;
}

LamportSignature lamport_sign(const LamportSecretKey& key, std::string_view message) {
  const Sha256Digest digest = Sha256::hash(message);
  LamportSignature sig;
  for (std::size_t i = 0; i < 256; ++i) {
    sig.revealed[i] = key.pairs[i][digest_bit(digest, i) ? 1 : 0];
  }
  return sig;
}

bool lamport_verify(const LamportPublicKey& key, std::string_view message,
                    const LamportSignature& sig) {
  const Sha256Digest digest = Sha256::hash(message);
  for (std::size_t i = 0; i < 256; ++i) {
    const std::size_t bit = digest_bit(digest, i) ? 1 : 0;
    const Sha256Digest expected =
        Sha256::hash(std::span<const std::uint8_t>(sig.revealed[i]));
    if (expected != key.pairs[i][bit]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merkle signature scheme
// ---------------------------------------------------------------------------

std::string MerkleSignature::encode() const {
  std::string out = std::to_string(leaf_index);
  out.push_back(':');
  out += hex_encode(ots_public_key.serialize());
  out.push_back(':');
  out += hex_encode(ots_signature.serialize());
  out.push_back(':');
  for (std::size_t i = 0; i < auth_path.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += hex_encode(std::span<const std::uint8_t>(auth_path[i]));
  }
  return out;
}

std::optional<MerkleSignature> MerkleSignature::decode(std::string_view text) {
  MerkleSignature sig;

  const auto take_field = [&text]() -> std::optional<std::string_view> {
    const std::size_t pos = text.find(':');
    if (pos == std::string_view::npos) return std::nullopt;
    const std::string_view field = text.substr(0, pos);
    text.remove_prefix(pos + 1);
    return field;
  };

  const auto index_field = take_field();
  if (!index_field || index_field->empty()) return std::nullopt;
  std::uint32_t index = 0;
  for (const char c : *index_field) {
    if (c < '0' || c > '9') return std::nullopt;
    index = index * 10 + static_cast<std::uint32_t>(c - '0');
  }
  sig.leaf_index = index;

  const auto key_field = take_field();
  if (!key_field) return std::nullopt;
  const auto key_bytes = hex_decode(*key_field);
  if (!key_bytes || key_bytes->size() != 256 * 2 * 32) return std::nullopt;
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      std::memcpy(sig.ots_public_key.pairs[i][b].data(),
                  key_bytes->data() + (i * 2 + b) * 32, 32);
    }
  }

  const auto sig_field = take_field();
  if (!sig_field) return std::nullopt;
  const auto sig_bytes = hex_decode(*sig_field);
  if (!sig_bytes) return std::nullopt;
  const auto ots = LamportSignature::deserialize(std::span<const std::uint8_t>(*sig_bytes));
  if (!ots) return std::nullopt;
  sig.ots_signature = *ots;

  // Remainder: comma-separated auth path (may be empty for height-0 trees).
  while (!text.empty()) {
    const std::size_t pos = text.find(',');
    const std::string_view item =
        pos == std::string_view::npos ? text : text.substr(0, pos);
    text.remove_prefix(pos == std::string_view::npos ? text.size() : pos + 1);
    const auto bytes = hex_decode(item);
    if (!bytes || bytes->size() != 32) return std::nullopt;
    Sha256Digest d{};
    std::memcpy(d.data(), bytes->data(), 32);
    sig.auth_path.push_back(d);
  }
  return sig;
}

MerkleSigner::MerkleSigner(std::uint64_t seed, unsigned height) {
  const std::size_t leaf_count = static_cast<std::size_t>(1) << height;
  keys_.reserve(leaf_count);
  leaves_.reserve(leaf_count);
  for (std::size_t i = 0; i < leaf_count; ++i) {
    // Per-leaf seeds are derived, not sequential, so adjacent keys differ.
    keys_.push_back(lamport_keygen(seed * 0x9e3779b97f4a7c15ULL + i * 0xb492b66fbe98f273ULL + i));
    leaves_.push_back(keys_.back().pub.fingerprint());
  }

  tree_.push_back(leaves_);
  while (tree_.back().size() > 1) {
    const std::vector<Sha256Digest>& prev = tree_.back();
    std::vector<Sha256Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      next.push_back(hash_pair(prev[i], prev[i + 1]));
    }
    tree_.push_back(std::move(next));
  }
  root_ = tree_.back().front();
}

std::string MerkleSigner::fingerprint_hex() const {
  const Sha256Digest fp = Sha256::hash(std::span<const std::uint8_t>(root_));
  return hex_encode(std::span<const std::uint8_t>(fp));
}

std::size_t MerkleSigner::remaining() const noexcept {
  return leaves_.size() - next_leaf_;
}

MerkleSignature MerkleSigner::sign(std::string_view message) {
  if (next_leaf_ >= leaves_.size()) {
    throw std::runtime_error("MerkleSigner: all one-time keys exhausted");
  }
  const std::size_t leaf = next_leaf_++;

  MerkleSignature sig;
  sig.leaf_index = static_cast<std::uint32_t>(leaf);
  sig.ots_public_key = keys_[leaf].pub;
  sig.ots_signature = lamport_sign(keys_[leaf].secret, message);

  std::size_t index = leaf;
  for (std::size_t level = 0; level + 1 < tree_.size(); ++level) {
    const std::size_t sibling = index ^ 1;
    sig.auth_path.push_back(tree_[level][sibling]);
    index /= 2;
  }
  return sig;
}

bool MerkleSigner::verify(const Sha256Digest& root, std::string_view message,
                          const MerkleSignature& sig) {
  if (!lamport_verify(sig.ots_public_key, message, sig.ots_signature)) return false;

  Sha256Digest node = sig.ots_public_key.fingerprint();
  std::size_t index = sig.leaf_index;
  for (const Sha256Digest& sibling : sig.auth_path) {
    node = (index & 1) ? hash_pair(sibling, node) : hash_pair(node, sibling);
    index /= 2;
  }
  return node == root;
}

}  // namespace idicn::crypto
