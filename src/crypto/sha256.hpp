// SHA-256 (FIPS 180-4) implemented from scratch.
//
// idICN's self-certifying names (§6.1 of the paper) bind a content label L
// to the cryptographic hash P of a publisher's public key, and the Metalink
// metadata carries content digests. Both need a real hash function; this is
// a dependency-free, byte-oriented implementation with an incremental
// streaming interface.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace idicn::crypto {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(part1);
///   h.update(part2);
///   Sha256Digest d = h.finish();
///
/// After finish() the object may be reused via reset().
class Sha256 {
public:
  Sha256() noexcept { reset(); }

  /// Restore the initial state so the object can hash a new message.
  void reset() noexcept;

  /// Absorb `data` into the running hash.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Apply padding and produce the digest. The object must be reset()
  /// before further use.
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot convenience helpers.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest hash(std::string_view data) noexcept;

private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;  // bytes absorbed so far
};

}  // namespace idicn::crypto
