// Hash-based signatures for idICN's content-oriented security (§6.1).
//
// The paper's idICN design binds content to a publisher through
// self-certifying names L.P where P is the cryptographic hash of the
// publisher's public key, and content is delivered together with a digital
// signature that anyone can verify against P. We implement this with
// hash-based signatures built entirely on our from-scratch SHA-256:
//
//  * LamportKeyPair / lamport_sign / lamport_verify — a classic Lamport
//    one-time signature (OTS): 256 secret pairs, public key = hashes of the
//    secrets, signing reveals one secret per message-digest bit.
//  * MerkleSigner / MerkleSignature — a Merkle signature scheme (MSS) that
//    aggregates 2^h Lamport OTS public keys under one Merkle root, so a
//    publisher has a *stable* public key (the root) whose hash is P while
//    still being able to sign many objects. Each signature carries the OTS
//    index, the OTS public key, and the Merkle authentication path.
//
// These are real, verifiable constructions (the pre-history of XMSS), not
// mock crypto; tests include tamper/forge rejection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace idicn::crypto {

/// One Lamport secret key: 256 pairs of 32-byte random values.
struct LamportSecretKey {
  std::array<std::array<Sha256Digest, 2>, 256> pairs{};
};

/// One Lamport public key: the SHA-256 of each secret value.
struct LamportPublicKey {
  std::array<std::array<Sha256Digest, 2>, 256> pairs{};

  /// Canonical serialization (for hashing and transport).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// SHA-256 over the serialization — the key's fingerprint.
  [[nodiscard]] Sha256Digest fingerprint() const;

  bool operator==(const LamportPublicKey&) const = default;
};

/// A Lamport signature: one revealed secret per digest bit.
struct LamportSignature {
  std::array<Sha256Digest, 256> revealed{};

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<LamportSignature> deserialize(
      std::span<const std::uint8_t> bytes);
};

struct LamportKeyPair {
  LamportSecretKey secret;
  LamportPublicKey pub;
};

/// Deterministically derive a keypair from a 64-bit seed (keeps the
/// simulator reproducible; a deployment would use an OS CSPRNG).
[[nodiscard]] LamportKeyPair lamport_keygen(std::uint64_t seed);

/// Sign the SHA-256 of `message`. A secret key must be used at most once.
[[nodiscard]] LamportSignature lamport_sign(const LamportSecretKey& key,
                                            std::string_view message);

/// Verify `sig` over `message` against `key`.
[[nodiscard]] bool lamport_verify(const LamportPublicKey& key, std::string_view message,
                                  const LamportSignature& sig);

// ---------------------------------------------------------------------------
// Merkle signature scheme
// ---------------------------------------------------------------------------

/// A many-time signature: Lamport OTS authenticated under a Merkle root.
struct MerkleSignature {
  std::uint32_t leaf_index = 0;        ///< which OTS key signed
  LamportPublicKey ots_public_key;     ///< revealed OTS public key
  LamportSignature ots_signature;      ///< OTS signature over the message
  std::vector<Sha256Digest> auth_path; ///< sibling hashes, leaf → root

  /// Compact textual encoding (hex fields joined by ':') used in HTTP
  /// headers by the idICN prototype.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<MerkleSignature> decode(std::string_view text);
};

/// A publisher identity: 2^height Lamport keys under one Merkle root.
///
/// The Merkle root serves as the publisher's long-lived public key; its
/// SHA-256 fingerprint is the P component of self-certifying names.
class MerkleSigner {
public:
  /// Generate 2^height one-time keys deterministically from `seed`.
  MerkleSigner(std::uint64_t seed, unsigned height);

  /// The publisher's stable public key (the Merkle root).
  [[nodiscard]] const Sha256Digest& root() const noexcept { return root_; }

  /// Hex fingerprint of the root — the P used in names (L.P).
  [[nodiscard]] std::string fingerprint_hex() const;

  /// How many signatures remain before the key is exhausted.
  [[nodiscard]] std::size_t remaining() const noexcept;

  /// Total one-time keys (2^height).
  [[nodiscard]] std::size_t capacity() const noexcept { return leaves_.size(); }

  /// Sign `message` with the next unused one-time key.
  /// Throws std::runtime_error when all one-time keys are exhausted.
  [[nodiscard]] MerkleSignature sign(std::string_view message);

  /// Verify `sig` over `message` against a Merkle `root`.
  [[nodiscard]] static bool verify(const Sha256Digest& root, std::string_view message,
                                   const MerkleSignature& sig);

private:
  std::vector<LamportKeyPair> keys_;
  std::vector<std::vector<Sha256Digest>> tree_;  // tree_[0] = leaf hashes, last = {root}
  std::vector<Sha256Digest> leaves_;
  Sha256Digest root_{};
  std::size_t next_leaf_ = 0;
};

}  // namespace idicn::crypto
