#include "crypto/base32.hpp"

#include <array>

namespace idicn::crypto {
namespace {

constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz234567";

constexpr int symbol_value(char c) noexcept {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= '2' && c <= '7') return c - '2' + 26;
  return -1;
}

}  // namespace

std::string base32_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const std::uint8_t byte : data) {
    buffer = (buffer << 8) | byte;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kAlphabet[(buffer >> bits) & 0x1f]);
    }
  }
  if (bits > 0) {
    out.push_back(kAlphabet[(buffer << (5 - bits)) & 0x1f]);
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base32_decode(std::string_view text) {
  // Valid unpadded lengths mod 8: 0, 2, 4, 5, 7.
  switch (text.size() % 8) {
    case 1: case 3: case 6: return std::nullopt;
    default: break;
  }
  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (const char c : text) {
    const int value = symbol_value(c);
    if (value < 0) return std::nullopt;
    buffer = (buffer << 5) | static_cast<std::uint32_t>(value);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xff));
    }
  }
  // Leftover bits must be zero padding.
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace idicn::crypto
