// HMAC-SHA256 (RFC 2104). Used by the idICN prototype for keyed request
// authentication between cooperating proxies and in tests as a reference
// MAC construction over the from-scratch SHA-256.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace idicn::crypto {

/// Compute HMAC-SHA256(key, message).
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message) noexcept;

/// String-view convenience overload.
[[nodiscard]] Sha256Digest hmac_sha256(std::string_view key, std::string_view message) noexcept;

}  // namespace idicn::crypto
