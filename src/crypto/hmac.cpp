#include "crypto/hmac.hpp"

#include <array>

namespace idicn::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlockSize = 64;

  // Keys longer than the block size are hashed first (RFC 2104).
  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad));
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad));
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finish();
}

Sha256Digest hmac_sha256(std::string_view key, std::string_view message) noexcept {
  return hmac_sha256(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(key.data()),
                                    key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                    message.size()));
}

}  // namespace idicn::crypto
