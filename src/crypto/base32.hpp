// RFC 4648 base32 (lowercase, unpadded).
//
// The paper's naming footnote observes that DNS labels are capped at 63
// characters, which rules out hex-coded SHA-256 digests (64 chars). idICN
// therefore encodes the publisher-key hash P as unpadded base32 (52 chars
// for 32 bytes), which is also DNS-safe (letters and digits only).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace idicn::crypto {

/// Encode to lowercase unpadded base32.
[[nodiscard]] std::string base32_encode(std::span<const std::uint8_t> data);

/// Decode unpadded base32 (either case). Returns std::nullopt on invalid
/// characters or impossible lengths.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base32_decode(
    std::string_view text);

}  // namespace idicn::crypto
