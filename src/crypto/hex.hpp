// Hex encoding/decoding used to render digests and keys inside
// self-certifying names (L.P where P is a hex-coded hash of a public key).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace idicn::crypto {

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

/// Decode a hex string (either case). Returns std::nullopt on odd length or
/// non-hex characters.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text);

}  // namespace idicn::crypto
