#include "idicn/name.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "crypto/base32.hpp"

namespace idicn::idicn {
namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool valid_publisher_b32(std::string_view text) {
  const auto bytes = crypto::base32_decode(text);
  return bytes.has_value() && bytes->size() == 32;
}

}  // namespace

bool valid_dns_label(std::string_view label) {
  if (label.empty() || label.size() > 63) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  return std::all_of(label.begin(), label.end(), [](unsigned char c) {
    return std::islower(c) || std::isdigit(c) || c == '-';
  });
}

SelfCertifyingName::SelfCertifyingName(std::string label, std::string publisher_b32)
    : label_(std::move(label)), publisher_(std::move(publisher_b32)) {
  if (!valid_dns_label(label_)) {
    throw std::invalid_argument("SelfCertifyingName: invalid label: " + label_);
  }
  if (!valid_publisher_b32(publisher_)) {
    throw std::invalid_argument("SelfCertifyingName: invalid publisher id");
  }
}

std::string SelfCertifyingName::publisher_id(const crypto::Sha256Digest& root_key) {
  const crypto::Sha256Digest fingerprint =
      crypto::Sha256::hash(std::span<const std::uint8_t>(root_key));
  return crypto::base32_encode(std::span<const std::uint8_t>(fingerprint));
}

std::optional<SelfCertifyingName> SelfCertifyingName::parse_host(std::string_view host) {
  const std::string lowered = to_lower(host);
  // Expect exactly "<L>.<P>.idicn.org".
  const std::string suffix = "." + std::string(kIdicnDomain);
  if (lowered.size() <= suffix.size() ||
      lowered.compare(lowered.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string_view name_part =
      std::string_view(lowered).substr(0, lowered.size() - suffix.size());
  const std::size_t dot = name_part.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  const std::string_view label = name_part.substr(0, dot);
  const std::string_view publisher = name_part.substr(dot + 1);
  if (publisher.find('.') != std::string_view::npos) return std::nullopt;
  if (!valid_dns_label(label) || !valid_publisher_b32(publisher)) return std::nullopt;

  SelfCertifyingName name;
  name.label_ = std::string(label);
  name.publisher_ = std::string(publisher);
  return name;
}

std::string SelfCertifyingName::host() const {
  return label_ + "." + publisher_ + "." + std::string(kIdicnDomain);
}

std::string SelfCertifyingName::flat() const { return label_ + "." + publisher_; }

}  // namespace idicn::idicn
