#include "idicn/reverse_proxy.hpp"

#include "crypto/hex.hpp"
#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {

ReverseProxy::ReverseProxy(net::Transport* net, net::Address self, net::Address origin,
                           net::Address nrs, crypto::MerkleSigner* signer)
    : net_(net),
      self_(std::move(self)),
      origin_(std::move(origin)),
      nrs_(std::move(nrs)),
      publisher_id_(SelfCertifyingName::publisher_id(signer->root())),
      signer_(signer) {}

ReverseProxy::Entry& ReverseProxy::admit(const std::string& label,
                                         core::ChunkedBody body,
                                         std::string content_type) {
  Entry entry;
  entry.body = std::move(body);
  entry.content_type = std::move(content_type);
  entry.metadata.name = SelfCertifyingName(label, publisher_id_);
  crypto::Sha256 hasher;
  for (const core::Chunk& chunk : entry.body.chunks()) hasher.update(chunk.view());
  entry.metadata.digest = hasher.finish();
  entry.metadata.publisher_key = signer_->root();
  entry.metadata.signature = signer_->sign(entry.metadata.signing_input());
  entry.metadata.mirrors = {self_};
  return entries_[label] = std::move(entry);
}

std::optional<SelfCertifyingName> ReverseProxy::publish(const std::string& label) {
  // A publish consumes two one-time signatures (content + registration);
  // refuse cleanly when the publisher's key is exhausted.
  {
    const core::sync::MutexLock lock(mutex_);
    if (signer_->remaining() < 2) return std::nullopt;
  }

  // Step P1: pull the authoritative bytes from the origin (no lock across
  // network I/O).
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/content?label=" + label;
  net::HttpResponse from_origin = net_->send(self_, origin_, fetch);
  if (!from_origin.ok()) return std::nullopt;
  ++origin_fetches_;

  std::optional<SelfCertifyingName> name;
  crypto::MerkleSignature registration;
  std::string key_hex;
  {
    const core::sync::MutexLock lock(mutex_);
    // Re-check: a concurrent publish/admission may have spent the budget
    // while the fetch was in flight.
    if (signer_->remaining() < 2) return std::nullopt;
    const Entry& entry =
        admit(label, from_origin.take_body_chunks(),
              from_origin.headers.get("Content-Type").value_or("text/plain"));
    name = entry.metadata.name;
    // Step P2 signature: the NRS checks nothing but cryptographic
    // correctness.
    registration = signer_->sign(
        NameResolutionSystem::registration_signing_input(*name, self_));
    key_hex = crypto::hex_encode(std::span<const std::uint8_t>(signer_->root()));
  }

  net::HttpRequest reg;
  reg.method = "POST";
  reg.target = "/register";
  reg.body = "name=" + name->host() + "&location=" + self_ +
             "&publisher-key=" + key_hex +
             "&signature=" + registration.encode();
  reg.headers.set("Content-Length", std::to_string(reg.body.size()));
  const net::HttpResponse ack = net_->send(self_, nrs_, reg);
  if (!ack.ok()) return std::nullopt;
  return name;
}

net::HttpResponse ReverseProxy::respond(const Entry& entry,
                                        const net::HttpRequest& request) const {
  // Step 6: respond with the content plus verification metadata. The ETag
  // is the content digest, enabling cheap conditional revalidation by
  // downstream caches.
  const std::string etag =
      "\"" + crypto::hex_encode(std::span<const std::uint8_t>(entry.metadata.digest)) +
      "\"";
  if (const auto condition = request.headers.get("If-None-Match");
      condition && *condition == etag) {
    net::HttpResponse not_modified = net::make_response(304, "");
    not_modified.headers.set("ETag", etag);
    return not_modified;
  }
  net::HttpResponse response =
      net::make_stream_response(200, entry.body, entry.content_type);
  entry.metadata.apply_to(response.headers);
  response.headers.set("ETag", etag);
  return response;
}

net::HttpResponse ReverseProxy::finish_admission(const SelfCertifyingName& name,
                                                 net::HttpResponse from_origin,
                                                 const net::HttpRequest& request) {
  if (!from_origin.ok()) return net::make_response(404, "no such content");
  ++origin_fetches_;

  const core::sync::MutexLock lock(mutex_);
  auto it = entries_.find(name.label());
  if (it == entries_.end()) {
    // Still missing — we are the admitting worker.
    if (signer_->remaining() == 0) {
      return net::make_response(503, "publisher signing key exhausted");
    }
    admit(name.label(), from_origin.take_body_chunks(),
          from_origin.headers.get("Content-Type").value_or("text/plain"));
    it = entries_.find(name.label());
  }
  // (A sibling admitted it while we fetched: serve theirs, drop our copy.)
  return respond(it->second, request);
}

// The parked half of a miss: holds the request and the client's deliver
// callback while the origin fetch rides the executor. abort() (client
// disconnected) keeps the admission — the signed entry serves future
// requests — and only drops the delivery.
class ReverseProxy::AdmitOp final : public net::AsyncOp,
                                    public std::enable_shared_from_this<AdmitOp> {
public:
  AdmitOp(ReverseProxy* proxy, SelfCertifyingName name,
          net::HttpRequest request,
          std::function<void(net::HttpResponse)> deliver)
      : proxy_(proxy),
        name_(std::move(name)),
        request_(std::move(request)),
        deliver_(std::move(deliver)) {}

  void abort() override { cancelled_ = true; }
  [[nodiscard]] bool settled() const noexcept { return settled_; }

  void weigh_origin_answer(net::HttpResponse from_origin) {
    settled_ = true;
    auto deliver = std::move(deliver_);
    deliver_ = nullptr;
    net::HttpResponse response =
        proxy_->finish_admission(name_, std::move(from_origin), request_);
    if (!cancelled_ && deliver != nullptr) deliver(std::move(response));
  }

private:
  ReverseProxy* proxy_;
  SelfCertifyingName name_;
  net::HttpRequest request_;
  std::function<void(net::HttpResponse)> deliver_;
  bool settled_ = false;
  bool cancelled_ = false;
};

net::HttpResponse ReverseProxy::handle_http(const net::HttpRequest& request,
                                            const net::Address& from) {
  // Null executor: the origin fetch falls back to its synchronous path
  // inline, so the delivery fires before handle_http_async returns.
  net::HttpResponse response =
      net::make_response(500, "reverse proxy did not settle");
  handle_http_async(request, from, nullptr,
                    [&response](net::HttpResponse settled) {
                      response = std::move(settled);
                    });
  return response;
}

std::shared_ptr<net::AsyncOp> ReverseProxy::handle_http_async(
    const net::HttpRequest& request, const net::Address& /*from*/,
    net::Executor* exec, std::function<void(net::HttpResponse)> deliver) {
  if (request.method != "GET") {
    deliver(net::make_response(404, "no such endpoint"));
    return nullptr;
  }
  const auto host = request.headers.get("Host");
  if (!host) {
    deliver(net::make_response(400, "missing Host"));
    return nullptr;
  }
  const auto name = SelfCertifyingName::parse_host(*host);
  if (!name) {
    deliver(net::make_response(400, "not an idicn name"));
    return nullptr;
  }
  if (name->publisher() != publisher_id_) {
    deliver(net::make_response(403, "wrong publisher"));
    return nullptr;
  }

  // Fast path: already signed and cached. The answer is built under the
  // lock but delivered after it drops — the delivery drives the client
  // socket.
  std::optional<net::HttpResponse> immediate;
  {
    const core::sync::MutexLock lock(mutex_);
    const auto it = entries_.find(name->label());
    if (it != entries_.end()) {
      ++cache_hits_;
      immediate = respond(it->second, request);
    } else if (signer_->remaining() == 0) {
      // On-demand admission needs a fresh one-time signature.
      immediate = net::make_response(503, "publisher signing key exhausted");
    }
  }
  if (immediate) {
    deliver(std::move(*immediate));
    return nullptr;
  }

  // Step 5: route the request to the origin server — with the lock dropped
  // and the request parked, so this worker keeps serving while the fetch
  // is in flight.
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/content?label=" + name->label();
  auto op = std::make_shared<AdmitOp>(this, *name, request, std::move(deliver));
  net_->send_async(self_, origin_, fetch, exec,
                   [op](net::HttpResponse from_origin) {
                     op->weigh_origin_answer(std::move(from_origin));
                   });
  return op->settled() ? nullptr : op;
}

}  // namespace idicn::idicn
