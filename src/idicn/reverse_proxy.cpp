#include "idicn/reverse_proxy.hpp"

#include "crypto/hex.hpp"
#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {

ReverseProxy::ReverseProxy(net::Transport* net, net::Address self, net::Address origin,
                           net::Address nrs, crypto::MerkleSigner* signer)
    : net_(net),
      self_(std::move(self)),
      origin_(std::move(origin)),
      nrs_(std::move(nrs)),
      signer_(signer) {}

std::string ReverseProxy::publisher_id() const {
  return SelfCertifyingName::publisher_id(signer_->root());
}

ReverseProxy::Entry& ReverseProxy::admit(const std::string& label, std::string body,
                                         std::string content_type) {
  Entry entry;
  entry.body = std::move(body);
  entry.content_type = std::move(content_type);
  entry.metadata.name = SelfCertifyingName(label, publisher_id());
  entry.metadata.digest = crypto::Sha256::hash(entry.body);
  entry.metadata.publisher_key = signer_->root();
  entry.metadata.signature = signer_->sign(entry.metadata.signing_input());
  entry.metadata.mirrors = {self_};
  return entries_[label] = std::move(entry);
}

std::optional<SelfCertifyingName> ReverseProxy::publish(const std::string& label) {
  // A publish consumes two one-time signatures (content + registration);
  // refuse cleanly when the publisher's key is exhausted.
  if (signer_->remaining() < 2) return std::nullopt;

  // Step P1: pull the authoritative bytes from the origin.
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/content?label=" + label;
  const net::HttpResponse from_origin = net_->send(self_, origin_, fetch);
  if (!from_origin.ok()) return std::nullopt;
  ++origin_fetches_;

  const Entry& entry =
      admit(label, from_origin.body,
            from_origin.headers.get("Content-Type").value_or("text/plain"));

  // Step P2: register the name with the resolution system; the NRS checks
  // nothing but cryptographic correctness.
  const crypto::MerkleSignature registration = signer_->sign(
      NameResolutionSystem::registration_signing_input(entry.metadata.name, self_));
  net::HttpRequest reg;
  reg.method = "POST";
  reg.target = "/register";
  reg.body = "name=" + entry.metadata.name.host() + "&location=" + self_ +
             "&publisher-key=" +
             crypto::hex_encode(std::span<const std::uint8_t>(signer_->root())) +
             "&signature=" + registration.encode();
  reg.headers.set("Content-Length", std::to_string(reg.body.size()));
  const net::HttpResponse ack = net_->send(self_, nrs_, reg);
  if (!ack.ok()) return std::nullopt;
  return entry.metadata.name;
}

net::HttpResponse ReverseProxy::handle_http(const net::HttpRequest& request,
                                            const net::Address& /*from*/) {
  if (request.method != "GET") return net::make_response(404, "no such endpoint");
  const auto host = request.headers.get("Host");
  if (!host) return net::make_response(400, "missing Host");
  const auto name = SelfCertifyingName::parse_host(*host);
  if (!name) return net::make_response(400, "not an idicn name");
  if (name->publisher() != publisher_id()) {
    return net::make_response(403, "wrong publisher");
  }

  auto it = entries_.find(name->label());
  if (it == entries_.end()) {
    // On-demand admission needs a fresh one-time signature.
    if (signer_->remaining() == 0) {
      return net::make_response(503, "publisher signing key exhausted");
    }
    // Step 5: route the request to the origin server.
    net::HttpRequest fetch;
    fetch.method = "GET";
    fetch.target = "/content?label=" + name->label();
    const net::HttpResponse from_origin = net_->send(self_, origin_, fetch);
    if (!from_origin.ok()) return net::make_response(404, "no such content");
    ++origin_fetches_;
    admit(name->label(), from_origin.body,
          from_origin.headers.get("Content-Type").value_or("text/plain"));
    it = entries_.find(name->label());
  } else {
    ++cache_hits_;
  }

  // Step 6: respond with the content plus verification metadata. The ETag
  // is the content digest, enabling cheap conditional revalidation by
  // downstream caches.
  const Entry& entry = it->second;
  const std::string etag =
      "\"" + crypto::hex_encode(std::span<const std::uint8_t>(entry.metadata.digest)) +
      "\"";
  if (const auto condition = request.headers.get("If-None-Match");
      condition && *condition == etag) {
    net::HttpResponse not_modified = net::make_response(304, "");
    not_modified.headers.set("ETag", etag);
    return not_modified;
  }
  net::HttpResponse response = net::make_response(200, entry.body, entry.content_type);
  entry.metadata.apply_to(response.headers);
  response.headers.set("ETag", etag);
  return response;
}

}  // namespace idicn::idicn
