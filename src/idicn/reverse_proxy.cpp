#include "idicn/reverse_proxy.hpp"

#include "crypto/hex.hpp"
#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {
namespace {

/// Buffers a streamed multi-source fetch back into one HttpResponse for
/// the admission path (signing needs the complete body anyway). The head
/// the sink sees is already the synthesized 200 when the body arrived as
/// joined range legs.
class BufferSink final : public net::ChunkSink {
public:
  bool on_head(const net::HttpResponse&) override { return true; }
  bool on_chunk(core::Chunk chunk) override {
    body_.append(std::move(chunk));
    return true;
  }

  /// The buffered body attached to the fetch's final head.
  [[nodiscard]] net::HttpResponse assemble(net::HttpResponse head) {
    head.body.clear();
    head.stream_body = std::move(body_);
    return head;
  }

private:
  core::ChunkedBody body_;
};

}  // namespace

ReverseProxy::ReverseProxy(net::Transport* net, net::Address self, net::Address origin,
                           net::Address nrs, crypto::MerkleSigner* signer)
    : net_(net),
      self_(std::move(self)),
      origin_(std::move(origin)),
      nrs_(std::move(nrs)),
      publisher_id_(SelfCertifyingName::publisher_id(signer->root())),
      origin_fetcher_(net),
      signer_(signer) {}

ReverseProxy::Entry& ReverseProxy::admit(const std::string& label,
                                         core::ChunkedBody body,
                                         std::string content_type) {
  Entry entry;
  entry.body = std::move(body);
  entry.content_type = std::move(content_type);
  entry.metadata.name = SelfCertifyingName(label, publisher_id_);
  crypto::Sha256 hasher;
  for (const core::Chunk& chunk : entry.body.chunks()) hasher.update(chunk.view());
  entry.metadata.digest = hasher.finish();
  entry.metadata.publisher_key = signer_->root();
  entry.metadata.signature = signer_->sign(entry.metadata.signing_input());
  entry.metadata.mirrors = {self_};
  // Advertised replicas ride in the metalink metadata so downstream
  // proxies can hedge/range-split across them (DESIGN.md §13).
  for (const net::Address& mirror : mirrors_) {
    entry.metadata.mirrors.push_back(mirror);
  }
  return entries_[label] = std::move(entry);
}

std::optional<SelfCertifyingName> ReverseProxy::publish(const std::string& label) {
  // A publish consumes two one-time signatures (content + registration);
  // refuse cleanly when the publisher's key is exhausted.
  {
    const core::sync::MutexLock lock(mutex_);
    if (signer_->remaining() < 2) return std::nullopt;
  }

  // Step P1: pull the authoritative bytes from the origin (no lock across
  // network I/O).
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/content?label=" + label;
  net::HttpResponse from_origin = net_->send(self_, origin_, fetch);
  if (!from_origin.ok()) return std::nullopt;
  ++origin_fetches_;

  std::optional<SelfCertifyingName> name;
  crypto::MerkleSignature registration;
  std::string key_hex;
  {
    const core::sync::MutexLock lock(mutex_);
    // Re-check: a concurrent publish/admission may have spent the budget
    // while the fetch was in flight.
    if (signer_->remaining() < 2) return std::nullopt;
    const Entry& entry =
        admit(label, from_origin.take_body_chunks(),
              from_origin.headers.get("Content-Type").value_or("text/plain"));
    name = entry.metadata.name;
    // Step P2 signature: the NRS checks nothing but cryptographic
    // correctness.
    registration = signer_->sign(
        NameResolutionSystem::registration_signing_input(*name, self_));
    key_hex = crypto::hex_encode(std::span<const std::uint8_t>(signer_->root()));
  }

  net::HttpRequest reg;
  reg.method = "POST";
  reg.target = "/register";
  reg.body = "name=" + name->host() + "&location=" + self_ +
             "&publisher-key=" + key_hex +
             "&signature=" + registration.encode();
  reg.headers.set("Content-Length", std::to_string(reg.body.size()));
  const net::HttpResponse ack = net_->send(self_, nrs_, reg);
  if (!ack.ok()) return std::nullopt;
  return name;
}

net::HttpResponse ReverseProxy::respond(const Entry& entry,
                                        const net::HttpRequest& request) const {
  // Step 6: respond with the content plus verification metadata. The ETag
  // is the content digest, enabling cheap conditional revalidation by
  // downstream caches.
  const std::string etag =
      "\"" + crypto::hex_encode(std::span<const std::uint8_t>(entry.metadata.digest)) +
      "\"";
  if (const auto condition = request.headers.get("If-None-Match");
      condition && *condition == etag) {
    net::HttpResponse not_modified = net::make_response(304, "");
    not_modified.headers.set("ETag", etag);
    return not_modified;
  }
  net::HttpResponse response =
      net::make_stream_response(200, entry.body, entry.content_type);
  entry.metadata.apply_to(response.headers);
  response.headers.set("ETag", etag);
  // RFC 7233 ranged reads, applied after the metadata headers so a 206
  // still carries the verification material. This is what lets a
  // multi-source fetcher split one object across replicas: the probe's
  // 206 exposes the total size via Content-Range, and an empty object's
  // 416 carries "bytes */0". Pre-range clients are unaffected (no Range
  // header ⇒ plain 200).
  if (const auto range = request.headers.get_view("Range")) {
    net::apply_byte_range(*range, response);
  }
  return response;
}

net::HttpResponse ReverseProxy::finish_admission(const SelfCertifyingName& name,
                                                 net::HttpResponse from_origin,
                                                 const net::HttpRequest& request) {
  if (!from_origin.ok()) return net::make_response(404, "no such content");
  ++origin_fetches_;

  const core::sync::MutexLock lock(mutex_);
  auto it = entries_.find(name.label());
  if (it == entries_.end()) {
    // Still missing — we are the admitting worker.
    if (signer_->remaining() == 0) {
      return net::make_response(503, "publisher signing key exhausted");
    }
    admit(name.label(), from_origin.take_body_chunks(),
          from_origin.headers.get("Content-Type").value_or("text/plain"));
    it = entries_.find(name.label());
  }
  // (A sibling admitted it while we fetched: serve theirs, drop our copy.)
  return respond(it->second, request);
}

// The parked half of a miss: holds the request and the client's deliver
// callback while the origin fetch rides the executor. abort() (client
// disconnected) keeps the admission — the signed entry serves future
// requests — and only drops the delivery.
class ReverseProxy::AdmitOp final : public net::AsyncOp,
                                    public std::enable_shared_from_this<AdmitOp> {
public:
  AdmitOp(ReverseProxy* proxy, SelfCertifyingName name,
          net::HttpRequest request,
          std::function<void(net::HttpResponse)> deliver)
      : proxy_(proxy),
        name_(std::move(name)),
        request_(std::move(request)),
        deliver_(std::move(deliver)) {}

  void abort() override { cancelled_ = true; }
  [[nodiscard]] bool settled() const noexcept { return settled_; }

  void weigh_origin_answer(net::HttpResponse from_origin) {
    settled_ = true;
    auto deliver = std::move(deliver_);
    deliver_ = nullptr;
    net::HttpResponse response =
        proxy_->finish_admission(name_, std::move(from_origin), request_);
    if (!cancelled_ && deliver != nullptr) deliver(std::move(response));
  }

private:
  ReverseProxy* proxy_;
  SelfCertifyingName name_;
  net::HttpRequest request_;
  std::function<void(net::HttpResponse)> deliver_;
  bool settled_ = false;
  bool cancelled_ = false;
};

net::HttpResponse ReverseProxy::handle_http(const net::HttpRequest& request,
                                            const net::Address& from) {
  // Null executor: the origin fetch falls back to its synchronous path
  // inline, so the delivery fires before handle_http_async returns.
  net::HttpResponse response =
      net::make_response(500, "reverse proxy did not settle");
  handle_http_async(request, from, nullptr,
                    [&response](net::HttpResponse settled) {
                      response = std::move(settled);
                    });
  return response;
}

std::shared_ptr<net::AsyncOp> ReverseProxy::handle_http_async(
    const net::HttpRequest& request, const net::Address& /*from*/,
    net::Executor* exec, std::function<void(net::HttpResponse)> deliver) {
  if (request.method != "GET") {
    deliver(net::make_response(404, "no such endpoint"));
    return nullptr;
  }
  const auto host = request.headers.get("Host");
  if (!host) {
    deliver(net::make_response(400, "missing Host"));
    return nullptr;
  }
  const auto name = SelfCertifyingName::parse_host(*host);
  if (!name) {
    deliver(net::make_response(400, "not an idicn name"));
    return nullptr;
  }
  if (name->publisher() != publisher_id_) {
    deliver(net::make_response(403, "wrong publisher"));
    return nullptr;
  }

  // Fast path: already signed and cached. The answer is built under the
  // lock but delivered after it drops — the delivery drives the client
  // socket.
  std::optional<net::HttpResponse> immediate;
  {
    const core::sync::MutexLock lock(mutex_);
    const auto it = entries_.find(name->label());
    if (it != entries_.end()) {
      ++cache_hits_;
      immediate = respond(it->second, request);
    } else if (signer_->remaining() == 0) {
      // On-demand admission needs a fresh one-time signature.
      immediate = net::make_response(503, "publisher signing key exhausted");
    }
  }
  if (immediate) {
    deliver(std::move(*immediate));
    return nullptr;
  }

  // Step 5: route the request to the origin backend — with the lock
  // dropped and the request parked, so this worker keeps serving while the
  // fetch is in flight. The fetch goes through the congestion-aware
  // multi-source engine: with replicas registered it RTT-ranks them,
  // hedges past the straggler threshold and fails over on faults; with
  // just the one origin it degrades to a breaker-gated single fetch.
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/content?label=" + name->label();
  std::vector<net::Address> sources;
  sources.reserve(1 + origin_replicas_.size());
  sources.push_back(origin_);
  for (const net::Address& replica : origin_replicas_) {
    sources.push_back(replica);
  }
  auto sink = std::make_shared<BufferSink>();
  auto op = std::make_shared<AdmitOp>(this, *name, request, std::move(deliver));
  origin_fetcher_.fetch_from_best(
      self_, std::move(sources), std::move(fetch), sink, exec,
      [op, sink](net::HttpResponse head,
                 const runtime::MultiSourceFetcher::Result&) {
        op->weigh_origin_answer(sink->assemble(std::move(head)));
      });
  return op->settled() ? nullptr : op;
}

}  // namespace idicn::idicn
