// Edge proxy cache (§6, steps 2–4 and 7).
//
// The AD-operated HTTP proxy clients are auto-configured to use. Per
// request (absolute-form target, classic proxy semantics):
//   * a fresh cached copy is served immediately (step 7, X-Cache: HIT);
//   * otherwise an idICN name is resolved through the NRS (step 3,
//     following one level of P-delegation), fetched from a
//     location/mirror (step 4), VERIFIED against the self-certifying name
//     (the proxy-authenticates-content deployment mode of §6.1), cached,
//     and served (X-Cache: MISS);
//   * legacy hosts are resolved through DNS and forwarded transparently —
//     idICN leaves the existing web intact.
// Verification failures are never cached or served; the proxy falls back
// to the next known location and answers 502 when none verifies.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/perf_counters.hpp"
#include "core/sync.hpp"
#include "idicn/metalink.hpp"
#include "idicn/name.hpp"
#include "net/dns.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"

namespace idicn::idicn {

class Proxy : public net::SimHost {
public:
  struct Options {
    std::uint64_t capacity_bytes = 1 << 20;
    std::uint64_t freshness_ms = 3'600'000;  ///< cached copies stay fresh this long
    bool verify = true;  ///< authenticate content before caching/serving
  };

  Proxy(net::Transport* net, net::Address self, net::Address nrs,
        const net::DnsService* dns, Options options);
  Proxy(net::Transport* net, net::Address self, net::Address nrs,
        const net::DnsService* dns)
      : Proxy(net, std::move(self), std::move(nrs), dns, Options{}) {}

  /// Observer counters. Written only by the thread driving handle_http
  /// (the HostServer worker in the socket runtime), but sampled by bench
  /// and test threads while the proxy is live — hence relaxed atomics, not
  /// plain integers (TSan-clean cross-thread reads, no ordering promised
  /// between counters).
  struct Stats {
    core::sync::RelaxedCounter hits;
    core::sync::RelaxedCounter misses;
    core::sync::RelaxedCounter expired;             ///< stale entries refreshed
    core::sync::RelaxedCounter verification_failures;
    core::sync::RelaxedCounter legacy_forwards;
    core::sync::RelaxedCounter evictions;
    core::sync::RelaxedCounter peer_hits;           ///< served via cooperating proxies
    core::sync::RelaxedCounter revalidations;       ///< conditional refreshes attempted
    core::sync::RelaxedCounter revalidated_304;     ///< …answered Not Modified
    core::sync::RelaxedCounter bytes_served;        ///< response body bytes to clients (goodput)
    core::sync::RelaxedCounter bytes_from_origin;   ///< body bytes fetched upstream on misses
  };
  /// Register a cooperating sibling proxy in the same AD (the
  /// application-layer analogue of the simulator's EDGE-Coop): on a local
  /// miss, peers are asked — cache-only, no recursive fetch — before the
  /// name is resolved upstream.
  void add_peer(net::Address peer) { peers_.push_back(std::move(peer)); }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Hot-path counters (byte throughput mirrors of Stats); zero-valued when
  /// the perf-counter layer is compiled out. Owner-thread-only: read it
  /// from the serving thread or after the hosting server has stopped —
  /// live cross-thread sampling goes through stats() (relaxed atomics).
  [[nodiscard]] const core::PerfCounters& perf() const noexcept { return perf_; }
  [[nodiscard]] std::uint64_t cached_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::size_t cached_objects() const noexcept { return entries_.size(); }
  [[nodiscard]] bool is_cached(const std::string& host) const {
    return entries_.find(host) != entries_.end();
  }

  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  struct Entry {
    std::string body;
    std::string content_type;
    std::optional<ContentMetadata> metadata;
    std::string etag;          ///< validator for conditional refreshes
    net::Address fetched_from; ///< where a revalidation should go
    std::uint64_t stored_at_ms = 0;
    std::list<std::string>::iterator lru_position;
  };

  net::HttpResponse serve_idicn(const SelfCertifyingName& name,
                                const net::HttpRequest& request);
  net::HttpResponse serve_legacy(const std::string& host,
                                 const net::HttpRequest& request);

  /// Conditional refresh of a stale entry; true when a 304 renewed it.
  bool revalidate(const std::string& host, Entry& entry);
  /// Ask cooperating peers (cache-only); nullopt when no peer has it.
  std::optional<Entry> fetch_from_peers(const SelfCertifyingName& name);

  /// Fetch `name` from `location` and verify; std::nullopt on any failure.
  std::optional<Entry> fetch_and_verify(const SelfCertifyingName& name,
                                        const net::Address& location);

  net::HttpResponse serve_entry(const std::string& host, Entry& entry, bool hit,
                                bool full_metadata);
  void cache_store(const std::string& host, Entry entry);
  void touch(const std::string& host);
  void evict_until_fits(std::uint64_t incoming);

  net::Transport* net_;
  net::Address self_;
  net::Address nrs_;
  const net::DnsService* dns_;
  Options options_;
  Stats stats_;
  core::PerfCounters perf_;

  std::map<std::string, Entry> entries_;  // host → entry
  std::list<std::string> lru_;            // front = most recent
  std::uint64_t used_bytes_ = 0;
  std::vector<net::Address> peers_;
};

/// The request header marking a cache-only cooperative query (a proxy must
/// answer it from its cache or 404 — never by fetching upstream, which
/// would loop).
inline constexpr const char* kIcpQueryHeader = "X-IdICN-Peer-Query";

}  // namespace idicn::idicn
