// Edge proxy cache (§6, steps 2–4 and 7).
//
// The AD-operated HTTP proxy clients are auto-configured to use. Per
// request (absolute-form target, classic proxy semantics):
//   * a fresh cached copy is served immediately (step 7, X-Cache: HIT);
//   * otherwise an idICN name is resolved through the NRS (step 3,
//     following one level of P-delegation), fetched from a
//     location/mirror (step 4), VERIFIED against the self-certifying name
//     (the proxy-authenticates-content deployment mode of §6.1), cached,
//     and served (X-Cache: MISS);
//   * legacy hosts are resolved through DNS and forwarded transparently —
//     idICN leaves the existing web intact.
// Verification failures are never cached or served; the proxy falls back
// to the next known location and answers 502 when none verifies.
//
// Degradation (DESIGN.md §"Failure model & degradation"): when every
// upstream path fails at the transport/HTTP layer — NRS unreachable, all
// locations down — the proxy first tries a direct refetch from wherever the
// expired copy originally came from (sidestepping a dead NRS), and failing
// that serves the verified-but-expired entry with `Warning: 110` and
// `X-IdICN-Stale: 1` rather than erroring (serve-stale-on-error). Clean
// negatives (NRS says the name does not exist, content fails verification)
// never serve stale.
//
// Threading: handle_http / handle_http_async are safe to call from any
// number of runtime::ServerGroup workers concurrently. The entire serving
// flow is one continuation-passing state machine (FetchOp): every upstream
// exchange — peer query, sibling redirect, NRS resolution, location fetch,
// revalidation, legacy forward — goes through Transport::send_async /
// send_streaming_async and parks until the executor resumes it, so a
// worker's event loop is never blocked on upstream I/O (a cache HIT on the
// same worker keeps flowing while a MISS fetch is in flight). The
// synchronous handle_http drives the identical machine with a null
// executor, where every transport hop completes inline. The content store
// is striped across Options::cache_shards shards (host-hashed, each a
// private entries-map + LRU list + byte budget behind its own Mutex, the
// same layout cache::ShardedCache gives the simulator policies); shard
// locks are never held across network I/O or a client respond — a stale
// hit snapshots its validators, revalidates unlocked, then re-locks to
// renew. Counters:
// Stats is relaxed-atomic (live sampling from anywhere), PerfCounters are
// per-shard plain integers bumped under the shard lock and merged by
// perf(). add_peer() is setup-time only — call it before serving starts.
// cache_shards=1 (the default) keeps hit/eviction behavior byte-identical
// to the single-threaded PR-3 proxy; with S shards each shard caches its
// slice of the host space in capacity_bytes/S.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "core/perf_counters.hpp"
#include "core/sync.hpp"
#include "idicn/metalink.hpp"
#include "idicn/name.hpp"
#include "net/dns.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"
#include "runtime/multi_source_fetcher.hpp"

namespace idicn::idicn {

namespace detail {

/// An object currently streaming through the proxy: the fetching worker
/// appends chunks as they arrive off the wire while any number of
/// concurrent requests for the same object read the growing prefix
/// through producer-backed responses (X-Cache: STREAM) instead of issuing
/// duplicate upstream fetches. Visibility is managed under the owning
/// cache shard's lock (the shard's transit map); the chunk list has its
/// own mutex so appends and reads never contend with the shard's serving
/// fast path. The identity fields below the mutex are set by the fetcher
/// before the transit is published and immutable afterwards.
struct Transit {
  mutable core::sync::Mutex mutex;
  core::ChunkedBody chunks IDICN_GUARDED_BY(mutex);
  bool complete IDICN_GUARDED_BY(mutex) = false;
  /// Fail-closed: set when the upstream died mid-body or the completed
  /// content failed verification — joined readers surface an error and
  /// their connections close without ever completing the body, so a
  /// client can never mistake corrupt content for a clean transfer.
  bool failed IDICN_GUARDED_BY(mutex) = false;

  std::string content_type;
  std::string etag;
  std::optional<ContentMetadata> metadata;     ///< unverified until complete
  std::optional<std::uint64_t> expected_size;  ///< from Content-Length
};

}  // namespace detail

/// Who-has-what directory for cross-PoP cache cooperation (EDGE-Coop over
/// real links). Proxies feed it digests of sibling content stores (hint
/// ingestion) and consult it on a local miss (nearest-replica redirect);
/// the topology-aware implementation lives in src/testbed/ (it ranks
/// holders by core-graph distance through core::HolderIndex). Hints are
/// soft state: a directory answer may be stale, so the proxy treats a
/// sibling 404 as "forget and fall through", never as an error.
///
/// Implementations must be internally thread-safe — ingest arrives on
/// whichever worker carries the hint POST while holders() runs on every
/// serving worker.
class SiblingDirectory {
public:
  virtual ~SiblingDirectory() = default;

  /// Replace `sibling`'s advertised content set with `hosts` (a full
  /// digest: anything previously advertised but now absent is dropped).
  virtual void ingest(const net::Address& sibling,
                      const std::vector<std::string>& hosts) = 0;
  /// Drop one advertised entry (a redirect found the copy gone — the hint
  /// was stale).
  virtual void forget(const net::Address& sibling, const std::string& host) = 0;
  /// Sibling proxies advertising `host`, nearest first. Never includes the
  /// owning proxy itself.
  [[nodiscard]] virtual std::vector<net::Address> holders(const std::string& host) = 0;
};

class Proxy : public net::SimHost {
public:
  struct Options {
    std::uint64_t capacity_bytes = 1 << 20;
    std::uint64_t freshness_ms = 3'600'000;  ///< cached copies stay fresh this long
    bool verify = true;  ///< authenticate content before caching/serving
    std::size_t cache_shards = 1;  ///< content-store lock stripes (≥ 1)
    /// When non-empty, every response carries `X-IdICN-PoP: <pop_name>` so
    /// testbed clients (and curious humans) can tell which PoP served them.
    std::string pop_name;
    /// Maximum proxy→proxy forwarding chain for sibling fetches: a request
    /// whose X-IdICN-Hops already reaches this limit is answered cache-only
    /// (404 on miss). Hops only ever increment, so redirect loops die here.
    std::size_t sibling_hop_limit = 2;
    /// Digest-size bound, both directions: push_hints() advertises at most
    /// this many hosts and hint ingestion truncates anything longer, so a
    /// misbehaving (or enormous) sibling cannot bloat the directory.
    std::size_t max_hint_entries = 256;
    /// Stale-hint damage control: at most this many directory candidates
    /// are tried per miss before falling through to the NRS/origin path.
    std::size_t sibling_fanout = 2;
    /// Congestion-aware multi-source MISS path (DESIGN.md §13): when a
    /// name resolves to ≥2 distinct sources (NRS rows, metalink mirrors
    /// remembered from an expired copy, the stale copy's origin), the
    /// fetch races through a runtime::MultiSourceFetcher — RTT-ranked
    /// replica choice, hedged requests past the straggler threshold,
    /// parallel range legs on large objects — with the serial location
    /// ladder as fallback, so availability never regresses.
    bool multi_source_fetch = true;
    runtime::MultiSourceFetcher::Options fetch;  ///< fetcher tuning knobs
  };

  Proxy(net::Transport* net, net::Address self, net::Address nrs,
        const net::DnsService* dns, Options options);
  Proxy(net::Transport* net, net::Address self, net::Address nrs,
        const net::DnsService* dns)
      : Proxy(net, std::move(self), std::move(nrs), dns, Options{}) {}

  /// Observer counters. Bumped by whichever worker thread is driving
  /// handle_http and sampled by bench and test threads while the proxy is
  /// live — hence relaxed atomics, not plain integers (TSan-clean
  /// cross-thread reads, no ordering promised between counters).
  struct Stats {
    core::sync::RelaxedCounter hits;
    core::sync::RelaxedCounter misses;
    core::sync::RelaxedCounter expired;             ///< stale entries refreshed
    core::sync::RelaxedCounter verification_failures;
    core::sync::RelaxedCounter legacy_forwards;
    core::sync::RelaxedCounter evictions;
    core::sync::RelaxedCounter peer_hits;           ///< served via cooperating proxies
    core::sync::RelaxedCounter revalidations;       ///< conditional refreshes attempted
    core::sync::RelaxedCounter revalidated_304;     ///< …answered Not Modified
    core::sync::RelaxedCounter bytes_served;        ///< response body bytes to clients (goodput)
    core::sync::RelaxedCounter bytes_from_origin;   ///< body bytes fetched upstream on misses
    core::sync::RelaxedCounter stale_served;        ///< expired entries served on upstream failure
    core::sync::RelaxedCounter upstream_errors;     ///< exhausted upstream paths (transport/5xx)
    core::sync::RelaxedCounter stream_joins;        ///< requests joined to an in-flight fetch
    core::sync::RelaxedCounter sibling_hits;        ///< served via directory-guided sibling fetch
    core::sync::RelaxedCounter hints_sent;          ///< digests pushed to siblings
    core::sync::RelaxedCounter hints_received;      ///< digests ingested from siblings
  };
  /// Register a cooperating sibling proxy in the same AD (the
  /// application-layer analogue of the simulator's EDGE-Coop): on a local
  /// miss, peers are asked — cache-only, no recursive fetch — before the
  /// name is resolved upstream. Setup-time only (not guarded): call before
  /// the hosting server starts serving.
  void add_peer(net::Address peer) { peers_.push_back(std::move(peer)); }

  /// Cross-PoP cooperation wiring (both setup-time only, like add_peer):
  /// the directory answers "which sibling holds this object, nearest
  /// first", and the sibling list receives this proxy's periodic content
  /// digests. The directory must outlive the proxy.
  void set_sibling_directory(SiblingDirectory* directory) { directory_ = directory; }
  void add_sibling(net::Address sibling) { siblings_.push_back(std::move(sibling)); }

  /// The content digest this proxy advertises: cached hosts in
  /// most-recently-used-first order per shard, truncated to
  /// Options::max_hint_entries. Safe from any thread (locks each shard in
  /// turn).
  [[nodiscard]] std::vector<std::string> hint_digest() const;

  /// POST the current digest to every registered sibling (the periodic
  /// hint exchange; the testbed's driver calls this between trace batches).
  /// Unreachable siblings are skipped — hints are best-effort soft state.
  void push_hints();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// The congestion-aware multi-source fetch engine: hedging/range-split
  /// counters and per-destination RTT snapshots for the bench exporters.
  [[nodiscard]] runtime::MultiSourceFetcher& fetcher() noexcept {
    return *fetcher_;
  }
  /// Hot-path counters (byte throughput mirrors of Stats); zero-valued
  /// when the perf-counter layer is compiled out. Returns a merged
  /// snapshot of the per-shard counters (each shard locked in turn), safe
  /// from any thread while workers serve.
  [[nodiscard]] core::PerfCounters perf() const;
  [[nodiscard]] std::uint64_t cached_bytes() const;
  [[nodiscard]] std::size_t cached_objects() const;
  [[nodiscard]] bool is_cached(const std::string& host) const;

  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

  /// Loop-native entry point: the serving state machine parks on upstream
  /// I/O via `exec` and answers through `respond` (inline for cache hits,
  /// later from the loop for misses). Returns the cancellation handle while
  /// the request is parked — abort() marks the client gone, stops new
  /// upstream work, and suppresses the respond (an in-flight streaming
  /// fetch that already published its transit still runs to completion so
  /// joined readers and the cache keep the bytes).
  std::shared_ptr<net::AsyncOp> handle_http_async(
      const net::HttpRequest& request, const net::Address& from,
      net::Executor* exec,
      std::function<void(net::HttpResponse)> respond) override;

private:
  /// The continuation-passing serving machine (defined in proxy.cpp).
  class FetchOp;
  struct Entry {
    /// Chunk-granular body: the same shared chunks the object arrived in
    /// (and that any concurrent stream-joiners are reading). Serving a hit
    /// references them — N concurrent readers of one cached object cost
    /// one copy of the bytes.
    core::ChunkedBody body;
    std::string content_type;
    std::optional<ContentMetadata> metadata;
    std::string etag;          ///< validator for conditional refreshes
    net::Address fetched_from; ///< where a revalidation should go
    std::uint64_t stored_at_ms = 0;
    std::list<std::string>::iterator lru_position;
  };

  /// One lock stripe of the content store: a private host→entry map, LRU
  /// list, and byte budget. All serving state is guarded by `mutex`; the
  /// capacity slice is immutable after construction.
  struct CacheShard {
    mutable core::sync::Mutex mutex;
    std::map<std::string, Entry> entries IDICN_GUARDED_BY(mutex);
    std::list<std::string> lru IDICN_GUARDED_BY(mutex);  ///< front = most recent
    /// Objects currently being fetched through this shard: later requests
    /// for the same host join the in-flight stream instead of fetching
    /// again. Retired (erased) when the fetch completes or fails.
    std::map<std::string, std::shared_ptr<detail::Transit>> transit
        IDICN_GUARDED_BY(mutex);
    std::uint64_t used_bytes IDICN_GUARDED_BY(mutex) = 0;
    core::PerfCounters perf IDICN_GUARDED_BY(mutex);
    std::uint64_t capacity_bytes = 0;  ///< this shard's slice; construction-time
  };

  [[nodiscard]] CacheShard& shard_for(const std::string& host);
  [[nodiscard]] const CacheShard& shard_for(const std::string& host) const;

  /// Ingest a sibling's content digest (POST /idicn-hint).
  net::HttpResponse serve_hint(const net::HttpRequest& request);

  /// Serve-stale-on-error (RFC 5861 flavor): re-lock the shard and serve
  /// the expired-but-verified entry with `Warning: 110` + `X-IdICN-Stale`.
  /// nullopt when the entry was evicted meanwhile. The entry's freshness is
  /// NOT renewed — the next request tries upstream again.
  std::optional<net::HttpResponse> serve_stale(CacheShard& shard,
                                               const std::string& host,
                                               bool full_metadata)
      IDICN_EXCLUDES(shard.mutex);

  /// Admit a fetched entry into `shard` (evicting as needed) and serve it.
  /// An entry too large for the shard's slice is served without being
  /// admitted.
  net::HttpResponse store_and_serve(CacheShard& shard, const std::string& host,
                                    Entry entry, bool full_metadata)
      IDICN_EXCLUDES(shard.mutex);

  net::HttpResponse serve_entry(CacheShard& shard, const std::string& host,
                                Entry& entry, bool hit, bool full_metadata)
      IDICN_REQUIRES(shard.mutex);
  /// Allocation-light step-7 fast path shared by both entry points: a GET
  /// for a valid idICN name with a fresh cached copy is served without
  /// constructing the FetchOp machine (the hot-path-alloc ratchet counts
  /// every heap allocation on the hit chain). nullopt falls through to the
  /// full machine — misses, stale entries, transit joins, hints, legacy.
  std::optional<net::HttpResponse> serve_if_fresh_hit(
      const net::HttpRequest& request);
  /// Join a request to an in-flight fetch: a producer-backed response that
  /// serves the already-arrived prefix immediately and the tail as it
  /// streams from upstream (X-Cache: STREAM).
  net::HttpResponse serve_transit(const std::shared_ptr<detail::Transit>& transit,
                                  bool full_metadata);
  /// True when admitted (entry moved into the shard); false when the body
  /// exceeds the shard's capacity slice (entry untouched).
  bool cache_store(CacheShard& shard, const std::string& host, Entry& entry)
      IDICN_REQUIRES(shard.mutex);
  void touch(CacheShard& shard, const std::string& host)
      IDICN_REQUIRES(shard.mutex);
  void evict_until_fits(CacheShard& shard, std::uint64_t incoming)
      IDICN_REQUIRES(shard.mutex);

  net::Transport* net_;
  net::Address self_;
  net::Address nrs_;
  const net::DnsService* dns_;
  Options options_;
  Stats stats_;
  std::unique_ptr<runtime::MultiSourceFetcher> fetcher_;

  /// Sized by the constructor, never resized: the vector and each shard's
  /// identity are immutable; only guarded shard innards mutate.
  std::vector<std::unique_ptr<CacheShard>> shards_;
  std::vector<net::Address> peers_;  ///< setup-time only (see add_peer)

  /// Cross-PoP cooperation (both setup-time only, see add_sibling):
  SiblingDirectory* directory_ = nullptr;  ///< not owned; may stay null
  std::vector<net::Address> siblings_;     ///< digest push targets
};

/// The request header marking a cache-only cooperative query (a proxy must
/// answer it from its cache or 404 — never by fetching upstream, which
/// would loop).
inline constexpr const char* kIcpQueryHeader = "X-IdICN-Peer-Query";

/// Proxy→proxy forwarding depth for sibling (cross-PoP) fetches. Absent
/// means 0 (a client-originated request); each sibling hop forwards with
/// the value incremented. A receiving proxy at or past its
/// Options::sibling_hop_limit answers cache-only — the loop-safety valve
/// of the EDGE-Coop redirect scheme.
inline constexpr const char* kHopsHeader = "X-IdICN-Hops";

/// Identifies a digest POST's sender (its transport address), so the
/// receiver can attribute the advertised content set in its directory.
inline constexpr const char* kHintHeader = "X-IdICN-Hint";

/// Response header naming the PoP whose proxy served the response (set
/// whenever Options::pop_name is configured).
inline constexpr const char* kPopHeader = "X-IdICN-PoP";

/// Response header naming the transport address the body was actually
/// fetched from on a miss (origin/mirror or sibling proxy). The testbed's
/// driver uses it to charge core-link transfers to the real path taken.
inline constexpr const char* kSourceHeader = "X-IdICN-Source";

/// Target path of the sibling digest exchange (POST body: `host=<h>` lines).
inline constexpr const char* kHintPath = "/idicn-hint";

}  // namespace idicn::idicn
