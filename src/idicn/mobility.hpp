// Mobility support (§6.3).
//
// idICN handles mobility with two off-the-shelf ingredients:
//   * session management over HTTP — stateless byte ranges (and a session
//     cookie) let a transfer resume after any disconnection;
//   * dynamic DNS — a server that moves re-announces its location, and the
//     client's next name lookup finds the new address.
// MobileServer is an HTTP server with Range support that can move between
// simulated addresses mid-transfer; MobileClient downloads in ranged
// chunks, re-resolving and resuming whenever the server becomes
// unreachable. Either side (or both) may move.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/dns.hpp"
#include "net/sim_net.hpp"

namespace idicn::idicn {

/// Parse "bytes=lo-" or "bytes=lo-hi"; std::nullopt on anything else.
struct ByteRange {
  std::uint64_t lo = 0;
  std::optional<std::uint64_t> hi;  ///< inclusive; nullopt = to end
};
[[nodiscard]] std::optional<ByteRange> parse_byte_range(std::string_view header);

class MobileServer : public net::SimHost {
public:
  /// Attaches at `address` and announces "<dns_name> → address" (dynamic
  /// DNS). Non-owning pointers must outlive the server.
  MobileServer(net::SimNet* net, net::DnsService* dns, std::string dns_name,
               net::Address address);
  ~MobileServer() override;

  MobileServer(const MobileServer&) = delete;
  MobileServer& operator=(const MobileServer&) = delete;

  void put(const std::string& path, std::string body);

  /// Move to a new attachment point: detach, attach, dynamic-DNS update
  /// (§6.3: "mobile servers must announce their locations").
  void move_to(const net::Address& new_address);

  [[nodiscard]] const net::Address& address() const noexcept { return address_; }
  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  [[nodiscard]] std::uint64_t sessions_created() const noexcept {
    return next_session_ - 1;
  }

  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  net::SimNet* net_;
  net::DnsService* dns_;
  std::string dns_name_;
  net::Address address_;
  std::map<std::string, std::string> content_;  // path → body
  std::map<std::string, std::uint64_t> session_bytes_;  // session id → bytes served
  std::uint64_t next_session_ = 1;
  std::uint64_t moves_ = 0;
};

class MobileClient {
public:
  MobileClient(net::SimNet* net, const net::DnsService* dns, net::Address self)
      : net_(net), dns_(dns), self_(std::move(self)) {}

  struct DownloadResult {
    bool complete = false;
    std::string body;
    std::uint32_t chunks = 0;
    std::uint32_t reconnects = 0;    ///< re-resolutions after unreachability
    std::string session_id;          ///< cookie the server assigned
  };

  /// Download http://<name><path> in `chunk_size`-byte ranged requests,
  /// re-resolving `name` and resuming from the current offset whenever the
  /// server is unreachable (it may be moving). Gives up after
  /// `max_attempts` consecutive failures.
  [[nodiscard]] DownloadResult download(const std::string& name, const std::string& path,
                                        std::uint64_t chunk_size,
                                        unsigned max_attempts = 8);

  /// Hook invoked between chunks (tests use it to move the server
  /// mid-transfer). The argument is the byte offset reached so far.
  std::function<void(std::uint64_t)> between_chunks;

  /// Client-side mobility: the client reattaches at a new address. The
  /// next chunk goes out from there; the HTTP session cookie keeps the
  /// transfer logically continuous (§6.3 covers "moving the client, the
  /// server, or both").
  void move_to(net::Address new_address) { self_ = std::move(new_address); }
  [[nodiscard]] const net::Address& address() const noexcept { return self_; }

private:
  net::SimNet* net_;
  const net::DnsService* dns_;
  net::Address self_;
};

}  // namespace idicn::idicn
