// Metalink-style content metadata over HTTP headers (§6.1).
//
// The reverse proxy attaches, and caches/clients verify, per-object
// metadata: the content digest, the publisher's public key (Merkle root)
// and a hash-based signature over (name ‖ digest), plus mirror locations.
// We follow the spirit of Metalink/HTTP (RFC 6249): digests and duplicate
// mirrors ride in response headers that legacy clients simply ignore.
//
// Headers:
//   X-IdICN-Name:       <L>.<P>.idicn.org
//   X-IdICN-Digest:     sha-256=<hex>
//   X-IdICN-Publisher:  <hex Merkle root (the public key)>
//   X-IdICN-Signature:  <MerkleSignature::encode()>
//   Link: <uri>; rel=duplicate        (zero or more mirrors)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "crypto/lamport.hpp"
#include "crypto/sha256.hpp"
#include "idicn/name.hpp"
#include "net/http_message.hpp"

namespace idicn::idicn {

/// Request header a caller sets (any value) to receive the full
/// verification proof in the response. Proxies set it on every upstream
/// fetch (they always verify); end clients set it only when configured for
/// end-to-end verification. Plain browsers never send it, so the §6 common
/// case — a cache HIT to a trusting client — stays small on the wire.
inline constexpr const char* kWantMetadataHeader = "X-IdICN-Want-Metadata";

struct ContentMetadata {
  SelfCertifyingName name;
  crypto::Sha256Digest digest{};      ///< SHA-256 of the content bytes
  crypto::Sha256Digest publisher_key{};  ///< publisher's Merkle root
  crypto::MerkleSignature signature;  ///< over signing_input()
  std::vector<std::string> mirrors;   ///< alternate locations (Link rel=duplicate)

  /// The byte string the signature covers: binds the name to the digest so
  /// a valid signature for one object cannot be replayed for another.
  [[nodiscard]] std::string signing_input() const;

  /// Attach to / extract from HTTP headers. `include_proof` controls the
  /// expensive proof fields (publisher key + hash-based signature, tens of
  /// kilobytes); without them only the name, digest, and mirrors ride
  /// along — enough for an integrity hint, not for verification. Callers
  /// that verify must request the proof (see kWantMetadataHeader).
  void apply_to(net::HeaderMap& headers, bool include_proof = true) const;
  [[nodiscard]] static std::optional<ContentMetadata> from_headers(
      const net::HeaderMap& headers);
};

/// Verification outcome; distinguishes the failure modes so callers (and
/// tests) can tell tampering from key substitution.
enum class VerifyResult {
  Ok,
  DigestMismatch,    ///< body does not hash to the advertised digest
  PublisherMismatch, ///< hash of enclosed key != P in the name
  BadSignature       ///< signature does not verify under the enclosed key
};

[[nodiscard]] const char* to_string(VerifyResult result);

/// Full content-oriented verification: digest, name↔key binding, signature.
/// This is the ICN security property — no trust in the delivery path.
[[nodiscard]] VerifyResult verify_content(const ContentMetadata& metadata,
                                          std::string_view body);

/// Same checks with a precomputed body digest — the streaming fetch path
/// hashes chunks incrementally as they arrive off the wire, so the full
/// body never needs to be contiguous in memory for verification.
[[nodiscard]] VerifyResult verify_content(const ContentMetadata& metadata,
                                          const crypto::Sha256Digest& body_digest);

/// Chunk-store variant: hashes the chunks in order (equivalent to hashing
/// the concatenated body) and runs the same checks.
[[nodiscard]] VerifyResult verify_content(const ContentMetadata& metadata,
                                          const core::ChunkedBody& body);

}  // namespace idicn::idicn
