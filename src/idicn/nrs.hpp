// The idICN name resolution system (§6, steps 3 and P2).
//
// An SFR-like resolution service for self-certifying names. Registrations
// are accepted from anyone who can produce a signature that verifies under
// the public key whose hash is the name's P component — no other trust.
// Resolution first looks for an exact L.P entry; failing that, for a
// publisher-level (P) delegation pointing at a finer-grained resolver
// (exactly the two-step scheme the paper describes). Registered names are
// optionally mirrored into DNS for backward compatibility.
//
// HTTP API (the prototype's wire form):
//   POST /register            name=…&location=…&publisher-key=…&signature=…
//   POST /register-resolver   publisher=…&resolver=…&publisher-key=…&signature=…
//   GET  /resolve?name=<host> → "location=<addr>" lines | "resolver=<addr>" | 404
//
// Threading: registrations and resolutions may arrive concurrently from
// any number of runtime::ServerGroup workers — the registry maps are
// guarded by one internal mutex (resolution volume is tiny next to proxy
// traffic; a single lock is plenty). DNS mirroring goes through the
// already-thread-safe net::DnsService.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "crypto/lamport.hpp"
#include "idicn/name.hpp"
#include "net/dns.hpp"
#include "net/sim_net.hpp"

namespace idicn::idicn {

/// Outcome of a registration attempt.
enum class RegisterResult { Ok, BadName, PublisherMismatch, BadSignature };

[[nodiscard]] const char* to_string(RegisterResult result);

class NameResolutionSystem : public net::SimHost {
public:
  /// `dns` (optional, non-owning): registrations are mirrored there as
  /// "<host> → location" records for legacy resolution.
  explicit NameResolutionSystem(net::DnsService* dns = nullptr) : dns_(dns) {}

  // --- native API -------------------------------------------------------
  /// The canonical byte strings covered by registration signatures.
  [[nodiscard]] static std::string registration_signing_input(
      const SelfCertifyingName& name, const std::string& location);
  [[nodiscard]] static std::string delegation_signing_input(
      const std::string& publisher, const std::string& resolver);

  RegisterResult register_name(const SelfCertifyingName& name,
                               const std::string& location,
                               const crypto::Sha256Digest& publisher_key,
                               const crypto::MerkleSignature& signature);

  RegisterResult register_resolver(const std::string& publisher,
                                   const std::string& resolver,
                                   const crypto::Sha256Digest& publisher_key,
                                   const crypto::MerkleSignature& signature);

  struct Resolution {
    std::vector<std::string> locations;   ///< exact L.P matches
    std::optional<std::string> resolver;  ///< P-level delegation
    [[nodiscard]] bool found() const {
      return !locations.empty() || resolver.has_value();
    }
  };
  [[nodiscard]] Resolution resolve(const SelfCertifyingName& name) const;

  [[nodiscard]] std::size_t name_count() const {
    const core::sync::MutexLock lock(mutex_);
    return names_.size();
  }

  // --- HTTP face ----------------------------------------------------------
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  mutable core::sync::Mutex mutex_;
  std::map<std::string, std::vector<std::string>> names_
      IDICN_GUARDED_BY(mutex_);  // flat L.P → locations
  std::map<std::string, std::string> delegations_
      IDICN_GUARDED_BY(mutex_);  // P → resolver address
  net::DnsService* dns_;
};

/// Parse "k1=v1&k2=v2" bodies (no URL escaping — the prototype's values are
/// hostnames, addresses, and hex/base32 strings).
[[nodiscard]] std::map<std::string, std::string> parse_form(std::string_view body);

/// Parse newline-delimited "key=value" response bodies, preserving order
/// and duplicates (resolution answers list multiple locations).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> parse_form_lines(
    std::string_view body);

}  // namespace idicn::idicn
