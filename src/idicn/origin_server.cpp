#include "idicn/origin_server.hpp"

#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {

void OriginServer::put(const std::string& label, std::string body,
                       std::string content_type) {
  core::Chunk bytes = core::Chunk::from_string(std::move(body));
  const core::sync::MutexLock lock(mutex_);
  items_[label] = Item{std::move(bytes), std::move(content_type)};
}

std::optional<OriginServer::Item> OriginServer::find(
    const std::string& label) const {
  const core::sync::MutexLock lock(mutex_);
  const auto it = items_.find(label);
  if (it == items_.end()) return std::nullopt;
  return it->second;
}

net::HttpResponse OriginServer::handle_http(const net::HttpRequest& request,
                                            const net::Address& /*from*/) {
  const auto uri = net::parse_uri(request.target);
  if (!uri) return net::make_response(400, "bad target");
  if (request.method != "GET" || uri->path != "/content") {
    return net::make_response(404, "no such endpoint");
  }
  const auto params = parse_form(uri->query);
  const auto it = params.find("label");
  if (it == params.end()) return net::make_response(400, "missing label");
  const auto item = find(it->second);
  if (!item) return net::make_response(404, "no such content");
  ++requests_served_;
  core::ChunkedBody body;
  body.append(item->body);  // shares the stored bytes, no copy
  return net::make_stream_response(200, std::move(body), item->content_type);
}

}  // namespace idicn::idicn
