// Reverse proxy (§6, steps 4–6 and P1–P2).
//
// Deployed by the content provider in front of the origin. It
//   * publishes new content: computes the digest, signs (name ‖ digest)
//     with the publisher's hash-based key, caches the metadata, and
//     registers the name with the NRS (and, through it, DNS);
//   * serves content requests by name, attaching the Metalink-style
//     metadata headers; on a local miss it fetches from the origin
//     (step 5) and caches the result.
//
// Threading: handle_http / handle_http_async are safe under concurrent
// runtime::ServerGroup workers. One mutex guards the signed-entry map AND
// the MerkleSigner — sign() consumes one-time keys, so signing must be
// serialized — but is never held across network I/O: a miss fetches from
// the origin unlocked (via Transport::send_async, parking the request
// instead of blocking the worker's event loop), then re-checks under the
// lock (a sibling worker may have admitted the label meanwhile, in which
// case the extra fetch is discarded). The hit / fetch counters are relaxed
// atomics, sampleable from any thread.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer.hpp"
#include "core/sync.hpp"
#include "crypto/lamport.hpp"
#include "idicn/metalink.hpp"
#include "idicn/name.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"
#include "runtime/multi_source_fetcher.hpp"

namespace idicn::idicn {

class ReverseProxy : public net::SimHost {
public:
  /// `signer` is the publisher's long-lived key (kept at the reverse proxy,
  /// which generates signatures per the paper). Non-owning pointers must
  /// outlive the proxy.
  ReverseProxy(net::Transport* net, net::Address self, net::Address origin,
               net::Address nrs, crypto::MerkleSigner* signer);

  /// The publisher id (P) this proxy publishes under (computed once at
  /// construction — the signer's Merkle root is immutable).
  [[nodiscard]] const std::string& publisher_id() const noexcept {
    return publisher_id_;
  }

  /// Publish content already held at the origin under `label` (step P1):
  /// fetch it, sign it, register the name (step P2). Returns the full
  /// self-certifying name, or std::nullopt when the origin lacks the label
  /// or registration is refused.
  std::optional<SelfCertifyingName> publish(const std::string& label);

  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_.value();
  }
  [[nodiscard]] std::uint64_t origin_fetches() const noexcept {
    return origin_fetches_.value();
  }

  /// Advertise an additional replica in every signed object's metalink
  /// metadata (Link rel=duplicate): downstream proxies feed these into
  /// their multi-source fetch as hedge/range candidates. Setup-time only —
  /// call before serving starts; already-signed entries are unaffected.
  void add_mirror(net::Address mirror) {
    mirrors_.push_back(std::move(mirror));
  }

  /// Register a replica of the origin backend: miss-path admissions fetch
  /// through the congestion-aware MultiSourceFetcher across the origin and
  /// every replica (RTT-ranked, hedged, breaker-gated). Setup-time only.
  void add_origin_replica(net::Address replica) {
    origin_replicas_.push_back(std::move(replica));
  }

  /// The miss-path fetch engine (stats/snapshots for benches and tests).
  [[nodiscard]] runtime::MultiSourceFetcher& origin_fetcher() noexcept {
    return origin_fetcher_;
  }

  /// HTTP face: GET with Host: <L>.<P>.idicn.org (any path).
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

  /// Loop-native face: hits answer inline; a miss parks the request on the
  /// origin fetch via `exec` and resumes through `deliver`. abort() on the
  /// returned handle suppresses the delivery (the fetched content is still
  /// admitted — future requests keep the signed entry).
  std::shared_ptr<net::AsyncOp> handle_http_async(
      const net::HttpRequest& request, const net::Address& from,
      net::Executor* exec,
      std::function<void(net::HttpResponse)> deliver) override;

private:
  /// Parked origin-fetch continuation (defined in reverse_proxy.cpp).
  class AdmitOp;
  struct Entry {
    /// Chunk-granular: responses reference these bytes (no copy per
    /// request), and a body that arrived from the origin in pieces is
    /// signed and stored without reassembly.
    core::ChunkedBody body;
    std::string content_type;
    ContentMetadata metadata;
  };

  /// Sign and remember metadata for (label, body); returns the entry.
  Entry& admit(const std::string& label, core::ChunkedBody body,
               std::string content_type) IDICN_REQUIRES(mutex_);
  /// Build the 200 (or conditional 304) answer for a signed entry.
  [[nodiscard]] net::HttpResponse respond(const Entry& entry,
                                          const net::HttpRequest& request) const
      IDICN_REQUIRES(mutex_);

  /// Tail of a miss: the origin answered — re-check under the lock, admit
  /// if still missing (a sibling worker may have won the race), serve.
  net::HttpResponse finish_admission(const SelfCertifyingName& name,
                                     net::HttpResponse from_origin,
                                     const net::HttpRequest& request)
      IDICN_EXCLUDES(mutex_);

  net::Transport* net_;
  net::Address self_;
  net::Address origin_;
  net::Address nrs_;
  std::string publisher_id_;  ///< construction-time, immutable
  std::vector<net::Address> mirrors_;          ///< setup-time (add_mirror)
  std::vector<net::Address> origin_replicas_;  ///< setup-time
  runtime::MultiSourceFetcher origin_fetcher_;  ///< miss-path fetch engine
  /// Guards the entry map and the signer's one-time-key state; never held
  /// across net_->send().
  mutable core::sync::Mutex mutex_;
  crypto::MerkleSigner* signer_ IDICN_PT_GUARDED_BY(mutex_);
  std::map<std::string, Entry> entries_
      IDICN_GUARDED_BY(mutex_);  // label → signed content
  core::sync::RelaxedCounter cache_hits_;
  core::sync::RelaxedCounter origin_fetches_;
};

}  // namespace idicn::idicn
