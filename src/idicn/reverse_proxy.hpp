// Reverse proxy (§6, steps 4–6 and P1–P2).
//
// Deployed by the content provider in front of the origin. It
//   * publishes new content: computes the digest, signs (name ‖ digest)
//     with the publisher's hash-based key, caches the metadata, and
//     registers the name with the NRS (and, through it, DNS);
//   * serves content requests by name, attaching the Metalink-style
//     metadata headers; on a local miss it fetches from the origin
//     (step 5) and caches the result.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/lamport.hpp"
#include "idicn/metalink.hpp"
#include "idicn/name.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"

namespace idicn::idicn {

class ReverseProxy : public net::SimHost {
public:
  /// `signer` is the publisher's long-lived key (kept at the reverse proxy,
  /// which generates signatures per the paper). Non-owning pointers must
  /// outlive the proxy.
  ReverseProxy(net::Transport* net, net::Address self, net::Address origin,
               net::Address nrs, crypto::MerkleSigner* signer);

  /// The publisher id (P) this proxy publishes under.
  [[nodiscard]] std::string publisher_id() const;

  /// Publish content already held at the origin under `label` (step P1):
  /// fetch it, sign it, register the name (step P2). Returns the full
  /// self-certifying name, or std::nullopt when the origin lacks the label
  /// or registration is refused.
  std::optional<SelfCertifyingName> publish(const std::string& label);

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t origin_fetches() const noexcept {
    return origin_fetches_;
  }

  /// HTTP face: GET with Host: <L>.<P>.idicn.org (any path).
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  struct Entry {
    std::string body;
    std::string content_type;
    ContentMetadata metadata;
  };

  /// Sign and remember metadata for (label, body); returns the entry.
  Entry& admit(const std::string& label, std::string body, std::string content_type);

  net::Transport* net_;
  net::Address self_;
  net::Address origin_;
  net::Address nrs_;
  crypto::MerkleSigner* signer_;
  std::map<std::string, Entry> entries_;  // label → signed content
  std::uint64_t cache_hits_ = 0;
  std::uint64_t origin_fetches_ = 0;
};

}  // namespace idicn::idicn
