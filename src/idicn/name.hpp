// Self-certifying names (§6.1).
//
// idICN adopts DONA-style flat names of the form L.P where P is the
// cryptographic hash of the publisher's public key and L a label the
// publisher assigns. For DNS backward compatibility the name is expressed
// as a hostname under the idicn.org resolver consortium:
//
//     <L>.<P>.idicn.org
//
// with P encoded as unpadded base32 (52 chars — hex SHA-256 would exceed
// the 63-char DNS label limit the paper's footnote calls out). L must be a
// valid DNS label. Content fetched under such a name is verifiable by
// anyone: hash the enclosed publisher key, compare to P, verify the
// enclosed signature — no trusted delivery channel needed.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace idicn::idicn {

inline constexpr std::string_view kIdicnDomain = "idicn.org";

class SelfCertifyingName {
public:
  SelfCertifyingName() = default;

  /// Build from components. Throws std::invalid_argument when `label` is
  /// not a valid DNS label or `publisher` is not 32 bytes of base32.
  SelfCertifyingName(std::string label, std::string publisher_b32);

  /// Derive the P component from a publisher's public key (Merkle root).
  [[nodiscard]] static std::string publisher_id(const crypto::Sha256Digest& root_key);

  /// Parse "<L>.<P>.idicn.org" (case-insensitive host).
  [[nodiscard]] static std::optional<SelfCertifyingName> parse_host(
      std::string_view host);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const std::string& publisher() const noexcept { return publisher_; }

  /// The full DNS host form.
  [[nodiscard]] std::string host() const;
  /// The flat form "L.P" used by the resolution system.
  [[nodiscard]] std::string flat() const;

  bool operator==(const SelfCertifyingName&) const = default;
  auto operator<=>(const SelfCertifyingName&) const = default;

private:
  std::string label_;
  std::string publisher_;
};

/// DNS label validity: 1–63 chars of [a-z0-9-], no leading/trailing '-'.
[[nodiscard]] bool valid_dns_label(std::string_view label);

}  // namespace idicn::idicn
