#include "idicn/client.hpp"

#include "net/uri.hpp"

namespace idicn::idicn {

Client::Client(net::Transport* net, net::Address self, const net::DnsService* dns,
               Options options)
    : net_(net), self_(std::move(self)), dns_(dns), options_(options) {}

bool Client::auto_configure(const NetworkEnvironment& env) {
  if (dns_ == nullptr) return false;
  auto pac = discover_pac(*net_, self_, env, *dns_);
  if (!pac) return false;
  pac_ = std::move(*pac);
  return true;
}

Client::FetchResult Client::get(const std::string& url) {
  FetchResult result;
  result.response = net::make_response(400, "bad url");

  const auto uri = net::parse_uri(url);
  if (!uri || uri->host.empty()) return result;

  const ProxyDecision decision = pac_ ? pac_->find_proxy_for_host(uri->host)
                                      : ProxyDecision{};

  net::HttpRequest request;
  request.method = "GET";
  request.headers.set("Host", uri->host);
  // End-to-end verification needs the proof headers; ask for them.
  if (options_.verify_end_to_end) request.headers.set(kWantMetadataHeader, "1");

  ++requests_sent_;
  if (!decision.direct()) {
    // Step 2: explicit proxying — absolute-form target, no name lookup or
    // per-request connection setup at the client.
    request.target = url;
    result.response = net_->send(self_, *decision.proxy, request);
    result.via_proxy = true;
  } else {
    const auto address = dns_ != nullptr ? dns_->resolve_with_wildcards(uri->host)
                                         : std::optional<std::string>{};
    if (!address) {
      result.response = net::make_response(502, "host did not resolve");
      return result;
    }
    request.target = uri->target();
    result.response = net_->send(self_, *address, request);
  }

  // In-process transports hand over chunk-backed bodies as-is (zero-copy
  // serving); endpoints consume a contiguous view, so flatten here.
  if (!result.response.stream_body.empty()) {
    result.response.body = result.response.full_body();
    result.response.stream_body.clear();
  }

  // Optional end-to-end verification for self-certifying names.
  if (options_.verify_end_to_end && result.response.ok()) {
    if (const auto name = SelfCertifyingName::parse_host(uri->host)) {
      const auto metadata = ContentMetadata::from_headers(result.response.headers);
      if (!metadata || metadata->name != *name) {
        result.verify_result = VerifyResult::BadSignature;
      } else {
        result.verify_result = verify_content(*metadata, result.response.body);
      }
      result.verified = result.verify_result == VerifyResult::Ok;
      if (!result.verified) {
        result.response = net::make_response(
            502, std::string("content failed verification: ") +
                     to_string(*result.verify_result));
      }
    }
  }
  return result;
}

}  // namespace idicn::idicn
