// Automatic proxy configuration (§6.2).
//
// Hosts locate a Proxy Auto-Config (PAC) file via WPAD: first the
// DHCP-provided URL (option 252), then DNS ("wpad.<domain>"); the fetched
// PAC decides, per URL, which proxy to use. Real PAC files are JavaScript;
// the prototype uses a line-oriented mini-dialect with the same decision
// power for our flows:
//
//     # comment
//     proxy <address> for <host-pattern>     e.g. proxy cache.ad1 for *.idicn.org
//     default DIRECT | PROXY <address>
//
// Host patterns are exact hostnames or "*.suffix". The first matching rule
// wins; a missing default means DIRECT.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/dns.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"

namespace idicn::idicn {

/// One evaluated decision: proxy address, or direct when empty.
struct ProxyDecision {
  std::optional<net::Address> proxy;
  [[nodiscard]] bool direct() const noexcept { return !proxy.has_value(); }
};

/// Parsed PAC file (mini dialect above).
class PacFile {
public:
  /// Parse; returns std::nullopt on syntax errors.
  [[nodiscard]] static std::optional<PacFile> parse(std::string_view text);

  /// The FindProxyForURL equivalent.
  [[nodiscard]] ProxyDecision find_proxy_for_host(std::string_view host) const;

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Render back to text (for serving).
  [[nodiscard]] std::string serialize() const;

  /// Convenience: a PAC sending *.idicn.org through `proxy`, rest DIRECT.
  [[nodiscard]] static PacFile idicn_default(const net::Address& proxy);

private:
  struct Rule {
    std::string pattern;  // exact host or "*.suffix"
    net::Address proxy;
  };
  [[nodiscard]] static bool matches(std::string_view pattern, std::string_view host);

  std::vector<Rule> rules_;
  std::optional<net::Address> default_proxy_;  // nullopt = DIRECT
};

/// The host serving GET /wpad.dat.
class WpadService : public net::SimHost {
public:
  explicit WpadService(PacFile pac) : pac_(std::move(pac)) {}

  void set_pac(PacFile pac) { pac_ = std::move(pac); }

  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  PacFile pac_;
};

/// The network-side configuration a client discovers against: the DHCP
/// server's PAC URL (option 252) and the local DNS domain.
struct NetworkEnvironment {
  std::optional<std::string> dhcp_pac_url;  ///< e.g. "http://wpad.ad1/wpad.dat"
  std::string dns_domain;                   ///< e.g. "ad1" → try wpad.ad1
};

/// Run WPAD discovery: DHCP first, DNS second; fetch and parse the PAC.
/// Returns std::nullopt when no PAC can be located (client goes DIRECT).
[[nodiscard]] std::optional<PacFile> discover_pac(net::Transport& net,
                                                  const net::Address& self,
                                                  const NetworkEnvironment& env,
                                                  const net::DnsService& dns);

}  // namespace idicn::idicn
