// Ad hoc content sharing (§6.2 "Content sharing in ad hoc mode").
//
// Models the paper's Zeroconf-based prototype (their 350-line Python
// proxy): on a network with no infrastructure,
//   * nodes self-assign link-local addresses (IPv4LL-style probing),
//   * each node's ad hoc proxy publishes, over multicast DNS, the domain
//     names for which its browser cache holds content,
//   * a consumer whose unicast DNS is absent falls back to an mDNS query
//     and fetches straight from the peer's browser cache.
// The paper's Alice/Bob CNN-headlines walkthrough is reproduced in
// examples/adhoc_sharing.cpp and tests/test_adhoc.cpp.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/sim_net.hpp"

namespace idicn::idicn {

/// The multicast group standing in for the link-local mDNS scope.
inline constexpr const char* kMdnsGroup = "mdns.local";

/// IPv4 link-local (169.254/16) address assignment with conflict probing:
/// candidates derive deterministically from the host name; taken addresses
/// are skipped, as in RFC 3927's probe-and-defend.
[[nodiscard]] net::Address allocate_link_local(const net::SimNet& net,
                                               const std::string& host_name);

/// A browser cache: full URLs mapped to response bodies.
class BrowserCache {
public:
  void put(const std::string& url, std::string body,
           std::string content_type = "text/html");
  struct Item {
    std::string body;
    std::string content_type;
  };
  [[nodiscard]] const Item* find(const std::string& url) const;
  /// The set of hostnames with at least one cached URL.
  [[nodiscard]] std::set<std::string> domains() const;

private:
  std::map<std::string, Item> items_;  // full URL → item
};

/// A peer on the ad hoc network: link-local address + mDNS responder +
/// HTTP proxy serving its own browser cache (only sharers deploy this;
/// consumers need nothing beyond mDNS fallback resolution).
class AdHocNode : public net::SimHost {
public:
  /// Joins the mDNS group and attaches at a fresh link-local address.
  AdHocNode(net::SimNet* net, const std::string& host_name);
  ~AdHocNode() override;

  AdHocNode(const AdHocNode&) = delete;
  AdHocNode& operator=(const AdHocNode&) = delete;

  [[nodiscard]] const net::Address& address() const noexcept { return address_; }
  [[nodiscard]] BrowserCache& browser_cache() noexcept { return cache_; }

  /// mDNS name resolution with unicast-DNS absent: multicast the query,
  /// take the first positive answer ("only one of them will be able to
  /// publish" a given domain — the first responder wins, matching the
  /// paper's noted DNS limitation).
  [[nodiscard]] std::optional<net::Address> mdns_resolve(const std::string& host) const;

  /// Fetch an URL from the ad hoc network: mDNS-resolve the host, then
  /// HTTP GET from the peer's ad hoc proxy.
  [[nodiscard]] net::HttpResponse fetch(const std::string& url) const;

  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  net::SimNet* net_;
  std::string host_name_;
  net::Address address_;
  BrowserCache cache_;
};

}  // namespace idicn::idicn
