#include "idicn/proxy.hpp"

#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {

Proxy::Proxy(net::Transport* net, net::Address self, net::Address nrs,
             const net::DnsService* dns, Options options)
    : net_(net),
      self_(std::move(self)),
      nrs_(std::move(nrs)),
      dns_(dns),
      options_(options) {}

void Proxy::touch(const std::string& host) {
  const auto it = entries_.find(host);
  lru_.erase(it->second.lru_position);
  lru_.push_front(host);
  it->second.lru_position = lru_.begin();
}

void Proxy::evict_until_fits(std::uint64_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > options_.capacity_bytes) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    used_bytes_ -= it->second.body.size();
    entries_.erase(it);
    ++stats_.evictions;
  }
}

void Proxy::cache_store(const std::string& host, Entry entry) {
  if (entry.body.size() > options_.capacity_bytes) return;  // too large to cache
  const auto existing = entries_.find(host);
  if (existing != entries_.end()) {
    used_bytes_ -= existing->second.body.size();
    lru_.erase(existing->second.lru_position);
    entries_.erase(existing);
  }
  evict_until_fits(entry.body.size());
  used_bytes_ += entry.body.size();
  lru_.push_front(host);
  entry.lru_position = lru_.begin();
  entries_.emplace(host, std::move(entry));
}

net::HttpResponse Proxy::serve_entry(const std::string& host, Entry& entry, bool hit,
                                     bool full_metadata) {
  stats_.bytes_served += entry.body.size();
  perf_.bump(&core::PerfCounters::proxy_bytes_served, entry.body.size());
  net::HttpResponse response = net::make_response(200, entry.body, entry.content_type);
  // The multi-kilobyte proof (publisher key + one-time signature) is
  // attached only when the caller asked for it: verifying clients and
  // fetching proxies send kWantMetadataHeader, plain browsers trust this
  // proxy's own verification and get the cheap name+digest hint.
  if (entry.metadata) entry.metadata->apply_to(response.headers, full_metadata);
  if (!entry.etag.empty()) response.headers.set("ETag", entry.etag);
  response.headers.set("X-Cache", hit ? "HIT" : "MISS");
  response.headers.set("Via", self_);
  if (hit) touch(host);
  return response;
}

std::optional<Proxy::Entry> Proxy::fetch_and_verify(const SelfCertifyingName& name,
                                                    const net::Address& location) {
  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/";
  fetch.headers.set("Host", name.host());
  fetch.headers.set(kWantMetadataHeader, "1");  // this proxy verifies
  const net::HttpResponse response = net_->send(self_, location, fetch);
  if (!response.ok()) return std::nullopt;
  stats_.bytes_from_origin += response.body.size();
  perf_.bump(&core::PerfCounters::proxy_bytes_from_origin, response.body.size());

  Entry entry;
  entry.body = response.body;
  entry.content_type = response.headers.get("Content-Type").value_or("text/plain");
  entry.etag = response.headers.get("ETag").value_or("");
  entry.fetched_from = location;
  entry.stored_at_ms = net_->now_ms();
  entry.metadata = ContentMetadata::from_headers(response.headers);

  if (options_.verify) {
    if (!entry.metadata) {
      ++stats_.verification_failures;
      return std::nullopt;
    }
    if (entry.metadata->name != name ||
        verify_content(*entry.metadata, entry.body) != VerifyResult::Ok) {
      ++stats_.verification_failures;
      return std::nullopt;
    }
  }
  return entry;
}

bool Proxy::revalidate(const std::string& host, Entry& entry) {
  if (entry.etag.empty() || entry.fetched_from.empty()) return false;
  ++stats_.revalidations;
  net::HttpRequest conditional;
  conditional.method = "GET";
  conditional.target = "/";
  conditional.headers.set("Host", host);
  conditional.headers.set("If-None-Match", entry.etag);
  const net::HttpResponse response = net_->send(self_, entry.fetched_from, conditional);
  if (response.status != 304) return false;
  ++stats_.revalidated_304;
  entry.stored_at_ms = net_->now_ms();  // fresh again, body unchanged
  return true;
}

std::optional<Proxy::Entry> Proxy::fetch_from_peers(const SelfCertifyingName& name) {
  for (const net::Address& peer : peers_) {
    net::HttpRequest query;
    query.method = "GET";
    query.target = "http://" + name.host() + "/";
    query.headers.set("Host", name.host());
    query.headers.set(kIcpQueryHeader, "1");
    query.headers.set(kWantMetadataHeader, "1");
    const net::HttpResponse response = net_->send(self_, peer, query);
    if (!response.ok()) continue;

    Entry entry;
    entry.body = response.body;
    entry.content_type = response.headers.get("Content-Type").value_or("text/plain");
    entry.etag = response.headers.get("ETag").value_or("");
    entry.fetched_from = peer;
    entry.stored_at_ms = net_->now_ms();
    entry.metadata = ContentMetadata::from_headers(response.headers);
    if (options_.verify) {
      // Peers are not more trusted than any other source.
      if (!entry.metadata || entry.metadata->name != name ||
          verify_content(*entry.metadata, entry.body) != VerifyResult::Ok) {
        ++stats_.verification_failures;
        continue;
      }
    }
    ++stats_.peer_hits;
    return entry;
  }
  return std::nullopt;
}

net::HttpResponse Proxy::serve_idicn(const SelfCertifyingName& name,
                                     const net::HttpRequest& request) {
  const std::string host = name.host();
  const bool peer_query = request.headers.contains(kIcpQueryHeader);
  // Peer proxies re-verify what they pull, so they always get the proof.
  const bool full_metadata =
      peer_query || request.headers.contains(kWantMetadataHeader);

  // Step 7 fast path: fresh cached copy (stale entries try a cheap
  // conditional refresh before a full refetch).
  const auto cached = entries_.find(host);
  if (cached != entries_.end()) {
    const bool fresh =
        net_->now_ms() - cached->second.stored_at_ms <= options_.freshness_ms;
    if (fresh) {
      ++stats_.hits;
      return serve_entry(host, cached->second, true, full_metadata);
    }
    ++stats_.expired;
    if (!peer_query && revalidate(host, cached->second)) {
      ++stats_.hits;
      return serve_entry(host, cached->second, true, full_metadata);
    }
  }
  // Cooperative queries are strictly cache-only: never trigger a fetch.
  if (peer_query) return net::make_response(404, "not cached here");
  ++stats_.misses;

  // Scoped cooperation first: a sibling proxy may already hold the object.
  if (auto entry = fetch_from_peers(name)) {
    cache_store(host, std::move(*entry));
    return serve_entry(host, entries_.find(host)->second, false, full_metadata);
  }

  // Step 3: resolve the name, following at most one P-delegation hop.
  std::vector<std::string> locations;
  net::Address resolver = nrs_;
  for (int hop = 0; hop < 2 && locations.empty(); ++hop) {
    net::HttpRequest query;
    query.method = "GET";
    query.target = "/resolve?name=" + host;
    const net::HttpResponse answer = net_->send(self_, resolver, query);
    if (!answer.ok()) break;
    std::optional<net::Address> delegate;
    for (const auto& [key, value] : parse_form_lines(answer.body)) {
      if (key == "location") locations.push_back(value);
      if (key == "resolver") delegate = value;
    }
    if (!locations.empty() || !delegate) break;
    resolver = *delegate;
  }
  if (locations.empty()) return net::make_response(404, "name did not resolve");

  // Step 4: fetch from the first location that yields authentic content.
  for (const net::Address& location : locations) {
    auto entry = fetch_and_verify(name, location);
    if (!entry) continue;
    cache_store(host, std::move(*entry));
    return serve_entry(host, entries_.find(host)->second, false, full_metadata);
  }
  return net::make_response(502, "no location provided authentic content");
}

net::HttpResponse Proxy::serve_legacy(const std::string& host,
                                      const net::HttpRequest& request) {
  ++stats_.legacy_forwards;
  const auto address = dns_ != nullptr ? dns_->resolve_with_wildcards(host)
                                       : std::optional<std::string>{};
  if (!address) return net::make_response(502, "legacy host did not resolve");
  net::HttpRequest forward = request;
  const auto uri = net::parse_uri(request.target);
  forward.target = uri ? uri->target() : "/";
  forward.headers.set("Host", host);
  forward.headers.set("Via", self_);
  net::HttpResponse response = net_->send(self_, *address, forward);
  response.headers.set("Via", self_);
  return response;
}

net::HttpResponse Proxy::handle_http(const net::HttpRequest& request,
                                     const net::Address& /*from*/) {
  if (request.method != "GET") return net::make_response(400, "proxy supports GET only");
  const auto uri = net::parse_uri(request.target);
  std::string host;
  if (uri && !uri->host.empty()) {
    host = uri->host;  // absolute-form proxy request
  } else if (const auto host_header = request.headers.get("Host")) {
    host = *host_header;  // transparent / origin-form fallback
  } else {
    return net::make_response(400, "cannot determine host");
  }

  if (const auto name = SelfCertifyingName::parse_host(host)) {
    return serve_idicn(*name, request);
  }
  return serve_legacy(host, request);
}

}  // namespace idicn::idicn
