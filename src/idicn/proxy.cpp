#include "idicn/proxy.hpp"

#include <algorithm>
#include <functional>

#include "core/hot_path.hpp"
#include "crypto/sha256.hpp"
#include "idicn/nrs.hpp"
#include "net/http_internal.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {
namespace {

/// BodyProducer over a Transit: yields the chunks that have arrived so
/// far, reports Pending while the upstream fetch is still filling the
/// transit, Done once it completed, and Error if it failed (upstream died
/// or verification rejected the content) — the serving runtime then
/// closes the connection without completing the body.
class TransitReader final : public net::BodyProducer {
public:
  explicit TransitReader(std::shared_ptr<detail::Transit> transit)
      : transit_(std::move(transit)) {}

  [[nodiscard]] std::optional<std::uint64_t> total_size() const override {
    return transit_->expected_size;
  }

  Pull pull(core::Chunk* out) override {
    const core::sync::MutexLock lock(transit_->mutex);
    const auto& chunks = transit_->chunks.chunks();
    if (index_ < chunks.size()) {
      *out = chunks[index_++];
      return Pull::Ready;
    }
    if (transit_->failed) return Pull::Error;
    if (transit_->complete) return Pull::Done;
    return Pull::Pending;
  }

private:
  std::shared_ptr<detail::Transit> transit_;
  std::size_t index_ = 0;  ///< cursor into the transit's chunk list
};

/// Receives an upstream body chunk by chunk: on a 200 head it builds a
/// Transit and hands it to `publish` (which makes it visible to
/// concurrent requests), then appends each chunk under the transit lock
/// while hashing incrementally. Error bodies are drained and discarded.
///
/// Cancellation boundary: when `halted` flips (the requesting client
/// disconnected) *before* the head arrives, on_head refuses the transfer —
/// nobody wants the bytes yet. Once the transit is published, concurrent
/// joined readers may be consuming it, so the transfer always runs to
/// completion regardless of the original requester.
class FetchSink final : public net::ChunkSink {
public:
  using Publish = std::function<void(const std::shared_ptr<detail::Transit>&)>;

  explicit FetchSink(Publish publish, std::shared_ptr<const bool> halted = {})
      : publish_(std::move(publish)), halted_(std::move(halted)) {}

  bool on_head(const net::HttpResponse& head) override {
    if (halted_ != nullptr && *halted_) return false;  // client gone pre-head
    if (!head.ok()) return true;  // drain and ignore the error body
    auto transit = std::make_shared<detail::Transit>();
    transit->content_type =
        head.headers.get("Content-Type").value_or("text/plain");
    transit->etag = head.headers.get("ETag").value_or("");
    transit->metadata = ContentMetadata::from_headers(head.headers);
    std::size_t content_length = 0;
    if (head.headers.contains("Content-Length") &&
        net::detail::parse_content_length(head.headers, content_length,
                                          nullptr)) {
      transit->expected_size = content_length;
    }
    transit_ = std::move(transit);
    publish_(transit_);
    return true;
  }

  bool on_chunk(core::Chunk chunk) override {
    if (transit_ == nullptr) return true;  // error body: not ours to keep
    bytes_ += chunk.size();
    hasher_.update(chunk.view());
    const core::sync::MutexLock lock(transit_->mutex);
    transit_->chunks.append(std::move(chunk));
    return true;
  }

  [[nodiscard]] const std::shared_ptr<detail::Transit>& transit() const {
    return transit_;
  }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] crypto::Sha256Digest digest() { return hasher_.finish(); }

private:
  Publish publish_;
  std::shared_ptr<const bool> halted_;  ///< may be null (no cancellation)
  std::shared_ptr<detail::Transit> transit_;
  crypto::Sha256 hasher_;
  std::uint64_t bytes_ = 0;
};

/// X-IdICN-Hops value, defaulting to 0 (a client-originated request) on
/// absence or garbage; clamped so a hostile header cannot overflow.
std::size_t parse_hops(const net::HeaderMap& headers) {
  const auto value = headers.get_view(kHopsHeader);
  if (!value || value->empty()) return 0;
  std::size_t hops = 0;
  for (const char c : *value) {
    if (c < '0' || c > '9') return 0;
    hops = hops * 10 + static_cast<std::size_t>(c - '0');
    if (hops > 64) return 64;
  }
  return hops;
}

}  // namespace

Proxy::Proxy(net::Transport* net, net::Address self, net::Address nrs,
             const net::DnsService* dns, Options options)
    : net_(net),
      self_(std::move(self)),
      nrs_(std::move(nrs)),
      dns_(dns),
      options_(options),
      fetcher_(std::make_unique<runtime::MultiSourceFetcher>(net_,
                                                             options.fetch)) {
  const std::size_t count = std::max<std::size_t>(1, options_.cache_shards);
  const std::uint64_t base = options_.capacity_bytes / count;
  const std::uint64_t remainder = options_.capacity_bytes % count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<CacheShard>();
    shard->capacity_bytes = base + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Proxy::CacheShard& Proxy::shard_for(const std::string& host) {
  return *shards_[std::hash<std::string>{}(host) % shards_.size()];
}

const Proxy::CacheShard& Proxy::shard_for(const std::string& host) const {
  return *shards_[std::hash<std::string>{}(host) % shards_.size()];
}

core::PerfCounters Proxy::perf() const {
  core::PerfCounters merged;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    merged.merge(shard->perf);
  }
  return merged;
}

std::uint64_t Proxy::cached_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    total += shard->used_bytes;
  }
  return total;
}

std::size_t Proxy::cached_objects() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

bool Proxy::is_cached(const std::string& host) const {
  const CacheShard& shard = shard_for(host);
  const core::sync::MutexLock lock(shard.mutex);
  return shard.entries.find(host) != shard.entries.end();
}

void Proxy::touch(CacheShard& shard, const std::string& host) {
  const auto it = shard.entries.find(host);
  shard.lru.erase(it->second.lru_position);
  shard.lru.push_front(host);
  it->second.lru_position = shard.lru.begin();
}

void Proxy::evict_until_fits(CacheShard& shard, std::uint64_t incoming) {
  while (!shard.lru.empty() &&
         shard.used_bytes + incoming > shard.capacity_bytes) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    const auto it = shard.entries.find(victim);
    shard.used_bytes -= it->second.body.size();
    shard.entries.erase(it);
    ++stats_.evictions;
  }
}

bool Proxy::cache_store(CacheShard& shard, const std::string& host,
                        Entry& entry) {
  if (entry.body.size() > shard.capacity_bytes) return false;  // too large
  const auto existing = shard.entries.find(host);
  if (existing != shard.entries.end()) {
    shard.used_bytes -= existing->second.body.size();
    shard.lru.erase(existing->second.lru_position);
    shard.entries.erase(existing);
  }
  evict_until_fits(shard, entry.body.size());
  shard.used_bytes += entry.body.size();
  shard.lru.push_front(host);
  entry.lru_position = shard.lru.begin();
  shard.entries.emplace(host, std::move(entry));
  return true;
}

IDICN_HOT_PATH net::HttpResponse Proxy::serve_entry(CacheShard& shard,
                                                    const std::string& host,
                                                    Entry& entry, bool hit,
                                                    bool full_metadata) {
  stats_.bytes_served += entry.body.size();
  shard.perf.bump(&core::PerfCounters::proxy_bytes_served, entry.body.size());
  // References the entry's chunks — no body copy per response; N
  // concurrent readers of one cached object share one copy of the bytes.
  net::HttpResponse response =
      net::make_stream_response(200, entry.body, entry.content_type);
  // The multi-kilobyte proof (publisher key + one-time signature) is
  // attached only when the caller asked for it: verifying clients and
  // fetching proxies send kWantMetadataHeader, plain browsers trust this
  // proxy's own verification and get the cheap name+digest hint.
  if (entry.metadata) entry.metadata->apply_to(response.headers, full_metadata);
  if (!entry.etag.empty()) response.headers.set("ETag", entry.etag);
  response.headers.set("X-Cache", hit ? "HIT" : "MISS");
  response.headers.set("Via", self_);
  if (hit) touch(shard, host);
  return response;
}

net::HttpResponse Proxy::store_and_serve(CacheShard& shard,
                                         const std::string& host, Entry entry,
                                         bool full_metadata) {
  // Where the bytes actually came from (origin, mirror, or sibling proxy):
  // exposed so the testbed's driver can charge the transfer to the real
  // core-graph path rather than assuming proxy→origin.
  const net::Address source = entry.fetched_from;
  const core::sync::MutexLock lock(shard.mutex);
  net::HttpResponse response =
      cache_store(shard, host, entry)
          ? serve_entry(shard, host, shard.entries.find(host)->second, false,
                        full_metadata)
          // Larger than the shard's slice: serve the fetched copy uncached.
          : serve_entry(shard, host, entry, false, full_metadata);
  if (!source.empty()) response.headers.set(kSourceHeader, source);
  return response;
}

net::HttpResponse Proxy::serve_hint(const net::HttpRequest& request) {
  const auto sender = request.headers.get(kHintHeader);
  if (!sender || sender->empty()) {
    return net::make_response(400, "hint without sender address");
  }
  std::vector<std::string> hosts;
  for (const auto& [key, value] : parse_form_lines(request.body)) {
    if (key != "host") continue;
    // Digest bound on the ingest side too: a misbehaving sibling cannot
    // bloat the directory past what this proxy agreed to hold.
    if (hosts.size() >= options_.max_hint_entries) break;
    hosts.push_back(value);
  }
  ++stats_.hints_received;
  if (directory_ != nullptr) directory_->ingest(*sender, hosts);
  return net::make_response(204, "");
}

std::vector<std::string> Proxy::hint_digest() const {
  std::vector<std::string> digest;
  for (const auto& shard : shards_) {
    if (digest.size() >= options_.max_hint_entries) break;
    const core::sync::MutexLock lock(shard->mutex);
    for (const std::string& host : shard->lru) {  // front = most recent
      if (digest.size() >= options_.max_hint_entries) break;
      digest.push_back(host);
    }
  }
  return digest;
}

void Proxy::push_hints() {
  if (siblings_.empty()) return;
  std::string body;
  for (const std::string& host : hint_digest()) {
    body += "host=" + host + "\n";
  }
  net::HttpRequest post;
  post.method = "POST";
  post.target = kHintPath;
  post.headers.set(kHintHeader, self_);
  post.headers.set("Content-Length", std::to_string(body.size()));
  post.body = std::move(body);
  for (const net::Address& sibling : siblings_) {
    // Best-effort soft state: an unreachable sibling just misses this
    // round of hints and catches the next.
    (void)net_->send(self_, sibling, post);
    ++stats_.hints_sent;
  }
}

net::HttpResponse Proxy::serve_transit(
    const std::shared_ptr<detail::Transit>& transit, bool full_metadata) {
  ++stats_.stream_joins;
  net::HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers.set("Content-Type", transit->content_type);
  if (!transit->etag.empty()) response.headers.set("ETag", transit->etag);
  // The metadata is not verified yet — it rides along so an end-to-end
  // verifying client can still check what it streamed. If verification
  // fails proxy-side when the fetch completes, every joined stream aborts
  // before its body terminator (fail-closed), so a non-verifying client
  // never receives corrupt content framed as complete.
  if (transit->metadata) transit->metadata->apply_to(response.headers, full_metadata);
  response.headers.set("X-Cache", "STREAM");
  response.headers.set("Via", self_);
  // Framing follows the producer: Content-Length when the upstream
  // declared a size, chunked otherwise (see serialize_head()).
  response.producer = std::make_shared<TransitReader>(transit);
  return response;
}

std::optional<net::HttpResponse> Proxy::serve_stale(CacheShard& shard,
                                                    const std::string& host,
                                                    bool full_metadata) {
  const core::sync::MutexLock lock(shard.mutex);
  const auto cached = shard.entries.find(host);
  if (cached == shard.entries.end()) return std::nullopt;  // evicted meanwhile
  ++stats_.stale_served;
  net::HttpResponse response =
      serve_entry(shard, host, cached->second, true, full_metadata);
  // RFC 7234 §5.5.1 stale warning plus an explicit idICN marker so clients
  // (and the chaos harness) can tell degraded service from a fresh hit.
  response.headers.set("Warning", "110 - \"Response is Stale\"");
  response.headers.set("X-IdICN-Stale", "1");
  return response;
}

// The serving state machine: one heap object per request carrying the
// entire serve flow — routing, cache fast path, revalidation, peer query,
// sibling redirect, NRS resolution, location fetches, legacy forward — as
// uniquely-named continuations chained through Transport::send_async /
// send_streaming_async. With a real executor each upstream exchange parks
// the machine and the loop thread returns to its poller; with a null
// executor every transport hop completes inline and the machine settles
// before dispatch() returns (the synchronous handle_http contract).
//
// Lifetime: completion lambdas hold shared_ptr self-references, so the
// machine lives exactly as long as work is outstanding. Cancellation
// (abort(), from the serving worker when the client disconnects) never
// interrupts an exchange mid-flight — it stops *new* upstream work, makes
// a pre-head streaming fetch refuse its transfer, and suppresses the
// respond; a post-head fetch still completes, verifies, and admits to the
// cache because joined readers may be streaming from its transit.
class Proxy::FetchOp final : public net::AsyncOp,
                             public std::enable_shared_from_this<FetchOp> {
public:
  FetchOp(Proxy* proxy, net::HttpRequest request, net::Executor* exec,
          std::function<void(net::HttpResponse)> respond)
      : proxy_(proxy),
        request_(std::move(request)),
        exec_(exec),
        respond_(std::move(respond)) {}

  /// Route the request and run until the next park point (or settle
  /// inline). Call exactly once.
  void dispatch() {
    // Control channel: a sibling pushing its content digest.
    if (request_.method == "POST" && request_.target == kHintPath) {
      settle(proxy_->serve_hint(request_));
      return;
    }
    if (request_.method != "GET") {
      settle(net::make_response(400, "proxy supports GET only"));
      return;
    }
    const auto uri = net::parse_uri(request_.target);
    if (uri && !uri->host.empty()) {
      host_ = uri->host;  // absolute-form proxy request
    } else if (const auto host_header = request_.headers.get("Host")) {
      host_ = *host_header;  // transparent / origin-form fallback
    } else {
      settle(net::make_response(400, "cannot determine host"));
      return;
    }
    name_ = SelfCertifyingName::parse_host(host_);
    if (!name_) {
      legacy_forward();
      return;
    }
    host_ = name_->host();
    apply_range_ = !request_.headers.contains(kIcpQueryHeader);
    begin_idicn();
  }

  void abort() override {
    cancelled_ = true;
    // A streaming fetch that has not yet published a transit refuses its
    // head; one that has keeps filling for joined readers (see FetchSink).
    *halt_flag_ = true;
  }

  [[nodiscard]] bool settled() const noexcept { return settled_; }

private:
  /// Exactly-once completion: applies the Range rewrite (idICN path only)
  /// and the PoP attribution header, then fires the respond — unless the
  /// client disconnected, in which case the response is dropped.
  void settle(net::HttpResponse response) {
    if (settled_) return;
    settled_ = true;
    auto respond = std::move(respond_);
    respond_ = nullptr;
    if (cancelled_ || respond == nullptr) return;
    // Ranged reads ride the cached-object path: a complete 200 is
    // rewritten into the requested 206 (slices share the cache entry's
    // chunk blocks — no copy). Cooperative fetches always need the whole
    // object (they verify and cache it), so their Range headers — which
    // they never send — would be ignored here anyway; producer-backed
    // STREAM joins fall back to the full 200 (apply_byte_range declines).
    if (apply_range_) {
      if (const auto range = request_.headers.get_view("Range")) {
        net::apply_byte_range(*range, response);
      }
    }
    // Serving-PoP attribution on every response (testbed observability).
    if (!proxy_->options_.pop_name.empty()) {
      response.headers.set(kPopHeader, proxy_->options_.pop_name);
    }
    respond(std::move(response));
  }

  /// The client is gone: park the machine permanently instead of starting
  /// another upstream exchange nobody will read. Returns true when halted.
  bool halt_if_cancelled() {
    if (!cancelled_) return false;
    settle(net::HttpResponse{});
    return true;
  }

  void begin_idicn() {
    peer_query_ = request_.headers.contains(kIcpQueryHeader);
    // Peer proxies re-verify what they pull, so they always get the proof.
    full_metadata_ =
        peer_query_ || request_.headers.contains(kWantMetadataHeader);
    // Sibling-redirect forwarding depth (0 = client-originated). A request
    // already at the hop limit is answered strictly from cache — hops only
    // ever increment, so redirect chains terminate here no matter what the
    // directories claim.
    hops_ = parse_hops(request_.headers);
    sibling_query_ = hops_ > 0;
    cache_only_ = peer_query_ || hops_ >= proxy_->options_.sibling_hop_limit;

    CacheShard& shard = proxy_->shard_for(host_);

    // Step 7 fast path under the shard lock: fresh cached copy. A stale
    // entry only donates its validators here — the conditional refresh is
    // network I/O and must run with the lock dropped so sibling requests
    // on this shard keep flowing. The settled response leaves the lock
    // scope before respond fires (respond drives the client socket).
    std::optional<net::HttpResponse> immediate;
    {
      const core::sync::MutexLock lock(shard.mutex);
      const auto cached = shard.entries.find(host_);
      if (cached != shard.entries.end()) {
        const bool fresh = proxy_->net_->now_ms() -
                               cached->second.stored_at_ms <=
                           proxy_->options_.freshness_ms;
        if (fresh) {
          ++proxy_->stats_.hits;
          immediate = proxy_->serve_entry(shard, host_, cached->second, true,
                                          full_metadata_);
        } else {
          ++proxy_->stats_.expired;
          stale_ = true;
          stale_etag_ = cached->second.etag;
          stale_fetched_from_ = cached->second.fetched_from;
          // The expired copy's metalink mirrors join the multi-source
          // candidate set — replicas we learned about the last time the
          // object verified.
          if (cached->second.metadata) {
            stale_mirrors_ = cached->second.metadata->mirrors;
          }
        }
      }
      // Another worker is already fetching this object: join its stream
      // and serve the arrived prefix now, the tail as it lands — no second
      // upstream fetch, no waiting for the whole object. Stale-entry
      // holders join too (the in-flight refetch supersedes revalidation —
      // without this they raced a duplicate upstream fetch and reported
      // MISS while every sibling connection reported STREAM). Cache-only
      // queries stay out: an in-flight fetch is not a cached object yet.
      if (!immediate && !cache_only_) {
        const auto streaming = shard.transit.find(host_);
        if (streaming != shard.transit.end()) {
          immediate = proxy_->serve_transit(streaming->second, full_metadata_);
        }
      }
    }
    if (immediate) {
      settle(std::move(*immediate));
      return;
    }
    if (stale_ && !cache_only_ && !stale_etag_.empty() &&
        !stale_fetched_from_.empty()) {
      // Conditional refresh against the snapshotted validators.
      ++proxy_->stats_.revalidations;
      net::HttpRequest conditional;
      conditional.method = "GET";
      conditional.target = "/";
      conditional.headers.set("Host", host_);
      conditional.headers.set("If-None-Match", stale_etag_);
      auto self = shared_from_this();
      proxy_->net_->send_async(proxy_->self_, stale_fetched_from_, conditional,
                               exec_, [self](net::HttpResponse answer) {
                                 self->after_revalidate(std::move(answer));
                               });
      return;
    }
    after_fast_path();
  }

  void after_revalidate(net::HttpResponse answer) {
    if (answer.status == 304) {
      // 304: the body is still authentic. Re-lock and renew — unless a
      // concurrent worker evicted the entry meanwhile, in which case fall
      // through to a full refetch.
      ++proxy_->stats_.revalidated_304;
      CacheShard& shard = proxy_->shard_for(host_);
      std::optional<net::HttpResponse> renewed_response;
      {
        const core::sync::MutexLock lock(shard.mutex);
        const auto renewed = shard.entries.find(host_);
        if (renewed != shard.entries.end()) {
          renewed->second.stored_at_ms = proxy_->net_->now_ms();  // fresh again
          ++proxy_->stats_.hits;
          renewed_response = proxy_->serve_entry(shard, host_, renewed->second,
                                                 true, full_metadata_);
        }
      }
      if (renewed_response) {
        settle(std::move(*renewed_response));
        return;
      }
    }
    after_fast_path();
  }

  void after_fast_path() {
    // Cooperative queries are strictly cache-only: never trigger a fetch.
    if (cache_only_) {
      settle(net::make_response(404, "not cached here"));
      return;
    }
    ++proxy_->stats_.misses;
    // Scoped cooperation first: a same-AD peer may already hold the object
    // (forwarded sibling fetches skip this — their requester runs its own
    // cooperation round).
    peer_index_ = 0;
    query_next_peer();
  }

  void query_next_peer() {
    if (halt_if_cancelled()) return;
    if (sibling_query_ || peer_index_ >= proxy_->peers_.size()) {
      begin_sibling_redirect();
      return;
    }
    const net::Address peer = proxy_->peers_[peer_index_++];
    net::HttpRequest query;
    query.method = "GET";
    query.target = "http://" + host_ + "/";
    query.headers.set("Host", host_);
    query.headers.set(kIcpQueryHeader, "1");
    query.headers.set(kWantMetadataHeader, "1");
    auto self = shared_from_this();
    proxy_->net_->send_async(proxy_->self_, peer, query, exec_,
                             [self, peer](net::HttpResponse answer) {
                               self->weigh_peer_answer(peer, std::move(answer));
                             });
  }

  void weigh_peer_answer(const net::Address& peer, net::HttpResponse answer) {
    if (!answer.ok()) {
      query_next_peer();
      return;
    }
    Entry entry;
    entry.body = answer.take_body_chunks();
    entry.content_type =
        answer.headers.get("Content-Type").value_or("text/plain");
    entry.etag = answer.headers.get("ETag").value_or("");
    entry.fetched_from = peer;
    entry.stored_at_ms = proxy_->net_->now_ms();
    entry.metadata = ContentMetadata::from_headers(answer.headers);
    if (proxy_->options_.verify) {
      // Peers are not more trusted than any other source.
      if (!entry.metadata || entry.metadata->name != *name_ ||
          verify_content(*entry.metadata, entry.body) != VerifyResult::Ok) {
        ++proxy_->stats_.verification_failures;
        query_next_peer();
        return;
      }
    }
    ++proxy_->stats_.peer_hits;
    deliver_entry(std::move(entry), nullptr);
  }

  // Cross-PoP cooperation: the directory claims a sibling PoP holds the
  // object — fetch it from there (nearest first) instead of the origin.
  // Responses served this way are marked X-Cache: SIBLING so clients (and
  // the testbed's driver) can attribute the transfer to the cache tier.
  void begin_sibling_redirect() {
    holders_.clear();
    holder_index_ = 0;
    holders_tried_ = 0;
    // Forwarding would push the chain past the hop limit: stop here (the
    // receiving side enforces the same bound, so both ends agree).
    if (proxy_->directory_ != nullptr &&
        hops_ + 1 <= proxy_->options_.sibling_hop_limit) {
      holders_ = proxy_->directory_->holders(host_);
    }
    query_next_sibling();
  }

  void query_next_sibling() {
    if (halt_if_cancelled()) return;
    while (holder_index_ < holders_.size() &&
           holders_tried_ < proxy_->options_.sibling_fanout) {
      const net::Address holder = holders_[holder_index_++];
      if (holder == proxy_->self_) continue;
      ++holders_tried_;  // stale-hint damage control: bounded candidates
      auto self = shared_from_this();
      start_fetch(holder, hops_ + 1,
                  [self, holder](std::optional<Entry> entry, bool) {
                    self->weigh_sibling_fetch(holder, std::move(entry));
                  });
      return;
    }
    after_siblings();
  }

  void weigh_sibling_fetch(const net::Address& holder,
                           std::optional<Entry> entry) {
    if (entry) {
      ++proxy_->stats_.sibling_hits;
      deliver_entry(std::move(*entry), "SIBLING");
      return;
    }
    // The sibling answered 404 (hint stale — the copy was evicted), failed
    // verification, or is down: forget the hint so the next miss does not
    // chase the same dead end, and try the next-nearest holder.
    proxy_->directory_->forget(holder, host_);
    query_next_sibling();
  }

  void after_siblings() {
    // A forwarded sibling fetch never recurses into name resolution: on a
    // stale hint the *requester* falls through to the origin path itself,
    // so a redirect can make things better but never reshape the upstream
    // route.
    if (sibling_query_) {
      settle(net::make_response(404, "not cached here"));
      return;
    }
    // Step 3: resolve the name, following at most one P-delegation hop. A
    // resolver that *errors* (unreachable NRS, 5xx) is an upstream failure
    // eligible for degradation; a resolver that cleanly answers "no such
    // name" is not.
    resolve_failed_ = false;
    locations_.clear();
    resolver_ = proxy_->nrs_;
    resolver_hop_ = 0;
    resolve_next_hop();
  }

  void resolve_next_hop() {
    if (halt_if_cancelled()) return;
    if (resolver_hop_ >= 2 || !locations_.empty()) {
      weigh_resolution();
      return;
    }
    ++resolver_hop_;
    net::HttpRequest query;
    query.method = "GET";
    query.target = "/resolve?name=" + host_;
    auto self = shared_from_this();
    proxy_->net_->send_async(proxy_->self_, resolver_, query, exec_,
                             [self](net::HttpResponse answer) {
                               self->weigh_resolver_answer(std::move(answer));
                             });
  }

  void weigh_resolver_answer(net::HttpResponse answer) {
    if (!answer.ok()) {
      resolve_failed_ = answer.status >= 500;
      weigh_resolution();
      return;
    }
    std::optional<net::Address> delegate;
    for (const auto& [key, value] : parse_form_lines(answer.body)) {
      if (key == "location") locations_.push_back(value);
      if (key == "resolver") delegate = value;
    }
    if (!locations_.empty() || !delegate) {
      weigh_resolution();
      return;
    }
    resolver_ = *delegate;
    resolve_next_hop();
  }

  void weigh_resolution() {
    if (!locations_.empty()) {
      // Step 4: fetch from the first location that yields authentic
      // content.
      fetch_failed_ = false;
      location_index_ = 0;
      if (proxy_->options_.multi_source_fetch) {
        // DESIGN.md §13: with ≥2 known replicas the fetch becomes a
        // congestion-aware race instead of a serial ladder.
        std::vector<net::Address> sources = multi_sources();
        if (sources.size() >= 2) {
          start_multi_fetch(std::move(sources));
          return;
        }
      }
      fetch_next_location();
      return;
    }
    if (!resolve_failed_) {
      settle(net::make_response(404, "name did not resolve"));
      return;
    }
    // NRS outage. With an expired copy in hand we still know where it came
    // from — sidestep resolution and refetch directly (origin may be fine).
    if (stale_ && !stale_fetched_from_.empty()) {
      if (halt_if_cancelled()) return;
      auto self = shared_from_this();
      start_fetch(stale_fetched_from_, 0,
                  [self](std::optional<Entry> entry, bool) {
                    self->weigh_direct_refetch(std::move(entry));
                  });
      return;
    }
    degrade_or_resolution_error();
  }

  /// The candidate replica set for a multi-source MISS: every NRS row,
  /// mirrors remembered from the expired copy's metalink metadata, and
  /// the address the expired copy originally came from — deduped
  /// preserving that priority order.
  [[nodiscard]] std::vector<net::Address> multi_sources() const {
    std::vector<net::Address> sources;
    sources.reserve(locations_.size() + stale_mirrors_.size() + 1);
    const auto push = [&sources](const net::Address& candidate) {
      if (candidate.empty()) return;
      if (std::find(sources.begin(), sources.end(), candidate) !=
          sources.end()) {
        return;
      }
      sources.push_back(candidate);
    };
    for (const auto& location : locations_) push(location);
    for (const auto& mirror : stale_mirrors_) push(mirror);
    if (stale_) push(stale_fetched_from_);
    return sources;
  }

  /// DESIGN.md §13: race the fetch across every known replica through the
  /// proxy's MultiSourceFetcher (RTT-ranked primary, hedged duplicate past
  /// the straggler threshold, parallel range legs on large objects). The
  /// fetcher synthesizes a plain 200 head even when the body arrives as
  /// joined ranges, so the FetchSink / verification / transit machinery is
  /// exactly the serial path's.
  void start_multi_fetch(std::vector<net::Address> sources) {
    if (halt_if_cancelled()) return;
    net::HttpRequest fetch;
    fetch.method = "GET";
    fetch.target = "/";
    fetch.headers.set("Host", host_);
    fetch.headers.set(kWantMetadataHeader, "1");  // this proxy verifies

    auto sink = std::make_shared<FetchSink>(
        [proxy = proxy_, host = host_](
            const std::shared_ptr<detail::Transit>& transit) {
          CacheShard& shard = proxy->shard_for(host);
          const core::sync::MutexLock lock(shard.mutex);
          shard.transit[host] = transit;
        },
        halt_flag_);
    auto self = shared_from_this();
    proxy_->fetcher_->fetch_from_best(
        proxy_->self_, std::move(sources), std::move(fetch), sink, exec_,
        [self, sink](net::HttpResponse head,
                     const runtime::MultiSourceFetcher::Result& result) {
          // The winning replica is where revalidations should go back to.
          const net::Address source = !result.source.empty()
                                          ? result.source
                                          : self->locations_.front();
          self->finish_fetch(
              *sink, source, 0, std::move(head),
              [self, source](std::optional<Entry> entry,
                             bool transport_failure) {
                self->weigh_multi_fetch(source, std::move(entry),
                                        transport_failure);
              });
        });
  }

  void weigh_multi_fetch(const net::Address& source, std::optional<Entry> entry,
                         bool transport_failure) {
    if (transport_failure) fetch_failed_ = true;
    if (entry) {
      deliver_entry(std::move(*entry), nullptr);
      return;
    }
    // The race failed — every source errored, or the winner's content did
    // not verify. Fall back to the serial location ladder, skipping the
    // replica the race already proved bad: multi-source may make a MISS
    // faster, it must never make one less available.
    multi_failed_source_ = source;
    fetch_next_location();
  }

  void weigh_direct_refetch(std::optional<Entry> entry) {
    if (entry) {
      deliver_entry(std::move(*entry), nullptr);
      return;
    }
    degrade_or_resolution_error();
  }

  void degrade_or_resolution_error() {
    ++proxy_->stats_.upstream_errors;
    if (stale_) {
      if (auto degraded = proxy_->serve_stale(proxy_->shard_for(host_), host_,
                                              full_metadata_)) {
        settle(std::move(*degraded));
        return;
      }
    }
    settle(net::make_response(504, "name resolution unavailable"));
  }

  void fetch_next_location() {
    if (halt_if_cancelled()) return;
    // A source the multi-source race already consumed (and whose content
    // failed to deliver or verify) is not retried serially.
    while (location_index_ < locations_.size() &&
           locations_[location_index_] == multi_failed_source_) {
      ++location_index_;
    }
    if (location_index_ >= locations_.size()) {
      all_locations_failed();
      return;
    }
    const net::Address location = locations_[location_index_++];
    auto self = shared_from_this();
    start_fetch(location, 0,
                [self](std::optional<Entry> entry, bool transport_failure) {
                  self->weigh_location_fetch(std::move(entry),
                                             transport_failure);
                });
  }

  void weigh_location_fetch(std::optional<Entry> entry,
                            bool transport_failure) {
    if (transport_failure) fetch_failed_ = true;
    if (entry) {
      deliver_entry(std::move(*entry), nullptr);
      return;
    }
    fetch_next_location();
  }

  void all_locations_failed() {
    if (fetch_failed_) {
      // At least one location failed at the transport layer (vs content
      // that merely failed verification): degrade to the expired copy if
      // we hold one rather than surfacing the error.
      ++proxy_->stats_.upstream_errors;
      if (stale_) {
        if (auto degraded = proxy_->serve_stale(proxy_->shard_for(host_),
                                                host_, full_metadata_)) {
          settle(std::move(*degraded));
          return;
        }
      }
    }
    settle(net::make_response(502, "no location provided authentic content"));
  }

  void legacy_forward() {
    ++proxy_->stats_.legacy_forwards;
    const auto address = proxy_->dns_ != nullptr
                             ? proxy_->dns_->resolve_with_wildcards(host_)
                             : std::optional<std::string>{};
    if (!address) {
      settle(net::make_response(502, "legacy host did not resolve"));
      return;
    }
    net::HttpRequest forward = request_;
    const auto uri = net::parse_uri(request_.target);
    forward.target = uri ? uri->target() : "/";
    forward.headers.set("Host", host_);
    forward.headers.set("Via", proxy_->self_);
    auto self = shared_from_this();
    proxy_->net_->send_async(proxy_->self_, *address, forward, exec_,
                             [self](net::HttpResponse response) {
                               response.headers.set("Via", self->proxy_->self_);
                               self->settle(std::move(response));
                             });
  }

  /// fetch_and_verify, continuation style: streaming GET of `host_` from
  /// `location` (hops > 0 marks a sibling fetch and rides along as
  /// X-IdICN-Hops), chunks accumulating in a Transit that concurrent
  /// requests join mid-flight while the digest is computed incrementally —
  /// the body is never reassembled into one contiguous buffer. `k` gets
  /// the verified entry, or nullopt plus whether the failure was
  /// transport-layer (unreachable, 5xx) as opposed to a clean negative or
  /// a verification failure.
  void start_fetch(net::Address location, std::size_t hops,
                   std::function<void(std::optional<Entry>, bool)> k) {
    net::HttpRequest fetch;
    fetch.method = "GET";
    fetch.target = "/";
    fetch.headers.set("Host", host_);
    fetch.headers.set(kWantMetadataHeader, "1");  // this proxy verifies
    // A sibling fetch carries its forwarding depth so the receiving proxy
    // can enforce Options::sibling_hop_limit (loop safety).
    if (hops > 0) fetch.headers.set(kHopsHeader, std::to_string(hops));

    auto sink = std::make_shared<FetchSink>(
        [proxy = proxy_, host = host_](
            const std::shared_ptr<detail::Transit>& transit) {
          CacheShard& shard = proxy->shard_for(host);
          const core::sync::MutexLock lock(shard.mutex);
          shard.transit[host] = transit;
        },
        halt_flag_);
    auto self = shared_from_this();
    // Built before the send call: capturing `location` here by move while
    // also passing it as the destination would read a moved-from string
    // (argument evaluation order is unspecified).
    net::SendCallback done = [self, sink, location, hops,
                              k = std::move(k)](net::HttpResponse head) {
      self->finish_fetch(*sink, location, hops, std::move(head), k);
    };
    proxy_->net_->send_streaming_async(proxy_->self_, location, fetch, sink,
                                       exec_, std::move(done));
  }

  void finish_fetch(FetchSink& sink, const net::Address& location,
                    std::size_t hops, net::HttpResponse head,
                    const std::function<void(std::optional<Entry>, bool)>& k) {
    CacheShard& shard = proxy_->shard_for(host_);
    // Retire the transit from the shard map (if this fetch published one
    // and it was not replaced by a competing fetch) and resolve its end
    // state. `failed` is the fail-closed switch: joined readers abort,
    // their connections close mid-body, nobody receives a
    // cleanly-terminated copy.
    const auto retire = [&](bool failed) {
      const std::shared_ptr<detail::Transit>& transit = sink.transit();
      if (transit == nullptr) return;
      {
        const core::sync::MutexLock lock(transit->mutex);
        transit->failed = failed;
        transit->complete = !failed;
      }
      const core::sync::MutexLock lock(shard.mutex);
      const auto it = shard.transit.find(host_);
      if (it != shard.transit.end() && it->second == transit) {
        shard.transit.erase(it);
      }
    };

    if (!head.ok()) {
      // Either the upstream answered non-2xx, or the transport synthesized
      // a failure — possibly *after* body delivery began (mid-body death).
      retire(/*failed=*/true);
      k(std::nullopt, head.status >= 500);
      return;
    }
    if (hops == 0) {
      // Sibling transfers stay inside the cache tier — only true upstream
      // (origin/mirror) fetches count toward origin byte load.
      proxy_->stats_.bytes_from_origin += sink.bytes();
      const core::sync::MutexLock lock(shard.mutex);
      shard.perf.bump(&core::PerfCounters::proxy_bytes_from_origin,
                      sink.bytes());
    }

    Entry entry;
    entry.content_type =
        head.headers.get("Content-Type").value_or("text/plain");
    entry.etag = head.headers.get("ETag").value_or("");
    entry.fetched_from = location;
    entry.stored_at_ms = proxy_->net_->now_ms();
    entry.metadata = ContentMetadata::from_headers(head.headers);

    if (proxy_->options_.verify) {
      if (!entry.metadata || entry.metadata->name != *name_ ||
          verify_content(*entry.metadata, sink.digest()) != VerifyResult::Ok) {
        ++proxy_->stats_.verification_failures;
        retire(/*failed=*/true);
        k(std::nullopt, false);
        return;
      }
    }
    // The entry shares the transit's chunks — admission costs reference
    // bumps, not a body copy, and joiners keep streaming from the same
    // bytes the cache now holds.
    if (const auto& transit = sink.transit()) {
      const core::sync::MutexLock lock(transit->mutex);
      entry.body = transit->chunks;
    }
    retire(/*failed=*/false);
    k(std::move(entry), false);
  }

  /// Admit a verified entry and answer the client. A cancelled request
  /// still admits — joined readers and future requests keep the bytes —
  /// but skips the serve (settle drops the response anyway).
  void deliver_entry(Entry entry, const char* cache_mark) {
    CacheShard& shard = proxy_->shard_for(host_);
    if (cancelled_) {
      {
        const core::sync::MutexLock lock(shard.mutex);
        proxy_->cache_store(shard, host_, entry);
      }
      settle(net::HttpResponse{});
      return;
    }
    net::HttpResponse response =
        proxy_->store_and_serve(shard, host_, std::move(entry), full_metadata_);
    if (cache_mark != nullptr) response.headers.set("X-Cache", cache_mark);
    settle(std::move(response));
  }

  Proxy* proxy_;
  net::HttpRequest request_;
  net::Executor* exec_;  ///< null ⇒ every transport hop completes inline
  std::function<void(net::HttpResponse)> respond_;

  std::string host_;
  std::optional<SelfCertifyingName> name_;
  bool apply_range_ = false;
  bool peer_query_ = false;
  bool full_metadata_ = false;
  std::size_t hops_ = 0;
  bool sibling_query_ = false;
  bool cache_only_ = false;

  bool stale_ = false;  ///< an expired-but-verified copy is in the cache
  std::string stale_etag_;
  net::Address stale_fetched_from_;
  std::vector<std::string> stale_mirrors_;  ///< metalink mirrors of the stale copy
  net::Address multi_failed_source_;  ///< spent by the race; ladder skips it

  std::size_t peer_index_ = 0;
  std::vector<net::Address> holders_;
  std::size_t holder_index_ = 0;
  std::size_t holders_tried_ = 0;
  net::Address resolver_;
  int resolver_hop_ = 0;
  bool resolve_failed_ = false;
  std::vector<std::string> locations_;
  std::size_t location_index_ = 0;
  bool fetch_failed_ = false;

  bool settled_ = false;
  bool cancelled_ = false;
  /// Shared with in-flight FetchSinks: flipped by abort() so a pre-head
  /// transfer refuses its body (see FetchSink's cancellation boundary).
  std::shared_ptr<bool> halt_flag_ = std::make_shared<bool>(false);
};

net::HttpResponse Proxy::handle_http(const net::HttpRequest& request,
                                     const net::Address& from) {
  // Null executor: every transport hop falls back to its synchronous path
  // inline, so the machine settles before handle_http_async returns.
  net::HttpResponse response = net::make_response(500, "proxy did not settle");
  handle_http_async(request, from, nullptr,
                    [&response](net::HttpResponse settled) {
                      response = std::move(settled);
                    });
  return response;
}

std::optional<net::HttpResponse> Proxy::serve_if_fresh_hit(
    const net::HttpRequest& request) {
  if (request.method != "GET") return std::nullopt;
  std::string host;
  const auto uri = net::parse_uri(request.target);
  if (uri && !uri->host.empty()) {
    host = uri->host;
  } else if (const auto host_header = request.headers.get("Host")) {
    host = *host_header;
  } else {
    return std::nullopt;  // 400 — the machine words the error
  }
  const auto name = SelfCertifyingName::parse_host(host);
  if (!name) return std::nullopt;  // legacy forward
  host = name->host();
  const bool peer_query = request.headers.contains(kIcpQueryHeader);
  const bool full_metadata =
      peer_query || request.headers.contains(kWantMetadataHeader);

  CacheShard& shard = shard_for(host);
  std::optional<net::HttpResponse> response;
  {
    const core::sync::MutexLock lock(shard.mutex);
    const auto cached = shard.entries.find(host);
    if (cached == shard.entries.end()) return std::nullopt;
    const bool fresh =
        net_->now_ms() - cached->second.stored_at_ms <= options_.freshness_ms;
    if (!fresh) return std::nullopt;  // stale: revalidation is upstream I/O
    ++stats_.hits;
    response = serve_entry(shard, host, cached->second, true, full_metadata);
  }
  // Mirrors FetchOp::settle: Range rewrite on the idICN path (cooperative
  // queries never carry one), then PoP attribution.
  if (!peer_query) {
    if (const auto range = request.headers.get_view("Range")) {
      net::apply_byte_range(*range, *response);
    }
  }
  if (!options_.pop_name.empty()) {
    response->headers.set(kPopHeader, options_.pop_name);
  }
  return response;
}

std::shared_ptr<net::AsyncOp> Proxy::handle_http_async(
    const net::HttpRequest& request, const net::Address& /*from*/,
    net::Executor* exec, std::function<void(net::HttpResponse)> respond) {
  if (auto hit = serve_if_fresh_hit(request)) {
    respond(std::move(*hit));
    return nullptr;
  }
  auto op =
      std::make_shared<FetchOp>(this, request, exec, std::move(respond));
  op->dispatch();
  return op->settled() ? nullptr : op;
}

}  // namespace idicn::idicn
