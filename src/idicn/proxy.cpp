#include "idicn/proxy.hpp"

#include <algorithm>
#include <functional>

#include "core/hot_path.hpp"
#include "crypto/sha256.hpp"
#include "idicn/nrs.hpp"
#include "net/http_internal.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {
namespace {

/// BodyProducer over a Transit: yields the chunks that have arrived so
/// far, reports Pending while the upstream fetch is still filling the
/// transit, Done once it completed, and Error if it failed (upstream died
/// or verification rejected the content) — the serving runtime then
/// closes the connection without completing the body.
class TransitReader final : public net::BodyProducer {
public:
  explicit TransitReader(std::shared_ptr<detail::Transit> transit)
      : transit_(std::move(transit)) {}

  [[nodiscard]] std::optional<std::uint64_t> total_size() const override {
    return transit_->expected_size;
  }

  Pull pull(core::Chunk* out) override {
    const core::sync::MutexLock lock(transit_->mutex);
    const auto& chunks = transit_->chunks.chunks();
    if (index_ < chunks.size()) {
      *out = chunks[index_++];
      return Pull::Ready;
    }
    if (transit_->failed) return Pull::Error;
    if (transit_->complete) return Pull::Done;
    return Pull::Pending;
  }

private:
  std::shared_ptr<detail::Transit> transit_;
  std::size_t index_ = 0;  ///< cursor into the transit's chunk list
};

/// Receives an upstream body chunk by chunk: on a 200 head it builds a
/// Transit and hands it to `publish` (which makes it visible to
/// concurrent requests), then appends each chunk under the transit lock
/// while hashing incrementally. Never cancels the transfer — error bodies
/// are drained and discarded.
class FetchSink final : public net::ChunkSink {
public:
  using Publish = std::function<void(const std::shared_ptr<detail::Transit>&)>;

  explicit FetchSink(Publish publish) : publish_(std::move(publish)) {}

  bool on_head(const net::HttpResponse& head) override {
    if (!head.ok()) return true;  // drain and ignore the error body
    auto transit = std::make_shared<detail::Transit>();
    transit->content_type =
        head.headers.get("Content-Type").value_or("text/plain");
    transit->etag = head.headers.get("ETag").value_or("");
    transit->metadata = ContentMetadata::from_headers(head.headers);
    std::size_t content_length = 0;
    if (head.headers.contains("Content-Length") &&
        net::detail::parse_content_length(head.headers, content_length,
                                          nullptr)) {
      transit->expected_size = content_length;
    }
    transit_ = std::move(transit);
    publish_(transit_);
    return true;
  }

  bool on_chunk(core::Chunk chunk) override {
    if (transit_ == nullptr) return true;  // error body: not ours to keep
    bytes_ += chunk.size();
    hasher_.update(chunk.view());
    const core::sync::MutexLock lock(transit_->mutex);
    transit_->chunks.append(std::move(chunk));
    return true;
  }

  [[nodiscard]] const std::shared_ptr<detail::Transit>& transit() const {
    return transit_;
  }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] crypto::Sha256Digest digest() { return hasher_.finish(); }

private:
  Publish publish_;
  std::shared_ptr<detail::Transit> transit_;
  crypto::Sha256 hasher_;
  std::uint64_t bytes_ = 0;
};

/// X-IdICN-Hops value, defaulting to 0 (a client-originated request) on
/// absence or garbage; clamped so a hostile header cannot overflow.
std::size_t parse_hops(const net::HeaderMap& headers) {
  const auto value = headers.get_view(kHopsHeader);
  if (!value || value->empty()) return 0;
  std::size_t hops = 0;
  for (const char c : *value) {
    if (c < '0' || c > '9') return 0;
    hops = hops * 10 + static_cast<std::size_t>(c - '0');
    if (hops > 64) return 64;
  }
  return hops;
}

}  // namespace

Proxy::Proxy(net::Transport* net, net::Address self, net::Address nrs,
             const net::DnsService* dns, Options options)
    : net_(net),
      self_(std::move(self)),
      nrs_(std::move(nrs)),
      dns_(dns),
      options_(options) {
  const std::size_t count = std::max<std::size_t>(1, options_.cache_shards);
  const std::uint64_t base = options_.capacity_bytes / count;
  const std::uint64_t remainder = options_.capacity_bytes % count;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<CacheShard>();
    shard->capacity_bytes = base + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Proxy::CacheShard& Proxy::shard_for(const std::string& host) {
  return *shards_[std::hash<std::string>{}(host) % shards_.size()];
}

const Proxy::CacheShard& Proxy::shard_for(const std::string& host) const {
  return *shards_[std::hash<std::string>{}(host) % shards_.size()];
}

core::PerfCounters Proxy::perf() const {
  core::PerfCounters merged;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    merged.merge(shard->perf);
  }
  return merged;
}

std::uint64_t Proxy::cached_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    total += shard->used_bytes;
  }
  return total;
}

std::size_t Proxy::cached_objects() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const core::sync::MutexLock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

bool Proxy::is_cached(const std::string& host) const {
  const CacheShard& shard = shard_for(host);
  const core::sync::MutexLock lock(shard.mutex);
  return shard.entries.find(host) != shard.entries.end();
}

void Proxy::touch(CacheShard& shard, const std::string& host) {
  const auto it = shard.entries.find(host);
  shard.lru.erase(it->second.lru_position);
  shard.lru.push_front(host);
  it->second.lru_position = shard.lru.begin();
}

void Proxy::evict_until_fits(CacheShard& shard, std::uint64_t incoming) {
  while (!shard.lru.empty() &&
         shard.used_bytes + incoming > shard.capacity_bytes) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    const auto it = shard.entries.find(victim);
    shard.used_bytes -= it->second.body.size();
    shard.entries.erase(it);
    ++stats_.evictions;
  }
}

bool Proxy::cache_store(CacheShard& shard, const std::string& host,
                        Entry& entry) {
  if (entry.body.size() > shard.capacity_bytes) return false;  // too large
  const auto existing = shard.entries.find(host);
  if (existing != shard.entries.end()) {
    shard.used_bytes -= existing->second.body.size();
    shard.lru.erase(existing->second.lru_position);
    shard.entries.erase(existing);
  }
  evict_until_fits(shard, entry.body.size());
  shard.used_bytes += entry.body.size();
  shard.lru.push_front(host);
  entry.lru_position = shard.lru.begin();
  shard.entries.emplace(host, std::move(entry));
  return true;
}

IDICN_HOT_PATH net::HttpResponse Proxy::serve_entry(CacheShard& shard,
                                                    const std::string& host,
                                                    Entry& entry, bool hit,
                                                    bool full_metadata) {
  stats_.bytes_served += entry.body.size();
  shard.perf.bump(&core::PerfCounters::proxy_bytes_served, entry.body.size());
  // References the entry's chunks — no body copy per response; N
  // concurrent readers of one cached object share one copy of the bytes.
  net::HttpResponse response =
      net::make_stream_response(200, entry.body, entry.content_type);
  // The multi-kilobyte proof (publisher key + one-time signature) is
  // attached only when the caller asked for it: verifying clients and
  // fetching proxies send kWantMetadataHeader, plain browsers trust this
  // proxy's own verification and get the cheap name+digest hint.
  if (entry.metadata) entry.metadata->apply_to(response.headers, full_metadata);
  if (!entry.etag.empty()) response.headers.set("ETag", entry.etag);
  response.headers.set("X-Cache", hit ? "HIT" : "MISS");
  response.headers.set("Via", self_);
  if (hit) touch(shard, host);
  return response;
}

net::HttpResponse Proxy::store_and_serve(CacheShard& shard,
                                         const std::string& host, Entry entry,
                                         bool full_metadata) {
  // Where the bytes actually came from (origin, mirror, or sibling proxy):
  // exposed so the testbed's driver can charge the transfer to the real
  // core-graph path rather than assuming proxy→origin.
  const net::Address source = entry.fetched_from;
  const core::sync::MutexLock lock(shard.mutex);
  net::HttpResponse response =
      cache_store(shard, host, entry)
          ? serve_entry(shard, host, shard.entries.find(host)->second, false,
                        full_metadata)
          // Larger than the shard's slice: serve the fetched copy uncached.
          : serve_entry(shard, host, entry, false, full_metadata);
  if (!source.empty()) response.headers.set(kSourceHeader, source);
  return response;
}

std::optional<Proxy::Entry> Proxy::fetch_and_verify(const SelfCertifyingName& name,
                                                    const net::Address& location,
                                                    bool* transport_failure,
                                                    std::size_t hops) {
  const std::string host = name.host();
  CacheShard& shard = shard_for(host);

  net::HttpRequest fetch;
  fetch.method = "GET";
  fetch.target = "/";
  fetch.headers.set("Host", host);
  fetch.headers.set(kWantMetadataHeader, "1");  // this proxy verifies
  // A sibling fetch carries its forwarding depth so the receiving proxy
  // can enforce Options::sibling_hop_limit (loop safety).
  if (hops > 0) fetch.headers.set(kHopsHeader, std::to_string(hops));

  // Streaming fetch: chunks accumulate in a Transit that concurrent
  // requests for the same object join mid-flight (serve_transit), and the
  // digest is computed incrementally — the body is never reassembled into
  // one contiguous buffer.
  FetchSink sink([&](const std::shared_ptr<detail::Transit>& transit) {
    const core::sync::MutexLock lock(shard.mutex);
    shard.transit[host] = transit;
  });
  const net::HttpResponse head = net_->send_streaming(self_, location, fetch, sink);

  // Retire the transit from the shard map (if this fetch published one and
  // it was not replaced by a competing fetch) and resolve its end state.
  // `failed` is the fail-closed switch: joined readers abort, their
  // connections close mid-body, nobody receives a cleanly-terminated copy.
  const auto retire = [&](bool failed) {
    const std::shared_ptr<detail::Transit>& transit = sink.transit();
    if (transit == nullptr) return;
    {
      const core::sync::MutexLock lock(transit->mutex);
      transit->failed = failed;
      transit->complete = !failed;
    }
    const core::sync::MutexLock lock(shard.mutex);
    const auto it = shard.transit.find(host);
    if (it != shard.transit.end() && it->second == transit) {
      shard.transit.erase(it);
    }
  };

  if (!head.ok()) {
    // Either the upstream answered non-2xx, or the transport synthesized
    // a failure — possibly *after* body delivery began (mid-body death).
    if (transport_failure != nullptr && head.status >= 500) {
      *transport_failure = true;
    }
    retire(/*failed=*/true);
    return std::nullopt;
  }
  if (hops == 0) {
    // Sibling transfers stay inside the cache tier — only true upstream
    // (origin/mirror) fetches count toward origin byte load.
    stats_.bytes_from_origin += sink.bytes();
    const core::sync::MutexLock lock(shard.mutex);
    shard.perf.bump(&core::PerfCounters::proxy_bytes_from_origin, sink.bytes());
  }

  Entry entry;
  entry.content_type = head.headers.get("Content-Type").value_or("text/plain");
  entry.etag = head.headers.get("ETag").value_or("");
  entry.fetched_from = location;
  entry.stored_at_ms = net_->now_ms();
  entry.metadata = ContentMetadata::from_headers(head.headers);

  if (options_.verify) {
    if (!entry.metadata || entry.metadata->name != name ||
        verify_content(*entry.metadata, sink.digest()) != VerifyResult::Ok) {
      ++stats_.verification_failures;
      retire(/*failed=*/true);
      return std::nullopt;
    }
  }
  // The entry shares the transit's chunks — admission costs reference
  // bumps, not a body copy, and joiners keep streaming from the same
  // bytes the cache now holds.
  if (const auto& transit = sink.transit()) {
    const core::sync::MutexLock lock(transit->mutex);
    entry.body = transit->chunks;
  }
  retire(/*failed=*/false);
  return entry;
}

bool Proxy::revalidate(const std::string& host, const std::string& etag,
                       const net::Address& fetched_from) {
  if (etag.empty() || fetched_from.empty()) return false;
  ++stats_.revalidations;
  net::HttpRequest conditional;
  conditional.method = "GET";
  conditional.target = "/";
  conditional.headers.set("Host", host);
  conditional.headers.set("If-None-Match", etag);
  const net::HttpResponse response = net_->send(self_, fetched_from, conditional);
  if (response.status != 304) return false;
  ++stats_.revalidated_304;
  return true;
}

std::optional<Proxy::Entry> Proxy::fetch_from_peers(const SelfCertifyingName& name) {
  for (const net::Address& peer : peers_) {
    net::HttpRequest query;
    query.method = "GET";
    query.target = "http://" + name.host() + "/";
    query.headers.set("Host", name.host());
    query.headers.set(kIcpQueryHeader, "1");
    query.headers.set(kWantMetadataHeader, "1");
    net::HttpResponse response = net_->send(self_, peer, query);
    if (!response.ok()) continue;

    Entry entry;
    entry.body = response.take_body_chunks();
    entry.content_type = response.headers.get("Content-Type").value_or("text/plain");
    entry.etag = response.headers.get("ETag").value_or("");
    entry.fetched_from = peer;
    entry.stored_at_ms = net_->now_ms();
    entry.metadata = ContentMetadata::from_headers(response.headers);
    if (options_.verify) {
      // Peers are not more trusted than any other source.
      if (!entry.metadata || entry.metadata->name != name ||
          verify_content(*entry.metadata, entry.body) != VerifyResult::Ok) {
        ++stats_.verification_failures;
        continue;
      }
    }
    ++stats_.peer_hits;
    return entry;
  }
  return std::nullopt;
}

std::optional<Proxy::Entry> Proxy::fetch_from_siblings(
    const SelfCertifyingName& name, std::size_t hops) {
  if (directory_ == nullptr) return std::nullopt;
  // Forwarding would push the chain past the hop limit: stop here (the
  // receiving side enforces the same bound, so both ends agree).
  if (hops + 1 > options_.sibling_hop_limit) return std::nullopt;
  const std::string host = name.host();
  std::size_t tried = 0;
  for (const net::Address& holder : directory_->holders(host)) {
    if (tried >= options_.sibling_fanout) break;  // stale-hint damage control
    if (holder == self_) continue;
    ++tried;
    if (auto entry = fetch_and_verify(name, holder, nullptr, hops + 1)) {
      ++stats_.sibling_hits;
      return entry;
    }
    // The sibling answered 404 (hint stale — the copy was evicted), failed
    // verification, or is down: forget the hint so the next miss does not
    // chase the same dead end, and try the next-nearest holder.
    directory_->forget(holder, host);
  }
  return std::nullopt;
}

net::HttpResponse Proxy::serve_hint(const net::HttpRequest& request) {
  const auto sender = request.headers.get(kHintHeader);
  if (!sender || sender->empty()) {
    return net::make_response(400, "hint without sender address");
  }
  std::vector<std::string> hosts;
  for (const auto& [key, value] : parse_form_lines(request.body)) {
    if (key != "host") continue;
    // Digest bound on the ingest side too: a misbehaving sibling cannot
    // bloat the directory past what this proxy agreed to hold.
    if (hosts.size() >= options_.max_hint_entries) break;
    hosts.push_back(value);
  }
  ++stats_.hints_received;
  if (directory_ != nullptr) directory_->ingest(*sender, hosts);
  return net::make_response(204, "");
}

std::vector<std::string> Proxy::hint_digest() const {
  std::vector<std::string> digest;
  for (const auto& shard : shards_) {
    if (digest.size() >= options_.max_hint_entries) break;
    const core::sync::MutexLock lock(shard->mutex);
    for (const std::string& host : shard->lru) {  // front = most recent
      if (digest.size() >= options_.max_hint_entries) break;
      digest.push_back(host);
    }
  }
  return digest;
}

void Proxy::push_hints() {
  if (siblings_.empty()) return;
  std::string body;
  for (const std::string& host : hint_digest()) {
    body += "host=" + host + "\n";
  }
  net::HttpRequest post;
  post.method = "POST";
  post.target = kHintPath;
  post.headers.set(kHintHeader, self_);
  post.headers.set("Content-Length", std::to_string(body.size()));
  post.body = std::move(body);
  for (const net::Address& sibling : siblings_) {
    // Best-effort soft state: an unreachable sibling just misses this
    // round of hints and catches the next.
    (void)net_->send(self_, sibling, post);
    ++stats_.hints_sent;
  }
}

net::HttpResponse Proxy::serve_transit(
    const std::shared_ptr<detail::Transit>& transit, bool full_metadata) {
  ++stats_.stream_joins;
  net::HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers.set("Content-Type", transit->content_type);
  if (!transit->etag.empty()) response.headers.set("ETag", transit->etag);
  // The metadata is not verified yet — it rides along so an end-to-end
  // verifying client can still check what it streamed. If verification
  // fails proxy-side when the fetch completes, every joined stream aborts
  // before its body terminator (fail-closed), so a non-verifying client
  // never receives corrupt content framed as complete.
  if (transit->metadata) transit->metadata->apply_to(response.headers, full_metadata);
  response.headers.set("X-Cache", "STREAM");
  response.headers.set("Via", self_);
  // Framing follows the producer: Content-Length when the upstream
  // declared a size, chunked otherwise (see serialize_head()).
  response.producer = std::make_shared<TransitReader>(transit);
  return response;
}

std::optional<net::HttpResponse> Proxy::serve_stale(CacheShard& shard,
                                                    const std::string& host,
                                                    bool full_metadata) {
  const core::sync::MutexLock lock(shard.mutex);
  const auto cached = shard.entries.find(host);
  if (cached == shard.entries.end()) return std::nullopt;  // evicted meanwhile
  ++stats_.stale_served;
  net::HttpResponse response =
      serve_entry(shard, host, cached->second, true, full_metadata);
  // RFC 7234 §5.5.1 stale warning plus an explicit idICN marker so clients
  // (and the chaos harness) can tell degraded service from a fresh hit.
  response.headers.set("Warning", "110 - \"Response is Stale\"");
  response.headers.set("X-IdICN-Stale", "1");
  return response;
}

net::HttpResponse Proxy::serve_idicn(const SelfCertifyingName& name,
                                     const net::HttpRequest& request) {
  const std::string host = name.host();
  const bool peer_query = request.headers.contains(kIcpQueryHeader);
  // Peer proxies re-verify what they pull, so they always get the proof.
  const bool full_metadata =
      peer_query || request.headers.contains(kWantMetadataHeader);
  // Sibling-redirect forwarding depth (0 = client-originated). A request
  // already at the hop limit is answered strictly from cache — hops only
  // ever increment, so redirect chains terminate here no matter what the
  // directories claim.
  const std::size_t hops = parse_hops(request.headers);
  const bool sibling_query = hops > 0;
  const bool cache_only = peer_query || hops >= options_.sibling_hop_limit;

  CacheShard& shard = shard_for(host);

  // Step 7 fast path under the shard lock: fresh cached copy. A stale
  // entry only donates its validators here — the conditional refresh is
  // network I/O and must run with the lock dropped so sibling requests on
  // this shard keep flowing.
  bool stale = false;
  std::string stale_etag;
  net::Address stale_fetched_from;
  {
    const core::sync::MutexLock lock(shard.mutex);
    const auto cached = shard.entries.find(host);
    if (cached != shard.entries.end()) {
      const bool fresh =
          net_->now_ms() - cached->second.stored_at_ms <= options_.freshness_ms;
      if (fresh) {
        ++stats_.hits;
        return serve_entry(shard, host, cached->second, true, full_metadata);
      }
      ++stats_.expired;
      stale = true;
      stale_etag = cached->second.etag;
      stale_fetched_from = cached->second.fetched_from;
    }
    // Another worker is already fetching this object: join its stream
    // and serve the arrived prefix now, the tail as it lands — no second
    // upstream fetch, no waiting for the whole object. Stale-entry
    // holders join too (the in-flight refetch supersedes revalidation —
    // without this they raced a duplicate upstream fetch and reported
    // MISS while every sibling connection reported STREAM). Cache-only
    // queries stay out: an in-flight fetch is not a cached object yet.
    if (!cache_only) {
      const auto streaming = shard.transit.find(host);
      if (streaming != shard.transit.end()) {
        return serve_transit(streaming->second, full_metadata);
      }
    }
  }
  if (stale && !cache_only &&
      revalidate(host, stale_etag, stale_fetched_from)) {
    // 304: the body is still authentic. Re-lock and renew — unless a
    // concurrent worker evicted the entry meanwhile, in which case fall
    // through to a full refetch.
    const core::sync::MutexLock lock(shard.mutex);
    const auto renewed = shard.entries.find(host);
    if (renewed != shard.entries.end()) {
      renewed->second.stored_at_ms = net_->now_ms();  // fresh again
      ++stats_.hits;
      return serve_entry(shard, host, renewed->second, true, full_metadata);
    }
  }
  // Cooperative queries are strictly cache-only: never trigger a fetch.
  if (cache_only) return net::make_response(404, "not cached here");
  ++stats_.misses;

  // Scoped cooperation first: a same-AD peer may already hold the object
  // (forwarded sibling fetches skip this — their requester runs its own
  // cooperation round).
  if (!sibling_query) {
    if (auto entry = fetch_from_peers(name)) {
      return store_and_serve(shard, host, std::move(*entry), full_metadata);
    }
  }

  // Cross-PoP cooperation: the directory claims a sibling PoP holds the
  // object — fetch it from there (nearest first) instead of the origin.
  // Responses served this way are marked X-Cache: SIBLING so clients (and
  // the testbed's driver) can attribute the transfer to the cache tier.
  if (auto entry = fetch_from_siblings(name, hops)) {
    net::HttpResponse response =
        store_and_serve(shard, host, std::move(*entry), full_metadata);
    response.headers.set("X-Cache", "SIBLING");
    return response;
  }

  // A forwarded sibling fetch never recurses into name resolution: on a
  // stale hint the *requester* falls through to the origin path itself, so
  // a redirect can make things better but never reshape the upstream route.
  if (sibling_query) return net::make_response(404, "not cached here");

  // Step 3: resolve the name, following at most one P-delegation hop. A
  // resolver that *errors* (unreachable NRS, 5xx) is an upstream failure
  // eligible for degradation; a resolver that cleanly answers "no such
  // name" is not.
  bool resolve_failed = false;
  std::vector<std::string> locations;
  net::Address resolver = nrs_;
  for (int hop = 0; hop < 2 && locations.empty(); ++hop) {
    net::HttpRequest query;
    query.method = "GET";
    query.target = "/resolve?name=" + host;
    const net::HttpResponse answer = net_->send(self_, resolver, query);
    if (!answer.ok()) {
      resolve_failed = answer.status >= 500;
      break;
    }
    std::optional<net::Address> delegate;
    for (const auto& [key, value] : parse_form_lines(answer.body)) {
      if (key == "location") locations.push_back(value);
      if (key == "resolver") delegate = value;
    }
    if (!locations.empty() || !delegate) break;
    resolver = *delegate;
  }
  if (locations.empty()) {
    if (!resolve_failed) return net::make_response(404, "name did not resolve");
    // NRS outage. With an expired copy in hand we still know where it came
    // from — sidestep resolution and refetch directly (origin may be fine).
    if (stale && !stale_fetched_from.empty()) {
      if (auto entry = fetch_and_verify(name, stale_fetched_from)) {
        return store_and_serve(shard, host, std::move(*entry), full_metadata);
      }
    }
    ++stats_.upstream_errors;
    if (stale) {
      if (auto degraded = serve_stale(shard, host, full_metadata)) {
        return *degraded;
      }
    }
    return net::make_response(504, "name resolution unavailable");
  }

  // Step 4: fetch from the first location that yields authentic content.
  bool fetch_failed = false;
  for (const net::Address& location : locations) {
    auto entry = fetch_and_verify(name, location, &fetch_failed);
    if (!entry) continue;
    return store_and_serve(shard, host, std::move(*entry), full_metadata);
  }
  if (fetch_failed) {
    // At least one location failed at the transport layer (vs content that
    // merely failed verification): degrade to the expired copy if we hold
    // one rather than surfacing the error.
    ++stats_.upstream_errors;
    if (stale) {
      if (auto degraded = serve_stale(shard, host, full_metadata)) {
        return *degraded;
      }
    }
  }
  return net::make_response(502, "no location provided authentic content");
}

net::HttpResponse Proxy::serve_legacy(const std::string& host,
                                      const net::HttpRequest& request) {
  ++stats_.legacy_forwards;
  const auto address = dns_ != nullptr ? dns_->resolve_with_wildcards(host)
                                       : std::optional<std::string>{};
  if (!address) return net::make_response(502, "legacy host did not resolve");
  net::HttpRequest forward = request;
  const auto uri = net::parse_uri(request.target);
  forward.target = uri ? uri->target() : "/";
  forward.headers.set("Host", host);
  forward.headers.set("Via", self_);
  net::HttpResponse response = net_->send(self_, *address, forward);
  response.headers.set("Via", self_);
  return response;
}

net::HttpResponse Proxy::handle_http(const net::HttpRequest& request,
                                     const net::Address& /*from*/) {
  net::HttpResponse response = [&]() -> net::HttpResponse {
    // Control channel: a sibling pushing its content digest.
    if (request.method == "POST" && request.target == kHintPath) {
      return serve_hint(request);
    }
    if (request.method != "GET") {
      return net::make_response(400, "proxy supports GET only");
    }
    const auto uri = net::parse_uri(request.target);
    std::string host;
    if (uri && !uri->host.empty()) {
      host = uri->host;  // absolute-form proxy request
    } else if (const auto host_header = request.headers.get("Host")) {
      host = *host_header;  // transparent / origin-form fallback
    } else {
      return net::make_response(400, "cannot determine host");
    }

    if (const auto name = SelfCertifyingName::parse_host(host)) {
      net::HttpResponse served = serve_idicn(*name, request);
      // Ranged reads ride the cached-object path: a complete 200 is
      // rewritten into the requested 206 (slices share the cache entry's
      // chunk blocks — no copy). Cooperative fetches always need the whole
      // object (they verify and cache it), so their Range headers — which
      // they never send — would be ignored here anyway; producer-backed
      // STREAM joins fall back to the full 200 (apply_byte_range declines).
      if (!request.headers.contains(kIcpQueryHeader)) {
        if (const auto range = request.headers.get_view("Range")) {
          net::apply_byte_range(*range, served);
        }
      }
      return served;
    }
    return serve_legacy(host, request);
  }();
  // Serving-PoP attribution on every response (testbed observability).
  if (!options_.pop_name.empty()) {
    response.headers.set(kPopHeader, options_.pop_name);
  }
  return response;
}

}  // namespace idicn::idicn
