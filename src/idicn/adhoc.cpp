#include "idicn/adhoc.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "idicn/nrs.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {

net::Address allocate_link_local(const net::SimNet& net, const std::string& host_name) {
  // Derive the starting candidate from a hash of the host name (RFC 3927
  // picks pseudo-randomly; we pick deterministically for reproducibility),
  // then probe forward past collisions.
  const crypto::Sha256Digest digest = crypto::Sha256::hash(host_name);
  std::uint32_t offset =
      (static_cast<std::uint32_t>(digest[0]) << 8 | digest[1]) % (254 * 254);
  for (int attempts = 0; attempts < 254 * 254; ++attempts) {
    const std::uint32_t x = offset / 254 + 1;  // avoid .0 and .255
    const std::uint32_t y = offset % 254 + 1;
    const net::Address candidate =
        "169.254." + std::to_string(x) + "." + std::to_string(y);
    if (!net.is_attached(candidate)) return candidate;
    offset = (offset + 1) % (254 * 254);
  }
  throw std::runtime_error("allocate_link_local: address space exhausted");
}

void BrowserCache::put(const std::string& url, std::string body,
                       std::string content_type) {
  items_[url] = Item{std::move(body), std::move(content_type)};
}

const BrowserCache::Item* BrowserCache::find(const std::string& url) const {
  const auto it = items_.find(url);
  return it == items_.end() ? nullptr : &it->second;
}

std::set<std::string> BrowserCache::domains() const {
  std::set<std::string> out;
  for (const auto& [url, item] : items_) {
    if (const auto uri = net::parse_uri(url); uri && !uri->host.empty()) {
      out.insert(uri->host);
    }
  }
  return out;
}

AdHocNode::AdHocNode(net::SimNet* net, const std::string& host_name)
    : net_(net), host_name_(host_name), address_(allocate_link_local(*net, host_name)) {
  net_->attach(address_, this);
  net_->join_group(kMdnsGroup, address_);
}

AdHocNode::~AdHocNode() {
  net_->leave_group(kMdnsGroup, address_);
  net_->detach(address_);
}

std::optional<net::Address> AdHocNode::mdns_resolve(const std::string& host) const {
  net::HttpRequest query;
  query.method = "GET";
  query.target = "/mdns?name=" + host;
  for (const net::HttpResponse& answer :
       net_->multicast(address_, kMdnsGroup, query)) {
    if (!answer.ok()) continue;
    for (const auto& [key, value] : parse_form_lines(answer.body)) {
      if (key == "address") return value;
    }
  }
  return std::nullopt;
}

net::HttpResponse AdHocNode::fetch(const std::string& url) const {
  const auto uri = net::parse_uri(url);
  if (!uri || uri->host.empty()) return net::make_response(400, "bad url");

  // No unicast DNS on a link-local network: the name switching service
  // falls back to mDNS.
  const auto peer = mdns_resolve(uri->host);
  if (!peer) return net::make_response(502, "mdns: no peer has " + uri->host);

  net::HttpRequest request;
  request.method = "GET";
  request.target = uri->target();
  request.headers.set("Host", uri->host);
  return net_->send(address_, *peer, request);
}

net::HttpResponse AdHocNode::handle_http(const net::HttpRequest& request,
                                         const net::Address& /*from*/) {
  const auto uri = net::parse_uri(request.target);
  if (!uri) return net::make_response(400, "bad target");

  // mDNS responder: claim a name iff our browser cache can serve it.
  if (uri->path == "/mdns") {
    const auto params = parse_form(uri->query);
    const auto it = params.find("name");
    if (it == params.end()) return net::make_response(400, "missing name");
    if (cache_.domains().count(it->second) == 0) {
      return net::make_response(404, "not published here");
    }
    return net::make_response(200, "address=" + address_ + "\n");
  }

  // Ad hoc proxy: serve out of the browser cache (the paper's prototype
  // serves straight from Chrome's cache).
  const auto host = request.headers.get("Host");
  if (!host) return net::make_response(400, "missing Host");
  const std::string url = "http://" + *host + uri->target();
  const BrowserCache::Item* item = cache_.find(url);
  if (item == nullptr) return net::make_response(404, "not in browser cache");
  net::HttpResponse response = net::make_response(200, item->body, item->content_type);
  response.headers.set("X-AdHoc-Source", host_name_);
  return response;
}

}  // namespace idicn::idicn
