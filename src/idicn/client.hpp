// idICN client (§6, steps 1–2 and 7).
//
// A browser-like client: discovers its proxy automatically via WPAD
// (step 1), then issues content requests by name through the proxy
// (step 2) — no per-request name lookup or connection setup on the client.
// Hosts without a proxy (or for hosts the PAC sends DIRECT) resolve
// through DNS and fetch directly. The client can optionally verify
// content end-to-end itself — the stronger of the two §6.1 deployment
// modes (trust-the-proxy vs verify-at-the-client).
#pragma once

#include <optional>
#include <string>

#include "idicn/metalink.hpp"
#include "idicn/wpad.hpp"
#include "net/dns.hpp"
#include "net/sim_net.hpp"
#include "net/transport.hpp"

namespace idicn::idicn {

class Client {
public:
  struct Options {
    bool verify_end_to_end = false;  ///< verify signatures at the client too
  };

  Client(net::Transport* net, net::Address self, const net::DnsService* dns,
         Options options);
  Client(net::Transport* net, net::Address self, const net::DnsService* dns)
      : Client(net, std::move(self), dns, Options{}) {}

  /// Step 1: WPAD discovery. Returns true when a PAC was found and parsed.
  bool auto_configure(const NetworkEnvironment& env);

  /// Manually install a PAC (for environments without WPAD).
  void configure(PacFile pac) { pac_ = std::move(pac); }
  [[nodiscard]] bool configured() const noexcept { return pac_.has_value(); }

  struct FetchResult {
    net::HttpResponse response;
    bool via_proxy = false;
    bool verified = false;  ///< end-to-end verification succeeded
    std::optional<VerifyResult> verify_result;
  };

  /// GET a URL ("http://l.p.idicn.org/" or a legacy URL). Routing follows
  /// the PAC; verification follows Options::verify_end_to_end (an
  /// inauthentic response is surfaced as status 502 locally).
  [[nodiscard]] FetchResult get(const std::string& url);

  [[nodiscard]] std::uint64_t requests_sent() const noexcept { return requests_sent_; }

private:
  net::Transport* net_;
  net::Address self_;
  const net::DnsService* dns_;
  Options options_;
  std::optional<PacFile> pac_;
  std::uint64_t requests_sent_ = 0;
};

}  // namespace idicn::idicn
