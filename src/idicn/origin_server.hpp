// Origin server (§6, steps 5 and P1).
//
// Holds a publisher's authoritative content and answers fetches from its
// reverse proxy. Publication flows *through* the reverse proxy (step P1):
// the origin stores the bytes and asks the reverse proxy to sign and
// register the name.
//
// Threading: safe under concurrent runtime::ServerGroup workers — the item
// store sits behind one mutex (find() hands out copies, not pointers into
// the guarded map) and the request counter is a relaxed atomic.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/buffer.hpp"
#include "core/sync.hpp"
#include "net/sim_net.hpp"

namespace idicn::idicn {

class OriginServer : public net::SimHost {
public:
  struct Item {
    /// Shared immutable bytes: find() and every served response reference
    /// the same buffer instead of copying the (possibly huge) body.
    core::Chunk body;
    std::string content_type = "text/plain";
  };

  /// Store (or replace) an item under `label`.
  void put(const std::string& label, std::string body,
           std::string content_type = "text/plain");

  /// A copy of the item (a pointer into the store would dangle once a
  /// concurrent put() replaces it); std::nullopt when absent.
  [[nodiscard]] std::optional<Item> find(const std::string& label) const;
  [[nodiscard]] std::size_t item_count() const {
    const core::sync::MutexLock lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.value();
  }

  /// HTTP face: GET /content?label=<L>.
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  mutable core::sync::Mutex mutex_;
  std::map<std::string, Item> items_ IDICN_GUARDED_BY(mutex_);
  core::sync::RelaxedCounter requests_served_;
};

}  // namespace idicn::idicn
