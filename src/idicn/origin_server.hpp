// Origin server (§6, steps 5 and P1).
//
// Holds a publisher's authoritative content and answers fetches from its
// reverse proxy. Publication flows *through* the reverse proxy (step P1):
// the origin stores the bytes and asks the reverse proxy to sign and
// register the name.
#pragma once

#include <map>
#include <string>

#include "net/sim_net.hpp"

namespace idicn::idicn {

class OriginServer : public net::SimHost {
public:
  struct Item {
    std::string body;
    std::string content_type = "text/plain";
  };

  /// Store (or replace) an item under `label`.
  void put(const std::string& label, std::string body,
           std::string content_type = "text/plain");

  [[nodiscard]] const Item* find(const std::string& label) const;
  [[nodiscard]] std::size_t item_count() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_;
  }

  /// HTTP face: GET /content?label=<L>.
  net::HttpResponse handle_http(const net::HttpRequest& request,
                                const net::Address& from) override;

private:
  std::map<std::string, Item> items_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace idicn::idicn
