#include "idicn/mobility.hpp"

#include <charconv>

#include "net/uri.hpp"

namespace idicn::idicn {

std::optional<ByteRange> parse_byte_range(std::string_view header) {
  if (header.rfind("bytes=", 0) != 0) return std::nullopt;
  header.remove_prefix(6);
  const std::size_t dash = header.find('-');
  if (dash == std::string_view::npos || dash == 0) return std::nullopt;

  ByteRange range;
  const std::string_view lo_text = header.substr(0, dash);
  auto [lo_ptr, lo_ec] =
      std::from_chars(lo_text.data(), lo_text.data() + lo_text.size(), range.lo);
  if (lo_ec != std::errc() || lo_ptr != lo_text.data() + lo_text.size()) {
    return std::nullopt;
  }
  const std::string_view hi_text = header.substr(dash + 1);
  if (!hi_text.empty()) {
    std::uint64_t hi = 0;
    auto [hi_ptr, hi_ec] =
        std::from_chars(hi_text.data(), hi_text.data() + hi_text.size(), hi);
    if (hi_ec != std::errc() || hi_ptr != hi_text.data() + hi_text.size() ||
        hi < range.lo) {
      return std::nullopt;
    }
    range.hi = hi;
  }
  return range;
}

MobileServer::MobileServer(net::SimNet* net, net::DnsService* dns, std::string dns_name,
                           net::Address address)
    : net_(net), dns_(dns), dns_name_(std::move(dns_name)), address_(std::move(address)) {
  net_->attach(address_, this);
  dns_->update(dns_name_, address_);
}

MobileServer::~MobileServer() { net_->detach(address_); }

void MobileServer::put(const std::string& path, std::string body) {
  content_[path] = std::move(body);
}

void MobileServer::move_to(const net::Address& new_address) {
  net_->detach(address_);
  address_ = new_address;
  net_->attach(address_, this);
  dns_->update(dns_name_, address_);  // dynamic DNS announcement
  ++moves_;
}

net::HttpResponse MobileServer::handle_http(const net::HttpRequest& request,
                                            const net::Address& /*from*/) {
  if (request.method != "GET") return net::make_response(400, "GET only");
  const auto uri = net::parse_uri(request.target);
  if (!uri) return net::make_response(400, "bad target");
  const auto it = content_.find(uri->path);
  if (it == content_.end()) return net::make_response(404, "no such path");
  const std::string& body = it->second;

  // Session management: reuse the cookie if presented, mint one otherwise.
  std::string session;
  if (const auto cookie = request.headers.get("Cookie");
      cookie && cookie->rfind("session=", 0) == 0) {
    session = cookie->substr(8);
  } else {
    session = "s" + std::to_string(next_session_++);
  }

  const auto range_header = request.headers.get("Range");
  if (!range_header) {
    net::HttpResponse response = net::make_response(200, body);
    response.headers.set("Set-Cookie", "session=" + session);
    session_bytes_[session] += body.size();
    return response;
  }

  const auto range = parse_byte_range(*range_header);
  if (!range || range->lo >= body.size()) {
    net::HttpResponse response = net::make_response(416, "range not satisfiable");
    response.headers.set("Content-Range", "bytes */" + std::to_string(body.size()));
    return response;
  }
  const std::uint64_t hi = range->hi ? std::min<std::uint64_t>(*range->hi, body.size() - 1)
                                     : body.size() - 1;
  std::string slice = body.substr(range->lo, hi - range->lo + 1);
  session_bytes_[session] += slice.size();

  net::HttpResponse response = net::make_response(206, std::move(slice));
  response.headers.set("Content-Range", "bytes " + std::to_string(range->lo) + "-" +
                                            std::to_string(hi) + "/" +
                                            std::to_string(body.size()));
  response.headers.set("Set-Cookie", "session=" + session);
  return response;
}

MobileClient::DownloadResult MobileClient::download(const std::string& name,
                                                    const std::string& path,
                                                    std::uint64_t chunk_size,
                                                    unsigned max_attempts) {
  DownloadResult result;
  if (chunk_size == 0) return result;
  std::uint64_t total_size = 0;
  bool size_known = false;
  unsigned failures = 0;

  while (!size_known || result.body.size() < total_size) {
    // §6.3: upon loss of connectivity, re-establish via a fresh lookup.
    const auto address = dns_->resolve_with_wildcards(name);
    if (!address) {
      if (++failures >= max_attempts) break;
      continue;
    }
    net::HttpRequest request;
    request.method = "GET";
    request.target = path;
    request.headers.set("Host", name);
    request.headers.set("Range",
                        "bytes=" + std::to_string(result.body.size()) + "-" +
                            std::to_string(result.body.size() + chunk_size - 1));
    if (!result.session_id.empty()) {
      request.headers.set("Cookie", "session=" + result.session_id);
    }
    const net::HttpResponse response = net_->send(self_, *address, request);
    if (response.status == 504) {  // server unreachable (moving)
      ++result.reconnects;
      if (++failures >= max_attempts) break;
      continue;
    }
    if (response.status != 206) break;
    failures = 0;

    if (const auto cookie = response.headers.get("Set-Cookie");
        cookie && cookie->rfind("session=", 0) == 0 && result.session_id.empty()) {
      result.session_id = cookie->substr(8);
    }
    // Content-Range: bytes lo-hi/total
    if (const auto content_range = response.headers.get("Content-Range")) {
      const std::size_t slash = content_range->find('/');
      if (slash != std::string::npos) {
        total_size = std::stoull(content_range->substr(slash + 1));
        size_known = true;
      }
    }
    result.body += response.full_body();
    ++result.chunks;
    if (between_chunks) between_chunks(result.body.size());
  }
  result.complete = size_known && result.body.size() == total_size;
  return result;
}

}  // namespace idicn::idicn
