#include "idicn/metalink.hpp"

#include <cstring>

#include "crypto/hex.hpp"

namespace idicn::idicn {
namespace {

std::optional<crypto::Sha256Digest> digest_from_hex(std::string_view hex) {
  const auto bytes = crypto::hex_decode(hex);
  if (!bytes || bytes->size() != 32) return std::nullopt;
  crypto::Sha256Digest d{};
  std::memcpy(d.data(), bytes->data(), 32);
  return d;
}

}  // namespace

std::string ContentMetadata::signing_input() const {
  return "idicn-content-v1\n" + name.host() + "\n" +
         crypto::hex_encode(std::span<const std::uint8_t>(digest)) + "\n";
}

void ContentMetadata::apply_to(net::HeaderMap& headers, bool include_proof) const {
  headers.set("X-IdICN-Name", name.host());
  headers.set("X-IdICN-Digest",
              "sha-256=" + crypto::hex_encode(std::span<const std::uint8_t>(digest)));
  if (include_proof) {
    headers.set("X-IdICN-Publisher",
                crypto::hex_encode(std::span<const std::uint8_t>(publisher_key)));
    headers.set("X-IdICN-Signature", signature.encode());
  }
  headers.remove("Link");
  for (const std::string& mirror : mirrors) {
    headers.add("Link", "<" + mirror + ">; rel=duplicate");
  }
}

std::optional<ContentMetadata> ContentMetadata::from_headers(
    const net::HeaderMap& headers) {
  ContentMetadata metadata;

  const auto name_value = headers.get("X-IdICN-Name");
  if (!name_value) return std::nullopt;
  const auto name = SelfCertifyingName::parse_host(*name_value);
  if (!name) return std::nullopt;
  metadata.name = *name;

  const auto digest_value = headers.get("X-IdICN-Digest");
  if (!digest_value || digest_value->rfind("sha-256=", 0) != 0) return std::nullopt;
  const auto digest = digest_from_hex(std::string_view(*digest_value).substr(8));
  if (!digest) return std::nullopt;
  metadata.digest = *digest;

  const auto key_value = headers.get("X-IdICN-Publisher");
  if (!key_value) return std::nullopt;
  const auto key = digest_from_hex(*key_value);
  if (!key) return std::nullopt;
  metadata.publisher_key = *key;

  const auto signature_value = headers.get("X-IdICN-Signature");
  if (!signature_value) return std::nullopt;
  auto signature = crypto::MerkleSignature::decode(*signature_value);
  if (!signature) return std::nullopt;
  metadata.signature = std::move(*signature);

  for (const std::string& link : headers.get_all("Link")) {
    // "<uri>; rel=duplicate"
    const std::size_t open = link.find('<');
    const std::size_t close = link.find('>');
    if (open == std::string::npos || close == std::string::npos || close < open) continue;
    if (link.find("rel=duplicate") == std::string::npos) continue;
    metadata.mirrors.push_back(link.substr(open + 1, close - open - 1));
  }
  return metadata;
}

const char* to_string(VerifyResult result) {
  switch (result) {
    case VerifyResult::Ok: return "ok";
    case VerifyResult::DigestMismatch: return "digest-mismatch";
    case VerifyResult::PublisherMismatch: return "publisher-mismatch";
    case VerifyResult::BadSignature: return "bad-signature";
  }
  return "unknown";
}

VerifyResult verify_content(const ContentMetadata& metadata, std::string_view body) {
  return verify_content(metadata, crypto::Sha256::hash(body));
}

VerifyResult verify_content(const ContentMetadata& metadata,
                            const core::ChunkedBody& body) {
  crypto::Sha256 hasher;
  for (const core::Chunk& chunk : body.chunks()) hasher.update(chunk.view());
  return verify_content(metadata, hasher.finish());
}

VerifyResult verify_content(const ContentMetadata& metadata,
                            const crypto::Sha256Digest& body_digest) {
  // 1. The body must hash to the advertised digest.
  if (body_digest != metadata.digest) {
    return VerifyResult::DigestMismatch;
  }
  // 2. The enclosed key must be the one the name commits to (P).
  if (SelfCertifyingName::publisher_id(metadata.publisher_key) !=
      metadata.name.publisher()) {
    return VerifyResult::PublisherMismatch;
  }
  // 3. The signature must verify the (name, digest) binding under that key.
  if (!crypto::MerkleSigner::verify(metadata.publisher_key, metadata.signing_input(),
                                    metadata.signature)) {
    return VerifyResult::BadSignature;
  }
  return VerifyResult::Ok;
}

}  // namespace idicn::idicn
