#include "idicn/wpad.hpp"

#include <sstream>

#include "net/uri.hpp"

namespace idicn::idicn {

bool PacFile::matches(std::string_view pattern, std::string_view host) {
  if (pattern.rfind("*.", 0) == 0) {
    const std::string_view suffix = pattern.substr(1);  // ".idicn.org"
    return host.size() > suffix.size() &&
           host.compare(host.size() - suffix.size(), suffix.size(), suffix) == 0;
  }
  return pattern == host;
}

std::optional<PacFile> PacFile::parse(std::string_view text) {
  PacFile pac;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word[0] == '#') continue;

    if (word == "proxy") {
      Rule rule;
      std::string keyword;
      if (!(words >> rule.proxy >> keyword >> rule.pattern) || keyword != "for") {
        return std::nullopt;
      }
      pac.rules_.push_back(std::move(rule));
    } else if (word == "default") {
      std::string mode;
      if (!(words >> mode)) return std::nullopt;
      if (mode == "DIRECT") {
        pac.default_proxy_.reset();
      } else if (mode == "PROXY") {
        std::string address;
        if (!(words >> address)) return std::nullopt;
        pac.default_proxy_ = address;
      } else {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  return pac;
}

ProxyDecision PacFile::find_proxy_for_host(std::string_view host) const {
  for (const Rule& rule : rules_) {
    if (matches(rule.pattern, host)) return ProxyDecision{rule.proxy};
  }
  return ProxyDecision{default_proxy_};
}

std::string PacFile::serialize() const {
  std::string out = "# idICN PAC (mini dialect)\n";
  for (const Rule& rule : rules_) {
    out += "proxy " + rule.proxy + " for " + rule.pattern + "\n";
  }
  out += default_proxy_ ? "default PROXY " + *default_proxy_ + "\n"
                        : std::string("default DIRECT\n");
  return out;
}

PacFile PacFile::idicn_default(const net::Address& proxy) {
  PacFile pac;
  pac.rules_.push_back(Rule{"*.idicn.org", proxy});
  return pac;
}

net::HttpResponse WpadService::handle_http(const net::HttpRequest& request,
                                           const net::Address& /*from*/) {
  const auto uri = net::parse_uri(request.target);
  if (request.method != "GET" || !uri || uri->path != "/wpad.dat") {
    return net::make_response(404, "no such endpoint");
  }
  return net::make_response(200, pac_.serialize(),
                            "application/x-ns-proxy-autoconfig");
}

std::optional<PacFile> discover_pac(net::Transport& net, const net::Address& self,
                                    const NetworkEnvironment& env,
                                    const net::DnsService& dns) {
  // Candidate PAC URLs: DHCP option 252 first, then DNS wpad.<domain>.
  std::vector<std::string> urls;
  if (env.dhcp_pac_url) urls.push_back(*env.dhcp_pac_url);
  if (!env.dns_domain.empty()) {
    urls.push_back("http://wpad." + env.dns_domain + "/wpad.dat");
  }

  for (const std::string& url : urls) {
    const auto uri = net::parse_uri(url);
    if (!uri || uri->host.empty()) continue;
    const auto address = dns.resolve_with_wildcards(uri->host);
    if (!address) continue;
    net::HttpRequest fetch;
    fetch.method = "GET";
    fetch.target = uri->target();
    fetch.headers.set("Host", uri->host);
    const net::HttpResponse response = net.send(self, *address, fetch);
    if (!response.ok()) continue;
    if (auto pac = PacFile::parse(response.body)) return pac;
  }
  return std::nullopt;
}

}  // namespace idicn::idicn
