#include "idicn/nrs.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hex.hpp"
#include "net/uri.hpp"

namespace idicn::idicn {
namespace {

std::optional<crypto::Sha256Digest> key_from_hex(std::string_view hex) {
  const auto bytes = crypto::hex_decode(hex);
  if (!bytes || bytes->size() != 32) return std::nullopt;
  crypto::Sha256Digest d{};
  std::memcpy(d.data(), bytes->data(), 32);
  return d;
}

}  // namespace

const char* to_string(RegisterResult result) {
  switch (result) {
    case RegisterResult::Ok: return "ok";
    case RegisterResult::BadName: return "bad-name";
    case RegisterResult::PublisherMismatch: return "publisher-mismatch";
    case RegisterResult::BadSignature: return "bad-signature";
  }
  return "unknown";
}

std::map<std::string, std::string> parse_form(std::string_view body) {
  std::map<std::string, std::string> out;
  while (!body.empty()) {
    const std::size_t amp = body.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? body : body.substr(0, amp);
    body.remove_prefix(amp == std::string_view::npos ? body.size() : amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    out.emplace(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_form_lines(
    std::string_view body) {
  std::vector<std::pair<std::string, std::string>> out;
  while (!body.empty()) {
    const std::size_t newline = body.find('\n');
    const std::string_view line =
        newline == std::string_view::npos ? body : body.substr(0, newline);
    body.remove_prefix(newline == std::string_view::npos ? body.size() : newline + 1);
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    out.emplace_back(std::string(line.substr(0, eq)), std::string(line.substr(eq + 1)));
  }
  return out;
}

std::string NameResolutionSystem::registration_signing_input(
    const SelfCertifyingName& name, const std::string& location) {
  return "idicn-register-v1\n" + name.flat() + "\n" + location + "\n";
}

std::string NameResolutionSystem::delegation_signing_input(
    const std::string& publisher, const std::string& resolver) {
  return "idicn-delegate-v1\n" + publisher + "\n" + resolver + "\n";
}

RegisterResult NameResolutionSystem::register_name(
    const SelfCertifyingName& name, const std::string& location,
    const crypto::Sha256Digest& publisher_key,
    const crypto::MerkleSignature& signature) {
  // Cryptographic correctness is the only admission criterion (§6.1): the
  // key must hash to P and the signature must bind (name, location).
  if (SelfCertifyingName::publisher_id(publisher_key) != name.publisher()) {
    return RegisterResult::PublisherMismatch;
  }
  if (!crypto::MerkleSigner::verify(publisher_key,
                                    registration_signing_input(name, location),
                                    signature)) {
    return RegisterResult::BadSignature;
  }
  {
    const core::sync::MutexLock lock(mutex_);
    std::vector<std::string>& locations = names_[name.flat()];
    if (std::find(locations.begin(), locations.end(), location) ==
        locations.end()) {
      locations.push_back(location);
    }
  }
  if (dns_ != nullptr) dns_->update(name.host(), location);
  return RegisterResult::Ok;
}

RegisterResult NameResolutionSystem::register_resolver(
    const std::string& publisher, const std::string& resolver,
    const crypto::Sha256Digest& publisher_key,
    const crypto::MerkleSignature& signature) {
  if (SelfCertifyingName::publisher_id(publisher_key) != publisher) {
    return RegisterResult::PublisherMismatch;
  }
  if (!crypto::MerkleSigner::verify(
          publisher_key, delegation_signing_input(publisher, resolver), signature)) {
    return RegisterResult::BadSignature;
  }
  const core::sync::MutexLock lock(mutex_);
  delegations_[publisher] = resolver;
  return RegisterResult::Ok;
}

NameResolutionSystem::Resolution NameResolutionSystem::resolve(
    const SelfCertifyingName& name) const {
  Resolution resolution;
  const core::sync::MutexLock lock(mutex_);
  const auto exact = names_.find(name.flat());
  if (exact != names_.end()) {
    resolution.locations = exact->second;
    return resolution;
  }
  const auto delegated = delegations_.find(name.publisher());
  if (delegated != delegations_.end()) {
    resolution.resolver = delegated->second;
  }
  return resolution;
}

net::HttpResponse NameResolutionSystem::handle_http(const net::HttpRequest& request,
                                                    const net::Address& /*from*/) {
  const auto uri = net::parse_uri(request.target);
  if (!uri) return net::make_response(400, "bad target");

  if (request.method == "GET" && uri->path == "/resolve") {
    // query: name=<host>
    const auto params = parse_form(uri->query);
    const auto it = params.find("name");
    if (it == params.end()) return net::make_response(400, "missing name");
    const auto name = SelfCertifyingName::parse_host(it->second);
    if (!name) return net::make_response(400, "malformed idicn name");
    const Resolution resolution = resolve(*name);
    if (!resolution.found()) return net::make_response(404, "unknown name");
    std::string body;
    for (const std::string& location : resolution.locations) {
      body += "location=" + location + "\n";
    }
    if (resolution.resolver) body += "resolver=" + *resolution.resolver + "\n";
    return net::make_response(200, std::move(body));
  }

  if (request.method == "POST" &&
      (uri->path == "/register" || uri->path == "/register-resolver")) {
    const auto params = parse_form(request.body);
    const auto get = [&params](const char* key) -> std::optional<std::string> {
      const auto it = params.find(key);
      if (it == params.end()) return std::nullopt;
      return it->second;
    };
    const auto key_hex = get("publisher-key");
    const auto signature_text = get("signature");
    if (!key_hex || !signature_text) return net::make_response(400, "missing fields");
    const auto key = key_from_hex(*key_hex);
    auto signature = crypto::MerkleSignature::decode(*signature_text);
    if (!key || !signature) return net::make_response(400, "malformed credentials");

    RegisterResult result;
    if (uri->path == "/register") {
      const auto host = get("name");
      const auto location = get("location");
      if (!host || !location) return net::make_response(400, "missing fields");
      const auto name = SelfCertifyingName::parse_host(*host);
      if (!name) return net::make_response(400, "malformed idicn name");
      result = register_name(*name, *location, *key, *signature);
    } else {
      const auto publisher = get("publisher");
      const auto resolver = get("resolver");
      if (!publisher || !resolver) return net::make_response(400, "missing fields");
      result = register_resolver(*publisher, *resolver, *key, *signature);
    }
    if (result != RegisterResult::Ok) {
      return net::make_response(403, std::string("rejected: ") + to_string(result));
    }
    return net::make_response(201, "registered");
  }

  return net::make_response(404, "no such endpoint");
}

}  // namespace idicn::idicn
