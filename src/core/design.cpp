#include "core/design.hpp"

namespace idicn::core {

DesignSpec icn_sp() {
  DesignSpec d;
  d.name = "ICN-SP";
  d.placement = Placement::Pervasive;
  d.routing = Routing::ShortestPathToOrigin;
  return d;
}

DesignSpec icn_nr() {
  DesignSpec d;
  d.name = "ICN-NR";
  d.placement = Placement::Pervasive;
  d.routing = Routing::NearestReplica;
  return d;
}

DesignSpec edge() {
  DesignSpec d;
  d.name = "EDGE";
  d.placement = Placement::EdgeOnly;
  d.routing = Routing::ShortestPathToOrigin;
  return d;
}

DesignSpec edge_coop() {
  DesignSpec d = edge();
  d.name = "EDGE-Coop";
  d.sibling_cooperation = true;
  return d;
}

DesignSpec edge_norm() {
  DesignSpec d = edge();
  d.name = "EDGE-Norm";
  d.scaling = BudgetScaling::NormalizeToPervasiveTotal;
  return d;
}

DesignSpec two_levels() {
  DesignSpec d;
  d.name = "2-Levels";
  d.placement = Placement::TwoLevels;
  d.routing = Routing::ShortestPathToOrigin;
  return d;
}

DesignSpec two_levels_coop() {
  DesignSpec d = two_levels();
  d.name = "2-Levels-Coop";
  d.sibling_cooperation = true;
  return d;
}

DesignSpec norm_coop() {
  DesignSpec d = edge_norm();
  d.name = "Norm-Coop";
  d.sibling_cooperation = true;
  return d;
}

DesignSpec double_budget_coop() {
  DesignSpec d = norm_coop();
  d.name = "Double-Budget-Coop";
  d.extra_budget_multiplier = 2.0;
  return d;
}

DesignSpec edge_infinite() {
  DesignSpec d = edge();
  d.name = "EDGE-Inf";
  d.infinite_budget = true;
  return d;
}

DesignSpec icn_nr_infinite() {
  DesignSpec d = icn_nr();
  d.name = "ICN-NR-Inf";
  d.infinite_budget = true;
  return d;
}

DesignSpec icn_scoped_nr(double radius) {
  DesignSpec d = icn_nr();
  d.name = "ICN-ScopedNR-" + std::to_string(static_cast<int>(radius));
  d.routing = Routing::ScopedNearestReplica;
  d.scoped_radius = radius;
  return d;
}

DesignSpec icn_sp_lcd() {
  DesignSpec d = icn_sp();
  d.name = "ICN-SP-LCD";
  d.cache_decision = CacheDecision::LeaveCopyDown;
  return d;
}

DesignSpec icn_sp_prob(double p) {
  DesignSpec d = icn_sp();
  d.name = "ICN-SP-Prob" + std::to_string(static_cast<int>(p * 100));
  d.cache_decision = CacheDecision::Probabilistic;
  d.cache_probability = p;
  return d;
}

DesignSpec edge_partial(double deployment_fraction) {
  DesignSpec d = edge();
  d.name = "EDGE-" + std::to_string(static_cast<int>(deployment_fraction * 100)) + "pct";
  d.deployment_fraction = deployment_fraction;
  return d;
}

DesignSpec no_cache() {
  DesignSpec d;
  d.name = "NO-CACHE";
  d.placement = Placement::EdgeOnly;
  d.routing = Routing::ShortestPathToOrigin;
  d.extra_budget_multiplier = 0.0;
  return d;
}

}  // namespace idicn::core
