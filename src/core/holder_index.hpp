// Replica location index backing nearest-replica routing (ICN-NR).
//
// The paper conservatively assumes nearest-replica lookup is free (§3); the
// simulator therefore maintains an oracle of which caches currently hold
// each object. The index is organized per object as per-PoP holder lists
// kept sorted by tree index. Complete k-ary trees number nodes in level
// order, so tree-index order IS level order, and within a remote PoP the
// cost of reaching a holder (root-descent cost) is monotone in its level:
// the *first* element of a remote PoP's list is always that PoP's best
// candidate, and cost-ordered walks can stream candidates lazily instead of
// materializing and sorting them all. A flat (object, node) hash makes
// membership checks — and the duplicate/absence checks in add/remove — O(1)
// instead of a linear scan.
//
// Complexities (H = holders of the object, P = PoPs holding it, L = holders
// in the query's own PoP):
//   add/remove/holds     O(1) hash + O(log) bucket search (+ small moves)
//   nearest              O(L + P)            — was O(H)
//   cost-ordered walk    O(L·log L + k·log P) for k consumed candidates,
//                        bounded pops pruned up front — was O(H log H) and
//                        one vector allocation per query.
//
// Queries reuse index-owned scratch buffers, so a single HolderIndex must
// not be queried from multiple threads concurrently (each Simulator owns
// its index; cross-design parallelism is across simulators).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/perf_counters.hpp"
#include "topology/network.hpp"

namespace idicn::core {

class HolderIndex {
public:
  explicit HolderIndex(const topology::HierarchicalNetwork& network)
      : network_(&network) {}

  /// Record that `node` now holds `object`. Throws std::logic_error on a
  /// duplicate insert (the caller — a cache — already deduplicates).
  void add(std::uint32_t object, topology::GlobalNodeId node);

  /// Record that `node` no longer holds `object` (eviction). Throws
  /// std::logic_error when (object, node) is not tracked.
  void remove(std::uint32_t object, topology::GlobalNodeId node);

  /// True when `node` is recorded as a holder. O(1).
  [[nodiscard]] bool holds(std::uint32_t object, topology::GlobalNodeId node) const;

  struct Candidate {
    topology::GlobalNodeId node = 0;
    double cost = 0.0;
  };

  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  /// Nearest replica of `object` to a request arriving at `leaf` under the
  /// network's latency model. Ties break toward the lower global node id.
  /// Returns std::nullopt when no cache holds the object (the caller falls
  /// back to the origin).
  ///
  /// `max_cost` is a pruning hint (e.g. the origin cost): PoP buckets whose
  /// cheapest possible candidate already exceeds it are skipped. The result
  /// is identical to the unbounded query whenever the true nearest replica
  /// costs <= max_cost; candidates costing more may still be returned (the
  /// caller re-checks the bound before serving).
  [[nodiscard]] std::optional<Candidate> nearest(std::uint32_t object,
                                                 topology::GlobalNodeId leaf,
                                                 double max_cost = kUnbounded) const;

  /// Lazy cost-ordered walk over the replicas of one object: next() yields
  /// candidates in ascending (cost, node) order — the exact order
  /// candidates_by_cost() would produce — stopping at the first candidate
  /// whose cost exceeds the walk's bound. State lives in index-owned
  /// scratch, so at most one walk may be live per index at a time.
  class Walk {
  public:
    /// Next candidate with cost <= max_cost, or std::nullopt when done.
    [[nodiscard]] std::optional<Candidate> next();

  private:
    friend class HolderIndex;
    explicit Walk(const HolderIndex* index) : index_(index) {}
    const HolderIndex* index_;
  };

  /// Begin a cost-ordered walk bounded by `max_cost` (inclusive), used by
  /// the serving-capacity variation, which skips overloaded caches.
  [[nodiscard]] Walk walk(std::uint32_t object, topology::GlobalNodeId leaf,
                          double max_cost = kUnbounded) const;

  /// All replicas, sorted by ascending (cost, node) from `leaf`. Kept for
  /// tests and tools; the hot path streams candidates via walk() instead.
  [[nodiscard]] std::vector<Candidate> candidates_by_cost(
      std::uint32_t object, topology::GlobalNodeId leaf) const;

  /// Total (object, node) pairs tracked.
  [[nodiscard]] std::size_t size() const noexcept { return membership_.size(); }

  /// Hot-path counters (zero-valued when the perf layer is compiled out).
  [[nodiscard]] const PerfCounters& perf() const noexcept { return perf_; }
  void reset_perf() noexcept { perf_.reset(); }

private:
  struct PopHolders {
    topology::PopId pop = 0;
    std::vector<topology::TreeIndex> nodes;  // sorted ascending == level order
  };
  struct ObjectHolders {
    std::vector<PopHolders> pops;  // sorted by pop id
  };

  static std::uint64_t key(std::uint32_t object, topology::GlobalNodeId node) noexcept {
    return (static_cast<std::uint64_t>(object) << 32) | node;
  }

  struct HeapEntry {
    double cost = 0.0;
    topology::GlobalNodeId node = 0;
    std::uint32_t lane = 0;
  };
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) noexcept;

  [[nodiscard]] std::optional<Candidate> walk_next() const;
  void heap_push(double cost, topology::GlobalNodeId node, std::uint32_t lane) const;

  const topology::HierarchicalNetwork* network_;
  std::unordered_map<std::uint32_t, ObjectHolders> holders_;
  std::unordered_set<std::uint64_t> membership_;  ///< flat (object, node) keys

  // --- walk scratch (reused across queries; see class comment) ----------
  static constexpr std::uint32_t kOwnLane = 0xffffffffu;
  struct Lane {
    const std::vector<topology::TreeIndex>* nodes = nullptr;  ///< remote lanes
    double base = 0.0;                ///< leaf-up + core cost to this PoP
    std::size_t next = 0;             ///< cursor into nodes / own_sorted_
    topology::GlobalNodeId node_base = 0;  ///< pop * tree node count
  };
  mutable std::vector<Lane> lanes_;
  mutable std::vector<HeapEntry> heap_;      ///< min-heap by (cost, node)
  mutable std::vector<Candidate> own_sorted_;///< own-PoP candidates, sorted
  mutable std::size_t own_next_ = 0;
  mutable double walk_max_cost_ = kUnbounded;
  mutable bool walk_cut_ = false;  ///< some lane was truncated by the bound
  mutable PerfCounters perf_;
};

}  // namespace idicn::core
