// Replica location index backing nearest-replica routing (ICN-NR).
//
// The paper conservatively assumes nearest-replica lookup is free (§3); the
// simulator therefore maintains an oracle of which caches currently hold
// each object. For efficiency the index is organized per object as a small
// per-PoP list of holding tree nodes, so a nearest-copy query costs
//   O(|own-PoP holders|) + O(#holding PoPs × small-level-scan)
// rather than a scan over all caches. Insertions and evictions are pushed
// into the index by the simulator as caches mutate.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "topology/network.hpp"

namespace idicn::core {

class HolderIndex {
public:
  explicit HolderIndex(const topology::HierarchicalNetwork& network)
      : network_(&network) {}

  /// Record that `node` now holds `object`. Duplicate inserts are invalid
  /// (the caller — a cache — already deduplicates).
  void add(std::uint32_t object, topology::GlobalNodeId node);

  /// Record that `node` no longer holds `object` (eviction).
  void remove(std::uint32_t object, topology::GlobalNodeId node);

  /// True when `node` is recorded as a holder (test/debug aid; O(holders)).
  [[nodiscard]] bool holds(std::uint32_t object, topology::GlobalNodeId node) const;

  struct Candidate {
    topology::GlobalNodeId node = 0;
    double cost = 0.0;
  };

  /// Nearest replica of `object` to a request arriving at `leaf` under the
  /// network's latency model. Ties break toward the lower global node id.
  /// Returns std::nullopt when no cache holds the object (the caller falls
  /// back to the origin).
  [[nodiscard]] std::optional<Candidate> nearest(std::uint32_t object,
                                                 topology::GlobalNodeId leaf) const;

  /// All replicas, sorted by ascending cost from `leaf` (used by the
  /// serving-capacity variation, which skips overloaded caches).
  [[nodiscard]] std::vector<Candidate> candidates_by_cost(
      std::uint32_t object, topology::GlobalNodeId leaf) const;

  /// Total (object, node) pairs tracked.
  [[nodiscard]] std::size_t size() const noexcept { return total_entries_; }

private:
  struct PopHolders {
    topology::PopId pop = 0;
    std::vector<topology::TreeIndex> nodes;
  };
  struct ObjectHolders {
    std::vector<PopHolders> pops;
  };

  const topology::HierarchicalNetwork* network_;
  std::unordered_map<std::uint32_t, ObjectHolders> holders_;
  std::size_t total_entries_ = 0;
};

}  // namespace idicn::core
