#include "core/bound_workload.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "workload/zipf.hpp"

namespace idicn::core {
namespace {

/// Weighted PoP picker (∝ metro population) plus uniform leaf picker.
class AttachmentSampler {
public:
  AttachmentSampler(const topology::HierarchicalNetwork& network, std::uint64_t seed)
      : rng_(seed), leaf_dist_(0, network.tree().leaf_count() - 1) {
    const topology::PopId pops = network.pop_count();
    cumulative_.resize(pops);
    double total = 0.0;
    for (topology::PopId p = 0; p < pops; ++p) {
      total += network.core().node(p).population;
      cumulative_[p] = total;
    }
    pop_dist_ = std::uniform_real_distribution<double>(0.0, total);
  }

  [[nodiscard]] topology::PopId sample_pop() {
    const double u = pop_dist_(rng_);
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<topology::PopId>(it - cumulative_.begin());
  }

  [[nodiscard]] std::uint32_t sample_leaf() { return leaf_dist_(rng_); }

  [[nodiscard]] std::mt19937_64& rng() noexcept { return rng_; }

private:
  std::mt19937_64 rng_;
  std::vector<double> cumulative_;
  std::uniform_real_distribution<double> pop_dist_;
  std::uniform_int_distribution<std::uint32_t> leaf_dist_;
};

}  // namespace

BoundWorkload bind_trace(const topology::HierarchicalNetwork& network,
                         const workload::Trace& trace, std::uint64_t seed) {
  AttachmentSampler sampler(network, seed);
  BoundWorkload bound;
  bound.object_count = trace.object_count;
  bound.requests.reserve(trace.requests.size());
  for (const workload::Request& r : trace.requests) {
    BoundRequest b;
    b.pop = sampler.sample_pop();
    b.leaf = sampler.sample_leaf();
    b.object = r.object;
    b.size = r.size;
    bound.requests.push_back(b);
  }

  // Global popularity order, shared by every PoP (a trace carries no
  // per-location popularity).
  std::vector<std::uint64_t> frequency(trace.object_count, 0);
  for (const workload::Request& r : trace.requests) ++frequency[r.object];
  std::vector<std::uint32_t> order(trace.object_count);
  for (std::uint32_t o = 0; o < trace.object_count; ++o) order[o] = o;
  std::stable_sort(order.begin(), order.end(),
                   [&frequency](std::uint32_t a, std::uint32_t b) {
                     return frequency[a] > frequency[b];
                   });
  bound.popularity_order.push_back(std::move(order));
  return bound;
}

BoundWorkload bind_synthetic(const topology::HierarchicalNetwork& network,
                             const SyntheticWorkloadSpec& spec) {
  if (spec.object_count == 0) {
    throw std::invalid_argument("bind_synthetic: object_count must be positive");
  }
  AttachmentSampler sampler(network, spec.seed);
  const workload::ZipfDistribution zipf(spec.object_count, spec.alpha);

  // Per-PoP rank → object mapping; identity when skew is zero.
  std::optional<workload::SpatialSkewModel> skew;
  if (spec.spatial_skew > 0.0) {
    skew.emplace(spec.object_count, network.pop_count(), spec.spatial_skew,
                 spec.seed ^ 0x5eedf00dULL);
  }

  // Per-object sizes, fixed across requests, independent of rank.
  std::vector<std::uint64_t> size_of(spec.object_count, 1);
  if (spec.sizes.kind() != workload::SizeModelKind::Unit) {
    std::mt19937_64 size_rng(spec.seed ^ 0x0b1ec7ULL);
    for (std::uint64_t& s : size_of) s = spec.sizes.sample(size_rng);
  }

  BoundWorkload bound;
  bound.object_count = spec.object_count;
  bound.requests.reserve(spec.request_count);
  for (std::uint64_t i = 0; i < spec.request_count; ++i) {
    BoundRequest b;
    b.pop = sampler.sample_pop();
    b.leaf = sampler.sample_leaf();
    const std::uint32_t rank = zipf.sample(sampler.rng());
    b.object = skew ? skew->object_for(b.pop, rank) : rank - 1;
    b.size = size_of[b.object];
    bound.requests.push_back(b);
  }

  // Popularity orders for prefill: rank r at pop p holds object
  // skew(p, r); without skew the identity order is shared by all PoPs.
  if (skew) {
    bound.popularity_order.resize(network.pop_count());
    for (topology::PopId p = 0; p < network.pop_count(); ++p) {
      bound.popularity_order[p].resize(spec.object_count);
      for (std::uint32_t r = 1; r <= spec.object_count; ++r) {
        bound.popularity_order[p][r - 1] = skew->object_for(p, r);
      }
    }
  } else {
    std::vector<std::uint32_t> identity(spec.object_count);
    for (std::uint32_t o = 0; o < spec.object_count; ++o) identity[o] = o;
    bound.popularity_order.push_back(std::move(identity));
  }
  return bound;
}

BoundWorkload bind_flash_crowd(const topology::HierarchicalNetwork& network,
                               const SyntheticWorkloadSpec& base,
                               const FlashCrowdSpec& crowd) {
  if (crowd.hot_objects == 0) {
    throw std::invalid_argument("bind_flash_crowd: need at least one hot object");
  }
  if (crowd.start < 0.0 || crowd.duration < 0.0 || crowd.start + crowd.duration > 1.0) {
    throw std::invalid_argument("bind_flash_crowd: window out of range");
  }
  if (crowd.intensity < 0.0 || crowd.intensity > 1.0) {
    throw std::invalid_argument("bind_flash_crowd: intensity must be in [0, 1]");
  }

  BoundWorkload bound = bind_synthetic(network, base);
  const std::uint32_t first_hot = bound.object_count;
  bound.object_count += crowd.hot_objects;
  // Hot objects append to every popularity order at the tail (they were
  // unknown before the event, so steady-state prefill must not hold them).
  for (std::vector<std::uint32_t>& order : bound.popularity_order) {
    for (std::uint32_t h = 0; h < crowd.hot_objects; ++h) {
      order.push_back(first_hot + h);
    }
  }

  std::mt19937_64 rng(crowd.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::uint32_t> pick_hot(0, crowd.hot_objects - 1);
  const auto window_begin = static_cast<std::size_t>(
      crowd.start * static_cast<double>(bound.requests.size()));
  const auto window_end = static_cast<std::size_t>(
      (crowd.start + crowd.duration) * static_cast<double>(bound.requests.size()));
  for (std::size_t i = window_begin; i < window_end && i < bound.requests.size(); ++i) {
    if (coin(rng) < crowd.intensity) {
      bound.requests[i].object = first_hot + pick_hot(rng);
      bound.requests[i].size = 1;
    }
  }
  return bound;
}

BoundWorkload bind_drifting(const topology::HierarchicalNetwork& network,
                            const SyntheticWorkloadSpec& base,
                            const DriftSpec& drift) {
  if (base.spatial_skew != 0.0) {
    throw std::invalid_argument(
        "bind_drifting: combine drift with spatial skew is not supported");
  }
  if (drift.period == 0 || drift.churn_fraction < 0.0 || drift.churn_fraction > 1.0) {
    throw std::invalid_argument("bind_drifting: bad drift parameters");
  }

  AttachmentSampler sampler(network, base.seed);
  const workload::ZipfDistribution zipf(base.object_count, base.alpha);
  std::mt19937_64 drift_rng(drift.seed);

  // rank (0-based) → object; starts as the identity and churns over time.
  std::vector<std::uint32_t> object_of_rank(base.object_count);
  for (std::uint32_t o = 0; o < base.object_count; ++o) object_of_rank[o] = o;

  BoundWorkload bound;
  bound.object_count = base.object_count;
  bound.requests.reserve(base.request_count);
  // Prefill sees the initial (pre-drift) ranking.
  bound.popularity_order.push_back(object_of_rank);

  const auto swaps_per_step = static_cast<std::uint64_t>(
      drift.churn_fraction * static_cast<double>(base.object_count));
  std::uniform_int_distribution<std::uint32_t> any_rank(0, base.object_count - 1);

  for (std::uint64_t i = 0; i < base.request_count; ++i) {
    if (i > 0 && i % drift.period == 0) {
      for (std::uint64_t s = 0; s < swaps_per_step; ++s) {
        std::swap(object_of_rank[any_rank(drift_rng)],
                  object_of_rank[any_rank(drift_rng)]);
      }
    }
    BoundRequest r;
    r.pop = sampler.sample_pop();
    r.leaf = sampler.sample_leaf();
    r.object = object_of_rank[zipf.sample(sampler.rng()) - 1];
    bound.requests.push_back(r);
  }
  return bound;
}

}  // namespace idicn::core
