#include "core/holder_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace idicn::core {

using topology::GlobalNodeId;
using topology::PopId;
using topology::TreeIndex;

void HolderIndex::add(std::uint32_t object, GlobalNodeId node) {
  if (!membership_.insert(key(object, node)).second) {
    throw std::logic_error("HolderIndex::add: duplicate holder");
  }
  const PopId pop = network_->pop_of(node);
  const TreeIndex t = network_->tree_index_of(node);
  ObjectHolders& oh = holders_[object];

  auto pop_it = std::lower_bound(
      oh.pops.begin(), oh.pops.end(), pop,
      [](const PopHolders& ph, PopId p) { return ph.pop < p; });
  if (pop_it == oh.pops.end() || pop_it->pop != pop) {
    pop_it = oh.pops.insert(pop_it, PopHolders{pop, {}});
  }
  std::vector<TreeIndex>& nodes = pop_it->nodes;
  nodes.insert(std::lower_bound(nodes.begin(), nodes.end(), t), t);
}

void HolderIndex::remove(std::uint32_t object, GlobalNodeId node) {
  if (membership_.erase(key(object, node)) == 0) {
    throw std::logic_error("HolderIndex::remove: node was not a holder");
  }
  const auto it = holders_.find(object);
  const PopId pop = network_->pop_of(node);
  const TreeIndex t = network_->tree_index_of(node);
  std::vector<PopHolders>& pops = it->second.pops;
  const auto pop_it = std::lower_bound(
      pops.begin(), pops.end(), pop,
      [](const PopHolders& ph, PopId p) { return ph.pop < p; });
  std::vector<TreeIndex>& nodes = pop_it->nodes;
  nodes.erase(std::lower_bound(nodes.begin(), nodes.end(), t));
  if (nodes.empty()) {
    pops.erase(pop_it);
    if (pops.empty()) holders_.erase(it);
  }
}

bool HolderIndex::holds(std::uint32_t object, GlobalNodeId node) const {
  return membership_.count(key(object, node)) != 0;
}

std::optional<HolderIndex::Candidate> HolderIndex::nearest(std::uint32_t object,
                                                           GlobalNodeId leaf,
                                                           double max_cost) const {
  perf_.bump(&PerfCounters::nearest_queries);
  const auto it = holders_.find(object);
  if (it == holders_.end()) return std::nullopt;

  const PopId own_pop = network_->pop_of(leaf);
  const double leaf_up = network_->root_to_level_cost(network_->level_of(leaf));

  bool found = false;
  Candidate best{};
  const auto consider = [&](GlobalNodeId node, double cost) {
    if (!found || cost < best.cost || (cost == best.cost && node < best.node)) {
      best = Candidate{node, cost};
      found = true;
    }
  };

  for (const PopHolders& ph : it->second.pops) {
    if (ph.pop == own_pop) {
      // Exact tree distance to every holder in the local tree.
      perf_.bump(&PerfCounters::pops_scanned);
      perf_.bump(&PerfCounters::candidates_visited, ph.nodes.size());
      for (const TreeIndex t : ph.nodes) {
        const GlobalNodeId node = network_->global_node(ph.pop, t);
        consider(node, network_->distance(leaf, node));
      }
    } else {
      // Crossing the core costs leaf_up + core + descent; descent cost is
      // monotone in level and the bucket is level-ordered, so the bucket's
      // first node dominates every other holder in this PoP (strictly
      // cheaper, or equal-cost with a lower node id).
      const double base = leaf_up + network_->core_cost(own_pop, ph.pop);
      if (base > max_cost || (found && base > best.cost)) {
        perf_.bump(&PerfCounters::pops_pruned);
        continue;
      }
      perf_.bump(&PerfCounters::pops_scanned);
      perf_.bump(&PerfCounters::candidates_visited);
      const TreeIndex t = ph.nodes.front();
      consider(network_->global_node(ph.pop, t),
               base + network_->root_to_level_cost(network_->tree().level_of(t)));
    }
  }
  if (!found) return std::nullopt;
  return best;
}

// Min-heap ordering on (cost, node): std::*_heap build a max-heap, so the
// comparator inverts the candidate order.
bool HolderIndex::heap_after(const HeapEntry& a, const HeapEntry& b) noexcept {
  return a.cost > b.cost || (a.cost == b.cost && a.node > b.node);
}

void HolderIndex::heap_push(double cost, GlobalNodeId node, std::uint32_t lane) const {
  heap_.push_back(HeapEntry{cost, node, lane});
  std::push_heap(heap_.begin(), heap_.end(), &HolderIndex::heap_after);
}

HolderIndex::Walk HolderIndex::walk(std::uint32_t object, GlobalNodeId leaf,
                                    double max_cost) const {
  perf_.bump(&PerfCounters::candidate_walks);
  lanes_.clear();
  heap_.clear();
  own_sorted_.clear();
  own_next_ = 0;
  walk_max_cost_ = max_cost;
  walk_cut_ = false;

  const auto it = holders_.find(object);
  if (it == holders_.end()) return Walk(this);

  const PopId own_pop = network_->pop_of(leaf);
  const double leaf_up = network_->root_to_level_cost(network_->level_of(leaf));

  for (const PopHolders& ph : it->second.pops) {
    if (ph.pop == own_pop) {
      // Own-PoP costs are exact tree distances (not level-monotone), so
      // this one small bucket is materialized and sorted up front.
      for (const TreeIndex t : ph.nodes) {
        const GlobalNodeId node = network_->global_node(ph.pop, t);
        own_sorted_.push_back(Candidate{node, network_->distance(leaf, node)});
      }
      std::sort(own_sorted_.begin(), own_sorted_.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.cost < b.cost || (a.cost == b.cost && a.node < b.node);
                });
      if (own_sorted_.front().cost <= max_cost) {
        perf_.bump(&PerfCounters::pops_scanned);
        heap_push(own_sorted_.front().cost, own_sorted_.front().node, kOwnLane);
      } else {
        perf_.bump(&PerfCounters::pops_pruned);
        walk_cut_ = true;
      }
    } else {
      const double base = leaf_up + network_->core_cost(own_pop, ph.pop);
      const TreeIndex t0 = ph.nodes.front();
      const double cost0 =
          base + network_->root_to_level_cost(network_->tree().level_of(t0));
      if (cost0 > max_cost) {
        // The cheapest holder of this PoP is already out of reach.
        perf_.bump(&PerfCounters::pops_pruned);
        walk_cut_ = true;
        continue;
      }
      perf_.bump(&PerfCounters::pops_scanned);
      lanes_.push_back(Lane{&ph.nodes, base, 0,
                            network_->global_node(ph.pop, 0)});
      heap_push(cost0, network_->global_node(ph.pop, t0),
                static_cast<std::uint32_t>(lanes_.size() - 1));
    }
  }
  return Walk(this);
}

std::optional<HolderIndex::Candidate> HolderIndex::walk_next() const {
  if (heap_.empty()) {
    if (walk_cut_) {
      perf_.bump(&PerfCounters::early_exits);
      walk_cut_ = false;  // count once per walk
    }
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), &HolderIndex::heap_after);
  const HeapEntry top = heap_.back();
  heap_.pop_back();
  perf_.bump(&PerfCounters::candidates_visited);

  // Advance the lane the served candidate came from.
  if (top.lane == kOwnLane) {
    if (++own_next_ < own_sorted_.size()) {
      const Candidate& c = own_sorted_[own_next_];
      if (c.cost <= walk_max_cost_) {
        heap_push(c.cost, c.node, kOwnLane);
      } else {
        walk_cut_ = true;
      }
    }
  } else {
    Lane& lane = lanes_[top.lane];
    if (++lane.next < lane.nodes->size()) {
      const TreeIndex t = (*lane.nodes)[lane.next];
      const double cost =
          lane.base + network_->root_to_level_cost(network_->tree().level_of(t));
      if (cost <= walk_max_cost_) {
        heap_push(cost, lane.node_base + t, top.lane);
      } else {
        walk_cut_ = true;
      }
    }
  }
  return Candidate{top.node, top.cost};
}

std::optional<HolderIndex::Candidate> HolderIndex::Walk::next() {
  return index_->walk_next();
}

std::vector<HolderIndex::Candidate> HolderIndex::candidates_by_cost(
    std::uint32_t object, GlobalNodeId leaf) const {
  std::vector<Candidate> out;
  Walk w = walk(object, leaf, kUnbounded);
  while (const auto c = w.next()) out.push_back(*c);
  return out;
}

}  // namespace idicn::core
