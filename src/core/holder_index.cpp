#include "core/holder_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace idicn::core {

using topology::GlobalNodeId;
using topology::PopId;
using topology::TreeIndex;

void HolderIndex::add(std::uint32_t object, GlobalNodeId node) {
  const PopId pop = network_->pop_of(node);
  const TreeIndex t = network_->tree_index_of(node);
  ObjectHolders& oh = holders_[object];
  for (PopHolders& ph : oh.pops) {
    if (ph.pop == pop) {
      ph.nodes.push_back(t);
      ++total_entries_;
      return;
    }
  }
  oh.pops.push_back(PopHolders{pop, {t}});
  ++total_entries_;
}

void HolderIndex::remove(std::uint32_t object, GlobalNodeId node) {
  const auto it = holders_.find(object);
  if (it == holders_.end()) {
    throw std::logic_error("HolderIndex::remove: object not tracked");
  }
  const PopId pop = network_->pop_of(node);
  const TreeIndex t = network_->tree_index_of(node);
  std::vector<PopHolders>& pops = it->second.pops;
  for (std::size_t i = 0; i < pops.size(); ++i) {
    if (pops[i].pop != pop) continue;
    std::vector<TreeIndex>& nodes = pops[i].nodes;
    const auto node_it = std::find(nodes.begin(), nodes.end(), t);
    if (node_it == nodes.end()) break;
    *node_it = nodes.back();
    nodes.pop_back();
    --total_entries_;
    if (nodes.empty()) {
      pops[i] = std::move(pops.back());
      pops.pop_back();
      if (pops.empty()) holders_.erase(it);
    }
    return;
  }
  throw std::logic_error("HolderIndex::remove: node was not a holder");
}

bool HolderIndex::holds(std::uint32_t object, GlobalNodeId node) const {
  const auto it = holders_.find(object);
  if (it == holders_.end()) return false;
  const PopId pop = network_->pop_of(node);
  const TreeIndex t = network_->tree_index_of(node);
  for (const PopHolders& ph : it->second.pops) {
    if (ph.pop != pop) continue;
    return std::find(ph.nodes.begin(), ph.nodes.end(), t) != ph.nodes.end();
  }
  return false;
}

std::optional<HolderIndex::Candidate> HolderIndex::nearest(std::uint32_t object,
                                                           GlobalNodeId leaf) const {
  const auto it = holders_.find(object);
  if (it == holders_.end()) return std::nullopt;

  const PopId own_pop = network_->pop_of(leaf);
  const unsigned leaf_level = network_->level_of(leaf);
  const double leaf_up = network_->root_to_level_cost(leaf_level);

  bool found = false;
  Candidate best{};
  const auto consider = [&](GlobalNodeId node, double cost) {
    if (!found || cost < best.cost || (cost == best.cost && node < best.node)) {
      best = Candidate{node, cost};
      found = true;
    }
  };

  for (const PopHolders& ph : it->second.pops) {
    if (ph.pop == own_pop) {
      // Exact tree distance to every holder in the local tree.
      for (const TreeIndex t : ph.nodes) {
        const GlobalNodeId node = network_->global_node(ph.pop, t);
        consider(node, network_->distance(leaf, node));
      }
    } else {
      // Crossing the core costs leaf_up + core + descent; the cheapest
      // holder in a remote pop is the one closest to its root.
      const double base = leaf_up + network_->core_cost(own_pop, ph.pop);
      for (const TreeIndex t : ph.nodes) {
        const GlobalNodeId node = network_->global_node(ph.pop, t);
        consider(node,
                 base + network_->root_to_level_cost(network_->tree().level_of(t)));
      }
    }
  }
  if (!found) return std::nullopt;
  return best;
}

std::vector<HolderIndex::Candidate> HolderIndex::candidates_by_cost(
    std::uint32_t object, GlobalNodeId leaf) const {
  std::vector<Candidate> out;
  const auto it = holders_.find(object);
  if (it == holders_.end()) return out;

  const PopId own_pop = network_->pop_of(leaf);
  const double leaf_up = network_->root_to_level_cost(network_->level_of(leaf));
  for (const PopHolders& ph : it->second.pops) {
    for (const TreeIndex t : ph.nodes) {
      const GlobalNodeId node = network_->global_node(ph.pop, t);
      const double cost =
          ph.pop == own_pop
              ? network_->distance(leaf, node)
              : leaf_up + network_->core_cost(own_pop, ph.pop) +
                    network_->root_to_level_cost(network_->tree().level_of(t));
      out.push_back(Candidate{node, cost});
    }
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.cost < b.cost || (a.cost == b.cost && a.node < b.node);
  });
  return out;
}

}  // namespace idicn::core
