#pragma once

// IDICN_HOT_PATH marks a function as part of the cache-hit serving chain:
// the decoder fast path, the proxy hit lookup, the sharded-cache get, and
// the ServerGroup write flush. tools/analysis/idicn_analysis.py treats
// every annotated definition as a root and proves nothing reachable from
// it allocates (rule `hot-path-alloc`), modulo the shrinking baseline in
// tools/analysis/baselines/ — the ratchet toward ROADMAP item 2's
// zero-allocation hot path. The runtime complement is
// tests/test_hot_path_allocs.cpp, which counts real operator-new calls
// per request on the same chain.
//
// Under Clang the macro also leaves an `annotate` attribute in the AST so
// the libclang frontend can find roots without re-lexing; GCC has no
// equivalent, and the analyzer's internal frontend matches the macro
// token textually, so expanding to nothing is fine there.
#if defined(__clang__)
#define IDICN_HOT_PATH __attribute__((annotate("idicn_hot_path")))
#else
#define IDICN_HOT_PATH
#endif
