// Annotated synchronization primitives: concurrency correctness as a
// compile-time contract.
//
// Every lock in this repository goes through the wrappers below instead of
// <mutex>/<thread> directly (enforced by tools/lint/idicn_lint.py). The
// wrappers carry Clang thread-safety capability annotations, so a Clang
// build with -Wthread-safety turns the locking discipline into compiler
// errors: a field marked IDICN_GUARDED_BY(mutex_) cannot be touched without
// holding mutex_, a method marked IDICN_REQUIRES(role_) cannot be called
// from code that has not established the thread role. Under GCC (or any
// non-Clang compiler) every annotation expands to nothing and the wrappers
// are zero-overhead shims over the standard primitives.
//
// Two kinds of capability are used:
//   * Mutex — a classic lock; protects data across threads.
//   * ThreadRole — an *assertion* capability modelling "runs on thread T"
//     (the event-loop ownership discipline). It is never locked; code that
//     must run on the owning thread calls assert_held(), which acquires the
//     capability for the static analysis and, in debug builds, aborts at
//     runtime when called from the wrong thread.
//
// See DESIGN.md §"Threading model" for which state is guarded by what.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>

// --- Clang thread-safety annotation macros (no-ops elsewhere) -------------
#if defined(__clang__)
#define IDICN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IDICN_THREAD_ANNOTATION(x)
#endif

#define IDICN_CAPABILITY(x) IDICN_THREAD_ANNOTATION(capability(x))
#define IDICN_SCOPED_CAPABILITY IDICN_THREAD_ANNOTATION(scoped_lockable)
#define IDICN_GUARDED_BY(x) IDICN_THREAD_ANNOTATION(guarded_by(x))
#define IDICN_PT_GUARDED_BY(x) IDICN_THREAD_ANNOTATION(pt_guarded_by(x))
#define IDICN_REQUIRES(...) \
  IDICN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IDICN_ACQUIRE(...) \
  IDICN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IDICN_TRY_ACQUIRE(...) \
  IDICN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IDICN_RELEASE(...) \
  IDICN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IDICN_EXCLUDES(...) IDICN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IDICN_ASSERT_CAPABILITY(...) \
  IDICN_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define IDICN_RETURN_CAPABILITY(x) IDICN_THREAD_ANNOTATION(lock_returned(x))
#define IDICN_NO_THREAD_SAFETY_ANALYSIS \
  IDICN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace idicn::core::sync {

/// Annotated std::mutex. Prefer MutexLock for scoped acquisition; lock()
/// and unlock() exist for CondVar and for the rare manual pairing.
class IDICN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IDICN_ACQUIRE() { mutex_.lock(); }
  void unlock() IDICN_RELEASE() { mutex_.unlock(); }
  bool try_lock() IDICN_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over Mutex — the annotated std::lock_guard.
class IDICN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) IDICN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() IDICN_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex (the annotated
/// std::condition_variable). Callers must hold the mutex across wait().
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex`, sleep, and re-acquire before returning.
  void wait(Mutex& mutex) IDICN_REQUIRES(mutex) { cv_.wait(mutex); }

  /// wait() until `predicate()` is true (re-checked under the mutex).
  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) IDICN_REQUIRES(mutex) {
    cv_.wait(mutex, std::move(predicate));
  }

  /// wait() until `predicate()` is true or `timeout_ms` elapsed; returns
  /// the final predicate value. The deadline door for bounded shutdown
  /// waits (e.g. ServerGroup's connection drain).
  template <typename Predicate>
  bool wait_for(Mutex& mutex, std::uint64_t timeout_ms, Predicate predicate)
      IDICN_REQUIRES(mutex) {
    return cv_.wait_for(mutex, std::chrono::milliseconds(timeout_ms),
                        std::move(predicate));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// An assertion capability modelling single-thread ownership: "this state
/// belongs to thread T". bind() claims the role for the calling thread
/// (typically at the top of the owning thread's main function), unbind()
/// releases it. assert_held() is the static + runtime gate: the analysis
/// treats the capability as held for the rest of the scope, and debug
/// builds abort when the caller is neither the owner nor running while the
/// role is unbound (setup/teardown windows are legal from any thread).
class IDICN_CAPABILITY("thread role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void bind() noexcept {
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }
  void unbind() noexcept {
    owner_.store(std::thread::id{}, std::memory_order_release);
  }

  /// True when bound to any thread (i.e. the owner is currently running).
  [[nodiscard]] bool bound() const noexcept {
    return owner_.load(std::memory_order_acquire) != std::thread::id{};
  }

  /// Debug-assert the calling thread may touch role-owned state, and
  /// acquire the capability for the thread-safety analysis.
  void assert_held() const noexcept IDICN_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    const std::thread::id owner = owner_.load(std::memory_order_acquire);
    assert((owner == std::thread::id{} ||
            owner == std::this_thread::get_id()) &&
           "called off its owning thread");
#endif
  }

 private:
  std::atomic<std::thread::id> owner_{};
};

/// Join-on-destruction thread (the annotated std::thread): a Thread that
/// goes out of scope joinable joins instead of calling std::terminate.
class Thread {
 public:
  Thread() noexcept = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  Thread(Thread&& other) noexcept = default;
  Thread& operator=(Thread&& other) noexcept {
    if (this != &other) {
      if (thread_.joinable()) thread_.join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool joinable() const noexcept { return thread_.joinable(); }
  void join() { thread_.join(); }
  [[nodiscard]] std::thread::id get_id() const noexcept {
    return thread_.get_id();
  }

  static unsigned hardware_concurrency() noexcept {
    return std::thread::hardware_concurrency();
  }

 private:
  std::thread thread_;
};

/// Counter safe to bump on any thread while other threads read it: all
/// operations are relaxed atomics. Used for observer statistics (e.g.
/// Proxy::Stats) that benches and tests sample while the owning worker
/// threads are live, and for live gauges (ServerWorker's active-connection
/// count) that go up and down. Relaxed ordering is deliberate — readers
/// get *some* recent value, never a torn or data-racing one; counters are
/// independent, so no inter-counter consistency is promised.
class RelaxedCounter {
 public:
  RelaxedCounter() noexcept = default;
  // Intentionally implicit: counters initialize and compare like the plain
  // integers they replace.
  RelaxedCounter(std::uint64_t value) noexcept : value_(value) {}  // NOLINT
  RelaxedCounter(const RelaxedCounter& other) noexcept
      : value_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  RelaxedCounter& operator++() noexcept { return *this += 1; }
  RelaxedCounter& operator+=(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator--() noexcept { return *this -= 1; }
  RelaxedCounter& operator-=(std::uint64_t n) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace idicn::core::sync
