// Binding a request workload to network attachment points (§4.2).
//
// A raw trace is a stream of (object, size); the simulator needs each
// request attached to a PoP (chosen with probability proportional to metro
// population) and a leaf of that PoP's access tree (uniform). Binding is
// done once per experiment so every caching design replays the *identical*
// request sequence.
//
// Two binders are provided:
//   * bind_trace       — trace-driven: objects come from a (real or
//     reconstructed) trace in order; all PoPs share the trace's popularity
//     (spatial skew 0).
//   * bind_synthetic   — model-driven: per-request Zipf rank sampling with
//     an optional per-PoP spatial-skew rank permutation (Figures 8–10).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/network.hpp"
#include "workload/size_model.hpp"
#include "workload/spatial_skew.hpp"
#include "workload/trace.hpp"

namespace idicn::core {

struct BoundRequest {
  topology::PopId pop = 0;
  std::uint32_t leaf = 0;  ///< leaf ordinal within the pop's tree
  std::uint32_t object = 0;
  std::uint64_t size = 1;
};

struct BoundWorkload {
  std::uint32_t object_count = 0;
  std::vector<BoundRequest> requests;

  /// Popularity order per PoP: each entry lists object ids from most to
  /// least popular. Holds one shared entry when every PoP follows the same
  /// (global) popularity, or one entry per PoP under spatial skew. Used to
  /// prefill caches to their popularity-stationary content (see
  /// SimulationConfig::prefill).
  std::vector<std::vector<std::uint32_t>> popularity_order;

  [[nodiscard]] const std::vector<std::uint32_t>& order_for_pop(
      topology::PopId pop) const {
    return popularity_order.size() == 1 ? popularity_order.front()
                                        : popularity_order.at(pop);
  }
};

/// Attach a trace's requests to PoPs/leaves.
[[nodiscard]] BoundWorkload bind_trace(const topology::HierarchicalNetwork& network,
                                       const workload::Trace& trace, std::uint64_t seed);

/// Parameters for the model-driven binder.
struct SyntheticWorkloadSpec {
  std::uint64_t request_count = 100'000;
  std::uint32_t object_count = 10'000;
  double alpha = 1.0;           ///< Zipf exponent
  double spatial_skew = 0.0;    ///< skew intensity s ∈ [0, 1] (Fig. 8c)
  std::uint64_t seed = 1;
  workload::SizeModel sizes;    ///< default unit sizes
};

[[nodiscard]] BoundWorkload bind_synthetic(const topology::HierarchicalNetwork& network,
                                           const SyntheticWorkloadSpec& spec);

/// Flash-crowd / request-flood overlay (§7: caching "amplif[ies] the
/// effective number of servers", so an edge deployment should absorb a
/// request flood about as well as pervasive ICN).
///
/// During the window [start, start+duration) (fractions of the request
/// stream), each request is redirected with probability `intensity` to one
/// of `hot_objects` brand-new objects (uniformly chosen) that no cache has
/// seen before; outside the window the base workload flows unchanged. The
/// returned workload's object universe is extended by the hot objects
/// (ids object_count-hot_objects … object_count-1), which sort last in
/// every popularity order so prefill never includes them.
struct FlashCrowdSpec {
  double start = 0.5;       ///< window start, fraction of the stream
  double duration = 0.25;   ///< window length, fraction of the stream
  double intensity = 0.5;   ///< in-window probability a request joins the flood
  std::uint32_t hot_objects = 5;
  std::uint64_t seed = 99;
};

[[nodiscard]] BoundWorkload bind_flash_crowd(const topology::HierarchicalNetwork& network,
                                             const SyntheticWorkloadSpec& base,
                                             const FlashCrowdSpec& crowd);

/// Popularity drift (§7 "workload evolution": Internet workloads are in a
/// constant state of flux). The rank → object mapping churns as the stream
/// progresses: every `period` requests, `churn_fraction` of the objects
/// swap ranks with random partners, so yesterday's tail objects surface
/// and cached content slowly goes cold. Prefill orders reflect the INITIAL
/// ranking — exactly the position a steady-state cache is in when the
/// workload moves under it.
struct DriftSpec {
  std::uint64_t period = 10'000;  ///< requests between churn steps
  double churn_fraction = 0.01;   ///< fraction of objects re-ranked per step
  std::uint64_t seed = 7;
};

[[nodiscard]] BoundWorkload bind_drifting(const topology::HierarchicalNetwork& network,
                                          const SyntheticWorkloadSpec& base,
                                          const DriftSpec& drift);

}  // namespace idicn::core
