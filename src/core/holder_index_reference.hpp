// The pre-overhaul HolderIndex: vector-of-vectors buckets, linear
// membership scans, and an exhaustive materialize-and-sort candidate query.
//
// Kept verbatim (header-only) as the *oracle* for the optimized index: the
// regression tests assert that HolderIndex returns byte-identical nearest
// replicas and candidate orderings, and bench_holder_index measures the
// speedup against it. Not for production use — every candidates_by_cost
// call allocates and sorts all holders.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/holder_index.hpp"
#include "topology/network.hpp"

namespace idicn::core {

class ReferenceHolderIndex {
public:
  using Candidate = HolderIndex::Candidate;

  explicit ReferenceHolderIndex(const topology::HierarchicalNetwork& network)
      : network_(&network) {}

  void add(std::uint32_t object, topology::GlobalNodeId node) {
    const topology::PopId pop = network_->pop_of(node);
    const topology::TreeIndex t = network_->tree_index_of(node);
    ObjectHolders& oh = holders_[object];
    for (PopHolders& ph : oh.pops) {
      if (ph.pop == pop) {
        ph.nodes.push_back(t);
        ++total_entries_;
        return;
      }
    }
    oh.pops.push_back(PopHolders{pop, {t}});
    ++total_entries_;
  }

  void remove(std::uint32_t object, topology::GlobalNodeId node) {
    const auto it = holders_.find(object);
    if (it == holders_.end()) {
      throw std::logic_error("ReferenceHolderIndex::remove: object not tracked");
    }
    const topology::PopId pop = network_->pop_of(node);
    const topology::TreeIndex t = network_->tree_index_of(node);
    std::vector<PopHolders>& pops = it->second.pops;
    for (std::size_t i = 0; i < pops.size(); ++i) {
      if (pops[i].pop != pop) continue;
      std::vector<topology::TreeIndex>& nodes = pops[i].nodes;
      const auto node_it = std::find(nodes.begin(), nodes.end(), t);
      if (node_it == nodes.end()) break;
      *node_it = nodes.back();
      nodes.pop_back();
      --total_entries_;
      if (nodes.empty()) {
        pops[i] = std::move(pops.back());
        pops.pop_back();
        if (pops.empty()) holders_.erase(it);
      }
      return;
    }
    throw std::logic_error("ReferenceHolderIndex::remove: node was not a holder");
  }

  [[nodiscard]] bool holds(std::uint32_t object, topology::GlobalNodeId node) const {
    const auto it = holders_.find(object);
    if (it == holders_.end()) return false;
    const topology::PopId pop = network_->pop_of(node);
    const topology::TreeIndex t = network_->tree_index_of(node);
    for (const PopHolders& ph : it->second.pops) {
      if (ph.pop != pop) continue;
      return std::find(ph.nodes.begin(), ph.nodes.end(), t) != ph.nodes.end();
    }
    return false;
  }

  [[nodiscard]] std::optional<Candidate> nearest(std::uint32_t object,
                                                 topology::GlobalNodeId leaf) const {
    const auto it = holders_.find(object);
    if (it == holders_.end()) return std::nullopt;

    const topology::PopId own_pop = network_->pop_of(leaf);
    const unsigned leaf_level = network_->level_of(leaf);
    const double leaf_up = network_->root_to_level_cost(leaf_level);

    bool found = false;
    Candidate best{};
    const auto consider = [&](topology::GlobalNodeId node, double cost) {
      if (!found || cost < best.cost || (cost == best.cost && node < best.node)) {
        best = Candidate{node, cost};
        found = true;
      }
    };

    for (const PopHolders& ph : it->second.pops) {
      if (ph.pop == own_pop) {
        for (const topology::TreeIndex t : ph.nodes) {
          const topology::GlobalNodeId node = network_->global_node(ph.pop, t);
          consider(node, network_->distance(leaf, node));
        }
      } else {
        const double base = leaf_up + network_->core_cost(own_pop, ph.pop);
        for (const topology::TreeIndex t : ph.nodes) {
          const topology::GlobalNodeId node = network_->global_node(ph.pop, t);
          consider(node,
                   base + network_->root_to_level_cost(network_->tree().level_of(t)));
        }
      }
    }
    if (!found) return std::nullopt;
    return best;
  }

  [[nodiscard]] std::vector<Candidate> candidates_by_cost(
      std::uint32_t object, topology::GlobalNodeId leaf) const {
    std::vector<Candidate> out;
    const auto it = holders_.find(object);
    if (it == holders_.end()) return out;

    const topology::PopId own_pop = network_->pop_of(leaf);
    const double leaf_up = network_->root_to_level_cost(network_->level_of(leaf));
    for (const PopHolders& ph : it->second.pops) {
      for (const topology::TreeIndex t : ph.nodes) {
        const topology::GlobalNodeId node = network_->global_node(ph.pop, t);
        const double cost =
            ph.pop == own_pop
                ? network_->distance(leaf, node)
                : leaf_up + network_->core_cost(own_pop, ph.pop) +
                      network_->root_to_level_cost(network_->tree().level_of(t));
        out.push_back(Candidate{node, cost});
      }
    }
    std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
      return a.cost < b.cost || (a.cost == b.cost && a.node < b.node);
    });
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return total_entries_; }

private:
  struct PopHolders {
    topology::PopId pop = 0;
    std::vector<topology::TreeIndex> nodes;
  };
  struct ObjectHolders {
    std::vector<PopHolders> pops;
  };

  const topology::HierarchicalNetwork* network_;
  std::unordered_map<std::uint32_t, ObjectHolders> holders_;
  std::size_t total_entries_ = 0;
};

}  // namespace idicn::core
