// The caching design space (§3): cache placement × request routing ×
// cooperation × budget scaling.
//
// Representative designs from the paper:
//   ICN-SP      — pervasive caches, shortest-path-to-origin routing
//   ICN-NR      — pervasive caches, (zero-cost) nearest-replica routing
//   EDGE        — leaf caches only, shortest path
//   EDGE-Coop   — EDGE + sibling scoped lookup
//   EDGE-Norm   — EDGE with budgets scaled so its total equals pervasive's
// and the Figure-10 extensions (2-Levels, 2-Levels-Coop, Norm-Coop,
// Double-Budget-Coop, Inf-Budget).
#pragma once

#include <string>

#include "cache/cache.hpp"

namespace idicn::core {

/// Which routers carry a content cache.
enum class Placement {
  Pervasive,  ///< every router (all access-tree nodes, incl. pop roots)
  EdgeOnly,   ///< access-tree leaves only
  TwoLevels   ///< leaves plus their immediate parents
};

/// How requests locate content.
enum class Routing {
  ShortestPathToOrigin,  ///< climb to the origin, serve from any cache en route
  NearestReplica,        ///< route to the closest copy (zero lookup cost)
  /// §3's "intermediate strategy": a scoped nearest-replica lookup — use
  /// the closest copy only if it lies within `scoped_radius` of the
  /// requesting leaf, otherwise revert to shortest-path-to-origin.
  ScopedNearestReplica
};

/// What the response path stores (the third axis of the caching design
/// space; the paper fixes leave-copy-everywhere, the broader ICN literature
/// — LCD, ProbCache — asks whether smarter decisions change the picture).
enum class CacheDecision {
  LeaveCopyEverywhere,  ///< every cache-equipped node on the path stores (paper)
  LeaveCopyDown,        ///< only the node one hop below the serving node stores
  Probabilistic         ///< each node stores independently with `cache_probability`
};

/// How per-node budgets from the provisioning plan are scaled for the
/// cache-equipped nodes of this design.
enum class BudgetScaling {
  None,                      ///< use the plan's per-node budget as-is
  NormalizeToPervasiveTotal  ///< scale so Σ(equipped) == Σ(all routers)
};

struct DesignSpec {
  std::string name;
  Placement placement = Placement::Pervasive;
  Routing routing = Routing::ShortestPathToOrigin;
  bool sibling_cooperation = false;  ///< scoped lookup at the leaf's siblings
  BudgetScaling scaling = BudgetScaling::None;
  double extra_budget_multiplier = 1.0;  ///< applied after scaling
  bool infinite_budget = false;          ///< every equipped node is unbounded
  cache::PolicyKind policy = cache::PolicyKind::Lru;

  CacheDecision cache_decision = CacheDecision::LeaveCopyEverywhere;
  double cache_probability = 1.0;  ///< for CacheDecision::Probabilistic
  double scoped_radius = 0.0;      ///< for Routing::ScopedNearestReplica
  bool admission_doorkeeper = false;  ///< second-sighting admission filter

  /// Partial edge deployment (§4.3's incremental-deployment argument):
  /// when < 1, only this fraction of PoPs (a deterministic subset) carry
  /// edge caches at all; the rest run cacheless. Applies to the placement's
  /// cache sites.
  double deployment_fraction = 1.0;
};

// --- the paper's representative designs (§4.1) -------------------------
[[nodiscard]] DesignSpec icn_sp();
[[nodiscard]] DesignSpec icn_nr();
[[nodiscard]] DesignSpec edge();
[[nodiscard]] DesignSpec edge_coop();
[[nodiscard]] DesignSpec edge_norm();

// --- Figure-10 extensions ----------------------------------------------
[[nodiscard]] DesignSpec two_levels();
[[nodiscard]] DesignSpec two_levels_coop();
[[nodiscard]] DesignSpec norm_coop();
[[nodiscard]] DesignSpec double_budget_coop();
[[nodiscard]] DesignSpec edge_infinite();
[[nodiscard]] DesignSpec icn_nr_infinite();

// --- extension designs ---------------------------------------------------
/// Pervasive caches, nearest replica only within `radius` of the leaf.
[[nodiscard]] DesignSpec icn_scoped_nr(double radius);
/// ICN-SP with leave-copy-down instead of leave-copy-everywhere.
[[nodiscard]] DesignSpec icn_sp_lcd();
/// ICN-SP caching probabilistically with probability p on the path.
[[nodiscard]] DesignSpec icn_sp_prob(double p);
/// EDGE deployed at only a fraction of PoPs (§4.3 incremental deployment).
[[nodiscard]] DesignSpec edge_partial(double deployment_fraction);

/// A design with zero cache everywhere — the normalization baseline
/// ("a system without any caching infrastructure", §4.2).
[[nodiscard]] DesignSpec no_cache();

}  // namespace idicn::core
