// Experiment harness: run a set of designs over one identical workload and
// normalize every metric against the no-cache baseline (§4.2).
#pragma once

#include <vector>

#include "core/bound_workload.hpp"
#include "core/design.hpp"
#include "core/metrics.hpp"
#include "core/origin_map.hpp"
#include "core/simulator.hpp"
#include "topology/network.hpp"

namespace idicn::core {

struct DesignResult {
  DesignSpec design;
  SimulationMetrics metrics;
  Improvements improvements;  ///< vs the no-cache baseline
};

struct ComparisonResult {
  SimulationMetrics baseline;  ///< the no-cache run
  std::vector<DesignResult> designs;

  /// Gap of design a over design b on each metric
  /// (RelImprov_a − RelImprov_b, the §5 normalized measure).
  [[nodiscard]] Improvements gap(std::size_t a, std::size_t b) const;

  /// Locate a design by name; throws std::out_of_range when missing.
  [[nodiscard]] const DesignResult& by_name(const std::string& name) const;
};

/// Runs the baseline plus all `designs` on the same workload. Each design
/// run is independent (its own caches and counters over a shared read-only
/// network/workload), so runs execute concurrently on up to
/// `max_parallelism` threads (1 = serial; 0 = hardware concurrency).
/// Results are bitwise identical regardless of parallelism.
[[nodiscard]] ComparisonResult compare_designs(
    const topology::HierarchicalNetwork& network, const OriginMap& origins,
    const std::vector<DesignSpec>& designs, const SimulationConfig& config,
    const BoundWorkload& workload, unsigned max_parallelism = 0);

}  // namespace idicn::core
