#include "core/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cache/admission.hpp"

namespace idicn::core {

using topology::GlobalNodeId;
using topology::PopId;
using topology::TreeIndex;

Simulator::Simulator(const topology::HierarchicalNetwork& network,
                     const OriginMap& origins, DesignSpec design,
                     SimulationConfig config)
    : network_(network),
      origins_(origins),
      design_(std::move(design)),
      config_(config) {
  // Reject bad configs before any budget/prefill/replay work happens, so an
  // invalid run can never mutate cache state or burn a prefill first.
  if (config_.warmup_fraction < 0.0 || config_.warmup_fraction >= 1.0) {
    throw std::invalid_argument("Simulator: warmup_fraction must be in [0, 1)");
  }
  if (!(config_.budget_fraction > 0.0 && config_.budget_fraction <= 1.0)) {
    throw std::invalid_argument("Simulator: budget_fraction must be in (0, 1]");
  }
  if (config_.capacity_window == 0) {
    throw std::invalid_argument("Simulator: capacity_window must be > 0");
  }

  const cache::BudgetPlan plan = cache::compute_budget(
      network_, config_.budget_fraction, origins_.object_count(), config_.split);

  // EDGE-Norm: scale the equipped nodes' budgets so their total matches the
  // full (all-routers) plan total.
  double scale = design_.extra_budget_multiplier;
  if (design_.scaling == BudgetScaling::NormalizeToPervasiveTotal) {
    std::uint64_t equipped_total = 0;
    for (GlobalNodeId n = 0; n < network_.node_count(); ++n) {
      if (is_cache_site(n)) equipped_total += plan.per_node[n];
    }
    if (equipped_total > 0) {
      scale *= static_cast<double>(plan.total()) / static_cast<double>(equipped_total);
    }
  }

  caches_.resize(network_.node_count());
  for (GlobalNodeId n = 0; n < network_.node_count(); ++n) {
    if (!is_cache_site(n)) continue;
    if (design_.infinite_budget) {
      caches_[n] = cache::make_cache(cache::PolicyKind::Infinite, 0);
      continue;
    }
    const auto capacity = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(plan.per_node[n]) * scale));
    if (capacity == 0) continue;  // a zero-budget site has no cache at all
    caches_[n] = cache::make_cache(design_.policy, capacity, config_.seed ^ n);
    if (design_.admission_doorkeeper) {
      caches_[n] = std::make_unique<cache::AdmissionFilteredCache>(
          std::move(caches_[n]), std::max<std::size_t>(64, capacity));
    }
  }

  if (design_.routing != Routing::ShortestPathToOrigin) {
    holders_.emplace(network_);
    // Origin-cost memo: leaves all sit at the same tree level, so the
    // leaf→origin-root distance depends only on the (pop, origin pop) pair.
    const PopId pops = network_.pop_count();
    origin_cost_.resize(static_cast<std::size_t>(pops) * pops);
    for (PopId p = 0; p < pops; ++p) {
      for (PopId q = 0; q < pops; ++q) {
        origin_cost_[static_cast<std::size_t>(p) * pops + q] =
            network_.distance(network_.leaf(p, 0), network_.pop_root(q));
      }
    }
  }
  if (config_.serving_capacity) {
    served_in_window_.assign(network_.node_count(), 0);
  }
  decision_rng_.seed(config_.seed ^ 0xdec15104ULL);
}

bool Simulator::is_cache_site(GlobalNodeId node) const {
  // Partial deployment: only a deterministic subset of PoPs run caches at
  // all. The subset depends solely on (pop, seed), so different designs
  // with the same fraction deploy at the same PoPs.
  if (design_.deployment_fraction < 1.0) {
    const PopId pop = network_.pop_of(node);
    std::uint64_t h = (static_cast<std::uint64_t>(pop) + 1) *
                      0x9e3779b97f4a7c15ULL ^ (config_.seed * 0xbf58476d1ce4e5b9ULL);
    h ^= h >> 31;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 29;
    const double u = static_cast<double>(h % 1'000'000) / 1'000'000.0;
    if (u >= design_.deployment_fraction) return false;
  }

  const unsigned level = network_.level_of(node);
  const unsigned depth = network_.tree().depth();
  switch (design_.placement) {
    case Placement::Pervasive: return true;
    case Placement::EdgeOnly: return level == depth;
    case Placement::TwoLevels: return depth == 0 || level >= depth - 1;
  }
  return false;
}

bool Simulator::has_serving_capacity(GlobalNodeId node) const {
  if (!config_.serving_capacity) return true;
  return served_in_window_[node] < *config_.serving_capacity;
}

void Simulator::note_served(GlobalNodeId node) {
  if (!config_.serving_capacity) return;
  ++served_in_window_[node];
}

void Simulator::store_on_path(std::uint32_t object, std::uint64_t size,
                              GlobalNodeId node, PopId origin_pop) {
  cache::Cache* cache = caches_[node].get();
  if (cache == nullptr) return;
  // The origin PoP root never stores its own objects in its regular cache:
  // its origin store already holds them permanently.
  if (network_.tree_index_of(node) == 0 && network_.pop_of(node) == origin_pop) return;

  if (holders_) {
    const bool was_present = cache->contains(object);
    eviction_scratch_.clear();
    cache->insert(object, size, eviction_scratch_);
    for (const cache::ObjectId evicted : eviction_scratch_) {
      holders_->remove(evicted, node);
    }
    // insert() may refuse admission (size > capacity); re-check presence.
    if (!was_present && cache->contains(object)) holders_->add(object, node);
  } else {
    eviction_scratch_.clear();
    cache->insert(object, size, eviction_scratch_);
  }
}

std::optional<Simulator::ServeDecision> Simulator::try_local(
    const BoundRequest& request, GlobalNodeId leaf_node) {
  // 1. The arrival leaf itself.
  cache::Cache* own = caches_[leaf_node].get();
  if (own != nullptr && has_serving_capacity(leaf_node) && own->lookup(request.object)) {
    return ServeDecision{leaf_node, false, false};
  }

  // 2. Scoped sibling cooperation (EDGE-Coop and friends, §4.1).
  if (design_.sibling_cooperation) {
    const PopId pop = network_.pop_of(leaf_node);
    const TreeIndex t = network_.tree_index_of(leaf_node);
    for (const TreeIndex sib : network_.tree().siblings(t)) {
      const GlobalNodeId sib_node = network_.global_node(pop, sib);
      cache::Cache* cache = caches_[sib_node].get();
      if (cache != nullptr && has_serving_capacity(sib_node) &&
          cache->lookup(request.object)) {
        return ServeDecision{sib_node, false, true};
      }
    }
  }
  return std::nullopt;
}

Simulator::ServeDecision Simulator::decide_shortest_path(const BoundRequest& request,
                                                         GlobalNodeId leaf_node,
                                                         GlobalNodeId origin_node) {
  // Climb the access tree (above the leaf), then cross the core toward the
  // origin; serve from the first cache holding the object.
  const PopId pop = network_.pop_of(leaf_node);
  const PopId origin_pop = network_.pop_of(origin_node);

  const auto try_serve = [&](GlobalNodeId node) -> bool {
    if (node == origin_node) return false;  // the origin is handled below
    cache::Cache* cache = caches_[node].get();
    if (cache == nullptr) return false;
    if (!cache->contains(request.object)) return false;
    if (!has_serving_capacity(node)) {
      ++metrics_.capacity_redirects;
      return false;
    }
    (void)cache->lookup(request.object);  // record the hit for the policy
    return true;
  };

  TreeIndex t = network_.tree_index_of(leaf_node);
  while (t != 0) {
    t = network_.tree().parent(t);
    const GlobalNodeId node = network_.global_node(pop, t);
    if (try_serve(node)) return ServeDecision{node, false, false};
  }
  const std::vector<topology::NodeId> core_path =
      network_.core_paths().path(pop, origin_pop);
  for (std::size_t i = 1; i < core_path.size(); ++i) {
    const GlobalNodeId node = network_.pop_root(core_path[i]);
    if (try_serve(node)) return ServeDecision{node, false, false};
  }
  return ServeDecision{origin_node, true, false};
}

Simulator::ServeDecision Simulator::decide_nearest_replica(const BoundRequest& request,
                                                           GlobalNodeId leaf_node,
                                                           GlobalNodeId origin_node,
                                                           double origin_cost) {
  if (!config_.serving_capacity) {
    const auto best = holders_->nearest(request.object, leaf_node, origin_cost);
    if (best && best->cost <= origin_cost) {
      (void)caches_[best->node]->lookup(request.object);
      return ServeDecision{best->node, false, false};
    }
    return ServeDecision{origin_node, true, false};
  }

  // Capacity-limited: stream replicas by increasing cost (the walk prunes
  // whole PoPs past the origin cost and stops at the bound, instead of
  // materializing and sorting every holder); an overloaded cache passes the
  // request on; the origin absorbs the overflow.
  metrics_.perf.bump(&PerfCounters::sorts_avoided);
  HolderIndex::Walk candidates =
      holders_->walk(request.object, leaf_node, origin_cost);
  while (const auto candidate = candidates.next()) {
    if (!has_serving_capacity(candidate->node)) {
      ++metrics_.capacity_redirects;
      continue;
    }
    (void)caches_[candidate->node]->lookup(request.object);
    return ServeDecision{candidate->node, false, false};
  }
  return ServeDecision{origin_node, true, false};
}

void Simulator::prefill(const BoundWorkload& workload) {
  // Per-object sizes: first occurrence in the workload wins; objects never
  // requested default to 1 unit (they sort to the end of any real
  // popularity order anyway).
  std::vector<std::uint64_t> size_of(workload.object_count, 1);
  std::vector<bool> size_known(workload.object_count, false);
  for (const BoundRequest& r : workload.requests) {
    if (!size_known[r.object]) {
      size_known[r.object] = true;
      size_of[r.object] = r.size;
    }
  }

  std::vector<std::uint32_t> chosen;
  for (GlobalNodeId n = 0; n < network_.node_count(); ++n) {
    cache::Cache* cache = caches_[n].get();
    if (cache == nullptr) continue;
    const std::uint64_t capacity = cache->capacity_units();
    if (capacity == static_cast<std::uint64_t>(-1)) continue;  // infinite: stay cold
    const std::vector<std::uint32_t>& order =
        workload.order_for_pop(network_.pop_of(n));

    // Greedy prefix of the popularity order that fits.
    chosen.clear();
    std::uint64_t used = 0;
    for (const std::uint32_t object : order) {
      if (used + size_of[object] > capacity) break;
      used += size_of[object];
      chosen.push_back(object);
    }
    // Insert least-popular first so the most popular object is MRU.
    for (std::size_t i = chosen.size(); i-- > 0;) {
      store_on_path(chosen[i], size_of[chosen[i]], n, origins_.origin_pop(chosen[i]));
    }
  }
}

void Simulator::apply_cache_decision(const std::vector<GlobalNodeId>& response,
                                     std::uint32_t object, std::uint64_t size,
                                     PopId origin_pop) {
  // response[0] is the serving node; response.back() is the request leaf.
  switch (design_.cache_decision) {
    case CacheDecision::LeaveCopyEverywhere:
      for (const GlobalNodeId node : response) {
        store_on_path(object, size, node, origin_pop);
      }
      return;
    case CacheDecision::LeaveCopyDown:
      // The copy advances one node toward the client per fetch (and the
      // serving node refreshes its own policy state).
      store_on_path(object, size, response[0], origin_pop);
      if (response.size() > 1) store_on_path(object, size, response[1], origin_pop);
      return;
    case CacheDecision::Probabilistic: {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      store_on_path(object, size, response[0], origin_pop);  // refresh at server
      for (std::size_t i = 1; i + 1 < response.size(); ++i) {
        if (coin(decision_rng_) < design_.cache_probability) {
          store_on_path(object, size, response[i], origin_pop);
        }
      }
      // The requesting leaf always stores (it asked for the object).
      if (response.size() > 1) {
        store_on_path(object, size, response.back(), origin_pop);
      }
      return;
    }
  }
}

SimulationMetrics Simulator::run(const BoundWorkload& workload) {
  metrics_ = SimulationMetrics{};
  metrics_.design_name = design_.name;
  metrics_.link_transfers.assign(network_.link_count(), 0);
  metrics_.link_bytes.assign(network_.link_count(), 0.0);
  metrics_.origin_served.assign(network_.pop_count(), 0);
  metrics_.served_per_level.assign(network_.tree().depth() + 1, 0);
  metrics_.pop_latency.assign(network_.pop_count(), 0.0);
  metrics_.pop_requests.assign(network_.pop_count(), 0);

  if (holders_) holders_->reset_perf();
  if (config_.prefill) prefill(workload);
  const auto warmup_count = static_cast<std::size_t>(
      config_.warmup_fraction * static_cast<double>(workload.requests.size()));

  for (std::size_t request_index = 0; request_index < workload.requests.size();
       ++request_index) {
    const BoundRequest& request = workload.requests[request_index];
    const bool record = request_index >= warmup_count;
    if (config_.serving_capacity &&
        window_cursor_++ % config_.capacity_window == 0) {
      std::fill(served_in_window_.begin(), served_in_window_.end(), 0u);
    }

    const GlobalNodeId leaf_node = network_.leaf(request.pop, request.leaf);
    const PopId origin_pop = origins_.origin_pop(request.object);
    const GlobalNodeId origin_node = network_.pop_root(origin_pop);

    ServeDecision decision{};
    if (auto local = try_local(request, leaf_node)) {
      decision = *local;
    } else if (design_.routing == Routing::NearestReplica) {
      decision = decide_nearest_replica(request, leaf_node, origin_node,
                                        origin_cost(request.pop, origin_pop));
    } else if (design_.routing == Routing::ScopedNearestReplica) {
      // §3's intermediate strategy: use the nearest replica only when it is
      // within the scope radius (and no farther than the origin itself);
      // otherwise fall back to the shortest path. An unbounded radius is
      // exactly nearest-replica routing.
      const double to_origin = origin_cost(request.pop, origin_pop);
      const auto best = holders_->nearest(request.object, leaf_node,
                                          std::min(design_.scoped_radius, to_origin));
      if (best && best->cost <= design_.scoped_radius && best->cost <= to_origin &&
          (!config_.serving_capacity || has_serving_capacity(best->node))) {
        (void)caches_[best->node]->lookup(request.object);
        decision = ServeDecision{best->node, false, false};
      } else {
        decision = decide_shortest_path(request, leaf_node, origin_node);
      }
    } else {
      decision = decide_shortest_path(request, leaf_node, origin_node);
    }

    // --- accounting ---------------------------------------------------
    note_served(decision.node);
    if (record) {
      const double latency = network_.distance(leaf_node, decision.node);
      ++metrics_.request_count;
      metrics_.total_latency += latency;
      metrics_.total_hops += network_.hop_count(leaf_node, decision.node);
      metrics_.pop_latency[request.pop] += latency;
      ++metrics_.pop_requests[request.pop];

      if (decision.from_origin) {
        ++metrics_.origin_served[origin_pop];
        ++metrics_.total_origin_served;
      } else {
        ++metrics_.cache_hits;
        ++metrics_.served_per_level[network_.level_of(decision.node)];
        if (decision.node == leaf_node) ++metrics_.own_leaf_hits;
        if (decision.via_sibling) ++metrics_.sibling_hits;
      }
    }

    // --- response transfer and on-path caching -------------------------
    if (decision.node != leaf_node) {
      const std::vector<GlobalNodeId> response = network_.path(decision.node, leaf_node);
      if (record) {
        for (std::size_t i = 0; i + 1 < response.size(); ++i) {
          const topology::GlobalLinkId link =
              network_.link_between(response[i], response[i + 1]);
          ++metrics_.link_transfers[link];
          metrics_.link_bytes[link] += static_cast<double>(request.size);
        }
      }
      apply_cache_decision(response, request.object, request.size, origin_pop);
    }

    if (request_observer_) request_observer_(request_index);
  }

  if (holders_) metrics_.perf.merge(holders_->perf());
  for (const std::uint64_t transfers : metrics_.link_transfers) {
    metrics_.max_link_transfers = std::max(metrics_.max_link_transfers, transfers);
  }
  for (const double bytes : metrics_.link_bytes) {
    metrics_.max_link_bytes = std::max(metrics_.max_link_bytes, bytes);
  }
  for (const std::uint64_t served : metrics_.origin_served) {
    metrics_.max_origin_served = std::max(metrics_.max_origin_served, served);
  }
  return metrics_;
}

SimulationMetrics run_design(const topology::HierarchicalNetwork& network,
                             const OriginMap& origins, const DesignSpec& design,
                             const SimulationConfig& config,
                             const BoundWorkload& workload) {
  Simulator simulator(network, origins, design, config);
  return simulator.run(workload);
}

Improvements compute_improvements(const SimulationMetrics& baseline,
                                  const SimulationMetrics& design) {
  const auto pct = [](double base, double value) {
    return base == 0.0 ? 0.0 : 100.0 * (base - value) / base;
  };
  Improvements imp;
  imp.latency_pct = pct(baseline.mean_latency(), design.mean_latency());
  imp.congestion_pct = pct(static_cast<double>(baseline.max_link_transfers),
                           static_cast<double>(design.max_link_transfers));
  imp.origin_load_pct = pct(static_cast<double>(baseline.max_origin_served),
                            static_cast<double>(design.max_origin_served));
  return imp;
}

}  // namespace idicn::core
