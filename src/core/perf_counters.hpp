// Lightweight hot-path performance counters.
//
// The replica-routing hot path (HolderIndex queries, the simulator's
// decision loop) is instrumented with these counters so benches can report
// *why* a run was fast or slow (walk lengths, early exits, memo hits), not
// just how long it took. The layer is compiled out entirely unless the
// build defines IDICN_PERF_COUNTERS (the default CMake configuration turns
// it on; configure with -DIDICN_PERF_COUNTERS=OFF for peak-speed builds):
// every bump() inlines to nothing, and the struct degenerates to inert
// zero-valued fields, so instrumented call sites are zero-cost.
//
// Threading contract (see DESIGN.md §"Threading model"): a PerfCounters
// instance is owned by exactly one thread — the thread running the
// simulator, holder index, or hosted proxy that bumps it. The fields are
// deliberately plain integers, not atomics: turning every hot-path bump
// into a `lock add` would tax the very paths PR 1 optimized. Cross-thread
// aggregation happens only after the owning thread has been joined
// (compare_designs merges per-worker metrics after the pool joins; the
// runtime bench reads proxy.perf() after HostServer::stop()). Counters
// that genuinely need live cross-thread sampling belong in an observer
// Stats struct built on core::sync::RelaxedCounter instead (Proxy::Stats
// mirrors the byte counters that way).
//
// The IDICN_PERF_COUNTERS macro must not leak outside this header
// (enforced by tools/lint/idicn_lint.py) — code that needs to branch on
// the toggle uses `if constexpr (core::kPerfCountersEnabled)`.
#pragma once

#include <cstdint>

namespace idicn::core {

#if defined(IDICN_PERF_COUNTERS)
inline constexpr bool kPerfCountersEnabled = true;
#else
inline constexpr bool kPerfCountersEnabled = false;
#endif

struct PerfCounters {
  // --- HolderIndex -----------------------------------------------------
  std::uint64_t nearest_queries = 0;     ///< nearest()/nearest_within() calls
  std::uint64_t candidate_walks = 0;     ///< cost-ordered walks started
  std::uint64_t candidates_visited = 0;  ///< candidates examined across all queries
  std::uint64_t pops_scanned = 0;        ///< per-PoP buckets touched by queries
  std::uint64_t pops_pruned = 0;         ///< PoP buckets skipped via the cost bound
  std::uint64_t early_exits = 0;         ///< walks cut short before exhausting replicas
  std::uint64_t sorts_avoided = 0;       ///< queries answered without materialize+sort

  // --- Simulator decision loop ----------------------------------------
  std::uint64_t origin_cost_memo_hits = 0;  ///< origin distances answered from the memo

  // --- idICN edge proxy (§6) -------------------------------------------
  std::uint64_t proxy_bytes_served = 0;       ///< body bytes served to clients
  std::uint64_t proxy_bytes_from_origin = 0;  ///< body bytes fetched upstream

  /// Increment `field` by `n`; compiles to nothing when the layer is off.
  inline void bump(std::uint64_t PerfCounters::*field, std::uint64_t n = 1) noexcept {
    if constexpr (kPerfCountersEnabled) this->*field += n;
  }

  /// Accumulate another counter set (e.g. HolderIndex counters into the
  /// run's SimulationMetrics).
  void merge(const PerfCounters& other) noexcept {
    nearest_queries += other.nearest_queries;
    candidate_walks += other.candidate_walks;
    candidates_visited += other.candidates_visited;
    pops_scanned += other.pops_scanned;
    pops_pruned += other.pops_pruned;
    early_exits += other.early_exits;
    sorts_avoided += other.sorts_avoided;
    origin_cost_memo_hits += other.origin_cost_memo_hits;
    proxy_bytes_served += other.proxy_bytes_served;
    proxy_bytes_from_origin += other.proxy_bytes_from_origin;
  }

  void reset() noexcept { *this = PerfCounters{}; }
};

}  // namespace idicn::core
