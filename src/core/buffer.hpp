// Reference-counted body buffers for the zero-copy data path.
//
// A large object served to N concurrent clients used to be copied N+1
// times (one master copy in the content store plus one flat
// `conn.out` string per connection). Chunk makes the bytes themselves
// shared and immutable: the content store, every connection's output
// queue, and every in-flight upstream transfer hold references to the
// same heap block, so fan-out costs pointers, not memcpy. This is the
// userspace analogue of a segment-granular ICN content store
// (NDN-DPDK's CS holds packet mbufs by reference for the same reason).
//
// ChunkedBody is an ordered sequence of Chunks — the representation for
// bodies too large (or too incremental) for one flat std::string: a
// partially fetched object is a ChunkedBody that is still growing, and
// serving its prefix is just handing out the chunks admitted so far.
//
// Thread-safety: a Chunk's bytes are immutable after construction and the
// control block is std::shared_ptr, so Chunks may be copied and read from
// any thread. ChunkedBody itself is a plain container — guard it like any
// other mutable member.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace idicn::core {

/// One immutable, shared slab of body bytes.
class Chunk {
 public:
  Chunk() = default;

  /// Copy `bytes` into a fresh shared block.
  [[nodiscard]] static Chunk copy_of(std::string_view bytes) {
    Chunk chunk;
    chunk.data_ = std::make_shared<const std::string>(bytes);
    return chunk;
  }

  /// Adopt an existing string without copying its bytes.
  [[nodiscard]] static Chunk from_string(std::string bytes) {
    Chunk chunk;
    chunk.data_ = std::make_shared<const std::string>(std::move(bytes));
    return chunk;
  }

  [[nodiscard]] std::string_view view() const noexcept {
    return data_ ? std::string_view(*data_) : std::string_view();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return data_ ? data_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Readers sharing this block (0 for a default-constructed chunk).
  /// Approximate under concurrency — diagnostics and tests only.
  [[nodiscard]] long use_count() const noexcept { return data_.use_count(); }

 private:
  std::shared_ptr<const std::string> data_;
};

/// An ordered sequence of shared chunks: a body that can grow
/// incrementally and fan out without copying. Copying a ChunkedBody
/// copies chunk *references* (O(chunks)), never body bytes.
class ChunkedBody {
 public:
  void append(Chunk chunk) {
    if (chunk.empty()) return;
    size_ += chunk.size();
    chunks_.push_back(std::move(chunk));
  }
  void append_copy(std::string_view bytes) { append(Chunk::copy_of(bytes)); }

  /// Total body bytes across all chunks.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::vector<Chunk>& chunks() const noexcept {
    return chunks_;
  }

  /// Flatten into one contiguous string (copies — interop with code that
  /// needs a flat body; avoid on the serving path).
  [[nodiscard]] std::string to_string() const {
    std::string out;
    out.reserve(static_cast<std::size_t>(size_));
    for (const Chunk& chunk : chunks_) out.append(chunk.view());
    return out;
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Move the chunk sequence out, leaving this body empty.
  [[nodiscard]] std::vector<Chunk> take() {
    size_ = 0;
    return std::exchange(chunks_, {});
  }

 private:
  std::vector<Chunk> chunks_;
  std::uint64_t size_ = 0;
};

}  // namespace idicn::core
