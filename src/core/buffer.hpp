// Reference-counted body buffers for the zero-copy data path.
//
// A large object served to N concurrent clients used to be copied N+1
// times (one master copy in the content store plus one flat
// `conn.out` string per connection). Chunk makes the bytes themselves
// shared and immutable: the content store, every connection's output
// queue, and every in-flight upstream transfer hold references to the
// same heap block, so fan-out costs pointers, not memcpy. This is the
// userspace analogue of a segment-granular ICN content store
// (NDN-DPDK's CS holds packet mbufs by reference for the same reason).
//
// ChunkedBody is an ordered sequence of Chunks — the representation for
// bodies too large (or too incremental) for one flat std::string: a
// partially fetched object is a ChunkedBody that is still growing, and
// serving its prefix is just handing out the chunks admitted so far.
//
// Thread-safety: a Chunk's bytes are immutable after construction and the
// control block is std::shared_ptr, so Chunks may be copied and read from
// any thread. ChunkedBody itself is a plain container — guard it like any
// other mutable member.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace idicn::core {

/// One immutable, shared slab of body bytes — or a sub-view of one: a
/// sliced Chunk keeps the whole block alive but exposes only
/// [offset, offset+length), so ranged reads share the cache entry's
/// bytes instead of copying them.
class Chunk {
 public:
  Chunk() = default;

  /// Copy `bytes` into a fresh shared block.
  [[nodiscard]] static Chunk copy_of(std::string_view bytes) {
    Chunk chunk;
    chunk.data_ = std::make_shared<const std::string>(bytes);
    chunk.length_ = chunk.data_->size();
    return chunk;
  }

  /// Adopt an existing string without copying its bytes.
  [[nodiscard]] static Chunk from_string(std::string bytes) {
    Chunk chunk;
    chunk.data_ = std::make_shared<const std::string>(std::move(bytes));
    chunk.length_ = chunk.data_->size();
    return chunk;
  }

  [[nodiscard]] std::string_view view() const noexcept {
    return data_ ? std::string_view(*data_).substr(offset_, length_)
                 : std::string_view();
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_ ? length_ : 0; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// A sub-view [offset, offset+length) of this chunk sharing the same
  /// block (no copy). Out-of-range requests are clamped to the chunk's
  /// bounds; an empty result is a default-constructed (blockless) chunk.
  [[nodiscard]] Chunk slice(std::size_t offset, std::size_t length) const {
    if (!data_ || offset >= length_) return Chunk{};
    Chunk out;
    out.data_ = data_;
    out.offset_ = offset_ + offset;
    out.length_ = std::min(length, length_ - offset);
    return out;
  }

  /// Readers sharing this block (0 for a default-constructed chunk).
  /// Approximate under concurrency — diagnostics and tests only.
  [[nodiscard]] long use_count() const noexcept { return data_.use_count(); }

 private:
  std::shared_ptr<const std::string> data_;
  std::size_t offset_ = 0;  ///< view start within *data_
  std::size_t length_ = 0;  ///< view length (== data_->size() unless sliced)
};

/// An ordered sequence of shared chunks: a body that can grow
/// incrementally and fan out without copying. Copying a ChunkedBody
/// copies chunk *references* (O(chunks)), never body bytes.
class ChunkedBody {
 public:
  void append(Chunk chunk) {
    if (chunk.empty()) return;
    size_ += chunk.size();
    chunks_.push_back(std::move(chunk));
  }
  void append_copy(std::string_view bytes) { append(Chunk::copy_of(bytes)); }

  /// Total body bytes across all chunks.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::vector<Chunk>& chunks() const noexcept {
    return chunks_;
  }

  /// Flatten into one contiguous string (copies — interop with code that
  /// needs a flat body; avoid on the serving path).
  [[nodiscard]] std::string to_string() const {
    std::string out;
    out.reserve(static_cast<std::size_t>(size_));
    for (const Chunk& chunk : chunks_) out.append(chunk.view());
    return out;
  }

  /// The byte range [offset, offset+length) as a new ChunkedBody whose
  /// chunks share this body's blocks — boundary chunks become sub-views,
  /// interior chunks are reference-copied, nothing is memcpy'd. Requests
  /// past the end are clamped; a fully out-of-range request is empty.
  [[nodiscard]] ChunkedBody slice(std::uint64_t offset, std::uint64_t length) const {
    ChunkedBody out;
    if (offset >= size_ || length == 0) return out;
    std::uint64_t remaining = std::min<std::uint64_t>(length, size_ - offset);
    std::uint64_t position = 0;
    for (const Chunk& chunk : chunks_) {
      const std::uint64_t chunk_end = position + chunk.size();
      if (chunk_end <= offset) {
        position = chunk_end;
        continue;
      }
      const std::uint64_t start = offset > position ? offset - position : 0;
      const std::uint64_t take =
          std::min<std::uint64_t>(remaining, chunk.size() - start);
      out.append(chunk.slice(static_cast<std::size_t>(start),
                             static_cast<std::size_t>(take)));
      remaining -= take;
      if (remaining == 0) break;
      position = chunk_end;
    }
    return out;
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Move the chunk sequence out, leaving this body empty.
  [[nodiscard]] std::vector<Chunk> take() {
    size_ = 0;
    return std::exchange(chunks_, {});
  }

 private:
  std::vector<Chunk> chunks_;
  std::uint64_t size_ = 0;
};

}  // namespace idicn::core
