// The request-level simulator (§4.1–§4.2).
//
// Replays a bound workload over a hierarchical network under one caching
// design. Modeling choices follow the paper:
//   * request granularity — no packets, TCP, or router queueing;
//   * routing/lookup are free for ICN designs (conservatively generous);
//   * every cache-equipped node on the response path stores the object;
//   * latency = distance (hops, or weighted cost under non-uniform latency
//     models) between the arrival leaf and the serving node;
//   * congestion = per-link count of object transfers (responses);
//   * origin load = per-PoP count of requests served from origin stores;
//   * optional per-cache serving capacity: an overloaded cache passes the
//     request to the next cache on the query path / next-nearest replica
//     (§5 "request serving capacity").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <random>

#include "cache/budget.hpp"
#include "cache/cache.hpp"
#include "core/bound_workload.hpp"
#include "core/design.hpp"
#include "core/holder_index.hpp"
#include "core/metrics.hpp"
#include "core/origin_map.hpp"
#include "topology/network.hpp"

namespace idicn::core {

struct SimulationConfig {
  /// Per-router capacity as a fraction of the object universe (F, §4.1).
  double budget_fraction = 0.05;
  cache::BudgetSplit split = cache::BudgetSplit::PopulationProportional;
  OriginAssignment origin_assignment = OriginAssignment::PopulationProportional;
  std::uint64_t seed = 42;  ///< cache-policy internal randomness (RANDOM)

  /// Steady-state methodology. The paper simulates one day of a CDN that
  /// has been running long before the measurement window, so caches are
  /// warm. We model that by (a) prefilling every finite cache with the most
  /// popular objects of its PoP's ranking (the LRU fixed point under
  /// leave-copy-everywhere) and (b) replaying the first `warmup_fraction`
  /// of the workload without recording metrics. Cold-start runs (both
  /// knobs off) heavily overstate the value of interior caches, because
  /// interior nodes aggregate request streams and warm much faster than
  /// the edge. Infinite caches are never prefilled.
  bool prefill = true;
  double warmup_fraction = 0.25;

  /// When set, each cache may serve at most this many requests per window
  /// of `capacity_window` consecutive requests.
  std::optional<std::uint32_t> serving_capacity;
  std::uint32_t capacity_window = 1000;
};

/// One design × one network × one workload run. Construct fresh per run —
/// cache state is not reusable across workloads.
class Simulator {
public:
  /// Throws std::invalid_argument when `config` is out of range
  /// (warmup_fraction outside [0, 1), budget_fraction outside (0, 1], or
  /// capacity_window == 0) — validated here, before any prefill or replay
  /// work, so a bad config can never burn work or mutate cache state first.
  Simulator(const topology::HierarchicalNetwork& network, const OriginMap& origins,
            DesignSpec design, SimulationConfig config);

  /// Replay the workload and return the metrics.
  [[nodiscard]] SimulationMetrics run(const BoundWorkload& workload);

  /// True when this design equips `node` with a cache (regardless of
  /// whether its budget rounded to zero).
  [[nodiscard]] bool is_cache_site(topology::GlobalNodeId node) const;

  /// The cache at `node`, or nullptr (exposed for tests).
  [[nodiscard]] const cache::Cache* cache_at(topology::GlobalNodeId node) const {
    return caches_[node].get();
  }

  /// The replica index, or nullptr for shortest-path-only designs
  /// (exposed for tests: the consistency suite cross-checks it against a
  /// brute-force scan of every cache).
  [[nodiscard]] const HolderIndex* holder_index() const {
    return holders_ ? &*holders_ : nullptr;
  }

  /// Test/debug hook: invoked after each request — and all of its cache
  /// and holder-index mutations — with the request's index in the
  /// workload. Costs one predicted branch per request when unset.
  void set_request_observer(std::function<void(std::size_t)> observer) {
    request_observer_ = std::move(observer);
  }

private:
  struct ServeDecision {
    topology::GlobalNodeId node = 0;
    bool from_origin = false;
    bool via_sibling = false;
  };

  [[nodiscard]] ServeDecision decide_shortest_path(const BoundRequest& request,
                                                   topology::GlobalNodeId leaf_node,
                                                   topology::GlobalNodeId origin_node);
  [[nodiscard]] ServeDecision decide_nearest_replica(const BoundRequest& request,
                                                     topology::GlobalNodeId leaf_node,
                                                     topology::GlobalNodeId origin_node,
                                                     double origin_cost);

  /// Memoized distance(leaf of `pop`, root of `origin_pop`): every leaf
  /// sits at the same level, so the origin cost depends only on the PoP
  /// pair, and the replica-routing decision loop would otherwise recompute
  /// the same LCA walk for every request.
  [[nodiscard]] double origin_cost(topology::PopId pop, topology::PopId origin_pop) {
    metrics_.perf.bump(&PerfCounters::origin_cost_memo_hits);
    return origin_cost_[static_cast<std::size_t>(pop) * network_.pop_count() +
                        origin_pop];
  }
  /// Store along the response path per the design's CacheDecision.
  void apply_cache_decision(const std::vector<topology::GlobalNodeId>& response,
                            std::uint32_t object, std::uint64_t size,
                            topology::PopId origin_pop);
  [[nodiscard]] std::optional<ServeDecision> try_local(const BoundRequest& request,
                                                       topology::GlobalNodeId leaf_node);

  [[nodiscard]] bool has_serving_capacity(topology::GlobalNodeId node) const;
  void note_served(topology::GlobalNodeId node);

  /// Insert `object` into the cache at `node` (if any), keeping the holder
  /// index in sync. Never caches an object into its own origin's regular
  /// cache (the origin store already holds it).
  void store_on_path(std::uint32_t object, std::uint64_t size,
                     topology::GlobalNodeId node, topology::PopId origin_pop);

  /// Fill every finite cache with the top objects of its PoP's popularity
  /// order (most popular ends most-recently-used).
  void prefill(const BoundWorkload& workload);

  const topology::HierarchicalNetwork& network_;
  const OriginMap& origins_;
  DesignSpec design_;
  SimulationConfig config_;

  std::vector<std::unique_ptr<cache::Cache>> caches_;
  std::optional<HolderIndex> holders_;  ///< engaged for replica routing modes
  std::vector<double> origin_cost_;  ///< leaf→origin-root cost per PoP pair
  std::function<void(std::size_t)> request_observer_;  ///< test hook
  std::vector<std::uint32_t> served_in_window_;
  std::uint64_t window_cursor_ = 0;
  std::vector<cache::ObjectId> eviction_scratch_;
  std::mt19937_64 decision_rng_{0};  ///< probabilistic cache decision coins
  SimulationMetrics metrics_;
};

/// Convenience: construct and run in one call.
[[nodiscard]] SimulationMetrics run_design(const topology::HierarchicalNetwork& network,
                                           const OriginMap& origins,
                                           const DesignSpec& design,
                                           const SimulationConfig& config,
                                           const BoundWorkload& workload);

}  // namespace idicn::core
