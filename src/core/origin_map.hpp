// Origin assignment (§4.1).
//
// Each PoP serves as the origin server for a subset of the object universe;
// the number of objects it owns is proportional to its metro population
// (the paper also validates a uniform assignment). An origin PoP hosts its
// objects in an unbounded origin store at its root router, in addition to
// that router's regular bounded cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/network.hpp"

namespace idicn::core {

enum class OriginAssignment { PopulationProportional, Uniform };

[[nodiscard]] std::string to_string(OriginAssignment assignment);

/// object → owning PoP.
class OriginMap {
public:
  OriginMap(const topology::HierarchicalNetwork& network, std::uint32_t object_count,
            OriginAssignment assignment, std::uint64_t seed);

  [[nodiscard]] topology::PopId origin_pop(std::uint32_t object) const {
    return origin_.at(object);
  }
  [[nodiscard]] std::uint32_t object_count() const noexcept {
    return static_cast<std::uint32_t>(origin_.size());
  }

  /// Number of objects owned by each PoP.
  [[nodiscard]] std::vector<std::uint32_t> objects_per_pop(
      topology::PopId pop_count) const;

private:
  std::vector<topology::PopId> origin_;
};

}  // namespace idicn::core
