#include "core/origin_map.hpp"

#include <random>

namespace idicn::core {

std::string to_string(OriginAssignment assignment) {
  switch (assignment) {
    case OriginAssignment::PopulationProportional: return "population-proportional";
    case OriginAssignment::Uniform: return "uniform";
  }
  return "unknown";
}

OriginMap::OriginMap(const topology::HierarchicalNetwork& network,
                     std::uint32_t object_count, OriginAssignment assignment,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const topology::PopId pops = network.pop_count();
  origin_.resize(object_count);

  if (assignment == OriginAssignment::Uniform) {
    std::uniform_int_distribution<topology::PopId> pick(0, pops - 1);
    for (std::uint32_t o = 0; o < object_count; ++o) origin_[o] = pick(rng);
    return;
  }

  // Population-proportional: weighted sampling via the cumulative weights.
  std::vector<double> cumulative(pops);
  double total = 0.0;
  for (topology::PopId p = 0; p < pops; ++p) {
    total += network.core().node(p).population;
    cumulative[p] = total;
  }
  std::uniform_real_distribution<double> uniform(0.0, total);
  for (std::uint32_t o = 0; o < object_count; ++o) {
    const double u = uniform(rng);
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    origin_[o] = static_cast<topology::PopId>(it - cumulative.begin());
  }
}

std::vector<std::uint32_t> OriginMap::objects_per_pop(topology::PopId pop_count) const {
  std::vector<std::uint32_t> counts(pop_count, 0);
  for (const topology::PopId p : origin_) ++counts[p];
  return counts;
}

}  // namespace idicn::core
