// Simulation outputs (§4.2): response latency, per-link congestion, and
// origin server load, plus diagnostic breakdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/perf_counters.hpp"

namespace idicn::core {

struct SimulationMetrics {
  std::string design_name;
  std::uint64_t request_count = 0;

  // Latency: the paper reports hops; under non-uniform latency models the
  // weighted cost and the raw hop count diverge, so we track both.
  double total_latency = 0.0;
  std::uint64_t total_hops = 0;

  // Congestion: object transfers per link ("the congestion on a link is
  // measured as the number of object transfers traversing that link").
  std::vector<std::uint64_t> link_transfers;
  std::vector<double> link_bytes;  ///< size-weighted variant
  std::uint64_t max_link_transfers = 0;
  double max_link_bytes = 0.0;

  // Origin load: requests served by each origin PoP from its origin store.
  std::vector<std::uint64_t> origin_served;
  std::uint64_t max_origin_served = 0;
  std::uint64_t total_origin_served = 0;

  // Per-PoP latency breakdown (the §4.3 incremental-deployment analysis:
  // a deploying PoP's benefit must not depend on other PoPs deploying).
  std::vector<double> pop_latency;          ///< summed request latency per pop
  std::vector<std::uint64_t> pop_requests;  ///< measured requests per pop

  [[nodiscard]] double pop_mean_latency(std::size_t pop) const {
    return pop_requests[pop] ? pop_latency[pop] /
                                   static_cast<double>(pop_requests[pop])
                             : 0.0;
  }

  // Serving-location breakdown: served_per_level[l] = requests served by a
  // cache at tree level l (0 = pop root … depth = leaf); origin serves are
  // counted separately in total_origin_served.
  std::vector<std::uint64_t> served_per_level;
  std::uint64_t own_leaf_hits = 0;   ///< served by the arrival leaf itself
  std::uint64_t sibling_hits = 0;    ///< served via scoped sibling cooperation
  std::uint64_t cache_hits = 0;      ///< all cache-served requests
  std::uint64_t capacity_redirects = 0;  ///< serves skipped due to overload

  // Hot-path instrumentation for the run (holder-index walk lengths, memo
  // hits, …). All-zero when built with -DIDICN_PERF_COUNTERS=OFF.
  PerfCounters perf;

  [[nodiscard]] double mean_latency() const {
    return request_count ? total_latency / static_cast<double>(request_count) : 0.0;
  }
  [[nodiscard]] double mean_hops() const {
    return request_count
               ? static_cast<double>(total_hops) / static_cast<double>(request_count)
               : 0.0;
  }
  [[nodiscard]] double cache_hit_ratio() const {
    return request_count
               ? static_cast<double>(cache_hits) / static_cast<double>(request_count)
               : 0.0;
  }
};

/// Normalized improvements over the no-cache baseline (§4.2): higher is
/// better; each is 100·(base − value)/base.
struct Improvements {
  double latency_pct = 0.0;
  double congestion_pct = 0.0;
  double origin_load_pct = 0.0;
};

[[nodiscard]] Improvements compute_improvements(const SimulationMetrics& baseline,
                                                const SimulationMetrics& design);

}  // namespace idicn::core
