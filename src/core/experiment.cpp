#include "core/experiment.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

#include "core/sync.hpp"

namespace idicn::core {

Improvements ComparisonResult::gap(std::size_t a, std::size_t b) const {
  const Improvements& ia = designs.at(a).improvements;
  const Improvements& ib = designs.at(b).improvements;
  Improvements g;
  g.latency_pct = ia.latency_pct - ib.latency_pct;
  g.congestion_pct = ia.congestion_pct - ib.congestion_pct;
  g.origin_load_pct = ia.origin_load_pct - ib.origin_load_pct;
  return g;
}

const DesignResult& ComparisonResult::by_name(const std::string& name) const {
  for (const DesignResult& r : designs) {
    if (r.design.name == name) return r;
  }
  throw std::out_of_range("ComparisonResult::by_name: " + name);
}

ComparisonResult compare_designs(const topology::HierarchicalNetwork& network,
                                 const OriginMap& origins,
                                 const std::vector<DesignSpec>& designs,
                                 const SimulationConfig& config,
                                 const BoundWorkload& workload,
                                 unsigned max_parallelism) {
  if (max_parallelism == 0) {
    max_parallelism = std::max(1u, sync::Thread::hardware_concurrency());
  }

  ComparisonResult result;
  result.designs.resize(designs.size());

  // The baseline plus each design, as independent work items over shared
  // read-only inputs. A simple atomic work queue keeps ordering
  // deterministic (results land at fixed indices). A throwing work item
  // must not unwind out of its worker thread (that would std::terminate
  // the process): each item's exception is captured at its fixed index and
  // the first one — by work-item order, so deterministically — is rethrown
  // on the calling thread after all workers have joined.
  std::atomic<std::size_t> next{0};
  const std::size_t total = designs.size() + 1;
  std::vector<std::exception_ptr> errors(total);
  const auto worker = [&]() {
    while (true) {
      const std::size_t index = next.fetch_add(1);
      if (index >= total) return;
      try {
        if (index == 0) {
          result.baseline = run_design(network, origins, no_cache(), config, workload);
        } else {
          DesignResult& r = result.designs[index - 1];
          r.design = designs[index - 1];
          r.metrics = run_design(network, origins, r.design, config, workload);
        }
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  const unsigned thread_count =
      static_cast<unsigned>(std::min<std::size_t>(max_parallelism, total));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<sync::Thread> pool;
    pool.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) pool.emplace_back(worker);
    for (sync::Thread& t : pool) t.join();
  }

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  for (DesignResult& r : result.designs) {
    r.improvements = compute_improvements(result.baseline, r.metrics);
  }
  return result;
}

}  // namespace idicn::core
