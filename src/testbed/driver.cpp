#include "testbed/driver.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "runtime/http_client.hpp"

namespace idicn::testbed {
namespace {

/// Cap on TestbedMetrics::error_samples — enough to see a pattern.
constexpr std::size_t kMaxErrorSamples = 8;

}  // namespace

core::BoundWorkload TraceDriver::bind() const {
  core::SyntheticWorkloadSpec spec;
  spec.request_count = options_.request_count;
  spec.object_count = cluster_.options().object_count;
  spec.alpha = options_.alpha;
  spec.spatial_skew = options_.spatial_skew;
  spec.seed = options_.seed;
  return core::bind_synthetic(cluster_.network(), spec);
}

TestbedMetrics TraceDriver::run(const core::BoundWorkload& workload) {
  const topology::HierarchicalNetwork& network = cluster_.network();
  const topology::PopId pops = network.pop_count();

  TestbedMetrics metrics;
  metrics.scenario = cluster_.options().cooperation ? "EDGE-Coop" : "EDGE";
  metrics.topology = cluster_.options().topology;
  metrics.core_link_transfers.assign(network.core().link_count(), 0);
  metrics.pops.resize(pops);
  for (topology::PopId p = 0; p < pops; ++p) {
    metrics.pops[p].name = cluster_.pop_name(p);
  }

  // One keep-alive client per PoP, dialing that PoP's proxy — the "home
  // proxy" every request of the PoP flows through.
  std::vector<std::unique_ptr<runtime::HttpClient>> clients;
  clients.reserve(pops);
  for (topology::PopId p = 0; p < pops; ++p) {
    clients.push_back(std::make_unique<runtime::HttpClient>(
        "127.0.0.1", cluster_.proxy_port(p)));
  }

  // Ranged-read coin flips ride a private RNG so enabling them never
  // perturbs the workload binding itself.
  std::mt19937_64 range_rng(options_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const std::uint64_t object_bytes = cluster_.options().object_bytes;
  const std::uint64_t range_first = object_bytes / 3;
  const std::uint64_t range_last =
      std::max<std::uint64_t>(range_first, (2 * object_bytes) / 3);

  const auto run_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < workload.requests.size(); ++i) {
    if (options_.hint_interval != 0 && i != 0 &&
        i % options_.hint_interval == 0) {
      cluster_.exchange_hints();
    }

    const core::BoundRequest& bound = workload.requests[i];
    const std::string& host = cluster_.object_host(bound.object);
    net::HttpRequest request;
    request.method = "GET";
    request.target = "http://" + host + "/";

    const bool ranged = options_.ranged_fraction > 0.0 &&
                        coin(range_rng) < options_.ranged_fraction;
    if (ranged) {
      request.headers.set("Range", "bytes=" + std::to_string(range_first) +
                                       "-" + std::to_string(range_last));
      ++metrics.ranged_requests;
    }

    PopMetrics& pop = metrics.pops[bound.pop];
    ++pop.requests;
    ++metrics.request_count;

    const auto sent = std::chrono::steady_clock::now();
    std::string transport_error;
    const auto response = clients[bound.pop]->request(request, &transport_error);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - sent)
            .count();
    pop.wall_latency_ms += elapsed_ms;
    metrics.wall_latency_ms += elapsed_ms;

    if (!response || (response->status != 200 && response->status != 206)) {
      ++pop.errors;
      ++metrics.errors;
      if (metrics.error_samples.size() < kMaxErrorSamples) {
        metrics.error_samples.push_back(
            pop.name + " #" + std::to_string(i) + " " +
            (response ? "status " + std::to_string(response->status)
                      : transport_error));
      }
      continue;
    }
    if (ranged && response->status == 206) ++metrics.ranged_206;

    const std::string cache = response->headers.get("X-Cache").value_or("");
    if (cache == "HIT") {
      ++pop.hits;
      ++metrics.hits;
    } else if (cache == "STREAM") {
      ++pop.stream_joins;
      ++metrics.stream_joins;
    } else if (cache == "SIBLING") {
      ++pop.sibling_serves;
      ++metrics.sibling_serves;
    } else {
      ++pop.misses;
      ++metrics.misses;
    }

    // Model-unit accounting off the serving source: a response fetched
    // from another PoP (origin tier or sibling proxy) costs the core path
    // between the two PoPs; locally-served responses cost 0.
    if (const auto source = response->headers.get(idicn::kSourceHeader)) {
      const auto source_pop = cluster_.source_pop(*source);
      if (source_pop && *source_pop != bound.pop) {
        const double cost = network.core_cost(bound.pop, *source_pop);
        pop.core_cost += cost;
        metrics.core_cost += cost;
        const auto path = network.core_paths().path(*source_pop, bound.pop);
        for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
          const topology::LinkId link =
              network.core().link_between(path[hop], path[hop + 1]);
          ++metrics.core_link_transfers[link];
        }
      }
    }
  }
  metrics.duration_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - run_start)
                           .count();

  for (topology::PopId p = 0; p < pops; ++p) {
    const auto& stats = cluster_.proxy(p).stats();
    metrics.hints_sent += stats.hints_sent;
    metrics.hints_received += stats.hints_received;
  }
  const auto served = cluster_.origin_served_per_pop();
  for (topology::PopId p = 0; p < pops; ++p) {
    metrics.pops[p].origin_served = served[p];
    metrics.origin_served += served[p];
  }
  for (const std::uint64_t transfers : metrics.core_link_transfers) {
    metrics.max_link_transfers = std::max(metrics.max_link_transfers, transfers);
  }
  return metrics;
}

}  // namespace idicn::testbed
