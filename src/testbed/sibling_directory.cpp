#include "testbed/sibling_directory.hpp"

#include <algorithm>

namespace idicn::testbed {

namespace {
constexpr topology::PopId kNoOrigin = static_cast<topology::PopId>(-1);
}  // namespace

ClusterDirectory::ClusterDirectory(const topology::HierarchicalNetwork& network,
                                   std::size_t max_entries_per_pop)
    : network_(&network),
      max_entries_per_pop_(max_entries_per_pop),
      advertised_(network.pop_count()),
      index_(network),
      addresses_(network.pop_count()) {}

void ClusterDirectory::set_address(topology::PopId pop, net::Address address) {
  const core::sync::MutexLock lock(mutex_);
  addresses_.at(pop) = address;
  pops_by_address_[std::move(address)] = pop;
}

void ClusterDirectory::set_origin(const std::string& host, topology::PopId pop) {
  const core::sync::MutexLock lock(mutex_);
  origin_pop_.at(intern(host)) = pop;
}

std::uint32_t ClusterDirectory::intern(const std::string& host) {
  const auto [it, inserted] =
      host_ids_.emplace(host, static_cast<std::uint32_t>(hosts_by_id_.size()));
  if (inserted) {
    hosts_by_id_.push_back(host);
    origin_pop_.push_back(kNoOrigin);
  }
  return it->second;
}

void ClusterDirectory::ingest(topology::PopId sender,
                              const std::vector<std::string>& hosts) {
  const core::sync::MutexLock lock(mutex_);
  std::set<std::uint32_t> fresh;
  for (const std::string& host : hosts) {
    if (fresh.size() >= max_entries_per_pop_) break;  // digest-size bound
    fresh.insert(intern(host));
  }
  // Full-digest semantics: diff against the previous advertisement so the
  // holder index mirrors exactly what the sender claims *now*.
  std::set<std::uint32_t>& current = advertised_.at(sender);
  const topology::GlobalNodeId node = holder_node(sender);
  for (const std::uint32_t id : current) {
    if (!fresh.contains(id)) index_.remove(id, node);
  }
  for (const std::uint32_t id : fresh) {
    if (!current.contains(id)) index_.add(id, node);
  }
  current = std::move(fresh);
}

void ClusterDirectory::forget(topology::PopId sender, const std::string& host) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = host_ids_.find(host);
  if (it == host_ids_.end()) return;
  std::set<std::uint32_t>& current = advertised_.at(sender);
  if (current.erase(it->second) != 0) {
    index_.remove(it->second, holder_node(sender));
  }
}

std::vector<net::Address> ClusterDirectory::holders_for(topology::PopId asker,
                                                        const std::string& host) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = host_ids_.find(host);
  if (it == host_ids_.end()) return {};
  // Inclusive origin-cost bound, mirroring the simulator's nearest-replica
  // acceptance (`cost <= origin_cost`): equidistant siblings are still
  // preferred over the origin (they offload it), farther ones never.
  double max_cost = core::HolderIndex::kUnbounded;
  if (const topology::PopId origin = origin_pop_.at(it->second);
      origin != kNoOrigin) {
    max_cost = network_->core_cost(asker, origin);
  }
  std::vector<net::Address> out;
  auto walk = index_.walk(it->second, holder_node(asker), max_cost);
  while (const auto candidate = walk.next()) {
    const topology::PopId pop = network_->pop_of(candidate->node);
    if (pop == asker) continue;  // own cache already missed
    if (!addresses_.at(pop).empty()) out.push_back(addresses_.at(pop));
  }
  return out;
}

std::optional<topology::PopId> ClusterDirectory::pop_of(
    const net::Address& address) const {
  const core::sync::MutexLock lock(mutex_);
  const auto it = pops_by_address_.find(address);
  if (it == pops_by_address_.end()) return std::nullopt;
  return it->second;
}

std::size_t ClusterDirectory::entry_count() const {
  const core::sync::MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& set : advertised_) total += set.size();
  return total;
}

}  // namespace idicn::testbed
