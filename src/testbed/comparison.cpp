#include "testbed/comparison.hpp"

#include <cmath>
#include <cstdio>

namespace idicn::testbed {

core::DesignSpec counterpart_design(bool cooperation) {
  core::DesignSpec design = core::edge();
  if (cooperation) {
    // The oracle upper bound of the hint protocol: leaf caches with
    // zero-cost, always-current nearest-replica lookup.
    design.name = "EDGE-Coop-NR";
    design.routing = core::Routing::NearestReplica;
  }
  return design;
}

core::SimulationConfig counterpart_config(const ClusterOptions& options) {
  core::SimulationConfig config;
  config.budget_fraction = options.cache_fraction;
  config.split = cache::BudgetSplit::Uniform;
  config.origin_assignment = options.origin_assignment;
  config.seed = options.seed;
  // The testbed starts cold; so must its counterpart.
  config.prefill = false;
  config.warmup_fraction = 0.0;
  return config;
}

std::string ComparisonResult::summary() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "%s: origin load testbed=%llu sim=%llu (gap %.2f%%), "
                "cache-served testbed=%llu sim=%llu",
                simulated.design_name.c_str(),
                static_cast<unsigned long long>(testbed_origin_served),
                static_cast<unsigned long long>(simulated_origin_served),
                origin_load_gap_pct,
                static_cast<unsigned long long>(testbed_cache_served),
                static_cast<unsigned long long>(simulated_cache_served));
  return buffer;
}

ComparisonResult compare_with_simulator(const Cluster& cluster,
                                        const core::BoundWorkload& workload,
                                        const TestbedMetrics& testbed) {
  ComparisonResult result;
  result.simulated = core::run_design(
      cluster.network(), cluster.origins(),
      counterpart_design(cluster.options().cooperation),
      counterpart_config(cluster.options()), workload);
  result.testbed_origin_served = testbed.origin_served;
  result.simulated_origin_served = result.simulated.total_origin_served;
  result.testbed_cache_served =
      testbed.hits + testbed.stream_joins + testbed.sibling_serves;
  result.simulated_cache_served = result.simulated.cache_hits;
  if (result.simulated_origin_served != 0) {
    const double testbed_load =
        static_cast<double>(result.testbed_origin_served);
    const double simulated_load =
        static_cast<double>(result.simulated_origin_served);
    result.origin_load_gap_pct =
        100.0 * std::abs(testbed_load - simulated_load) / simulated_load;
  }
  return result;
}

}  // namespace idicn::testbed
