// Trace driver: replays a bound synthetic workload through a Cluster's
// real sockets.
//
// Each core::BoundRequest is issued as an absolute-form GET through a
// keep-alive runtime::HttpClient pinned to the request's home PoP — exactly
// the browser-behind-a-configured-proxy shape the paper's deployment story
// assumes. The driver replays sequentially (like the simulator), pushes a
// full hint-exchange round every `hint_interval` requests, and optionally
// dresses a fraction of requests with Range headers to exercise the
// 206 Partial Content path end to end.
//
// Accounting mirrors the simulator's units: wall-clock latency is measured
// at the client; model latency (core hops) and per-core-link congestion are
// derived from each response's X-IdICN-Source header by walking the
// shortest core path from the serving PoP to the requesting PoP.
#pragma once

#include <cstdint>

#include "core/bound_workload.hpp"
#include "testbed/cluster.hpp"
#include "testbed/metrics.hpp"

namespace idicn::testbed {

struct DriverOptions {
  std::uint64_t request_count = 2'000;
  double alpha = 0.9;          ///< Zipf exponent
  double spatial_skew = 0.0;   ///< per-PoP rank permutation intensity
  std::uint64_t seed = 1;
  /// Requests between full digest-exchange rounds (0 = hints never flow —
  /// with cooperation wired, the directory then simply stays empty).
  std::uint64_t hint_interval = 100;
  /// Fraction of requests issued with a Range header (middle-third slice).
  double ranged_fraction = 0.0;
};

class TraceDriver {
public:
  TraceDriver(Cluster& cluster, DriverOptions options)
      : cluster_(cluster), options_(options) {}

  /// Bind the synthetic workload on the cluster's counterpart network. The
  /// result feeds both run() and the simulator comparison — identical
  /// request sequences by construction.
  [[nodiscard]] core::BoundWorkload bind() const;

  /// Replay `workload` through the sockets and collect metrics.
  [[nodiscard]] TestbedMetrics run(const core::BoundWorkload& workload);

private:
  Cluster& cluster_;
  DriverOptions options_;
};

}  // namespace idicn::testbed
