#include "testbed/metrics.hpp"

#include <cstdio>

namespace idicn::testbed {
namespace {

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool trailing_comma = true) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
  if (trailing_comma) out += ",";
}

void append_kv(std::string& out, const char* key, double value,
               bool trailing_comma = true) {
  out += "\"";
  out += key;
  out += "\":";
  out += json_number(value);
  if (trailing_comma) out += ",";
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool trailing_comma = true) {
  // Values here are topology/PoP names and scenario labels — plain ASCII
  // identifiers, no escaping needed.
  out += "\"";
  out += key;
  out += "\":\"";
  out += value;
  out += "\"";
  if (trailing_comma) out += ",";
}

/// Minimal JSON string escape for error samples, which carry free-form
/// transport error text (names and labels elsewhere stay unescaped ASCII).
std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TestbedMetrics::to_json() const {
  std::string out = "{";
  append_kv(out, "scenario", scenario);
  append_kv(out, "topology", topology);
  append_kv(out, "request_count", request_count);
  append_kv(out, "hits", hits);
  append_kv(out, "misses", misses);
  append_kv(out, "stream_joins", stream_joins);
  append_kv(out, "sibling_serves", sibling_serves);
  append_kv(out, "errors", errors);
  append_kv(out, "ranged_requests", ranged_requests);
  append_kv(out, "ranged_206", ranged_206);
  append_kv(out, "hit_ratio", hit_ratio());
  append_kv(out, "wall_latency_ms", wall_latency_ms);
  append_kv(out, "mean_wall_latency_ms", mean_wall_latency_ms());
  append_kv(out, "core_cost", core_cost);
  append_kv(out, "mean_core_cost", mean_core_cost());
  append_kv(out, "max_link_transfers", max_link_transfers);
  append_kv(out, "origin_served", origin_served);
  append_kv(out, "hints_sent", hints_sent);
  append_kv(out, "hints_received", hints_received);
  append_kv(out, "duration_s", duration_s);

  out += "\"error_samples\":[";
  for (std::size_t i = 0; i < error_samples.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += json_escape(error_samples[i]);
    out += "\"";
  }
  out += "],";

  out += "\"core_link_transfers\":[";
  for (std::size_t i = 0; i < core_link_transfers.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(core_link_transfers[i]);
  }
  out += "],";

  out += "\"pops\":[";
  for (std::size_t i = 0; i < pops.size(); ++i) {
    const PopMetrics& pop = pops[i];
    if (i) out += ",";
    out += "{";
    append_kv(out, "name", pop.name);
    append_kv(out, "requests", pop.requests);
    append_kv(out, "hits", pop.hits);
    append_kv(out, "misses", pop.misses);
    append_kv(out, "stream_joins", pop.stream_joins);
    append_kv(out, "sibling_serves", pop.sibling_serves);
    append_kv(out, "errors", pop.errors);
    append_kv(out, "wall_latency_ms", pop.wall_latency_ms);
    append_kv(out, "core_cost", pop.core_cost);
    append_kv(out, "origin_served", pop.origin_served, /*trailing_comma=*/false);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace idicn::testbed
