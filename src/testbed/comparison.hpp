// Simulator ⇄ testbed diff harness.
//
// The testbed's acceptance bar is agreement with the in-process simulator
// on the identical bound workload: the EDGE deployment (no cooperation) is
// deterministic end to end — same LRU, same cold start, same request
// sequence — so its origin load should match the simulator *exactly*; the
// EDGE-Coop deployment replaces the simulator's oracle nearest-replica
// lookup with lagged hints, a hop limit, and bounded fanout, so its origin
// load sits between EDGE's and the oracle's. compare_with_simulator() runs
// the counterpart design and reports the gap.
#pragma once

#include <string>

#include "core/design.hpp"
#include "core/metrics.hpp"
#include "core/simulator.hpp"
#include "testbed/cluster.hpp"
#include "testbed/metrics.hpp"

namespace idicn::testbed {

/// The simulator design a testbed scenario corresponds to: core::edge()
/// as-is for plain EDGE, or with oracle nearest-replica routing for
/// EDGE-Coop (the zero-lag upper bound on what hints can achieve).
[[nodiscard]] core::DesignSpec counterpart_design(bool cooperation);

/// The simulator configuration matching a cluster: same budget fraction
/// (uniform split), same origin assignment and seed, cold start (no
/// prefill, no warmup) — the testbed starts cold too.
[[nodiscard]] core::SimulationConfig counterpart_config(
    const ClusterOptions& options);

struct ComparisonResult {
  core::SimulationMetrics simulated;
  std::uint64_t testbed_origin_served = 0;
  std::uint64_t simulated_origin_served = 0;
  /// |testbed − simulated| / simulated, in percent (0 when both are 0).
  double origin_load_gap_pct = 0.0;
  std::uint64_t testbed_cache_served = 0;    ///< HIT + STREAM + SIBLING
  std::uint64_t simulated_cache_served = 0;  ///< simulator cache_hits

  /// One-line human summary (the caller prints it; this library never does).
  [[nodiscard]] std::string summary() const;
};

/// Run the counterpart simulation of `cluster` on `workload` and diff it
/// against the testbed metrics collected from the same workload.
[[nodiscard]] ComparisonResult compare_with_simulator(
    const Cluster& cluster, const core::BoundWorkload& workload,
    const TestbedMetrics& testbed);

}  // namespace idicn::testbed
