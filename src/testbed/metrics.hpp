// Testbed run metrics (the socket-level counterpart of core::SimulationMetrics).
//
// A TraceDriver run produces one TestbedMetrics: per-request wall-clock
// latency as measured by the clients, the *model* core cost implied by each
// response's X-IdICN-Source header (so socketed runs report the same
// latency unit the simulator does), per-core-link transfer counts, origin
// load, and the X-Cache serving breakdown (HIT / MISS / STREAM / SIBLING).
// to_json() renders the whole struct as a JSON string — callers (bench
// binaries, the CLI) decide where the bytes go; this library never prints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace idicn::testbed {

/// Per-PoP slice of a run, indexed by topology::PopId.
struct PopMetrics {
  std::string name;                 ///< core-graph PoP name (e.g. "Denver")
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;           ///< X-Cache: HIT at the home proxy
  std::uint64_t misses = 0;         ///< fetched upstream (X-Cache: MISS)
  std::uint64_t stream_joins = 0;   ///< joined an in-flight fetch (STREAM)
  std::uint64_t sibling_serves = 0; ///< served via a sibling PoP (SIBLING)
  std::uint64_t errors = 0;
  double wall_latency_ms = 0.0;     ///< summed client-observed latency
  double core_cost = 0.0;           ///< summed model core cost (sim latency unit)
  std::uint64_t origin_served = 0;  ///< requests this PoP's origin tier served
};

struct TestbedMetrics {
  std::string scenario;   ///< "EDGE" or "EDGE-Coop"
  std::string topology;   ///< core topology name ("Abilene", "Geant", …)

  std::uint64_t request_count = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stream_joins = 0;
  std::uint64_t sibling_serves = 0;
  std::uint64_t errors = 0;

  // Ranged-read exercise (satellite of the streaming data path): how many
  // requests carried a Range header and how many came back 206.
  std::uint64_t ranged_requests = 0;
  std::uint64_t ranged_206 = 0;

  double wall_latency_ms = 0.0;  ///< summed client-observed latency
  double core_cost = 0.0;        ///< summed model core cost across requests

  /// Object transfers per core link (indexed by the core graph's LinkId),
  /// charged along the shortest core path between the serving PoP (per
  /// X-IdICN-Source) and the requesting PoP — the simulator's congestion
  /// metric restricted to core links.
  std::vector<std::uint64_t> core_link_transfers;
  std::uint64_t max_link_transfers = 0;

  std::uint64_t origin_served = 0;  ///< requests answered by the origin tier
  std::uint64_t hints_sent = 0;
  std::uint64_t hints_received = 0;

  double duration_s = 0.0;  ///< wall clock for the whole replay

  /// First few transport/status failures, as "<pop> #<request> <reason>" —
  /// enough to diagnose a nonzero `errors` without rerunning.
  std::vector<std::string> error_samples;

  std::vector<PopMetrics> pops;

  [[nodiscard]] double hit_ratio() const {
    return request_count ? static_cast<double>(hits + stream_joins) /
                               static_cast<double>(request_count)
                         : 0.0;
  }
  [[nodiscard]] double mean_wall_latency_ms() const {
    return request_count ? wall_latency_ms / static_cast<double>(request_count)
                         : 0.0;
  }
  [[nodiscard]] double mean_core_cost() const {
    return request_count ? core_cost / static_cast<double>(request_count) : 0.0;
  }

  /// Render as a JSON object (library code never prints; binaries decide
  /// whether the string goes to a file or stdout).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace idicn::testbed
