// Topology-aware sibling directory for cross-PoP cache cooperation.
//
// ClusterDirectory is the testbed's shared who-has-what map: every PoP's
// edge proxy pushes periodic content digests into it (over the
// POST /idicn-hint channel) and consults it on a local miss. Internally it
// is a core::HolderIndex over the *counterpart* simulation network — the
// same index the simulator's nearest-replica routing uses — so a redirect
// decision in the socketed testbed ranks candidate PoPs by the identical
// core-graph cost the simulator would use, and the two systems differ only
// by hint lag, hop limits, and fanout (exactly the deployment frictions the
// testbed exists to measure).
//
// Holder placement: PoP p's proxy is modelled as the counterpart network's
// leaf(p, 0) (the testbed maps each PoP to an arity-1 depth-1 access tree
// whose lone leaf is the edge proxy; see cluster.hpp). The nearest-holder
// bound for a query is the asker's core cost to the object's origin PoP —
// *inclusive*, matching the simulator's `cost <= origin_cost` acceptance —
// so a sibling is never suggested when the origin is strictly closer.
//
// Thread safety: one mutex guards everything, including the HolderIndex
// (whose lazy walks reuse index-owned scratch and are not concurrency-safe
// on their own). Digest ingestion arrives on whichever ServerGroup worker
// carries the hint POST while holders_for runs on every serving worker of
// every PoP, so all paths lock.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/holder_index.hpp"
#include "core/sync.hpp"
#include "idicn/proxy.hpp"
#include "net/transport.hpp"
#include "topology/network.hpp"

namespace idicn::testbed {

class ClusterDirectory {
public:
  /// `network` is the counterpart simulation network (one leaf per PoP) and
  /// must outlive the directory. `max_entries_per_pop` bounds each PoP's
  /// advertised set — a digest longer than this is truncated, so a
  /// misbehaving (or enormous) sibling cannot bloat the directory.
  ClusterDirectory(const topology::HierarchicalNetwork& network,
                   std::size_t max_entries_per_pop);

  /// Register PoP `pop`'s proxy transport address (setup time, before
  /// traffic; also the reverse map used to attribute incoming digests).
  void set_address(topology::PopId pop, net::Address address)
      IDICN_EXCLUDES(mutex_);

  /// Record which PoP is `host`'s origin (the redirect search bound).
  void set_origin(const std::string& host, topology::PopId pop)
      IDICN_EXCLUDES(mutex_);

  /// Replace `sender`'s advertised content set with `hosts` (full-digest
  /// semantics: entries previously advertised but now absent are dropped).
  void ingest(topology::PopId sender, const std::vector<std::string>& hosts)
      IDICN_EXCLUDES(mutex_);

  /// Drop one advertised entry — a redirect found the copy gone.
  void forget(topology::PopId sender, const std::string& host)
      IDICN_EXCLUDES(mutex_);

  /// Proxy addresses of the PoPs advertising `host`, nearest to `asker`
  /// first, bounded (inclusively) by the asker's core cost to the host's
  /// origin PoP. Never includes `asker` itself.
  [[nodiscard]] std::vector<net::Address> holders_for(topology::PopId asker,
                                                      const std::string& host)
      IDICN_EXCLUDES(mutex_);

  /// The PoP registered under `address`, if any.
  [[nodiscard]] std::optional<topology::PopId> pop_of(
      const net::Address& address) const IDICN_EXCLUDES(mutex_);

  /// Total advertised (pop, host) entries — the digest-bound invariant
  /// tests assert this never exceeds pops × max_entries_per_pop.
  [[nodiscard]] std::size_t entry_count() const IDICN_EXCLUDES(mutex_);

private:
  /// The counterpart-network node standing in for PoP p's proxy cache.
  [[nodiscard]] topology::GlobalNodeId holder_node(topology::PopId pop) const {
    return network_->leaf(pop, 0);
  }
  [[nodiscard]] std::uint32_t intern(const std::string& host)
      IDICN_REQUIRES(mutex_);

  const topology::HierarchicalNetwork* network_;
  const std::size_t max_entries_per_pop_;

  mutable core::sync::Mutex mutex_;
  std::map<std::string, std::uint32_t> host_ids_ IDICN_GUARDED_BY(mutex_);
  std::vector<std::string> hosts_by_id_ IDICN_GUARDED_BY(mutex_);
  /// host id → origin PoP (parallel to hosts_by_id_; kInvalid when unset).
  std::vector<topology::PopId> origin_pop_ IDICN_GUARDED_BY(mutex_);
  /// Advertised host-id sets, one per PoP.
  std::vector<std::set<std::uint32_t>> advertised_ IDICN_GUARDED_BY(mutex_);
  core::HolderIndex index_ IDICN_GUARDED_BY(mutex_);
  std::vector<net::Address> addresses_ IDICN_GUARDED_BY(mutex_);
  std::map<net::Address, topology::PopId> pops_by_address_
      IDICN_GUARDED_BY(mutex_);
};

/// One PoP's view of the shared directory, implementing the proxy-facing
/// idicn::SiblingDirectory contract: digest senders are attributed by
/// transport address, holder queries are asked from this PoP's vantage
/// point. Stateless beyond the (pop, directory) binding — one per proxy.
class PopDirectoryView final : public idicn::SiblingDirectory {
public:
  PopDirectoryView(ClusterDirectory* directory, topology::PopId pop)
      : directory_(directory), pop_(pop) {}

  void ingest(const net::Address& sibling,
              const std::vector<std::string>& hosts) override {
    if (const auto sender = directory_->pop_of(sibling)) {
      directory_->ingest(*sender, hosts);
    }
  }
  void forget(const net::Address& sibling, const std::string& host) override {
    if (const auto sender = directory_->pop_of(sibling)) {
      directory_->forget(*sender, host);
    }
  }
  [[nodiscard]] std::vector<net::Address> holders(
      const std::string& host) override {
    return directory_->holders_for(pop_, host);
  }

private:
  ClusterDirectory* directory_;
  topology::PopId pop_;
};

}  // namespace idicn::testbed
