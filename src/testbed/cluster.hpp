// Testbed cluster: an entire PoP topology as a real-socket deployment.
//
// Cluster instantiates one edge proxy (idicn::Proxy behind a
// runtime::ServerGroup) per PoP of a core topology (Abilene, Géant, …),
// a per-PoP reverse-proxy/origin tier, and a shared NRS — all talking TCP
// over loopback through one runtime::SocketNet. Link latency is modelled by
// wrapping each proxy's upstream transport in a net::FaultInjector with one
// Latency rule per destination, delayed by (core hops × ms_per_hop) — the
// same decorator the chaos harness uses, repurposed as a topology emulator.
//
// The deployment is constructed to be the exact socket-level counterpart of
// a simulator configuration, so its outputs can be diffed against
// core::Simulator numbers on the identical bound workload:
//   * counterpart network: each PoP carries an arity-1 depth-1 access tree
//     whose lone leaf is the edge proxy and whose root is the (cacheless)
//     PoP router; the leaf uplink costs 0 and core hops cost 1, so model
//     latency is pure core-hop distance;
//   * EDGE           = core::edge() (leaf caches, shortest path);
//   * EDGE-Coop      = core::edge() with Routing::NearestReplica — the
//     testbed's hint-fed redirect is the lagged, bounded version of that
//     oracle (see sibling_directory.hpp);
//   * origin tier: each PoP's reverse proxy serves the objects that PoP
//     owns under core::OriginMap, so per-PoP origin load is comparable;
//   * budgets: cache::compute_budget(Uniform) per leaf, converted to bytes
//     (every object is exactly object_bytes long, making the proxy's
//     byte-LRU behave object-for-object like the simulator's LRU).
// See comparison.hpp for the diff harness itself.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/budget.hpp"
#include "core/origin_map.hpp"
#include "crypto/lamport.hpp"
#include "idicn/nrs.hpp"
#include "idicn/origin_server.hpp"
#include "idicn/proxy.hpp"
#include "idicn/reverse_proxy.hpp"
#include "net/dns.hpp"
#include "net/fault_injector.hpp"
#include "runtime/server_group.hpp"
#include "runtime/socket_net.hpp"
#include "testbed/sibling_directory.hpp"
#include "topology/network.hpp"

namespace idicn::testbed {

/// The simulation network a testbed deployment corresponds to: the named
/// core topology with an arity-1 depth-1 access tree per PoP (leaf = edge
/// proxy), zero-cost tree edges, unit core hops.
[[nodiscard]] topology::HierarchicalNetwork counterpart_network(
    std::string_view topology_name);

struct ClusterOptions {
  std::string topology = "Abilene";
  std::uint32_t object_count = 60;
  std::size_t object_bytes = 2048;
  /// Per-proxy capacity as a fraction of the object universe (the
  /// simulator's budget fraction F, split uniformly).
  double cache_fraction = 0.05;
  /// Wire the EDGE-Coop machinery (sibling directory + digest push). Off =
  /// plain EDGE: every miss goes to the origin tier.
  bool cooperation = true;
  /// Per-core-hop latency injected on proxy↔proxy and proxy↔origin-tier
  /// sends (0 = no injection; NRS resolution is always latency-free, the
  /// paper's conservatively-generous lookup assumption).
  std::uint64_t ms_per_hop = 0;
  /// ServerGroup worker threads per proxy. Upstream fetches park on the
  /// worker's event loop rather than blocking it, so two workers are pure
  /// serving parallelism (inbound sibling queries and hint POSTs keep
  /// flowing even while one worker drains a burst).
  std::size_t workers_per_pop = 2;
  std::uint64_t seed = 42;
  core::OriginAssignment origin_assignment =
      core::OriginAssignment::PopulationProportional;

  // Cooperation-protocol knobs, passed through to idicn::Proxy::Options.
  //
  // The hop limit matches the Proxy default of 2: a proxy serving a
  // sibling fetch may itself redirect one hop further before answering
  // cache-only, matching the simulator's NearestReplica oracle more
  // closely than the old cache-only-on-first-hop limit of 1. That limit
  // existed because upstream fetches used to block the reactor thread —
  // proxy A blocked fetching from B could be counter-fetched by B onto
  // A's stalled reactor, a mutual stall only the socket timeout broke.
  // Fetches now park on the event loop (Proxy::FetchOp over
  // Transport::send_async), so a worker keeps serving inbound queries
  // while its own upstream fetch is in flight and deeper hop chains are
  // safe over real sockets, not just SimNet's same-thread recursion.
  std::size_t sibling_hop_limit = 2;
  std::size_t max_hint_entries = 256;
  std::size_t sibling_fanout = 2;
  std::uint64_t freshness_ms = 3'600'000;  ///< long: no revalidation mid-run
};

/// The running deployment. Construction builds, publishes, and starts
/// everything (origin → NRS → reverse proxies → edge proxies); destruction
/// stops it in reverse. One Cluster per scenario — like core::Simulator,
/// cache state is not reusable across runs.
class Cluster {
public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const ClusterOptions& options() const noexcept { return options_; }
  [[nodiscard]] const topology::HierarchicalNetwork& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const core::OriginMap& origins() const noexcept { return origins_; }
  [[nodiscard]] topology::PopId pop_count() const noexcept {
    return network_.pop_count();
  }
  [[nodiscard]] const std::string& pop_name(topology::PopId pop) const {
    return network_.core().node(pop).name;
  }

  /// The TCP port PoP `pop`'s edge proxy listens on (clients dial
  /// 127.0.0.1:<port>).
  [[nodiscard]] std::uint16_t proxy_port(topology::PopId pop) const;
  /// The published self-certifying host of object `object`.
  [[nodiscard]] const std::string& object_host(std::uint32_t object) const {
    return object_hosts_.at(object);
  }

  [[nodiscard]] idicn::Proxy& proxy(topology::PopId pop) {
    return *proxies_.at(pop);
  }
  [[nodiscard]] ClusterDirectory& directory() noexcept { return directory_; }

  /// One full round of digest exchange: every proxy pushes its current
  /// content digest to every sibling (the trace driver calls this between
  /// request batches — the testbed's "periodic" hint timer).
  void exchange_hints();

  /// The PoP a response's X-IdICN-Source address belongs to (proxy or
  /// origin-tier addresses), if known.
  [[nodiscard]] std::optional<topology::PopId> source_pop(
      const net::Address& address) const;

  /// Requests served by each PoP's origin tier since the cluster started
  /// serving (publication traffic excluded).
  [[nodiscard]] std::vector<std::uint64_t> origin_served_per_pop() const;
  [[nodiscard]] std::uint64_t origin_served_total() const;

private:
  [[nodiscard]] static std::string proxy_address(topology::PopId pop);
  [[nodiscard]] static std::string rp_address(topology::PopId pop);
  [[nodiscard]] std::string object_body(std::uint32_t object) const;
  void publish_catalog();
  void start_proxies();

  ClusterOptions options_;
  topology::HierarchicalNetwork network_;
  core::OriginMap origins_;
  cache::BudgetPlan budget_;

  runtime::SocketNet net_;
  net::DnsService dns_;
  idicn::NameResolutionSystem nrs_{&dns_};
  idicn::OriginServer origin_;
  ClusterDirectory directory_;

  std::vector<std::unique_ptr<crypto::MerkleSigner>> signers_;
  std::vector<std::unique_ptr<idicn::ReverseProxy>> reverse_proxies_;
  std::vector<std::unique_ptr<net::FaultInjector>> injectors_;
  std::vector<std::unique_ptr<PopDirectoryView>> views_;
  std::vector<std::unique_ptr<idicn::Proxy>> proxies_;

  std::unique_ptr<runtime::ServerGroup> origin_server_;
  std::unique_ptr<runtime::ServerGroup> nrs_server_;
  std::vector<std::unique_ptr<runtime::ServerGroup>> rp_servers_;
  std::vector<std::unique_ptr<runtime::ServerGroup>> proxy_servers_;

  std::vector<std::string> object_hosts_;
  std::vector<std::uint64_t> rp_baseline_;  ///< origin-tier counters at start
  std::map<net::Address, topology::PopId> source_pops_;
};

}  // namespace idicn::testbed
