#include "testbed/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "topology/pop_topology.hpp"

namespace idicn::testbed {

namespace {

/// Socket knobs for a many-server loopback deployment: modest connect
/// timeouts (everything is local), default retry/breaker behavior.
runtime::SocketNet::Options testbed_net_options() {
  runtime::SocketNet::Options options;
  options.client.connect_timeout_ms = 2'000;
  options.client.io_timeout_ms = 15'000;
  return options;
}

}  // namespace

topology::HierarchicalNetwork counterpart_network(std::string_view topology_name) {
  // Arity-1 depth-1 trees: tree index 0 is the (cacheless) PoP router, tree
  // index 1 the lone leaf standing in for the PoP's edge proxy. The leaf
  // uplink costs 0 and core hops cost 1, so distance(leaf, leaf) across
  // PoPs equals the core hop count — the latency unit the testbed's
  // X-IdICN-Source accounting reports.
  return topology::HierarchicalNetwork(
      topology::make_topology(topology_name), topology::AccessTreeShape(1, 1),
      topology::LatencyModel{{0.0}, 1.0});
}

std::string Cluster::proxy_address(topology::PopId pop) {
  return "pop" + std::to_string(pop) + ".proxy.testbed";
}

std::string Cluster::rp_address(topology::PopId pop) {
  return "rp" + std::to_string(pop) + ".testbed";
}

std::string Cluster::object_body(std::uint32_t object) const {
  std::string body = "obj-" + std::to_string(object) + ":";
  body.resize(options_.object_bytes,
              static_cast<char>('a' + static_cast<char>(object % 26)));
  return body;
}

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      network_(counterpart_network(options_.topology)),
      origins_(network_, options_.object_count, options_.origin_assignment,
               options_.seed),
      budget_(cache::compute_budget(network_, options_.cache_fraction,
                                    options_.object_count,
                                    cache::BudgetSplit::Uniform)),
      net_(testbed_net_options()),
      directory_(network_, options_.max_hint_entries) {
  if (options_.object_bytes == 0) {
    throw std::invalid_argument("Cluster: object_bytes must be > 0");
  }

  // Shared tier first: the origin store and the NRS, each behind its own
  // single-worker server (resolution and publication volume are tiny next
  // to proxy traffic).
  origin_server_ =
      std::make_unique<runtime::ServerGroup>(&origin_, "origin.testbed");
  origin_server_->start();
  net_.register_endpoint(*origin_server_);
  nrs_server_ = std::make_unique<runtime::ServerGroup>(&nrs_, "nrs.testbed");
  nrs_server_->start();
  net_.register_endpoint(*nrs_server_);

  // Per-PoP origin tier: one reverse proxy + signer per PoP, sized so each
  // signer has one-time keys for its owned objects (publish consumes two
  // signatures per object: one for the content, one for the registration).
  const topology::PopId pops = network_.pop_count();
  const auto owned = origins_.objects_per_pop(pops);
  for (topology::PopId p = 0; p < pops; ++p) {
    unsigned height = 4;
    while ((1ull << height) < 2ull * owned[p] + 2) ++height;
    signers_.push_back(std::make_unique<crypto::MerkleSigner>(
        options_.seed + 17 * (p + 1), height));
    reverse_proxies_.push_back(std::make_unique<idicn::ReverseProxy>(
        &net_, rp_address(p), "origin.testbed", "nrs.testbed",
        signers_.back().get()));
  }

  publish_catalog();

  for (topology::PopId p = 0; p < pops; ++p) {
    rp_servers_.push_back(std::make_unique<runtime::ServerGroup>(
        reverse_proxies_[p].get(), rp_address(p)));
    rp_servers_.back()->start();
    net_.register_endpoint(*rp_servers_.back());
    source_pops_[rp_address(p)] = p;
  }

  start_proxies();

  // Serving starts here: snapshot the origin tier's counters so published
  // traffic (one origin fetch per object) never counts as origin load.
  rp_baseline_.resize(pops);
  for (topology::PopId p = 0; p < pops; ++p) {
    rp_baseline_[p] = reverse_proxies_[p]->cache_hits() +
                      reverse_proxies_[p]->origin_fetches();
  }
}

void Cluster::publish_catalog() {
  for (std::uint32_t object = 0; object < options_.object_count; ++object) {
    const topology::PopId pop = origins_.origin_pop(object);
    const std::string label = "obj-" + std::to_string(object);
    origin_.put(label, object_body(object));
    const auto name = reverse_proxies_[pop]->publish(label);
    if (!name) {
      throw std::runtime_error("Cluster: publishing " + label + " failed");
    }
    object_hosts_.push_back(name->host());
    directory_.set_origin(object_hosts_.back(), pop);
  }
}

void Cluster::start_proxies() {
  const topology::PopId pops = network_.pop_count();
  for (topology::PopId p = 0; p < pops; ++p) {
    // Each proxy's upstream transport: the shared SocketNet, behind a
    // per-proxy FaultInjector when topology latency is requested (rules are
    // per *destination*; the per-source view is what makes the delay a
    // function of the core path between the two PoPs).
    net::Transport* transport = &net_;
    if (options_.ms_per_hop > 0) {
      injectors_.push_back(std::make_unique<net::FaultInjector>(&net_));
      for (topology::PopId q = 0; q < pops; ++q) {
        const unsigned hops = network_.core_paths().hop_count(p, q);
        if (hops == 0) continue;
        net::FaultInjector::Rule rule;
        rule.kind = net::FaultInjector::FaultKind::Latency;
        rule.latency_ms = options_.ms_per_hop * hops;
        rule.to = rp_address(q);
        injectors_.back()->add_rule(rule);
        rule.to = proxy_address(q);
        injectors_.back()->add_rule(rule);
      }
      transport = injectors_.back().get();
    }

    idicn::Proxy::Options popt;
    popt.capacity_bytes =
        budget_.per_node[network_.leaf(p, 0)] * options_.object_bytes;
    popt.freshness_ms = options_.freshness_ms;
    popt.verify = true;
    popt.pop_name = pop_name(p);
    popt.sibling_hop_limit = options_.sibling_hop_limit;
    popt.max_hint_entries = options_.max_hint_entries;
    popt.sibling_fanout = options_.sibling_fanout;
    proxies_.push_back(std::make_unique<idicn::Proxy>(
        transport, proxy_address(p), "nrs.testbed", &dns_, popt));
    directory_.set_address(p, proxy_address(p));
  }

  if (options_.cooperation) {
    for (topology::PopId p = 0; p < pops; ++p) {
      views_.push_back(std::make_unique<PopDirectoryView>(&directory_, p));
      proxies_[p]->set_sibling_directory(views_.back().get());
      for (topology::PopId q = 0; q < pops; ++q) {
        if (q != p) proxies_[p]->add_sibling(proxy_address(q));
      }
    }
  }

  runtime::ServerGroup::Options server_options;
  server_options.workers = options_.workers_per_pop;
  for (topology::PopId p = 0; p < pops; ++p) {
    proxy_servers_.push_back(std::make_unique<runtime::ServerGroup>(
        proxies_[p].get(), proxy_address(p), server_options));
    proxy_servers_.back()->start();
    net_.register_endpoint(*proxy_servers_.back());
    source_pops_[proxy_address(p)] = p;
  }
}

Cluster::~Cluster() {
  // Edge tier first (it still fetches from the origin tier), shared tier
  // last — the reverse of construction.
  for (auto& server : proxy_servers_) server->stop();
  for (auto& server : rp_servers_) server->stop();
  if (nrs_server_) nrs_server_->stop();
  if (origin_server_) origin_server_->stop();
}

std::uint16_t Cluster::proxy_port(topology::PopId pop) const {
  return proxy_servers_.at(pop)->port();
}

void Cluster::exchange_hints() {
  for (auto& proxy : proxies_) proxy->push_hints();
}

std::optional<topology::PopId> Cluster::source_pop(
    const net::Address& address) const {
  const auto it = source_pops_.find(address);
  if (it == source_pops_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint64_t> Cluster::origin_served_per_pop() const {
  std::vector<std::uint64_t> served(network_.pop_count());
  for (topology::PopId p = 0; p < served.size(); ++p) {
    served[p] = reverse_proxies_[p]->cache_hits() +
                reverse_proxies_[p]->origin_fetches() - rp_baseline_[p];
  }
  return served;
}

std::uint64_t Cluster::origin_served_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t served : origin_served_per_pop()) total += served;
  return total;
}

}  // namespace idicn::testbed
