// Hashed timer wheel for per-connection timeouts.
//
// The runtime needs thousands of coarse timers (idle/request deadlines)
// with O(1) schedule and cancel — a std::priority_queue would pay O(log n)
// per operation and cannot cancel cheaply. Classic hashed wheel: time is
// quantized into ticks, each tick hashes to one of `slots` buckets, an
// entry due t ticks out is stored in bucket (current + t) % slots with a
// `rounds` counter for deadlines beyond one revolution. advance_to() fires
// due callbacks in deadline order within a tick's bucket.
//
// Timer firing is *lazy*: accuracy is one tick (default 10 ms), which is
// exactly right for socket timeouts and lets callers reschedule by simply
// letting the timer fire and re-checking the deadline.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace idicn::runtime {

class TimerWheel {
public:
  using TimerId = std::uint64_t;
  using Callback = std::function<void()>;

  explicit TimerWheel(std::uint64_t tick_ms = 10, std::size_t slots = 512,
                      std::uint64_t start_ms = 0);

  /// Arm a one-shot timer `delay_ms` from the wheel's current time.
  TimerId schedule(std::uint64_t delay_ms, Callback callback);

  /// Disarm; false when the id already fired or was cancelled. A timer
  /// that is due in the advance currently firing but whose callback has
  /// not run yet can still be cancelled (true, callback suppressed) — so a
  /// callback closing a connection reliably disarms its sibling timers.
  bool cancel(TimerId id);

  /// Advance the wheel to `now_ms`, firing every timer whose deadline has
  /// passed. Callbacks may schedule() new timers (fired on a later call if
  /// already due — never re-entrantly within the same advance).
  void advance_to(std::uint64_t now_ms);

  /// Earliest pending deadline (absolute ms), for poll timeouts.
  [[nodiscard]] std::optional<std::uint64_t> next_deadline_ms() const;

  [[nodiscard]] std::size_t pending() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t now_ms() const noexcept { return now_ms_; }
  [[nodiscard]] std::uint64_t tick_ms() const noexcept { return tick_ms_; }

private:
  struct Entry {
    TimerId id = 0;
    std::uint64_t deadline_ms = 0;
    std::uint64_t rounds = 0;  ///< full revolutions still to wait
    Callback callback;
  };
  using Bucket = std::list<Entry>;

  Bucket& bucket_for(std::uint64_t deadline_ms, std::uint64_t& rounds);

  std::uint64_t tick_ms_;
  std::vector<Bucket> buckets_;
  std::uint64_t now_ms_;
  std::uint64_t current_tick_;
  TimerId next_id_ = 1;
  // id → bucket position for O(1) cancel; deadlines for next_deadline_ms.
  std::unordered_map<TimerId, std::pair<std::size_t, Bucket::iterator>> entries_;
  std::multiset<std::uint64_t> deadlines_;
  // Due-but-not-yet-fired ids during advance_to, so cancel() can disarm a
  // timer extracted in the same advance (emptied before advance returns).
  std::unordered_set<TimerId> in_flight_;
};

}  // namespace idicn::runtime
