// Congestion-aware multi-source fetch: RTT-ranked replica selection,
// hedged requests, and parallel range-fetch with per-range failover.
//
// The paper's metalink metadata names *multiple* sources per object, but
// until this layer the proxy fetched from exactly one upstream at a time —
// a single slow or flapping replica dictated the MISS-path tail. The
// fetcher turns the source list into a race that stays bounded under
// faults (DESIGN.md §13):
//
//   * Ranking — per-destination RttEstimator (SRTT/p95, Karn backoff) and
//     CircuitBreaker order the candidates; breaker-open sources sort last
//     and are only dialed as a last resort.
//   * Hedging — if the best source has not produced a response head after
//     its p95 RTT (shifted by Karn backoff), the request is duplicated to
//     the next-best replica. First 2xx head wins; the loser's sink refuses
//     the head, which cancels the transfer through the transport's abort
//     path. Hedges draw whole tokens from a Finagle-style RetryBudget that
//     first attempts only trickle into — and real failures *also* burn
//     tokens — so hedging self-disables when the budget is burning on
//     genuine faults. Losing a hedge race feeds Karn's on_retransmit to
//     the straggler (an ambiguous exchange measures the race, not the
//     path), so its ranking decays exponentially and the hedge delay backs
//     off without ever needing a sample from the slow replica.
//   * Parallel range-fetch — with ≥2 sources, large-object fetches probe
//     the best source with `Range: bytes=0-(probe-1)`. A 206 reveals the
//     total size via Content-Range; the remainder is split into contiguous
//     legs fetched from the other replicas in parallel, re-joined in order
//     (so incremental verification downstream still sees the bytes in
//     sequence) behind a synthesized 200 head. A leg that errors or hits
//     an open breaker fails over to the next surviving source. A 200 reply
//     means the upstream does not speak ranges — the response passes
//     through untouched (incremental deployability: pre-range replicas
//     keep working, they just don't parallelize).
//   * Windows — a CUBIC CubicWindow per destination bounds in-flight
//     requests per upstream. Hedges and range legs *require* window
//     capacity; the primary attempt prefers sources with capacity but is
//     never blocked by the window (the proxy bounds its own concurrency) —
//     an over-budget primary is admitted and counted as window_deferral.
//
// Threading: one fetch's callbacks all run on the caller's executor thread
// (or inline for synchronous transports); the fetcher object itself is
// shared across workers, so per-destination state lives behind mutex_ and
// per-fetch race state behind the fetch's own lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "net/http_message.hpp"
#include "net/transport.hpp"
#include "runtime/congestion_window.hpp"
#include "runtime/retry.hpp"
#include "runtime/rtt_estimator.hpp"

namespace idicn::runtime {

namespace detail {
struct MultiFetchState;
}  // namespace detail

class MultiSourceFetcher {
 public:
  struct Options {
    // --- hedging ---
    bool hedging_enabled = true;
    /// Straggler threshold: hedge once the best source has been silent for
    /// this quantile of its recent RTTs.
    double hedge_quantile = 0.95;
    std::uint64_t hedge_min_delay_ms = 5;
    std::uint64_t hedge_max_delay_ms = 2'000;
    /// Hedge delay before the destination has any RTT samples.
    std::uint64_t initial_hedge_delay_ms = 25;
    /// Tokens hedges draw from; first attempts deposit tokens_per_request,
    /// real failures burn whole tokens alongside hedges.
    RetryBudget::Options hedge_budget;

    // --- parallel range fetch ---
    bool range_fetch_enabled = true;
    /// Total legs per object including the probe (≥2 enables splitting).
    std::size_t max_parallel_ranges = 3;
    /// Bytes asked of the probe leg; also the minimum tail worth splitting
    /// across replicas rather than fetching in one follow-up leg.
    std::uint64_t range_probe_bytes = 128 * 1024;

    // --- per-destination policy ---
    RttEstimator::Options rtt;
    CubicWindow::Options window;
    CircuitBreaker::Options breaker;
  };

  struct Stats {
    core::sync::RelaxedCounter fetches;
    core::sync::RelaxedCounter hedges_sent;
    core::sync::RelaxedCounter hedge_wins;
    core::sync::RelaxedCounter hedges_suppressed;  ///< budget/window denied
    core::sync::RelaxedCounter source_failovers;   ///< serial next-source moves
    core::sync::RelaxedCounter range_fetches;      ///< objects fetched split
    core::sync::RelaxedCounter range_failovers;    ///< legs re-aimed after faults
    core::sync::RelaxedCounter window_deferrals;   ///< primaries admitted over budget
  };

  /// Outcome metadata delivered alongside the final head: which replica
  /// actually produced it (the address a downstream cache should
  /// revalidate against), and how the race went.
  struct Result {
    /// Destination whose head completed the fetch. Empty when no source
    /// ever produced a head (pure transport failure).
    net::Address source;
    bool hedge_won = false;    ///< a hedged duplicate produced the winner
    bool range_split = false;  ///< the body arrived as parallel range legs
    std::size_t attempts = 0;  ///< dials made (primary + hedges + failovers)
  };
  using FetchCallback =
      std::function<void(net::HttpResponse head, const Result& result)>;

  /// Observer view of one destination's learned state.
  struct SourceSnapshot {
    net::Address address;
    std::uint64_t srtt_us = 0;
    std::uint64_t rtt_p95_us = 0;
    int backoff_shift = 0;
    double window = 0.0;
    std::size_t in_flight = 0;
    CircuitBreaker::State breaker = CircuitBreaker::State::Closed;
  };

  explicit MultiSourceFetcher(net::Transport* net);
  MultiSourceFetcher(net::Transport* net, Options options);
  ~MultiSourceFetcher();

  MultiSourceFetcher(const MultiSourceFetcher&) = delete;
  MultiSourceFetcher& operator=(const MultiSourceFetcher&) = delete;

  /// Fetch `request` from the best of `sources`, streaming the winning
  /// response into `sink` and completing via `done` exactly once with the
  /// final head (a synthesized 5xx when every source failed) plus the race
  /// Result. `exec` powers hedge timers and pass-through async sends; with
  /// a null executor the fetch degrades to a synchronous serial ladder (no
  /// hedging — there is no timer to arm — but ranking, windows, breakers
  /// and range splitting still apply). The caller must not set a Range
  /// header when range splitting is desired; a caller-supplied Range
  /// disables splitting and is forwarded verbatim.
  void fetch_from_best(const net::Address& from,
                       std::vector<net::Address> sources,
                       net::HttpRequest request,
                       std::shared_ptr<net::ChunkSink> sink,
                       net::Executor* exec, FetchCallback done)
      IDICN_EXCLUDES(mutex_);

  /// Rank `sources` best-first by effective RTT (srtt · 2^karn_shift, the
  /// explore default for unmeasured destinations) with breaker-open
  /// destinations last. Deterministic; ties keep caller order.
  [[nodiscard]] std::vector<net::Address> rank(std::vector<net::Address> sources)
      IDICN_EXCLUDES(mutex_);

  /// p95 RTT estimate for one destination (options.rtt.initial_rtt_us when
  /// unmeasured) — exported per-dest as `rtt_p95_us` in the bench.
  [[nodiscard]] std::uint64_t rtt_p95_us(const net::Address& dest)
      IDICN_EXCLUDES(mutex_);

  [[nodiscard]] std::vector<SourceSnapshot> snapshot() IDICN_EXCLUDES(mutex_);
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] double hedge_tokens() { return hedge_budget_.tokens(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  friend struct detail::MultiFetchState;

  /// Per-destination learned state. unique_ptr-held so references stay
  /// stable across map rehashes.
  struct DestState {
    explicit DestState(const Options& options)
        : est(options.rtt), window(options.window), breaker(options.breaker) {}
    RttEstimator est;
    CubicWindow window;
    std::size_t in_flight = 0;
    CircuitBreaker breaker;  // has its own lock; always nested inside mutex_
  };

  DestState& dest_locked(const net::Address& address) IDICN_REQUIRES(mutex_);

  // Selection helpers for the fetch state machine. pick_primary admits the
  // best non-open source (preferring window capacity, counting deferrals);
  // pick_hedge/pick_leg_source gate extra aggression on capacity.
  std::size_t pick_primary(const std::vector<net::Address>& ranked)
      IDICN_EXCLUDES(mutex_);
  std::optional<std::size_t> pick_hedge(const std::vector<net::Address>& ranked,
                                        const std::vector<bool>& tried)
      IDICN_EXCLUDES(mutex_);
  std::size_t pick_leg_source(const std::vector<net::Address>& ranked,
                              std::size_t& cursor) IDICN_EXCLUDES(mutex_);
  /// Breaker admission for an actual dial (consumes half-open probe slots).
  bool gate(const net::Address& address) IDICN_EXCLUDES(mutex_);
  std::uint64_t hedge_delay_ms(const net::Address& address)
      IDICN_EXCLUDES(mutex_);

  // Per-destination bookkeeping: one note_start per dialed attempt/leg,
  // balanced by exactly one of note_clean / note_ambiguous / note_failure.
  void note_start(const net::Address& address) IDICN_EXCLUDES(mutex_);
  void note_clean(const net::Address& address, std::uint64_t rtt_us,
                  std::uint64_t now_ms) IDICN_EXCLUDES(mutex_);
  void note_ambiguous(const net::Address& address) IDICN_EXCLUDES(mutex_);
  void note_failure(const net::Address& address, std::uint64_t now_ms)
      IDICN_EXCLUDES(mutex_);
  /// Karn penalty on a hedged-over primary (no in-flight movement).
  void note_straggler(const net::Address& address) IDICN_EXCLUDES(mutex_);

  net::Transport* net_;
  Options options_;
  RetryBudget hedge_budget_;
  mutable core::sync::Mutex mutex_;
  std::unordered_map<net::Address, std::unique_ptr<DestState>> dests_
      IDICN_GUARDED_BY(mutex_);
  Stats stats_;
};

}  // namespace idicn::runtime
