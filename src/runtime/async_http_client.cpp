#include "runtime/async_http_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/http_internal.hpp"

namespace idicn::runtime {
namespace {

/// Buffered bodies at most this large stay flat, mirroring the decoder's
/// default slab threshold; larger ones keep their chunk representation.
constexpr std::size_t kFlatBodyMax = 256 * 1024;

}  // namespace

AsyncHttpClient::AsyncHttpClient(net::Executor* exec, std::string host,
                                 std::uint16_t port, Options options)
    : exec_(exec), host_(std::move(host)), port_(port), options_(options) {
  assert_owned();
  net::HttpDecoder::StreamHooks hooks;
  hooks.on_head = [this](const net::HttpResponse& head) {
    assert_owned();
    on_response_head(head);
  };
  hooks.on_chunk = [this](core::Chunk chunk) {
    assert_owned();
    on_response_chunk(std::move(chunk));
  };
  decoder_.set_stream_hooks(std::move(hooks));
}

AsyncHttpClient::~AsyncHttpClient() {
  // Only the fd: pooled clients are parked (unwatched, timer-less) before
  // they can be destroyed, and callbacks in flight no-op via alive_.
  fd_.reset();
}

bool AsyncHttpClient::stale_connection() const noexcept {
  if (!fd_.valid()) return false;
  char probe = 0;
  const ssize_t n =
      ::recv(fd_.get(), &probe, sizeof(probe), MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;  // peer FIN while pooled
  if (n > 0) return true;   // unsolicited bytes (stale response / garbage)
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void AsyncHttpClient::issue(const net::HttpRequest& request,
                            std::shared_ptr<net::ChunkSink> sink,
                            Completion done) IDICN_REQUIRES(role_) {
  const bool was_idle = ops_.empty();
  Op op;
  op.wire = request.serialize();
  op.sink = std::move(sink);
  op.done = std::move(done);
  ++requests_sent_;
  ops_.push_back(std::move(op));
  ++pending_ops_;

  if (!fd_.valid()) {
    if (!connecting_) begin_connect();
    return;
  }
  if (connecting_) return;  // wire flushes when the connect completes
  if (was_idle) {
    // A parked keep-alive connection: this batch is a reuse, eligible for
    // one transparent redial if the server idled it out under us.
    reused_ = true;
    replayed_ = false;
  }
  out_.append(ops_.back().wire);
  set_interest(true, true);
  arm_io_deadline();
  flush_writes();
}

void AsyncHttpClient::shutdown() IDICN_REQUIRES(role_) {
  fail_all("client shut down");
}

void AsyncHttpClient::begin_connect() IDICN_REQUIRES(role_) {
  // (Re)build the unsent buffer from every pending op so a redial replays
  // the full batch in order.
  out_.clear();
  out_offset_ = 0;
  for (const Op& op : ops_) out_.append(op.wire);
  decoder_.reset();
  reused_ = false;
  connecting_ = true;

  std::string reason;
  const int fd = connect_tcp_nonblocking(host_, port_, &reason);
  if (fd < 0) {
    connecting_ = false;
    fail_all(reason);
    return;
  }
  set_nodelay(fd);
  fd_.reset(fd);
  std::weak_ptr<char> alive{alive_};
  watched_ = exec_->watch_fd(
      fd, /*want_read=*/false, /*want_write=*/true,
      [this, alive](bool readable, bool writable, bool error) {
        if (alive.expired()) return;
        assert_owned();
        on_socket_event(readable, writable, error);
      });
  if (!watched_) {
    connecting_ = false;
    fail_all("watch failed for upstream connection");
    return;
  }
  connect_timer_ = exec_->schedule(
      static_cast<std::uint64_t>(options_.connect_timeout_ms),
      [this, alive]() {
        if (alive.expired()) return;
        assert_owned();
        connect_timer_armed_ = false;
        handle_failure("connect timeout to " + host_);
      });
  connect_timer_armed_ = true;
}

void AsyncHttpClient::on_socket_event(bool readable, bool writable, bool error)
    IDICN_REQUIRES(role_) {
  if (connecting_) {
    if (writable || error) finish_connect();
    return;
  }
  if (readable || error) {
    read_input();
    if (!fd_.valid() || ops_.empty()) return;
  }
  if (writable && out_offset_ < out_.size()) flush_writes();
}

void AsyncHttpClient::finish_connect() IDICN_REQUIRES(role_) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
      soerr != 0) {
    handle_failure(std::string("connect: ") +
                   std::strerror(soerr != 0 ? soerr : errno));
    return;
  }
  connecting_ = false;
  if (connect_timer_armed_) {
    exec_->cancel(connect_timer_);
    connect_timer_armed_ = false;
  }
  set_interest(true, out_offset_ < out_.size());
  arm_io_deadline();
  flush_writes();
}

void AsyncHttpClient::read_input() IDICN_REQUIRES(role_) {
  char buffer[16 * 1024];
  while (fd_.valid() && !ops_.empty()) {
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n == 0) {
      handle_failure("connection closed mid-response");
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_failure(std::string("recv: ") + std::strerror(errno));
      return;
    }
    arm_io_deadline();
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    if (decoder_.failed()) {
      handle_failure("malformed response: " + decoder_.error());
      return;
    }
    drain_ready();
    if (!ops_.empty() && ops_.front().cancelled) {
      // Mid-body cancellation: a half-read body poisons reuse.
      Op op = std::move(ops_.front());
      ops_.pop_front();
      --pending_ops_;
      std::deque<Op> rest;
      rest.swap(ops_);
      pending_ops_ = 0;
      close_connection();
      op.done(std::nullopt, "streaming cancelled by sink");
      for (Op& other : rest) {
        other.done(std::nullopt, "connection closed mid-response");
      }
      return;
    }
  }
}

void AsyncHttpClient::flush_writes() IDICN_REQUIRES(role_) {
  while (fd_.valid() && out_offset_ < out_.size()) {
    const ssize_t n = ::send(fd_.get(), out_.data() + out_offset_,
                             out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        set_interest(true, true);
        return;
      }
      handle_failure(std::string("send: ") + std::strerror(errno));
      return;
    }
    out_offset_ += static_cast<std::size_t>(n);
    arm_io_deadline();
  }
  if (fd_.valid() && out_offset_ >= out_.size()) {
    out_.clear();
    out_offset_ = 0;
    set_interest(true, false);
  }
}

void AsyncHttpClient::drain_ready() IDICN_REQUIRES(role_) {
  while (!ops_.empty()) {
    auto head = decoder_.next_response();
    if (!head) return;
    complete_front(std::move(*head));
  }
}

void AsyncHttpClient::on_response_head(const net::HttpResponse& head)
    IDICN_REQUIRES(role_) {
  if (ops_.empty()) return;  // unsolicited; the decoder drains into the void
  Op& op = ops_.front();
  op.delivered = true;
  if (op.sink && !op.sink->on_head(head)) op.cancelled = true;
}

void AsyncHttpClient::on_response_chunk(core::Chunk chunk)
    IDICN_REQUIRES(role_) {
  if (ops_.empty()) return;
  Op& op = ops_.front();
  if (op.cancelled) return;  // decoder may still flush a staged slab
  if (op.sink) {
    if (!op.sink->on_chunk(std::move(chunk))) op.cancelled = true;
  } else {
    op.buffered.append(std::move(chunk));
  }
}

void AsyncHttpClient::complete_front(net::HttpResponse head)
    IDICN_REQUIRES(role_) {
  Op op = std::move(ops_.front());
  ops_.pop_front();
  --pending_ops_;

  if (op.cancelled) {
    std::deque<Op> rest;
    rest.swap(ops_);
    pending_ops_ = 0;
    close_connection();
    op.done(std::nullopt, "streaming cancelled by sink");
    for (Op& other : rest) {
      other.done(std::nullopt, "connection closed mid-response");
    }
    return;
  }

  if (!op.sink && !op.buffered.empty()) {
    if (op.buffered.size() <= kFlatBodyMax) {
      head.body = op.buffered.to_string();
    } else {
      head.stream_body = std::move(op.buffered);
    }
  }

  bool will_close = false;
  if (const auto connection = head.headers.get("Connection");
      connection && net::detail::iequals(*connection, "close")) {
    will_close = true;
  }
  // Settle the connection before the completion runs: it may re-enter
  // issue() for a follow-up request.
  if (will_close) close_connection();
  if (ops_.empty()) {
    park_idle();
  } else if (will_close) {
    begin_connect();  // the rest of the batch redials (nothing delivered)
  } else {
    arm_io_deadline();
  }
  op.done(std::move(head), std::string());
}

void AsyncHttpClient::handle_failure(const std::string& error)
    IDICN_REQUIRES(role_) {
  bool can_replay = reused_ && !replayed_ && !ops_.empty();
  for (const Op& op : ops_) {
    // Never replay once a streaming sink saw anything, or after a cancel.
    if (op.cancelled || (op.sink && op.delivered)) can_replay = false;
  }
  if (can_replay) {
    // Keep-alive race: the server idled the connection out between our
    // requests; nothing reached a sink, so a clean replay is safe.
    replayed_ = true;
    for (Op& op : ops_) {
      op.delivered = false;
      op.buffered.clear();
    }
    close_connection();
    begin_connect();
    return;
  }
  fail_all(error);
}

void AsyncHttpClient::fail_all(const std::string& error)
    IDICN_REQUIRES(role_) {
  close_connection();
  std::deque<Op> failed;
  failed.swap(ops_);
  pending_ops_ = 0;
  reused_ = false;
  replayed_ = false;
  out_.clear();
  out_offset_ = 0;
  for (Op& op : failed) op.done(std::nullopt, error);
}

void AsyncHttpClient::close_connection() IDICN_REQUIRES(role_) {
  if (connect_timer_armed_) {
    exec_->cancel(connect_timer_);
    connect_timer_armed_ = false;
  }
  cancel_io_deadline();
  if (watched_ && fd_.valid()) exec_->unwatch_fd(fd_.get());
  watched_ = false;
  connecting_ = false;
  fd_.reset();
  decoder_.reset();
}

void AsyncHttpClient::park_idle() IDICN_REQUIRES(role_) {
  cancel_io_deadline();
  if (watched_ && fd_.valid()) exec_->unwatch_fd(fd_.get());
  watched_ = false;
  reused_ = false;
  replayed_ = false;
  out_.clear();
  out_offset_ = 0;
}

void AsyncHttpClient::arm_io_deadline() IDICN_REQUIRES(role_) {
  cancel_io_deadline();
  std::weak_ptr<char> alive{alive_};
  io_timer_ = exec_->schedule(static_cast<std::uint64_t>(options_.io_timeout_ms),
                              [this, alive]() {
                                if (alive.expired()) return;
                                assert_owned();
                                io_timer_armed_ = false;
                                handle_failure("receive timeout");
                              });
  io_timer_armed_ = true;
}

void AsyncHttpClient::cancel_io_deadline() IDICN_REQUIRES(role_) {
  if (io_timer_armed_) {
    exec_->cancel(io_timer_);
    io_timer_armed_ = false;
  }
}

void AsyncHttpClient::set_interest(bool want_read, bool want_write)
    IDICN_REQUIRES(role_) {
  if (!fd_.valid()) return;
  if (watched_) {
    exec_->update_fd(fd_.get(), want_read, want_write);
    return;
  }
  std::weak_ptr<char> alive{alive_};
  watched_ = exec_->watch_fd(
      fd_.get(), want_read, want_write,
      [this, alive](bool readable, bool writable, bool error) {
        if (alive.expired()) return;
        assert_owned();
        on_socket_event(readable, writable, error);
      });
}

}  // namespace idicn::runtime
