#include "runtime/congestion_window.hpp"

#include <algorithm>
#include <cmath>

namespace idicn::runtime {

CubicWindow::CubicWindow(Options options)
    : options_(options),
      window_(options.initial_window),
      ssthresh_(options.initial_ssthresh) {
  window_ = std::clamp(window_, options_.min_window, options_.max_window);
}

void CubicWindow::on_ack(std::uint64_t now_ms) {
  if (!epoch_active_) {
    if (window_ < ssthresh_) {
      // Slow start: one extra request per completed request.
      window_ = std::min(window_ + 1.0, options_.max_window);
      return;
    }
    // Slow start exhausted without a loss: open a cubic epoch plateaued
    // at the current window so further growth is the cautious cubic tail.
    epoch_active_ = true;
    w_max_ = window_;
    k_seconds_ = 0.0;
    epoch_start_ms_ = now_ms;
  }
  const double t =
      static_cast<double>(now_ms - epoch_start_ms_) / 1000.0 - k_seconds_;
  const double target = options_.c * t * t * t + w_max_;
  if (target > window_) {
    // RFC 8312 §4.1 per-ack growth: spread the climb to the cubic target
    // over one window's worth of acks.
    window_ += (target - window_) / window_;
  }
  window_ = std::clamp(window_, options_.min_window, options_.max_window);
}

void CubicWindow::on_loss(std::uint64_t now_ms) {
  w_max_ = window_;
  window_ = std::max(window_ * options_.beta, options_.min_window);
  ssthresh_ = window_;
  // K: how long the cubic takes to climb back from the cut to w_max.
  k_seconds_ = std::cbrt(w_max_ * (1.0 - options_.beta) / options_.c);
  epoch_start_ms_ = now_ms;
  epoch_active_ = true;
}

std::size_t CubicWindow::allowance() const noexcept {
  return static_cast<std::size_t>(std::max(1.0, std::floor(window_)));
}

}  // namespace idicn::runtime
