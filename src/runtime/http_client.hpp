// Blocking HTTP/1.1 client for one endpoint: keep-alive connection reuse,
// incremental response decoding, send/receive timeouts. This is the
// caller-side counterpart of HostServer — load generators, examples, and
// SocketNet all speak through it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/http_decoder.hpp"
#include "net/http_message.hpp"
#include "net/transport.hpp"
#include "runtime/tcp.hpp"

namespace idicn::runtime {

class HttpClient {
public:
  struct Options {
    int connect_timeout_ms = 5'000;
    int io_timeout_ms = 10'000;
  };

  HttpClient(std::string host, std::uint16_t port);
  HttpClient(std::string host, std::uint16_t port, Options options);

  /// One round trip. Reconnects transparently (once) when a reused
  /// keep-alive connection turns out to be dead — the standard race with a
  /// server-side idle close. nullopt on failure (reason in `error`).
  std::optional<net::HttpResponse> request(const net::HttpRequest& request,
                                           std::string* error = nullptr);

  /// Convenience GET (absolute-form or origin-form target).
  std::optional<net::HttpResponse> get(const std::string& target,
                                       std::string* error = nullptr);

  /// One round trip with incremental body delivery: `sink.on_head` fires
  /// when the status line + headers decode, `sink.on_chunk` per body slab
  /// as it arrives — the body never accumulates in this client. Returns
  /// the head (empty body) once the body is fully delivered; nullopt on
  /// transport failure or when a sink callback cancelled (the connection
  /// closes — a half-read body is not reusable). Unlike request(), no
  /// transparent reconnect happens once the sink saw anything.
  std::optional<net::HttpResponse> request_streaming(
      const net::HttpRequest& request, net::ChunkSink& sink,
      std::string* error = nullptr);

  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

  /// True when a kept-alive connection is no longer safely reusable: the
  /// peer closed it (EOF pending), it errored, or unsolicited bytes arrived
  /// while it sat idle (e.g. a server deadline response raced our reuse —
  /// those bytes would otherwise decode as the answer to the *next*
  /// request). A disconnected client is not stale: it dials fresh.
  [[nodiscard]] bool stale_connection() const noexcept;

  void close();

  [[nodiscard]] std::uint64_t requests_sent() const noexcept { return requests_sent_; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

private:
  bool ensure_connected(std::string* error);
  /// Write the full buffer; false on error/timeout.
  bool write_all(const std::string& bytes, std::string* error);
  /// Read until one response decodes; nullopt on error/timeout/EOF.
  std::optional<net::HttpResponse> read_response(std::string* error);
  std::optional<net::HttpResponse> round_trip(const std::string& wire,
                                              std::string* error);

  std::string host_;
  std::uint16_t port_;
  Options options_;
  ScopedFd fd_;
  net::HttpDecoder decoder_{net::HttpDecoder::Mode::Response};
  std::uint64_t requests_sent_ = 0;
};

// Out of line: Options' default member initializers only become usable once
// the enclosing class is complete.
inline HttpClient::HttpClient(std::string host, std::uint16_t port)
    : HttpClient(std::move(host), port, Options{}) {}

}  // namespace idicn::runtime
