#include "runtime/timer_wheel.hpp"

#include <algorithm>

namespace idicn::runtime {

TimerWheel::TimerWheel(std::uint64_t tick_ms, std::size_t slots, std::uint64_t start_ms)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      buckets_(slots == 0 ? 1 : slots),
      now_ms_(start_ms),
      current_tick_(start_ms / tick_ms_) {}

TimerWheel::Bucket& TimerWheel::bucket_for(std::uint64_t deadline_ms,
                                           std::uint64_t& rounds) {
  // Ceil to the next tick so a timer never fires early.
  const std::uint64_t deadline_tick = (deadline_ms + tick_ms_ - 1) / tick_ms_;
  const std::uint64_t ticks_out =
      deadline_tick > current_tick_ ? deadline_tick - current_tick_ : 0;
  rounds = ticks_out / buckets_.size();
  return buckets_[(current_tick_ + ticks_out) % buckets_.size()];
}

TimerWheel::TimerId TimerWheel::schedule(std::uint64_t delay_ms, Callback callback) {
  const TimerId id = next_id_++;
  Entry entry;
  entry.id = id;
  entry.deadline_ms = now_ms_ + delay_ms;
  entry.callback = std::move(callback);

  std::uint64_t rounds = 0;
  Bucket& bucket = bucket_for(entry.deadline_ms, rounds);
  entry.rounds = rounds;
  bucket.push_front(std::move(entry));
  entries_.emplace(id, std::make_pair(
                           static_cast<std::size_t>(&bucket - buckets_.data()),
                           bucket.begin()));
  deadlines_.insert(now_ms_ + delay_ms);
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    // Mid-advance: the timer may be extracted and awaiting its callback. A
    // cancel must still win (a close handler disarming its sibling timer
    // due the same tick), so disarm it in flight.
    return in_flight_.erase(id) == 1;
  }
  const auto [slot, position] = it->second;
  deadlines_.erase(deadlines_.find(position->deadline_ms));
  buckets_[slot].erase(position);
  entries_.erase(it);
  return true;
}

void TimerWheel::advance_to(std::uint64_t now_ms) {
  if (now_ms <= now_ms_) return;
  const std::uint64_t target_tick = now_ms / tick_ms_;

  // Collect everything due, bucket by bucket, then fire outside the wheel
  // structures so callbacks can schedule()/cancel() freely.
  std::vector<Entry> due;
  // Visiting more ticks than there are buckets revisits buckets — one full
  // sweep suffices then.
  const std::uint64_t steps =
      std::min<std::uint64_t>(target_tick - current_tick_, buckets_.size());
  for (std::uint64_t step = 1; step <= steps; ++step) {
    Bucket& bucket = buckets_[(current_tick_ + step) % buckets_.size()];
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (it->deadline_ms > now_ms) {
        // Either a later round, or (after a long sleep) a wrapped slot we
        // are passing early: decrement rounds at most once per sweep.
        if (it->rounds > 0) --it->rounds;
        ++it;
        continue;
      }
      entries_.erase(it->id);
      deadlines_.erase(deadlines_.find(it->deadline_ms));
      in_flight_.insert(it->id);
      due.push_back(std::move(*it));
      it = bucket.erase(it);
    }
  }
  current_tick_ = target_tick;
  now_ms_ = now_ms;

  // Deadline order; ids (monotonic per schedule()) break ties so same-tick
  // timers fire in schedule order — deterministic, and a timer scheduled
  // first can cancel a later sibling before it runs.
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline_ms != b.deadline_ms ? a.deadline_ms < b.deadline_ms
                                          : a.id < b.id;
  });
  for (Entry& entry : due) {
    // A callback earlier in this advance may have cancelled this timer.
    if (in_flight_.erase(entry.id) == 1) entry.callback();
  }
}

std::optional<std::uint64_t> TimerWheel::next_deadline_ms() const {
  if (deadlines_.empty()) return std::nullopt;
  return *deadlines_.begin();
}

}  // namespace idicn::runtime
