#include "runtime/host_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <stdexcept>

namespace idicn::runtime {
namespace {

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

HostServer::HostServer(net::SimHost* host, std::string address, Options options)
    : host_(host), address_(std::move(address)), options_(options) {
  if (host_ == nullptr) throw std::invalid_argument("HostServer: null host");
}

HostServer::~HostServer() { stop(); }

std::uint16_t HostServer::start(std::uint16_t port) {
  if (thread_.joinable()) throw std::runtime_error("HostServer: already started");

  std::string error;
  std::uint16_t bound = 0;
  const int fd = listen_tcp(port, &bound, &error);
  if (fd < 0) throw std::runtime_error("HostServer[" + address_ + "]: " + error);
  listener_.reset(fd);
  port_ = bound;

  loop_ = std::make_unique<EventLoop>(options_.backend);
  loop_->watch(listener_.get(), true, false,
               [this](bool readable, bool, bool) {
                 loop_role_.assert_held();
                 if (readable) on_accept();
               });
  thread_ = core::sync::Thread([this] {
    loop_role_.bind();  // the worker owns the hosted SimHost + connections
    loop_->run();
    loop_role_.unbind();
  });
  return port_;
}

void HostServer::stop() {
  if (!thread_.joinable()) return;
  loop_->stop();
  thread_.join();
  // The worker unbound the role on exit; re-claim its state from this
  // thread and tear down on the (now stopped) loop's structures.
  loop_role_.assert_held();
  for (auto& [fd, conn] : connections_) {
    loop_->unwatch(fd);
    (void)conn;
  }
  connections_.clear();
  loop_->unwatch(listener_.get());
  listener_.reset();
  loop_.reset();
}

void HostServer::run_on_loop(const std::function<void()>& fn) {
  if (!thread_.joinable()) {
    // Not running: the caller owns all state, run inline.
    loop_role_.assert_held();
    fn();
    return;
  }
  // Posting to our own loop and waiting would deadlock.
  assert(thread_.get_id() != std::this_thread::get_id() &&
         "run_on_loop called from the worker thread");
  core::sync::Mutex mutex;
  core::sync::CondVar done_cv;
  bool done = false;
  loop_->post([&] {
    fn();
    const core::sync::MutexLock lock(mutex);
    done = true;
    done_cv.notify_one();
  });
  core::sync::MutexLock lock(mutex);
  done_cv.wait(mutex, [&] { return done; });
}

HostServer::Stats HostServer::stats() const {
  const core::sync::MutexLock lock(stats_mutex_);
  return stats_;
}

void HostServer::on_accept() {
  while (true) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept(listener_.get(), reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (connections_.size() >= options_.max_connections) {
      const std::string reply =
          net::make_response(503, "server at connection capacity").serialize();
      (void)!::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_rejected;
      continue;
    }
    set_nonblocking(fd);
    set_nodelay(fd);

    auto conn = std::make_unique<Connection>(fd, peer_name(addr),
                                             options_.decoder_limits);
    conn->last_activity_ms = loop_->now_ms();
    arm_timer(*conn);
    loop_->watch(fd, true, false, [this, fd](bool readable, bool writable, bool error) {
      loop_role_.assert_held();
      on_connection_event(fd, readable, writable, error);
    });
    connections_.emplace(fd, std::move(conn));
    const core::sync::MutexLock lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void HostServer::arm_timer(Connection& conn) {
  // Lazy deadline check: fire at the nearest possible deadline and
  // recompute; reads just bump last_activity_ms without timer churn.
  const std::uint64_t delay =
      std::min(options_.idle_timeout_ms, options_.request_timeout_ms);
  const int fd = conn.fd.get();
  conn.timer = loop_->add_timer(delay, [this, fd] {
    loop_role_.assert_held();
    check_deadlines(fd);
  });
}

void HostServer::check_deadlines(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.closing) {  // already draining towards close; stop waiting for it
    close_connection(fd);
    return;
  }
  const std::uint64_t now = loop_->now_ms();

  const bool mid_request = conn.decoder.buffered_bytes() > 0;
  const bool request_expired =
      mid_request && now - conn.message_start_ms >= options_.request_timeout_ms;
  const bool idle_expired = now - conn.last_activity_ms >= options_.idle_timeout_ms;

  if (request_expired || idle_expired) {
    {
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.timeouts;
    }
    if (request_expired) {
      conn.out += net::make_response(408, "request timed out").serialize();
    }
    conn.closing = true;
    flush(conn);  // may close the connection
    if (connections_.count(fd) != 0) arm_timer(conn);
    return;
  }
  arm_timer(conn);
}

void HostServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_->cancel_timer(it->second->timer);
  loop_->unwatch(fd);
  connections_.erase(it);  // ScopedFd closes
  const core::sync::MutexLock lock(stats_mutex_);
  ++stats_.connections_closed;
}

void HostServer::serve_decoded(Connection& conn) {
  // Drain every pipelined request in arrival order.
  while (auto request = conn.decoder.next_request()) {
    net::HttpResponse response;
    try {
      response = host_->handle_http(*request, conn.peer);
    } catch (const std::exception& e) {
      response = net::make_response(500, std::string("handler error: ") + e.what());
    }
    const bool peer_wants_close =
        [&] {
          const auto connection = request->headers.get("Connection");
          if (connection) return *connection == "close" || *connection == "Close";
          return request->version == "HTTP/1.0";
        }();
    if (peer_wants_close) {
      response.headers.set("Connection", "close");
      conn.closing = true;
    }
    conn.out += response.serialize();
    {
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.requests_served;
    }
    if (conn.closing) break;
  }

  if (conn.decoder.failed()) {
    {
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.decode_errors;
    }
    conn.out += net::make_response(conn.decoder.suggested_status(),
                                   "malformed request: " + conn.decoder.error())
                    .serialize();
    conn.closing = true;
  }
}

void HostServer::flush(Connection& conn) {
  const int fd = conn.fd.get();
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Backpressure: park the rest until the socket drains.
        if (!conn.write_armed) {
          conn.write_armed = true;
          loop_->update(fd, !conn.closing, true);
        }
        return;
      }
      close_connection(fd);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(n);
    const core::sync::MutexLock lock(stats_mutex_);
    stats_.bytes_out += static_cast<std::uint64_t>(n);
  }
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.closing) {
    close_connection(fd);
    return;
  }
  if (conn.write_armed) {
    conn.write_armed = false;
    loop_->update(fd, true, false);
  }
}

void HostServer::on_connection_event(int fd, bool readable, bool writable,
                                     bool error) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  if (error) {
    close_connection(fd);
    return;
  }

  if (readable) {
    char buffer[16 * 1024];
    while (true) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n == 0) {  // orderly shutdown by the peer
        close_connection(fd);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_connection(fd);
        return;
      }
      const std::uint64_t now = loop_->now_ms();
      if (conn.decoder.buffered_bytes() == 0) conn.message_start_ms = now;
      conn.last_activity_ms = now;
      {
        const core::sync::MutexLock lock(stats_mutex_);
        stats_.bytes_in += static_cast<std::uint64_t>(n);
      }
      conn.decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
    serve_decoded(conn);
  }

  if (writable || !conn.out.empty()) flush(conn);
}

}  // namespace idicn::runtime
