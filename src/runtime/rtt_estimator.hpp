// Per-destination RTT estimation for the multi-source fetch path.
//
// The estimator is the sensing half of MultiSourceFetcher (DESIGN.md §13):
// every clean request/response exchange feeds one RTT sample, and three
// derived figures drive fetch decisions:
//   * srtt/rttvar — RFC 6298 smoothed RTT and variance, integer µs math
//     (srtt ← 7/8·srtt + 1/8·r, rttvar ← 3/4·rttvar + 1/4·|srtt−r|) so a
//     sample sequence maps to exact, test-assertable values.
//   * quantile_us(q) — an order statistic over a sliding window of recent
//     samples (default 64). The hedge timer arms at the p95: a request
//     older than 95% of recent exchanges is a straggler worth duplicating.
//   * backoff shift — Karn's algorithm. Exchanges that were retransmitted,
//     hedged-over, or cancelled are *ambiguous*: their timing measures the
//     race, not the path, so they contribute no sample; instead each
//     on_retransmit() doubles the RTO and the ranking RTT. The shift
//     clears on the next clean sample. This is what couples hedging to
//     source ranking — a replica that keeps losing hedge races looks
//     exponentially worse without ever delivering a measurement.
//
// Pure policy: no clock, no lock. The caller (MultiSourceFetcher) supplies
// timing and guards per-destination state with its own mutex; unit tests
// drive sample sequences directly and assert exact outputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace idicn::runtime {

class RttEstimator {
 public:
  struct Options {
    /// Assumed RTT for a destination with no samples yet: optimistic enough
    /// that new replicas get explored, pessimistic enough that a measured
    /// fast replica outranks an unknown one.
    std::uint64_t initial_rtt_us = 50'000;
    std::uint64_t min_rto_us = 20'000;        ///< RTO floor after shifting
    std::uint64_t max_rto_us = 10'000'000;    ///< RTO ceiling
    std::uint64_t granularity_us = 1'000;     ///< RFC 6298 clock granularity G
    int max_backoff_shift = 6;                ///< Karn doubling cap (×64)
    std::size_t window = 64;                  ///< quantile ring capacity
  };

  RttEstimator() : RttEstimator(Options{}) {}
  explicit RttEstimator(Options options);

  /// One clean (unambiguous) exchange took `rtt_us`. Updates srtt/rttvar,
  /// appends to the quantile window, and clears the Karn backoff shift.
  void on_sample(std::uint64_t rtt_us);

  /// An ambiguous exchange: the request was retransmitted, hedged over, or
  /// cancelled, so its timing is not a path measurement (Karn's rule).
  /// Doubles the backoff shift (capped); records no sample.
  void on_retransmit();

  [[nodiscard]] bool has_sample() const noexcept { return samples_seen_ > 0; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_seen_; }
  /// Smoothed RTT in µs; options.initial_rtt_us before the first sample.
  [[nodiscard]] std::uint64_t srtt_us() const noexcept;
  [[nodiscard]] std::uint64_t rttvar_us() const noexcept { return rttvar_us_; }
  [[nodiscard]] int backoff_shift() const noexcept { return backoff_shift_; }

  /// Retransmission timeout: (srtt + max(4·rttvar, G)) · 2^shift, clamped
  /// to [min_rto, max_rto].
  [[nodiscard]] std::uint64_t rto_us() const noexcept;

  /// Order statistic over the sample window: the smallest recent sample
  /// ≥ fraction `q` of the window (index ⌈q·n⌉−1 of the sorted window).
  /// options.initial_rtt_us when no samples exist. q is clamped to (0, 1].
  [[nodiscard]] std::uint64_t quantile_us(double q) const;

  /// RTT used to *rank* this destination against its replicas:
  /// (srtt or initial_rtt) · 2^shift. The Karn shift makes losing hedge
  /// races exponentially expensive in the ranking even though cancelled
  /// exchanges never produce a sample.
  [[nodiscard]] std::uint64_t ranking_rtt_us() const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::uint64_t srtt_us_ = 0;
  std::uint64_t rttvar_us_ = 0;
  int backoff_shift_ = 0;
  std::size_t samples_seen_ = 0;
  std::vector<std::uint64_t> ring_;  ///< last `window` samples, insertion order
  std::size_t ring_next_ = 0;        ///< next overwrite position once full
};

}  // namespace idicn::runtime
