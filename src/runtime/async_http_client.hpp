// Loop-native HTTP/1.1 client for one endpoint: non-blocking connect,
// keep-alive reuse, pipelined FIFO requests, incremental response decoding
// with streaming body delivery, and timer-wheel connect/IO deadlines.
//
// This is the asynchronous counterpart of HttpClient — the half that lets
// a proxy worker fetch from an upstream *without leaving its event loop*:
// issue() returns immediately, the transfer proceeds via fd readiness
// callbacks on the owning executor, and the completion (plus any streaming
// sink callbacks) fires on the loop thread. Error strings, the
// reconnect-once keep-alive race handling, the stale-connection probe, and
// Connection: close handling all mirror HttpClient so the two paths stay
// behaviorally interchangeable (the blocking client remains for off-loop
// callers: tests, benches, the trace driver).
//
// Ownership: an AsyncHttpClient is confined to its executor's loop thread.
// The `role_` thread role is the static ownership domain — every mutating
// entry point requires it (callers gain it via assert_owned(), exactly
// like EventLoop::assert_on_loop_thread). The role is never bound to a
// thread at runtime; it exists for Clang's -Wthread-safety and for the
// tools/analysis loop-reachability roots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/buffer.hpp"
#include "core/sync.hpp"
#include "net/http_decoder.hpp"
#include "net/http_message.hpp"
#include "net/transport.hpp"
#include "runtime/tcp.hpp"

namespace idicn::runtime {

class AsyncHttpClient {
public:
  struct Options {
    int connect_timeout_ms = 5'000;
    int io_timeout_ms = 10'000;
  };

  /// Terminal outcome of one issue(): the response head (empty body for
  /// streaming ops, body attached for buffered ops) or nullopt + reason.
  /// Fires exactly once, on the loop thread, possibly inline from issue().
  using Completion =
      std::function<void(std::optional<net::HttpResponse>, std::string)>;

  /// Does not own `exec`; the caller keeps the executor alive for the
  /// client's lifetime (pool entries are destroyed before their loop).
  AsyncHttpClient(net::Executor* exec, std::string host, std::uint16_t port);
  AsyncHttpClient(net::Executor* exec, std::string host, std::uint16_t port,
                  Options options);
  ~AsyncHttpClient();

  AsyncHttpClient(const AsyncHttpClient&) = delete;
  AsyncHttpClient& operator=(const AsyncHttpClient&) = delete;

  /// Start one request. With a sink, body bytes stream to it as they
  /// arrive (head via on_head, slabs via on_chunk; returning false cancels
  /// the transfer and closes the connection — "streaming cancelled by
  /// sink"). Without a sink the body is buffered into the completed
  /// response. Requests pipeline FIFO on one connection; a dead reused
  /// connection is redialed once transparently when no sink saw anything.
  void issue(const net::HttpRequest& request,
             std::shared_ptr<net::ChunkSink> sink, Completion done)
      IDICN_REQUIRES(role_);

  /// Tear down: unwatch + close the connection, fail any pending ops with
  /// "client shut down". Safe to call repeatedly. Must run on the loop
  /// thread (or while the loop is not running) — the destructor does NOT
  /// do this (it only closes the fd), so live clients with watched fds
  /// must be shut down before destruction.
  void shutdown() IDICN_REQUIRES(role_);

  /// The loop-ownership gate for static analysis; see EventLoop's
  /// assert_on_loop_thread. The role is unbound, so this never aborts —
  /// it documents and type-checks the single-threaded discipline.
  void assert_owned() const IDICN_ASSERT_CAPABILITY(role_) {
    role_.assert_held();
  }

  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }
  /// No ops in flight (the pool's precondition for parking/borrowing).
  [[nodiscard]] bool idle() const noexcept { return pending_ops_ == 0; }
  /// Same MSG_PEEK probe as HttpClient::stale_connection: a kept-alive
  /// connection with a pending FIN, error, or unsolicited bytes must be
  /// redialed, not reused.
  [[nodiscard]] bool stale_connection() const noexcept;

  [[nodiscard]] std::uint64_t requests_sent() const noexcept {
    return requests_sent_;
  }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

private:
  struct Op {
    std::string wire;                      ///< serialized request (replay)
    std::shared_ptr<net::ChunkSink> sink;  ///< null ⇒ buffer the body
    Completion done;
    bool delivered = false;   ///< sink (or buffer) saw the response head
    bool cancelled = false;   ///< a sink callback returned false
    core::ChunkedBody buffered;  ///< body staging for sink-less ops
  };

  void begin_connect() IDICN_REQUIRES(role_);
  void on_socket_event(bool readable, bool writable, bool error)
      IDICN_REQUIRES(role_);
  void finish_connect() IDICN_REQUIRES(role_);
  void read_input() IDICN_REQUIRES(role_);
  void flush_writes() IDICN_REQUIRES(role_);
  void drain_ready() IDICN_REQUIRES(role_);
  void complete_front(net::HttpResponse head) IDICN_REQUIRES(role_);
  void on_response_head(const net::HttpResponse& head) IDICN_REQUIRES(role_);
  void on_response_chunk(core::Chunk chunk) IDICN_REQUIRES(role_);
  /// Connection-level failure: redial-and-replay once when safe, else fail
  /// every pending op with `error`.
  void handle_failure(const std::string& error) IDICN_REQUIRES(role_);
  void fail_all(const std::string& error) IDICN_REQUIRES(role_);
  void close_connection() IDICN_REQUIRES(role_);
  void park_idle() IDICN_REQUIRES(role_);
  void arm_io_deadline() IDICN_REQUIRES(role_);
  void cancel_io_deadline() IDICN_REQUIRES(role_);
  void set_interest(bool want_read, bool want_write) IDICN_REQUIRES(role_);

  net::Executor* exec_;
  std::string host_;
  std::uint16_t port_;
  Options options_;

  /// Static ownership domain: all mutable state below belongs to the
  /// executor's loop thread. Unbound at runtime (assert_held passes); the
  /// annotations are the contract.
  mutable core::sync::ThreadRole role_;

  ScopedFd fd_;
  bool watched_ = false;
  bool connecting_ IDICN_GUARDED_BY(role_) = false;
  bool reused_ IDICN_GUARDED_BY(role_) = false;    ///< batch rides a kept-alive fd
  bool replayed_ IDICN_GUARDED_BY(role_) = false;  ///< one redial per batch
  std::string out_ IDICN_GUARDED_BY(role_);        ///< unsent wire bytes
  std::size_t out_offset_ IDICN_GUARDED_BY(role_) = 0;
  net::HttpDecoder decoder_ IDICN_GUARDED_BY(role_){
      net::HttpDecoder::Mode::Response};
  std::deque<Op> ops_ IDICN_GUARDED_BY(role_);
  std::size_t pending_ops_ = 0;  ///< ops_.size() mirror readable without the role
  net::Executor::TaskId connect_timer_ IDICN_GUARDED_BY(role_) = 0;
  bool connect_timer_armed_ IDICN_GUARDED_BY(role_) = false;
  net::Executor::TaskId io_timer_ IDICN_GUARDED_BY(role_) = 0;
  bool io_timer_armed_ IDICN_GUARDED_BY(role_) = false;
  std::uint64_t requests_sent_ = 0;
  /// Liveness token for timer/fd callbacks: they hold a weak_ptr and
  /// no-op after destruction, so a torn-down client never dangles.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

// Out of line: Options' default member initializers only become usable once
// the enclosing class is complete.
inline AsyncHttpClient::AsyncHttpClient(net::Executor* exec, std::string host,
                                        std::uint16_t port)
    : AsyncHttpClient(exec, std::move(host), port, Options{}) {}

}  // namespace idicn::runtime
