// Upstream fault-tolerance primitives: retry backoff, retry budget, and
// per-destination circuit breaking.
//
// The runtime's upstream path (SocketNet → HttpClient → TCP) treats every
// failure as data, but until this layer it reacted to failures naively:
// each send paid the full connect/IO timeout against a dead destination and
// reconnect storms could amplify overload. The three classes here are the
// policy pieces SocketNet::send composes (DESIGN.md §"Failure model &
// degradation"):
//   * RetryPolicy   — capped exponential backoff with *full jitter*
//                     (delay ~ Uniform[0, min(cap, base·2^attempt)]), a
//                     seeded deterministic RNG, and an overall deadline so
//                     a send's retries cannot outlive the caller's patience.
//                     The loop-native async send path reschedules backoff
//                     through the timer wheel (schedule_backoff); the
//                     blocking sleep() remains only for off-loop callers
//                     (tests, benches, the trace driver).
//   * RetryBudget   — a token bucket that couples retry volume to request
//                     volume: each first attempt deposits a fraction of a
//                     token, each retry withdraws a whole one. Under a hard
//                     outage the budget empties and retries stop, so the
//                     retry layer cannot multiply offered load.
//   * CircuitBreaker — the classic closed → open → half-open machine per
//                     destination. After `failure_threshold` consecutive
//                     failures the breaker opens and calls fast-fail
//                     (no dial, no timeout burn) for `open_ms`; then it
//                     half-opens and admits a bounded number of probes;
//                     probe success re-closes, probe failure re-opens.
//
// All three are thread-safe: SocketNet is shared by every proxy worker, so
// successes and failures for one destination arrive from many threads.
#pragma once

#include <cstdint>
#include <functional>
#include <random>

#include "core/sync.hpp"
#include "net/transport.hpp"

namespace idicn::runtime {

/// Capped exponential backoff with full jitter and a seeded RNG.
class RetryPolicy {
 public:
  struct Options {
    int max_attempts = 3;  ///< total tries per send, including the first
    std::uint64_t base_delay_ms = 25;   ///< backoff scale for retry #1
    std::uint64_t max_delay_ms = 1'000; ///< per-delay cap
    /// Retries (and their sleeps) must fit in this window measured from the
    /// first attempt; 0 = unbounded.
    std::uint64_t overall_deadline_ms = 10'000;
    std::uint64_t seed = 0x1d1c4e75;  ///< jitter RNG seed (deterministic tests)
  };

  RetryPolicy() : RetryPolicy(Options{}) {}
  explicit RetryPolicy(Options options);

  /// Full-jitter delay before retry `attempt` (1 = the first retry):
  /// Uniform[0, min(max_delay, base_delay · 2^(attempt-1))].
  [[nodiscard]] std::uint64_t backoff_delay_ms(int attempt)
      IDICN_EXCLUDES(mutex_);

  /// True when a retry whose backoff is `delay_ms` still fits the overall
  /// deadline, given `elapsed_ms` already spent on this send.
  [[nodiscard]] bool within_deadline(std::uint64_t elapsed_ms,
                                     std::uint64_t delay_ms) const noexcept;

  /// Blocking backoff for off-loop callers (tests, benches, the trace
  /// driver): block the calling thread for `delay_ms`. Never call on an
  /// event-loop thread — loop code uses schedule_backoff() instead.
  static void sleep(std::uint64_t delay_ms);

  /// Non-blocking backoff: arm a one-shot timer on `exec` that runs
  /// `resume` after `delay_ms` (0 ⇒ still deferred one timer dispatch, so
  /// the caller's stack unwinds first). Returns the timer id, cancellable
  /// via Executor::cancel.
  static net::Executor::TaskId schedule_backoff(net::Executor& exec,
                                                std::uint64_t delay_ms,
                                                std::function<void()> resume);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  mutable core::sync::Mutex mutex_;
  std::mt19937_64 rng_ IDICN_GUARDED_BY(mutex_);
};

/// Token bucket coupling retry volume to request volume so retries cannot
/// amplify an overload: first attempts deposit `tokens_per_request`, each
/// retry withdraws 1.0. An empty bucket means "shed the retry".
class RetryBudget {
 public:
  struct Options {
    double tokens_per_request = 0.1;  ///< deposit per first attempt
    double max_tokens = 100.0;        ///< bucket cap
    double initial_tokens = 10.0;     ///< grace for cold starts
  };

  RetryBudget() : RetryBudget(Options{}) {}
  explicit RetryBudget(Options options);

  /// A first attempt is being made: deposit the per-request fraction.
  void on_attempt() IDICN_EXCLUDES(mutex_);
  /// Withdraw one token for a retry; false (and no withdrawal) when the
  /// bucket lacks a whole token — the caller must not retry.
  [[nodiscard]] bool try_spend() IDICN_EXCLUDES(mutex_);

  [[nodiscard]] double tokens() const IDICN_EXCLUDES(mutex_);

 private:
  Options options_;
  mutable core::sync::Mutex mutex_;
  double tokens_ IDICN_GUARDED_BY(mutex_);
};

/// Per-destination circuit breaker: closed → open → half-open with probes.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 5;     ///< consecutive failures that open
    std::uint64_t open_ms = 1'000; ///< fast-fail window before half-open
    int half_open_max_probes = 1;  ///< concurrent probes while half-open
    int half_open_successes = 1;   ///< probe successes that re-close
  };

  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options);

  /// Gate a call at `now_ms`. Closed: always true. Open: false until the
  /// cooldown elapses, at which point the breaker half-opens and this call
  /// becomes the first probe. HalfOpen: true while probe slots remain.
  [[nodiscard]] bool allow(std::uint64_t now_ms) IDICN_EXCLUDES(mutex_);

  /// Record the outcome of an allowed call.
  void record_success(std::uint64_t now_ms) IDICN_EXCLUDES(mutex_);
  void record_failure(std::uint64_t now_ms) IDICN_EXCLUDES(mutex_);

  /// Observer view (reflects the cooldown: an Open breaker whose window
  /// elapsed reports HalfOpen even before the next allow()).
  [[nodiscard]] State state(std::uint64_t now_ms) const IDICN_EXCLUDES(mutex_);
  /// Milliseconds until an Open breaker admits a probe (0 when not Open) —
  /// the Retry-After hint for fast-fail responses.
  [[nodiscard]] std::uint64_t retry_after_ms(std::uint64_t now_ms) const
      IDICN_EXCLUDES(mutex_);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  /// Move Open → HalfOpen once the cooldown has elapsed.
  void advance_cooldown(std::uint64_t now_ms) IDICN_REQUIRES(mutex_);

  Options options_;
  mutable core::sync::Mutex mutex_;
  State state_ IDICN_GUARDED_BY(mutex_) = State::Closed;
  int consecutive_failures_ IDICN_GUARDED_BY(mutex_) = 0;
  std::uint64_t opened_at_ms_ IDICN_GUARDED_BY(mutex_) = 0;
  int probes_in_flight_ IDICN_GUARDED_BY(mutex_) = 0;
  int probe_successes_ IDICN_GUARDED_BY(mutex_) = 0;
};

}  // namespace idicn::runtime
