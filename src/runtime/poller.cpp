#include "runtime/poller.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <unordered_map>

#if defined(__linux__)
#include <sys/epoll.h>
#define IDICN_HAVE_EPOLL 1
#endif

namespace idicn::runtime {
namespace {

#if defined(IDICN_HAVE_EPOLL)

class EpollPoller final : public Poller {
public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  [[nodiscard]] bool ok() const { return epfd_ >= 0; }

  bool add(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  bool modify(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }

  void remove(int fd) override { ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr); }

  int wait(int timeout_ms, std::vector<Ready>& out) override {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      Ready ready;
      ready.fd = events[i].data.fd;
      ready.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ready.writable = (events[i].events & EPOLLOUT) != 0;
      ready.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ready);
    }
    return n;
  }

  [[nodiscard]] const char* name() const override { return "epoll"; }

private:
  static epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    return ev;
  }

  int epfd_ = -1;
};

#endif  // IDICN_HAVE_EPOLL

class PollPoller final : public Poller {
public:
  bool add(int fd, bool want_read, bool want_write) override {
    if (index_.count(fd) != 0) return false;
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, events_mask(want_read, want_write), 0});
    return true;
  }

  bool modify(int fd, bool want_read, bool want_write) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return false;
    fds_[it->second].events = events_mask(want_read, want_write);
    return true;
  }

  void remove(int fd) override {
    const auto it = index_.find(fd);
    if (it == index_.end()) return;
    const std::size_t at = it->second;
    index_.erase(it);
    if (at + 1 != fds_.size()) {
      fds_[at] = fds_.back();
      index_[fds_[at].fd] = at;
    }
    fds_.pop_back();
  }

  int wait(int timeout_ms, std::vector<Ready>& out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    int appended = 0;
    for (const pollfd& pfd : fds_) {
      if (pfd.revents == 0) continue;
      Ready ready;
      ready.fd = pfd.fd;
      ready.readable = (pfd.revents & (POLLIN | POLLHUP)) != 0;
      ready.writable = (pfd.revents & POLLOUT) != 0;
      ready.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ready);
      if (++appended == n) break;
    }
    return appended;
  }

  [[nodiscard]] const char* name() const override { return "poll"; }

private:
  static short events_mask(bool want_read, bool want_write) {
    short mask = 0;
    if (want_read) mask |= POLLIN;
    if (want_write) mask |= POLLOUT;
    return mask;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

}  // namespace

std::unique_ptr<Poller> make_poller(PollerBackend backend) {
#if defined(IDICN_HAVE_EPOLL)
  if (backend == PollerBackend::Auto || backend == PollerBackend::Epoll) {
    auto poller = std::make_unique<EpollPoller>();
    if (poller->ok()) return poller;
    if (backend == PollerBackend::Epoll) return nullptr;
  }
#else
  if (backend == PollerBackend::Epoll) return nullptr;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace idicn::runtime
