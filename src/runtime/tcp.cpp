#include "runtime/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace idicn::runtime {
namespace {

void set_error(std::string* error, const char* where) {
  if (error != nullptr) *error = std::string(where) + ": " + std::strerror(errno);
}

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool reuseport_supported() {
#if defined(SO_REUSEPORT)
  ScopedFd probe(::socket(AF_INET, SOCK_STREAM, 0));
  if (!probe.valid()) return false;
  const int one = 1;
  return ::setsockopt(probe.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                      sizeof(one)) == 0;
#else
  return false;
#endif
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port, std::string* error,
               const ListenOptions& options) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reuseport) {
#if defined(SO_REUSEPORT)
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      set_error(error, "setsockopt(SO_REUSEPORT)");
      return -1;
    }
#else
    if (error != nullptr) *error = "SO_REUSEPORT not supported on this platform";
    return -1;
#endif
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    return -1;
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    set_error(error, "listen");
    return -1;
  }
  if (!set_nonblocking(fd.get())) {
    set_error(error, "fcntl");
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      set_error(error, "getsockname");
      return -1;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd.release();
}

int connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms,
                std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "unsupported address (IPv4 literal expected): " + host;
    return -1;
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return -1;
  }
  // Connect non-blocking so the timeout is enforceable, then flip back.
  if (!set_nonblocking(fd.get())) {
    set_error(error, "fcntl");
    return -1;
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      set_error(error, "connect");
      return -1;
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      if (error != nullptr) *error = "connect timeout to " + host;
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") + std::strerror(soerr != 0 ? soerr : errno);
      }
      return -1;
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    set_error(error, "fcntl");
    return -1;
  }
  return fd.release();
}

int connect_tcp_nonblocking(const std::string& host, std::uint16_t port,
                            std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "unsupported address (IPv4 literal expected): " + host;
    return -1;
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket");
    return -1;
  }
  if (!set_nonblocking(fd.get())) {
    set_error(error, "fcntl");
    return -1;
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    set_error(error, "connect");
    return -1;
  }
  return fd.release();
}

}  // namespace idicn::runtime
