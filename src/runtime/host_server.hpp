// SimHost → real-socket adapter (single-reactor spelling).
//
// HostServer takes any net::SimHost (Proxy, NameResolutionSystem,
// OriginServer, ReverseProxy, …) and serves it over real loopback TCP.
// Since PR 4 it is a thin shell over runtime::ServerGroup — the N-worker
// multi-reactor — fixed at the group's defaults (one worker unless
// Options::workers says otherwise). Everything HostServer historically
// promised (keep-alive, pipelining, backpressure, idle/request timeouts,
// per-connection single-thread ownership) now lives in server_group.cpp;
// see server_group.hpp for the threading contract.
#pragma once

#include "runtime/server_group.hpp"

namespace idicn::runtime {

class HostServer : public ServerGroup {
 public:
  using Options = ServerGroup::Options;
  using Stats = ServerGroup::Stats;

  HostServer(net::SimHost* host, std::string address)
      : ServerGroup(host, std::move(address)) {}
  HostServer(net::SimHost* host, std::string address, Options options)
      : ServerGroup(host, std::move(address), options) {}

  /// Historic name for the cross-thread door: execute `fn` with exclusive
  /// access to the hosted SimHost and wait. With one worker this is
  /// exactly the old post-and-wait semantics; with several it parks the
  /// whole group (run_on_all_workers).
  void run_on_loop(const std::function<void()>& fn) { run_on_all_workers(fn); }
};

}  // namespace idicn::runtime
