// SimHost → real-socket adapter.
//
// HostServer takes any net::SimHost (Proxy, NameResolutionSystem,
// OriginServer, ReverseProxy, …) and serves it over real loopback TCP:
// a non-blocking listener on its own event-loop thread, per-connection
// incremental decoding (net::HttpDecoder), keep-alive and pipelined
// requests, write backpressure, and timer-wheel idle/request timeouts.
// The hosted class is completely unchanged — handle_http() sees the same
// (request, from) it saw on SimNet, with `from` the peer's ip:port.
//
// Threading: one HostServer = one worker thread = one event loop; the
// hosted SimHost's handle_http runs only on that thread, and while the
// server runs, the hosted object and all connection state belong to it
// (IDICN_GUARDED_BY(loop_role_); see DESIGN.md §"Threading model"). Other
// threads interact through three safe doors: stats() (mutex-guarded
// snapshot), stop() (joins the worker first), and run_on_loop() (executes
// a closure on the worker and waits — use it to mutate or inspect the
// hosted SimHost while the server is live). A hosted Proxy whose upstream
// transport is a SocketNet will block its worker during upstream fetches —
// the same synchronous semantics the §6 prototype has on SimNet, just over
// real sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/sync.hpp"
#include "net/http_decoder.hpp"
#include "net/sim_net.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/tcp.hpp"

namespace idicn::runtime {

class HostServer {
 public:
  struct Options {
    std::uint64_t idle_timeout_ms = 30'000;    ///< close quiet keep-alive conns
    std::uint64_t request_timeout_ms = 10'000; ///< partial request must finish
    std::size_t max_connections = 1024;        ///< accepted conns beyond: 503+close
    net::HttpDecoder::Limits decoder_limits;
    PollerBackend backend = PollerBackend::Auto;
  };

  /// `host` (non-owning) must outlive the server; `address` is the logical
  /// name shown to the hosted SimHost and in diagnostics.
  HostServer(net::SimHost* host, std::string address);
  HostServer(net::SimHost* host, std::string address, Options options);
  ~HostServer();

  HostServer(const HostServer&) = delete;
  HostServer& operator=(const HostServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the worker thread, and
  /// return the bound port. Throws std::runtime_error when binding fails.
  std::uint16_t start(std::uint16_t port = 0);
  /// Stop the loop, close all connections, join the worker. Idempotent.
  void stop();

  /// Execute `fn` on the worker thread and wait for it to finish. The only
  /// sanctioned way to touch the hosted SimHost (publish content, register
  /// names, read its counters) from another thread while the server is
  /// running. When the server is not running, `fn` runs inline — the caller
  /// owns all state then. Must not be called from the worker itself.
  void run_on_loop(const std::function<void()>& fn);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests_served = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t timeouts = 0;              ///< idle + request deadline closes
  };
  [[nodiscard]] Stats stats() const IDICN_EXCLUDES(stats_mutex_);

 private:
  struct Connection {
    ScopedFd fd;
    std::string peer;                ///< "ip:port", passed as `from`
    net::HttpDecoder decoder;
    std::string out;                 ///< bytes awaiting the socket
    std::size_t out_offset = 0;
    bool closing = false;            ///< close once `out` drains
    bool write_armed = false;        ///< poller is watching writability
    std::uint64_t last_activity_ms = 0;
    std::uint64_t message_start_ms = 0;  ///< first byte of in-flight request
    TimerWheel::TimerId timer = 0;

    explicit Connection(int fd_in, std::string peer_in,
                        const net::HttpDecoder::Limits& limits)
        : fd(fd_in),
          peer(std::move(peer_in)),
          decoder(net::HttpDecoder::Mode::Request, limits) {}
  };

  void on_accept() IDICN_REQUIRES(loop_role_);
  void on_connection_event(int fd, bool readable, bool writable, bool error)
      IDICN_REQUIRES(loop_role_);
  void serve_decoded(Connection& conn) IDICN_REQUIRES(loop_role_);
  void flush(Connection& conn) IDICN_REQUIRES(loop_role_);
  void arm_timer(Connection& conn) IDICN_REQUIRES(loop_role_);
  void check_deadlines(int fd) IDICN_REQUIRES(loop_role_);
  void close_connection(int fd) IDICN_REQUIRES(loop_role_);

  /// Owns the hosted SimHost and all connection state while the worker
  /// runs; bound by the worker thread body, re-claimed by stop() after the
  /// join (an unbound role is free for any thread).
  core::sync::ThreadRole loop_role_;

  net::SimHost* host_;  ///< loop-thread-owned while running (see loop_role_)
  std::string address_;
  Options options_;
  /// Created by start() before the worker exists, destroyed by stop()
  /// after the join; the pointer itself is never touched concurrently.
  std::unique_ptr<EventLoop> loop_;
  ScopedFd listener_;       ///< written by start()/stop() only
  std::uint16_t port_ = 0;  ///< written by start() before the worker exists
  core::sync::Thread thread_;
  std::map<int, std::unique_ptr<Connection>> connections_
      IDICN_GUARDED_BY(loop_role_);

  mutable core::sync::Mutex stats_mutex_;
  Stats stats_ IDICN_GUARDED_BY(stats_mutex_);
};

// Out of line: Options' default member initializers only become usable once
// the enclosing class is complete.
inline HostServer::HostServer(net::SimHost* host, std::string address)
    : HostServer(host, std::move(address), Options{}) {}

}  // namespace idicn::runtime
