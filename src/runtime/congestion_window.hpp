// CUBIC-style per-destination congestion window for upstream fetches.
//
// The acting half of MultiSourceFetcher's per-destination state (DESIGN.md
// §13): the window bounds how many *extra* requests (hedges, parallel
// range legs) the fetcher is willing to aim at one upstream at a time, so
// multi-source aggression cannot pile onto a struggling replica. The
// growth/decrease laws follow RFC 8312 (TCP CUBIC), with requests standing
// in for segments:
//   * slow start  — below ssthresh the window grows by one per completed
//     request (doubling per window's worth of acks).
//   * congestion avoidance — after the first loss, growth follows the
//     cubic W(t) = C·(t−K)³ + w_max around the last-loss plateau w_max,
//     with K = ∛(w_max·(1−β)/C): fast recovery toward the old operating
//     point, cautious probing beyond it.
//   * loss — multiplicative decrease to β·w (β = 0.7), a gentler cut than
//     Reno's 0.5 (CUBIC's premise: paths are long, recovery is slow).
//
// Pure policy like RttEstimator: the caller supplies now_ms (so tests run
// on a virtual clock) and provides locking. Fractional window state keeps
// sub-unit growth exact; allowance() floors it for admission decisions.
#pragma once

#include <cstddef>
#include <cstdint>

namespace idicn::runtime {

class CubicWindow {
 public:
  struct Options {
    double c = 0.4;                  ///< CUBIC aggressiveness constant
    double beta = 0.7;               ///< multiplicative decrease factor
    double initial_window = 2.0;     ///< requests in flight at cold start
    double min_window = 1.0;         ///< never choke below one request
    double max_window = 64.0;        ///< per-destination concurrency cap
    double initial_ssthresh = 32.0;  ///< slow-start exit before first loss
  };

  CubicWindow() : CubicWindow(Options{}) {}
  explicit CubicWindow(Options options);

  /// A request to this destination completed cleanly at `now_ms`.
  void on_ack(std::uint64_t now_ms);
  /// A request failed (transport error, 5xx, breaker-worthy): cut the
  /// window and open a new cubic epoch anchored at the old plateau.
  void on_loss(std::uint64_t now_ms);

  [[nodiscard]] double window() const noexcept { return window_; }
  /// Integral admission bound: ⌊window⌋, at least 1.
  [[nodiscard]] std::size_t allowance() const noexcept;
  [[nodiscard]] bool in_slow_start() const noexcept {
    return !epoch_active_ && window_ < ssthresh_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  double window_;
  double ssthresh_;
  bool epoch_active_ = false;      ///< a cubic epoch exists (some loss seen
                                   ///  or slow start exited)
  double w_max_ = 0.0;             ///< plateau the cubic curves around
  double k_seconds_ = 0.0;         ///< time to regain w_max from the cut
  std::uint64_t epoch_start_ms_ = 0;
};

}  // namespace idicn::runtime
