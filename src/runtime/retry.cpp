#include "runtime/retry.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>

namespace idicn::runtime {

// --- RetryPolicy -----------------------------------------------------------

RetryPolicy::RetryPolicy(Options options)
    : options_(options), rng_(options.seed) {}

std::uint64_t RetryPolicy::backoff_delay_ms(int attempt) {
  if (attempt < 1) attempt = 1;
  // base · 2^(attempt-1), saturating well below overflow before the cap.
  std::uint64_t ceiling = options_.base_delay_ms;
  for (int i = 1; i < attempt && ceiling < options_.max_delay_ms; ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, options_.max_delay_ms);
  if (ceiling == 0) return 0;
  const core::sync::MutexLock lock(mutex_);
  return std::uniform_int_distribution<std::uint64_t>(0, ceiling)(rng_);
}

bool RetryPolicy::within_deadline(std::uint64_t elapsed_ms,
                                  std::uint64_t delay_ms) const noexcept {
  if (options_.overall_deadline_ms == 0) return true;
  return elapsed_ms + delay_ms < options_.overall_deadline_ms;
}

void RetryPolicy::sleep(std::uint64_t delay_ms) {
  if (delay_ms == 0) return;
  // Empty-set poll() as the wait primitive, resumed across EINTR so the
  // full delay is honored. Off-loop callers only; loop code must use
  // schedule_backoff().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms);
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return;
    ::poll(nullptr, 0, static_cast<int>(remaining.count()));
  }
}

net::Executor::TaskId RetryPolicy::schedule_backoff(
    net::Executor& exec, std::uint64_t delay_ms, std::function<void()> resume) {
  return exec.schedule(delay_ms, std::move(resume));
}

// --- RetryBudget -----------------------------------------------------------

RetryBudget::RetryBudget(Options options)
    : options_(options),
      tokens_(std::min(options.initial_tokens, options.max_tokens)) {}

void RetryBudget::on_attempt() {
  const core::sync::MutexLock lock(mutex_);
  tokens_ = std::min(tokens_ + options_.tokens_per_request, options_.max_tokens);
}

bool RetryBudget::try_spend() {
  const core::sync::MutexLock lock(mutex_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  const core::sync::MutexLock lock(mutex_);
  return tokens_;
}

// --- CircuitBreaker --------------------------------------------------------

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {}

void CircuitBreaker::advance_cooldown(std::uint64_t now_ms) {
  if (state_ == State::Open && now_ms >= opened_at_ms_ + options_.open_ms) {
    state_ = State::HalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
}

bool CircuitBreaker::allow(std::uint64_t now_ms) {
  const core::sync::MutexLock lock(mutex_);
  advance_cooldown(now_ms);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      return false;
    case State::HalfOpen:
      if (probes_in_flight_ >= options_.half_open_max_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::record_success(std::uint64_t now_ms) {
  const core::sync::MutexLock lock(mutex_);
  advance_cooldown(now_ms);
  switch (state_) {
    case State::Closed:
      consecutive_failures_ = 0;
      break;
    case State::Open:
      // A straggler from before the breaker opened; the cooldown stands.
      break;
    case State::HalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = State::Closed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
      }
      break;
  }
}

void CircuitBreaker::record_failure(std::uint64_t now_ms) {
  const core::sync::MutexLock lock(mutex_);
  advance_cooldown(now_ms);
  switch (state_) {
    case State::Closed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::Open;
        opened_at_ms_ = now_ms;
      }
      break;
    case State::Open:
      break;  // already fast-failing; keep the original cooldown
    case State::HalfOpen:
      // The probe failed: re-open for a fresh cooldown.
      state_ = State::Open;
      opened_at_ms_ = now_ms;
      consecutive_failures_ = options_.failure_threshold;
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state(std::uint64_t now_ms) const {
  const core::sync::MutexLock lock(mutex_);
  if (state_ == State::Open && now_ms >= opened_at_ms_ + options_.open_ms) {
    return State::HalfOpen;
  }
  return state_;
}

std::uint64_t CircuitBreaker::retry_after_ms(std::uint64_t now_ms) const {
  const core::sync::MutexLock lock(mutex_);
  if (state_ != State::Open) return 0;
  const std::uint64_t reopen_at = opened_at_ms_ + options_.open_ms;
  return reopen_at > now_ms ? reopen_at - now_ms : 0;
}

}  // namespace idicn::runtime
