// Multi-reactor SimHost server: N event-loop workers behind one port.
//
// ServerGroup generalizes the PR-2 one-reactor-per-server HostServer to an
// N-worker multi-reactor. Each worker owns its own EventLoop + Poller and
// its own connection table; the kernel (SO_REUSEPORT, one listening socket
// per worker bound to the same port) load-balances accepted connections
// across workers, so accept/decode/serve scales with cores instead of
// being pinned to one thread. Where SO_REUSEPORT is unavailable — or when
// the group runs a single worker — a lone acceptor on worker 0 round-robins
// accepted fds to the other workers through EventLoop::post() (the
// portability fallback, unit-tested by forcing `Options::reuseport=false`).
//
// Threading (DESIGN.md §"Multi-reactor runtime"): per-connection state is
// owned by exactly one worker (IDICN_GUARDED_BY its loop role), but the
// hosted net::SimHost is now *shared by all workers* — its handle_http must
// be thread-safe when `workers > 1` (Proxy/NRS/OriginServer/ReverseProxy
// are; see their headers). Other threads interact through four doors:
//   * stats() / worker_stats(i)    — mutex-guarded snapshots, safe live;
//   * run_on_all_workers(fn)       — stop-the-world door replacing
//     HostServer::run_on_loop(): every worker parks at a rendezvous, `fn`
//     runs with exclusive access to the hosted SimHost, then all workers
//     resume. Use it to publish content or inspect host state while the
//     group serves traffic;
//   * stop()                       — ordered, idempotent shutdown:
//     stop accepting → drain in-flight requests (bounded by
//     Options::drain_timeout_ms; idle keep-alive connections close
//     immediately) → stop and join every worker;
//   * EventLoop-level post() via the workers (internal).
// Lifecycle calls (start/stop/run_on_all_workers) must come from one
// controlling thread at a time — exactly the contract HostServer had.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "net/http_decoder.hpp"
#include "net/sim_net.hpp"
#include "runtime/poller.hpp"

namespace idicn::runtime {

class ServerWorker;

class ServerGroup {
 public:
  struct Options {
    std::uint64_t idle_timeout_ms = 30'000;     ///< close quiet keep-alive conns
    std::uint64_t request_timeout_ms = 10'000;  ///< partial request must finish
    std::size_t max_connections = 1024;         ///< per worker; beyond: 503+close
    /// Retry-After hint (seconds) on over-capacity 503s, so well-behaved
    /// clients back off instead of hammering a saturated worker.
    unsigned retry_after_s = 1;
    net::HttpDecoder::Limits decoder_limits;
    PollerBackend backend = PollerBackend::Auto;
    std::size_t workers = 1;      ///< reactor threads (0 is clamped to 1)
    bool reuseport = true;        ///< try SO_REUSEPORT when workers > 1
    std::uint64_t drain_timeout_ms = 5'000;  ///< stop(): in-flight grace period
  };

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests_served = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t timeouts = 0;              ///< idle + request deadline closes
  };

  /// `host` (non-owning) must outlive the group and must be thread-safe
  /// when `options.workers > 1` — every worker calls handle_http on it.
  ServerGroup(net::SimHost* host, std::string address);
  ServerGroup(net::SimHost* host, std::string address, Options options);
  ~ServerGroup();

  ServerGroup(const ServerGroup&) = delete;
  ServerGroup& operator=(const ServerGroup&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) across all workers, start the
  /// worker threads, and return the bound port. Throws std::runtime_error
  /// when binding fails.
  std::uint16_t start(std::uint16_t port = 0);

  /// Ordered, idempotent shutdown: close every listener (no new
  /// connections), give in-flight requests up to Options::drain_timeout_ms
  /// to finish (idle keep-alive connections close immediately), then stop
  /// every loop and join every worker.
  void stop() IDICN_EXCLUDES(drain_mutex_);

  /// Execute `fn` once with every worker parked at a barrier — exclusive
  /// access to the hosted SimHost while the group is live (the
  /// generalization of HostServer::run_on_loop). When the group is not
  /// running, `fn` runs inline. Must not be called from a worker thread.
  void run_on_all_workers(const std::function<void()>& fn);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& address() const noexcept { return address_; }
  [[nodiscard]] bool running() const noexcept { return !workers_.empty(); }
  [[nodiscard]] std::size_t worker_count() const noexcept;
  /// True when each worker accepts on its own SO_REUSEPORT listener (vs
  /// the single-acceptor round-robin fallback).
  [[nodiscard]] bool using_reuseport() const noexcept { return reuseport_active_; }

  /// Aggregate across workers (safe while serving).
  [[nodiscard]] Stats stats() const;
  /// One worker's counters (for per-worker throughput / balance reports).
  [[nodiscard]] Stats worker_stats(std::size_t worker) const;

 private:
  friend class ServerWorker;

  /// Fallback accept path: worker 0 hands the accepted fd to the next
  /// worker round-robin (possibly itself).
  void dispatch_accepted(int fd, std::string peer);
  /// Worker connection teardown signal — wakes a drain wait in stop().
  void notify_connection_closed() IDICN_EXCLUDES(drain_mutex_);
  [[nodiscard]] std::size_t total_active_connections() const;

  net::SimHost* host_;  ///< shared by all workers; thread-safe when workers > 1
  std::string address_;
  Options options_;
  /// Created by start() before any worker thread exists, destroyed by
  /// stop() after every join; never mutated while workers run (worker
  /// threads read it lock-free in the dispatch path).
  std::vector<std::unique_ptr<ServerWorker>> workers_;
  std::uint16_t port_ = 0;        ///< written by start() before workers exist
  bool reuseport_active_ = false; ///< written by start() before workers exist
  std::atomic<std::size_t> next_worker_{0};  ///< round-robin dispatch cursor

  mutable core::sync::Mutex drain_mutex_;
  core::sync::CondVar drain_cv_;  ///< signalled on every connection close

  /// Counters survive stop() (HostServer always kept its totals): stop()
  /// folds each retiring worker in here under lifecycle_mutex_, which also
  /// orders stats() snapshots against that retirement.
  mutable core::sync::Mutex lifecycle_mutex_;
  Stats retired_total_ IDICN_GUARDED_BY(lifecycle_mutex_);
  std::vector<Stats> retired_worker_stats_ IDICN_GUARDED_BY(lifecycle_mutex_);
};

}  // namespace idicn::runtime
