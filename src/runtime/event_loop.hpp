// Single-threaded event loop: readiness dispatch (epoll or poll backend) +
// timer wheel + cross-thread task posting via a self-pipe.
//
// One EventLoop per worker thread; all watch/update/unwatch/add_timer
// calls must come from the loop thread (or while the loop is not running,
// e.g. before run() / after stop()+join), while post() and stop() are safe
// from any thread. Handlers run inline on the loop thread and must not
// block — the runtime's contract is the paper's prototype contract: one
// proxy worker is one single-threaded process.
//
// The ownership discipline is machine-checked (see src/core/sync.hpp and
// DESIGN.md §"Threading model"): loop-owned state is IDICN_GUARDED_BY the
// `loop_role_` thread role, every public loop-thread-only entry point
// asserts the role (debug builds abort when called off-thread while the
// loop runs; Clang's -Wthread-safety enforces it statically), and the
// cross-thread task queue is the only mutex-guarded state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "net/transport.hpp"
#include "runtime/poller.hpp"
#include "runtime/timer_wheel.hpp"

namespace idicn::runtime {

class EventLoop : public net::Executor {
 public:
  /// Called with the fd's readiness; `error` implies the peer hung up or
  /// the fd failed — the handler should unwatch and close.
  using IoHandler = std::function<void(bool readable, bool writable, bool error)>;

  explicit EventLoop(PollerBackend backend = PollerBackend::Auto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd readiness (loop thread only) ---------------------------------
  bool watch(int fd, bool want_read, bool want_write, IoHandler handler);
  bool update(int fd, bool want_read, bool want_write);
  void unwatch(int fd);

  // --- timers (loop thread only) ---------------------------------------
  TimerWheel::TimerId add_timer(std::uint64_t delay_ms,
                                TimerWheel::Callback callback);
  bool cancel_timer(TimerWheel::TimerId id);

  // --- cross-thread ----------------------------------------------------
  /// Queue `task` for execution on the loop thread; wakes the loop.
  void post(std::function<void()> task);
  /// Ask run() to return after the current iteration; safe from any thread.
  void stop();

  /// Dispatch events until stop(). Runs on the calling thread, which
  /// becomes the loop thread (the `loop_role_` owner) for the duration.
  void run();
  /// One poll + dispatch iteration (for tests and manual pumping; the
  /// caller must be the loop thread, or the loop must not be running).
  void run_once(int timeout_ms);

  /// The loop-thread ownership gate: debug-asserts the caller may touch
  /// loop-owned state and acquires the role for Clang's static analysis.
  /// Legal from any thread while the loop is not running.
  void assert_on_loop_thread() const IDICN_ASSERT_CAPABILITY(loop_role_) {
    loop_role_.assert_held();
  }
  /// True while some thread is inside run().
  [[nodiscard]] bool running() const noexcept { return loop_role_.bound(); }

  /// Milliseconds on the steady clock (process-relative).
  [[nodiscard]] std::uint64_t now_ms() const;
  [[nodiscard]] const char* backend_name() const { return poller_->name(); }

  // --- net::Executor (thin adapters; loop thread only, like the methods
  // they forward to) -----------------------------------------------------
  net::Executor::TaskId schedule(std::uint64_t delay_ms,
                                 std::function<void()> fn) override {
    return add_timer(delay_ms, std::move(fn));
  }
  bool cancel(net::Executor::TaskId id) override { return cancel_timer(id); }
  bool watch_fd(int fd, bool want_read, bool want_write,
                net::Executor::IoCallback on_event) override {
    return watch(fd, want_read, want_write, std::move(on_event));
  }
  bool update_fd(int fd, bool want_read, bool want_write) override {
    return update(fd, want_read, want_write);
  }
  void unwatch_fd(int fd) override { unwatch(fd); }
  [[nodiscard]] std::uint64_t now_ms_exec() const override { return now_ms(); }

 private:
  void drain_tasks() IDICN_REQUIRES(loop_role_) IDICN_EXCLUDES(tasks_mutex_);
  void wake();
  [[nodiscard]] int next_timeout_ms(int cap_ms) const IDICN_REQUIRES(loop_role_);

  /// Owns loop-thread-only state; bound by run(), asserted by every
  /// loop-thread-only entry point.
  core::sync::ThreadRole loop_role_;

  /// Set by the constructor, never reseated; mutating Poller calls (add/
  /// modify/remove/wait) happen on the loop thread only, name() is
  /// immutable and may be read from anywhere.
  std::unique_ptr<Poller> poller_;
  TimerWheel timers_ IDICN_GUARDED_BY(loop_role_);
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_
      IDICN_GUARDED_BY(loop_role_);
  std::atomic<bool> stopping_{false};
  int wake_read_fd_ = -1;   ///< written by the constructor only
  int wake_write_fd_ = -1;  ///< written by the constructor only
  core::sync::Mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_ IDICN_GUARDED_BY(tasks_mutex_);
  /// Scratch for wait(), reused across iterations.
  std::vector<Ready> ready_ IDICN_GUARDED_BY(loop_role_);
};

}  // namespace idicn::runtime
