// Single-threaded event loop: readiness dispatch (epoll or poll backend) +
// timer wheel + cross-thread task posting via a self-pipe.
//
// One EventLoop per worker thread; all watch/update/unwatch/add_timer
// calls must come from the loop thread (or before run()), while post() and
// stop() are safe from any thread. Handlers run inline on the loop thread
// and must not block — the runtime's contract is the paper's prototype
// contract: one proxy worker is one single-threaded process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/poller.hpp"
#include "runtime/timer_wheel.hpp"

namespace idicn::runtime {

class EventLoop {
public:
  /// Called with the fd's readiness; `error` implies the peer hung up or
  /// the fd failed — the handler should unwatch and close.
  using IoHandler = std::function<void(bool readable, bool writable, bool error)>;

  explicit EventLoop(PollerBackend backend = PollerBackend::Auto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd readiness (loop thread only) ---------------------------------
  bool watch(int fd, bool want_read, bool want_write, IoHandler handler);
  bool update(int fd, bool want_read, bool want_write);
  void unwatch(int fd);

  // --- timers (loop thread only) ---------------------------------------
  TimerWheel::TimerId add_timer(std::uint64_t delay_ms,
                                TimerWheel::Callback callback);
  bool cancel_timer(TimerWheel::TimerId id);

  // --- cross-thread ----------------------------------------------------
  /// Queue `task` for execution on the loop thread; wakes the loop.
  void post(std::function<void()> task);
  /// Ask run() to return after the current iteration; safe from any thread.
  void stop();

  /// Dispatch events until stop(). Runs on the calling thread.
  void run();
  /// One poll + dispatch iteration (for tests and manual pumping).
  void run_once(int timeout_ms);

  /// Milliseconds on the steady clock (process-relative).
  [[nodiscard]] std::uint64_t now_ms() const;
  [[nodiscard]] const char* backend_name() const { return poller_->name(); }

private:
  void drain_tasks();
  void wake();
  [[nodiscard]] int next_timeout_ms(int cap_ms) const;

  std::unique_ptr<Poller> poller_;
  TimerWheel timers_;
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
  std::atomic<bool> stopping_{false};
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;
  std::vector<Ready> ready_;  ///< scratch for wait(), reused across iterations
};

}  // namespace idicn::runtime
