#include "runtime/rtt_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace idicn::runtime {

RttEstimator::RttEstimator(Options options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  ring_.reserve(options_.window);
}

void RttEstimator::on_sample(std::uint64_t rtt_us) {
  if (samples_seen_ == 0) {
    // RFC 6298 §2.2: first measurement seeds SRTT = R, RTTVAR = R/2.
    srtt_us_ = rtt_us;
    rttvar_us_ = rtt_us / 2;
  } else {
    // §2.3, integer form: RTTVAR before SRTT, since it uses the old SRTT.
    const std::uint64_t abs_err =
        srtt_us_ > rtt_us ? srtt_us_ - rtt_us : rtt_us - srtt_us_;
    rttvar_us_ = (3 * rttvar_us_ + abs_err) / 4;
    srtt_us_ = (7 * srtt_us_ + rtt_us) / 8;
  }
  ++samples_seen_;
  backoff_shift_ = 0;  // Karn: a clean sample collapses the backoff
  if (ring_.size() < options_.window) {
    ring_.push_back(rtt_us);
  } else {
    ring_[ring_next_] = rtt_us;
    ring_next_ = (ring_next_ + 1) % options_.window;
  }
}

void RttEstimator::on_retransmit() {
  if (backoff_shift_ < options_.max_backoff_shift) ++backoff_shift_;
}

std::uint64_t RttEstimator::srtt_us() const noexcept {
  return samples_seen_ > 0 ? srtt_us_ : options_.initial_rtt_us;
}

std::uint64_t RttEstimator::rto_us() const noexcept {
  const std::uint64_t var_term =
      std::max<std::uint64_t>(4 * rttvar_us_, options_.granularity_us);
  std::uint64_t rto = srtt_us() + var_term;
  // Shift with saturation: a capped shift of large values must clamp to
  // max_rto, not wrap.
  for (int i = 0; i < backoff_shift_; ++i) {
    if (rto > options_.max_rto_us) break;
    rto <<= 1;
  }
  return std::clamp(rto, options_.min_rto_us, options_.max_rto_us);
}

std::uint64_t RttEstimator::quantile_us(double q) const {
  if (ring_.empty()) return options_.initial_rtt_us;
  std::vector<std::uint64_t> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.01, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::max<std::size_t>(rank, 1) - 1];
}

std::uint64_t RttEstimator::ranking_rtt_us() const noexcept {
  std::uint64_t rtt = srtt_us();
  for (int i = 0; i < backoff_shift_; ++i) {
    if (rtt > options_.max_rto_us) break;
    rtt <<= 1;
  }
  return rtt;
}

}  // namespace idicn::runtime
