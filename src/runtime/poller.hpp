// Readiness notification backends for the event loop.
//
// Linux builds get an epoll(7) backend (level-triggered, one syscall per
// wait regardless of fd count); every POSIX build gets a poll(2) fallback.
// make_poller(Auto) prefers epoll when compiled in; tests pin Poll
// explicitly so the fallback stays exercised on every platform.
#pragma once

#include <memory>
#include <vector>

namespace idicn::runtime {

/// One ready fd from a wait() call.
struct Ready {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< EPOLLERR/EPOLLHUP-class condition
};

class Poller {
public:
  virtual ~Poller() = default;

  virtual bool add(int fd, bool want_read, bool want_write) = 0;
  virtual bool modify(int fd, bool want_read, bool want_write) = 0;
  virtual void remove(int fd) = 0;

  /// Block up to `timeout_ms` (-1 = forever, 0 = poll) and append ready
  /// fds to `out`. Returns the number appended, 0 on timeout, -1 on error.
  virtual int wait(int timeout_ms, std::vector<Ready>& out) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

enum class PollerBackend { Auto, Epoll, Poll };

/// Create a poller; Auto prefers epoll where available. Returns nullptr
/// only when Epoll is requested explicitly on a platform without it.
std::unique_ptr<Poller> make_poller(PollerBackend backend = PollerBackend::Auto);

}  // namespace idicn::runtime
