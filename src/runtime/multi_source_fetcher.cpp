#include "runtime/multi_source_fetcher.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace idicn::runtime {

using core::sync::MutexLock;

namespace detail {

// One in-flight multi-source fetch. Like Proxy::FetchOp, the state is
// *loop-confined*: every transport callback, hedge timer, and range-leg
// completion for one fetch fires on the thread that called fetch() (the
// caller's event loop, or inline for synchronous transports), so no lock
// guards it. Cross-thread state — per-destination estimators/windows/
// breakers, the hedge budget, stats — lives in MultiSourceFetcher behind
// its own mutex and is touched only through the note_*/pick_* helpers.
struct MultiFetchState : std::enable_shared_from_this<MultiFetchState> {
  MultiSourceFetcher* fetcher = nullptr;
  net::Address from;
  std::vector<net::Address> ranked;  ///< candidate sources, best first
  net::HttpRequest request;          ///< caller's request, Range-free
  std::shared_ptr<net::ChunkSink> sink;
  net::Executor* exec = nullptr;
  MultiSourceFetcher::FetchCallback done;

  // --- race state -------------------------------------------------------
  struct Attempt {
    net::Address to;
    std::size_t source_index = 0;
    std::uint64_t started_ms = 0;
    bool is_hedge = false;
    bool head_seen = false;
    bool lost_race = false;     ///< head refused because another attempt won
    bool invalid_head = false;  ///< 2xx we could not use (bad Content-Range)
    bool error_head = false;    ///< upstream answered with a non-2xx head
    bool synth_win = false;     ///< won via a synthesized head (empty-object 416)
    bool denied = false;        ///< breaker refused the dial; nothing sent
    bool finished = false;      ///< completion callback ran
    int status = 0;
  };
  std::vector<Attempt> attempts;
  std::vector<bool> tried;  ///< per ranked index: an attempt was aimed at it
  int winner = -1;
  bool done_fired = false;
  bool caller_cancelled = false;
  std::optional<net::HttpResponse> best_error;
  net::Address best_error_from;  ///< who produced best_error
  bool hedge_timer_armed = false;
  net::Executor::TaskId hedge_timer = 0;

  // --- parallel range state --------------------------------------------
  bool probe_range = false;  ///< the primary request carries a probe Range
  bool range_mode = false;   ///< probe got a usable 206; joining legs
  std::uint64_t total_size = 0;
  std::uint64_t probe_len = 0;        ///< bytes the probe leg covers
  std::uint64_t probe_forwarded = 0;  ///< probe bytes already sent downstream
  bool probe_complete = false;
  std::optional<net::HttpResponse> final_head;  ///< synthesized 200 for done()
  struct RangeLeg {
    std::uint64_t first = 0;  ///< first byte this leg owns, inclusive
    std::uint64_t last = 0;
    std::vector<core::Chunk> buffered;  ///< received, not yet forwarded
    std::uint64_t received = 0;         ///< bytes buffered + forwarded
    std::uint64_t forwarded = 0;        ///< bytes the caller's sink saw
    bool complete = false;
    int tries = 0;
    net::Address to;        ///< source the current try is aimed at
    net::Address sent_to;   ///< non-empty while a dial's accounting is open
    std::uint64_t started_ms = 0;
  };
  std::vector<RangeLeg> legs;   ///< tail legs after the probe, in byte order
  std::size_t current_leg = 0;  ///< next leg to forward downstream
  std::size_t leg_cursor = 0;   ///< round-robin source cursor for legs

  void start_race();
  void start_attempt(std::size_t source_index, bool is_hedge);
  void maybe_arm_hedge();
  void on_hedge_timer();
  bool on_attempt_head(std::size_t idx, const net::HttpResponse& head);
  bool on_attempt_chunk(std::size_t idx, core::Chunk chunk);
  void on_attempt_done(std::size_t idx, net::HttpResponse head);
  void begin_range(const net::HttpResponse& probe_head,
                   const net::ContentRange& cr);
  void start_leg(std::size_t leg_idx);
  bool on_leg_head(std::size_t leg_idx, const net::HttpResponse& head);
  bool on_leg_chunk(std::size_t leg_idx, core::Chunk chunk);
  void on_leg_done(std::size_t leg_idx, net::HttpResponse head);
  void fail_over_or_finish();
  void emit_ready();
  void finish_range_if_complete();
  void fire_done(net::HttpResponse head);
  void fail_fetch();

  [[nodiscard]] bool forward_chunk(core::Chunk chunk);
  [[nodiscard]] std::optional<std::size_t> next_untried();
  [[nodiscard]] bool all_attempts_finished() const;
};

namespace {

/// Streams one racing attempt into the fetch state.
class AttemptSink final : public net::ChunkSink {
 public:
  AttemptSink(std::shared_ptr<MultiFetchState> state, std::size_t index)
      : state_(std::move(state)), index_(index) {}
  bool on_head(const net::HttpResponse& head) override {
    return state_->on_attempt_head(index_, head);
  }
  bool on_chunk(core::Chunk chunk) override {
    return state_->on_attempt_chunk(index_, std::move(chunk));
  }

 private:
  std::shared_ptr<MultiFetchState> state_;
  std::size_t index_;
};

/// Streams one range leg into the fetch state.
class LegSink final : public net::ChunkSink {
 public:
  LegSink(std::shared_ptr<MultiFetchState> state, std::size_t leg)
      : state_(std::move(state)), leg_(leg) {}
  bool on_head(const net::HttpResponse& head) override {
    return state_->on_leg_head(leg_, head);
  }
  bool on_chunk(core::Chunk chunk) override {
    return state_->on_leg_chunk(leg_, std::move(chunk));
  }

 private:
  std::shared_ptr<MultiFetchState> state_;
  std::size_t leg_;
};

net::HttpRequest with_range(const net::HttpRequest& request,
                            std::uint64_t first, std::uint64_t last) {
  net::HttpRequest ranged = request;
  ranged.headers.set("Range", "bytes=" + std::to_string(first) + "-" +
                                  std::to_string(last));
  return ranged;
}

/// Turn a ranged probe head into the 200 the caller's sink expects: the
/// join layer hides that the object arrives in parts, so everything
/// downstream (verification, transit publication, caching) is unchanged.
net::HttpResponse synthesize_full_head(const net::HttpResponse& probe_head,
                                       std::uint64_t total) {
  net::HttpResponse head = probe_head;
  head.status = 200;
  head.reason = std::string(net::default_reason(200));
  head.headers.remove("Content-Range");
  head.headers.set("Content-Length", std::to_string(total));
  return head;
}

}  // namespace

void MultiFetchState::start_race() {
  const MultiSourceFetcher::Options& opt = fetcher->options();
  probe_range = opt.range_fetch_enabled && opt.max_parallel_ranges >= 2 &&
                ranked.size() >= 2 && request.method == "GET" &&
                !request.headers.contains("Range");
  tried.assign(ranked.size(), false);
  const std::size_t primary = fetcher->pick_primary(ranked);
  leg_cursor = (primary + 1) % ranked.size();
  start_attempt(primary, /*is_hedge=*/false);
  maybe_arm_hedge();
}

void MultiFetchState::start_attempt(std::size_t source_index, bool is_hedge) {
  const std::size_t idx = attempts.size();
  Attempt attempt;
  attempt.to = ranked[source_index];
  attempt.source_index = source_index;
  attempt.started_ms = fetcher->net_->now_ms();
  attempt.is_hedge = is_hedge;
  attempts.push_back(attempt);
  tried[source_index] = true;

  if (!fetcher->gate(attempt.to)) {
    // Breaker fast-fail: nothing dialed, no timeout burned. Complete the
    // attempt synthetically so the normal ladder picks the next source.
    attempts[idx].denied = true;
    on_attempt_done(idx, net::make_response(
                             503, "circuit open for " + attempt.to));
    return;
  }

  fetcher->note_start(attempt.to);
  net::HttpRequest attempt_request =
      probe_range
          ? with_range(request, 0, fetcher->options().range_probe_bytes - 1)
          : request;
  auto self = shared_from_this();
  fetcher->net_->send_streaming_async(
      from, attempt.to, attempt_request,
      std::make_shared<AttemptSink>(self, idx), exec,
      [self, idx](net::HttpResponse head) {
        self->on_attempt_done(idx, std::move(head));
      });
}

void MultiFetchState::maybe_arm_hedge() {
  const MultiSourceFetcher::Options& opt = fetcher->options();
  if (!opt.hedging_enabled || exec == nullptr) return;
  if (done_fired || winner >= 0) return;
  if (!next_untried().has_value()) return;
  const std::uint64_t delay = fetcher->hedge_delay_ms(attempts[0].to);
  auto self = shared_from_this();
  hedge_timer_armed = true;
  hedge_timer = exec->schedule(delay, [self] { self->on_hedge_timer(); });
}

void MultiFetchState::on_hedge_timer() {
  hedge_timer_armed = false;
  if (done_fired || winner >= 0 || caller_cancelled) return;
  // Once the primary's head arrived the body is flowing; a hedge would
  // duplicate bytes we are already committed to.
  if (!attempts.empty() && attempts[0].head_seen) return;
  const std::optional<std::size_t> target =
      fetcher->pick_hedge(ranked, tried);
  if (!target.has_value()) {
    ++fetcher->stats_.hedges_suppressed;
    return;
  }
  if (!fetcher->hedge_budget_.try_spend()) {
    ++fetcher->stats_.hedges_suppressed;
    return;
  }
  // Karn: the straggling primary is now ambiguous — whatever it returns
  // measures the race, not the path. The shift also decays its ranking, so
  // repeated hedge losses steer future primaries away without requiring a
  // sample the cancelled exchange will never produce.
  fetcher->note_straggler(attempts[0].to);
  ++fetcher->stats_.hedges_sent;
  start_attempt(*target, /*is_hedge=*/true);
}

bool MultiFetchState::on_attempt_head(std::size_t idx,
                                      const net::HttpResponse& head) {
  Attempt& attempt = attempts[idx];
  attempt.head_seen = true;
  attempt.status = head.status;
  if (done_fired || caller_cancelled || winner >= 0) {
    attempt.lost_race = true;
    return false;  // the transport's abort path tears the transfer down
  }

  if (head.ok()) {
    if (probe_range && head.status == 206) {
      const auto range_header = head.headers.get_view("Content-Range");
      const auto cr = net::parse_content_range(range_header.value_or(""));
      if (!cr.has_value() || !cr->satisfied || !cr->total_known ||
          cr->first != 0) {
        // A 206 we cannot size is unusable for the join; fail the attempt.
        attempt.invalid_head = true;
        return false;
      }
      winner = static_cast<int>(idx);
      begin_range(head, *cr);  // forwards the synthesized head, starts legs
      return !caller_cancelled;
    }
    // Plain win (200, or a caller-initiated ranged fetch): pass through.
    winner = static_cast<int>(idx);
    if (!sink->on_head(head)) {
      caller_cancelled = true;
      return false;
    }
    return true;
  }

  if (probe_range && head.status == 416) {
    // An empty object cannot satisfy "bytes=0-…": the replica answers 416
    // with "bytes */0". Synthesize the empty 200 the caller expects.
    const auto range_header = head.headers.get_view("Content-Range");
    const auto cr = net::parse_content_range(range_header.value_or(""));
    if (cr.has_value() && !cr->satisfied && cr->total_known && cr->total == 0) {
      winner = static_cast<int>(idx);
      attempt.synth_win = true;
      range_mode = true;
      total_size = 0;
      final_head = synthesize_full_head(head, 0);
      if (!sink->on_head(*final_head)) caller_cancelled = true;
      return false;  // the 416's own error body is not object bytes
    }
  }

  // Upstream answered with an error head: remember it for the final
  // verdict, refuse the body, and let completion drive failover.
  attempt.error_head = true;
  best_error = head;
  best_error_from = attempt.to;
  return false;
}

bool MultiFetchState::on_attempt_chunk(std::size_t idx, core::Chunk chunk) {
  Attempt& attempt = attempts[idx];
  if (done_fired || caller_cancelled || winner != static_cast<int>(idx)) {
    attempt.lost_race = attempt.lost_race || winner != static_cast<int>(idx);
    return false;
  }
  if (range_mode) probe_forwarded += chunk.size();
  return forward_chunk(std::move(chunk));
}

void MultiFetchState::on_attempt_done(std::size_t idx, net::HttpResponse head) {
  Attempt& attempt = attempts[idx];
  attempt.finished = true;
  const std::uint64_t now = fetcher->net_->now_ms();
  const std::uint64_t rtt_us = (now - attempt.started_ms) * 1000;

  // Per-destination bookkeeping first; continuation second.
  if (attempt.denied) {
    // Nothing was sent: no estimator/window/in-flight movement.
  } else if (attempt.lost_race) {
    fetcher->note_ambiguous(attempt.to);
  } else if (winner == static_cast<int>(idx)) {
    const bool clean = head.ok() || attempt.synth_win;
    if (clean) {
      fetcher->note_clean(attempt.to, rtt_us, now);
    } else {
      fetcher->note_failure(attempt.to, now);
    }
  } else if (attempt.error_head) {
    // The upstream *responded*; 4xx is a healthy server without the
    // content (clean RTT sample), 5xx is a fault.
    if (attempt.status >= 500) {
      fetcher->note_failure(attempt.to, now);
    } else {
      fetcher->note_clean(attempt.to, rtt_us, now);
    }
  } else {
    // Transport-level failure, or a head we refused as unusable.
    fetcher->note_failure(attempt.to, now);
  }

  if (done_fired) return;

  if (winner == static_cast<int>(idx)) {
    if (attempt.is_hedge) ++fetcher->stats_.hedge_wins;
    if (caller_cancelled) {
      fail_fetch();
      return;
    }
    if (range_mode) {
      if (head.ok() || attempt.synth_win) {
        probe_complete = true;
      } else if (probe_forwarded < probe_len) {
        // The probe died mid-body: recover the rest of its range as a leg
        // so the bytes already forwarded stay valid.
        RangeLeg recovery;
        recovery.first = probe_forwarded;
        recovery.last = probe_len - 1;
        recovery.tries = 1;
        legs.insert(legs.begin() + static_cast<std::ptrdiff_t>(current_leg),
                    std::move(recovery));
        ++fetcher->stats_.range_failovers;
        probe_complete = true;
        start_leg(current_leg);
      } else {
        probe_complete = true;
      }
      emit_ready();
      finish_range_if_complete();
      return;
    }
    if (head.ok()) {
      fire_done(std::move(head));
    } else {
      // Winner's stream broke after the caller saw the head: the fetch is
      // unsalvageable (bytes already flowed), report the failure.
      fail_fetch();
    }
    return;
  }

  if (winner >= 0) return;  // we lost; the winner drives completion

  fail_over_or_finish();
}

void MultiFetchState::fail_over_or_finish() {
  if (!all_attempts_finished()) return;  // an in-flight attempt may still win
  const std::optional<std::size_t> next = next_untried();
  if (next.has_value()) {
    ++fetcher->stats_.source_failovers;
    start_attempt(*next, /*is_hedge=*/false);
    return;
  }
  if (best_error.has_value()) {
    net::HttpResponse head = std::move(*best_error);
    best_error.reset();
    fire_done(std::move(head));
  } else {
    fire_done(net::make_response(504, "all sources failed"));
  }
}

bool MultiFetchState::all_attempts_finished() const {
  for (const Attempt& attempt : attempts) {
    if (!attempt.finished) return false;
  }
  return true;
}

void MultiFetchState::begin_range(const net::HttpResponse& probe_head,
                                  const net::ContentRange& cr) {
  range_mode = true;
  total_size = cr.total;
  probe_len = cr.last + 1;
  final_head = synthesize_full_head(probe_head, total_size);
  ++fetcher->stats_.range_fetches;

  if (!sink->on_head(*final_head)) {
    caller_cancelled = true;
    return;
  }

  const std::uint64_t remaining =
      total_size > probe_len ? total_size - probe_len : 0;
  if (remaining == 0) return;

  const MultiSourceFetcher::Options& opt = fetcher->options();
  std::size_t leg_count = 1;
  if (remaining >= opt.range_probe_bytes) {
    leg_count = std::min<std::size_t>(opt.max_parallel_ranges - 1,
                                      ranked.size());
    leg_count = std::max<std::size_t>(leg_count, 1);
  }
  const std::uint64_t share = remaining / leg_count;
  std::uint64_t cursor = probe_len;
  for (std::size_t i = 0; i < leg_count; ++i) {
    RangeLeg leg;
    leg.first = cursor;
    leg.last = (i + 1 == leg_count) ? total_size - 1 : cursor + share - 1;
    cursor = leg.last + 1;
    legs.push_back(std::move(leg));
  }
  for (std::size_t i = 0; i < legs.size(); ++i) start_leg(i);
}

void MultiFetchState::start_leg(std::size_t leg_idx) {
  RangeLeg& leg = legs[leg_idx];
  ++leg.tries;
  leg.to = ranked[fetcher->pick_leg_source(ranked, leg_cursor)];
  leg.started_ms = fetcher->net_->now_ms();
  if (!fetcher->gate(leg.to)) {
    on_leg_done(leg_idx, net::make_response(503, "circuit open for " + leg.to));
    return;
  }
  fetcher->note_start(leg.to);
  leg.sent_to = leg.to;
  auto self = shared_from_this();
  const std::uint64_t range_first = leg.first + leg.received;
  fetcher->net_->send_streaming_async(
      from, leg.to, with_range(request, range_first, leg.last),
      std::make_shared<LegSink>(self, leg_idx), exec,
      [self, leg_idx](net::HttpResponse head) {
        self->on_leg_done(leg_idx, std::move(head));
      });
}

bool MultiFetchState::on_leg_head(std::size_t leg_idx,
                                  const net::HttpResponse& head) {
  if (done_fired || caller_cancelled) return false;
  RangeLeg& leg = legs[leg_idx];
  if (head.status != 206) return false;  // completion drives the failover
  const auto range_header = head.headers.get_view("Content-Range");
  const auto cr = net::parse_content_range(range_header.value_or(""));
  const std::uint64_t expected_first = leg.first + leg.received;
  if (!cr.has_value() || !cr->satisfied || cr->first != expected_first ||
      cr->last != leg.last ||
      (cr->total_known && cr->total != total_size)) {
    return false;
  }
  return true;
}

bool MultiFetchState::on_leg_chunk(std::size_t leg_idx, core::Chunk chunk) {
  if (done_fired || caller_cancelled) return false;
  RangeLeg& leg = legs[leg_idx];
  leg.received += chunk.size();
  leg.buffered.push_back(std::move(chunk));
  if (leg_idx == current_leg && probe_complete) emit_ready();
  return !caller_cancelled && !done_fired;
}

void MultiFetchState::on_leg_done(std::size_t leg_idx, net::HttpResponse head) {
  RangeLeg& leg = legs[leg_idx];
  const std::uint64_t now = fetcher->net_->now_ms();
  const bool complete =
      head.status == 206 && leg.first + leg.received == leg.last + 1;
  if (!leg.sent_to.empty()) {
    if (complete ||
        (head.status >= 200 && head.status < 500 && head.status != 206)) {
      // A full leg or any sub-5xx answer is a healthy exchange (a 200
      // just means this replica does not speak ranges).
      fetcher->note_clean(leg.sent_to, (now - leg.started_ms) * 1000, now);
    } else {
      fetcher->note_failure(leg.sent_to, now);
    }
    leg.sent_to.clear();
  }
  if (done_fired || caller_cancelled) return;

  if (complete) {
    leg.complete = true;
    if (probe_complete) {
      emit_ready();
      finish_range_if_complete();
    }
    return;
  }

  // The leg failed (transport fault, non-206, truncated, breaker-open):
  // re-aim the unreceived remainder at the next surviving source. Bytes
  // already buffered/forwarded stay — the retry range starts after them.
  leg.buffered.clear();
  // Unforwarded buffered bytes are discarded; rewind `received` to what
  // the caller actually saw so the retry range is exact.
  leg.received = leg.forwarded;
  if (leg.tries >= static_cast<int>(ranked.size()) + 1) {
    fail_fetch();
    return;
  }
  ++fetcher->stats_.range_failovers;
  start_leg(leg_idx);
}

void MultiFetchState::emit_ready() {
  while (current_leg < legs.size()) {
    RangeLeg& leg = legs[current_leg];
    while (!leg.buffered.empty()) {
      core::Chunk chunk = std::move(leg.buffered.front());
      leg.buffered.erase(leg.buffered.begin());
      leg.forwarded += chunk.size();
      if (!forward_chunk(std::move(chunk))) return;
    }
    if (!leg.complete) return;
    ++current_leg;
  }
}

void MultiFetchState::finish_range_if_complete() {
  if (done_fired || !probe_complete) return;
  if (caller_cancelled) {
    fail_fetch();
    return;
  }
  if (current_leg < legs.size()) return;
  net::HttpResponse head =
      final_head.has_value() ? std::move(*final_head)
                             : net::make_response(502, "range join lost head");
  final_head.reset();
  fire_done(std::move(head));
}

bool MultiFetchState::forward_chunk(core::Chunk chunk) {
  if (!sink->on_chunk(std::move(chunk))) {
    caller_cancelled = true;
    return false;
  }
  return true;
}

std::optional<std::size_t> MultiFetchState::next_untried() {
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (!tried[i]) return i;
  }
  return std::nullopt;
}

void MultiFetchState::fail_fetch() {
  fire_done(net::make_response(504, "multi-source fetch failed"));
}

void MultiFetchState::fire_done(net::HttpResponse head) {
  if (done_fired) return;
  done_fired = true;
  if (hedge_timer_armed && exec != nullptr) {
    exec->cancel(hedge_timer);
    hedge_timer_armed = false;
  }
  MultiSourceFetcher::Result result;
  if (winner >= 0) {
    const Attempt& won = attempts[static_cast<std::size_t>(winner)];
    result.source = won.to;
    result.hedge_won = won.is_hedge;
  } else {
    result.source = best_error_from;
  }
  result.range_split = range_mode && !legs.empty();
  result.attempts = attempts.size();
  MultiSourceFetcher::FetchCallback finish = std::move(done);
  done = nullptr;
  if (finish) finish(std::move(head), result);
}

}  // namespace detail

MultiSourceFetcher::MultiSourceFetcher(net::Transport* net)
    : MultiSourceFetcher(net, Options{}) {}

MultiSourceFetcher::MultiSourceFetcher(net::Transport* net, Options options)
    : net_(net), options_(options), hedge_budget_(options.hedge_budget) {
  if (options_.range_probe_bytes == 0) options_.range_probe_bytes = 1;
}

MultiSourceFetcher::~MultiSourceFetcher() = default;

void MultiSourceFetcher::fetch_from_best(const net::Address& from,
                               std::vector<net::Address> sources,
                               net::HttpRequest request,
                               std::shared_ptr<net::ChunkSink> sink,
                               net::Executor* exec, FetchCallback done) {
  ++stats_.fetches;
  hedge_budget_.on_attempt();
  std::vector<net::Address> ranked = rank(std::move(sources));
  if (ranked.empty()) {
    done(net::make_response(504, "no sources"), Result{});
    return;
  }
  auto state = std::make_shared<detail::MultiFetchState>();
  state->fetcher = this;
  state->from = from;
  state->ranked = std::move(ranked);
  state->request = std::move(request);
  state->sink = std::move(sink);
  state->exec = exec;
  state->done = std::move(done);
  state->start_race();
}

std::vector<net::Address> MultiSourceFetcher::rank(
    std::vector<net::Address> sources) {
  // Dedupe preserving caller order (metalink mirrors + NRS rows overlap).
  std::vector<net::Address> unique;
  unique.reserve(sources.size());
  for (net::Address& source : sources) {
    if (std::find(unique.begin(), unique.end(), source) == unique.end()) {
      unique.push_back(std::move(source));
    }
  }
  const std::uint64_t now = net_->now_ms();
  struct Key {
    bool open;
    std::uint64_t rtt_us;
    std::size_t tie;
  };
  std::vector<std::pair<Key, net::Address>> keyed;
  keyed.reserve(unique.size());
  {
    const MutexLock lock(mutex_);
    for (std::size_t i = 0; i < unique.size(); ++i) {
      DestState& d = dest_locked(unique[i]);
      keyed.push_back({Key{d.breaker.state(now) == CircuitBreaker::State::Open,
                           d.est.ranking_rtt_us(), i},
                       std::move(unique[i])});
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.first.open != b.first.open) return !a.first.open;
              if (a.first.rtt_us != b.first.rtt_us) {
                return a.first.rtt_us < b.first.rtt_us;
              }
              return a.first.tie < b.first.tie;
            });
  std::vector<net::Address> ranked;
  ranked.reserve(keyed.size());
  for (auto& [key, address] : keyed) ranked.push_back(std::move(address));
  return ranked;
}

std::uint64_t MultiSourceFetcher::rtt_p95_us(const net::Address& address) {
  const MutexLock lock(mutex_);
  return dest_locked(address).est.quantile_us(options_.hedge_quantile);
}

std::vector<MultiSourceFetcher::SourceSnapshot> MultiSourceFetcher::snapshot() {
  const std::uint64_t now = net_->now_ms();
  std::vector<SourceSnapshot> out;
  const MutexLock lock(mutex_);
  out.reserve(dests_.size());
  for (const auto& [address, dest] : dests_) {
    SourceSnapshot snap;
    snap.address = address;
    snap.srtt_us = dest->est.srtt_us();
    snap.rtt_p95_us = dest->est.quantile_us(options_.hedge_quantile);
    snap.backoff_shift = dest->est.backoff_shift();
    snap.window = dest->window.window();
    snap.in_flight = dest->in_flight;
    snap.breaker = dest->breaker.state(now);
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.address < b.address;
  });
  return out;
}

MultiSourceFetcher::DestState& MultiSourceFetcher::dest_locked(
    const net::Address& address) {
  auto it = dests_.find(address);
  if (it == dests_.end()) {
    it = dests_.emplace(address, std::make_unique<DestState>(options_)).first;
  }
  return *it->second;
}

std::size_t MultiSourceFetcher::pick_primary(
    const std::vector<net::Address>& ranked) {
  const std::uint64_t now = net_->now_ms();
  const MutexLock lock(mutex_);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    DestState& d = dest_locked(ranked[i]);
    if (d.breaker.state(now) != CircuitBreaker::State::Open &&
        d.in_flight < d.window.allowance()) {
      return i;
    }
  }
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (dest_locked(ranked[i]).breaker.state(now) !=
        CircuitBreaker::State::Open) {
      // Every healthy source is over its window: the primary is admitted
      // anyway (the proxy bounds its own concurrency) but counted, so the
      // bench can see sustained over-budget pressure.
      ++stats_.window_deferrals;
      return i;
    }
  }
  return 0;  // every breaker open: dial the best anyway as the last resort
}

std::optional<std::size_t> MultiSourceFetcher::pick_hedge(
    const std::vector<net::Address>& ranked, const std::vector<bool>& tried) {
  const std::uint64_t now = net_->now_ms();
  const MutexLock lock(mutex_);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (tried[i]) continue;
    DestState& d = dest_locked(ranked[i]);
    if (d.breaker.state(now) == CircuitBreaker::State::Open) continue;
    if (d.in_flight >= d.window.allowance()) continue;  // hedges need room
    return i;
  }
  return std::nullopt;
}

std::size_t MultiSourceFetcher::pick_leg_source(
    const std::vector<net::Address>& ranked, std::size_t& cursor) {
  const std::uint64_t now = net_->now_ms();
  const MutexLock lock(mutex_);
  // First choice: a non-open source with window capacity, round-robin so
  // legs spread across the replica set instead of piling on the best.
  for (std::size_t step = 0; step < ranked.size(); ++step) {
    const std::size_t i = (cursor + step) % ranked.size();
    DestState& d = dest_locked(ranked[i]);
    if (d.breaker.state(now) == CircuitBreaker::State::Open) continue;
    if (d.in_flight >= d.window.allowance()) continue;
    cursor = (i + 1) % ranked.size();
    return i;
  }
  for (std::size_t step = 0; step < ranked.size(); ++step) {
    const std::size_t i = (cursor + step) % ranked.size();
    if (dest_locked(ranked[i]).breaker.state(now) !=
        CircuitBreaker::State::Open) {
      // Capacity-starved but healthy: admit (a stalled leg would wedge the
      // in-order join) and record the pressure.
      ++stats_.window_deferrals;
      cursor = (i + 1) % ranked.size();
      return i;
    }
  }
  const std::size_t i = cursor % ranked.size();
  cursor = (i + 1) % ranked.size();
  return i;
}

bool MultiSourceFetcher::gate(const net::Address& address) {
  CircuitBreaker* breaker = nullptr;
  {
    const MutexLock lock(mutex_);
    breaker = &dest_locked(address).breaker;
  }
  return breaker->allow(net_->now_ms());
}

std::uint64_t MultiSourceFetcher::hedge_delay_ms(const net::Address& address) {
  std::uint64_t delay_us = 0;
  int shift = 0;
  {
    const MutexLock lock(mutex_);
    DestState& d = dest_locked(address);
    shift = d.est.backoff_shift();
    delay_us = d.est.has_sample()
                   ? d.est.quantile_us(options_.hedge_quantile)
                   : options_.initial_hedge_delay_ms * 1000;
  }
  for (int i = 0; i < shift; ++i) {
    if (delay_us > options_.hedge_max_delay_ms * 1000) break;
    delay_us <<= 1;
  }
  return std::clamp(delay_us / 1000, options_.hedge_min_delay_ms,
                    options_.hedge_max_delay_ms);
}

void MultiSourceFetcher::note_start(const net::Address& address) {
  const MutexLock lock(mutex_);
  ++dest_locked(address).in_flight;
}

void MultiSourceFetcher::note_clean(const net::Address& address,
                                    std::uint64_t rtt_us, std::uint64_t now_ms) {
  {
    const MutexLock lock(mutex_);
    DestState& d = dest_locked(address);
    d.est.on_sample(rtt_us);
    d.window.on_ack(now_ms);
    if (d.in_flight > 0) --d.in_flight;
    d.breaker.record_success(now_ms);
  }
}

void MultiSourceFetcher::note_ambiguous(const net::Address& address) {
  const MutexLock lock(mutex_);
  DestState& d = dest_locked(address);
  d.est.on_retransmit();
  if (d.in_flight > 0) --d.in_flight;
}

void MultiSourceFetcher::note_failure(const net::Address& address,
                                      std::uint64_t now_ms) {
  {
    const MutexLock lock(mutex_);
    DestState& d = dest_locked(address);
    d.window.on_loss(now_ms);
    if (d.in_flight > 0) --d.in_flight;
    d.breaker.record_failure(now_ms);
  }
  // Real failures burn hedge tokens too, so hedging self-disables while
  // the budget pays for genuine faults (the bounded-aggression contract).
  (void)hedge_budget_.try_spend();
}

void MultiSourceFetcher::note_straggler(const net::Address& address) {
  const MutexLock lock(mutex_);
  dest_locked(address).est.on_retransmit();
}

}  // namespace idicn::runtime
