#include "runtime/server_group.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <stdexcept>

#include "runtime/event_loop.hpp"
#include "runtime/tcp.hpp"

namespace idicn::runtime {
namespace {

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

void accumulate(ServerGroup::Stats& total, const ServerGroup::Stats& part) {
  total.connections_accepted += part.connections_accepted;
  total.connections_closed += part.connections_closed;
  total.connections_rejected += part.connections_rejected;
  total.requests_served += part.requests_served;
  total.bytes_in += part.bytes_in;
  total.bytes_out += part.bytes_out;
  total.decode_errors += part.decode_errors;
  total.timeouts += part.timeouts;
}

}  // namespace

// One reactor: an EventLoop thread owning a connection table and (in
// SO_REUSEPORT mode) its own listener. The hosted SimHost is shared across
// workers — everything else here is single-worker-owned, guarded by this
// worker's loop_role_. Lifecycle methods (start / stop_accepting /
// begin_drain / shutdown) are driven by the ServerGroup's controlling
// thread in that order.
class ServerWorker {
 public:
  ServerWorker(net::SimHost* host, const ServerGroup::Options& options,
               ServerGroup* group)
      : host_(host), options_(options), group_(group) {}
  ~ServerWorker() { shutdown(); }

  ServerWorker(const ServerWorker&) = delete;
  ServerWorker& operator=(const ServerWorker&) = delete;

  /// Install this worker's listener before start(). `dispatch_round_robin`
  /// switches the accept handler from "adopt locally" (SO_REUSEPORT mode)
  /// to "hand off via the group's round-robin cursor" (fallback mode,
  /// worker 0 only).
  void set_listener(ScopedFd listener, bool dispatch_round_robin) {
    loop_role_.assert_held();  // pre-start: the role is unbound
    listener_ = std::move(listener);
    dispatch_round_robin_ = dispatch_round_robin;
  }

  void start() {
    loop_role_.assert_held();  // pre-start: the role is unbound
    loop_ = std::make_unique<EventLoop>(options_.backend);
    if (listener_.valid()) {
      loop_->watch(listener_.get(), true, false,
                   [this](bool readable, bool, bool) {
                     loop_role_.assert_held();
                     if (readable) on_accept();
                   });
    }
    thread_ = core::sync::Thread([this] {
      loop_role_.bind();  // the worker owns its connections (+ shared host)
      loop_->run();
      loop_role_.unbind();
    });
  }

  /// Stop() phase 1: close the listener (post-and-wait, so no accept
  /// handler is mid-flight once this returns). No-op for listenerless
  /// fallback workers.
  void stop_accepting() {
    run_and_wait([this] {
      loop_role_.assert_held();
      if (listener_.valid()) {
        loop_->unwatch(listener_.get());
        listener_.reset();
      }
    });
  }

  /// Stop() phase 2 kickoff: close idle keep-alive connections now and
  /// mark the rest to close as soon as their buffered requests are
  /// answered (serve_decoded / flush consult draining_).
  void begin_drain() {
    loop_->post([this] {
      loop_role_.assert_held();
      draining_ = true;
      std::vector<int> idle;
      for (auto& [fd, conn] : connections_) {
        const bool mid_request = conn->decoder.buffered_bytes() > 0;
        if (!mid_request && conn->out.empty()) {
          idle.push_back(fd);
        } else {
          conn->closing = true;
        }
      }
      for (const int fd : idle) close_connection(fd);
    });
  }

  /// Stop() phase 3: stop the loop, join, force-close drain stragglers.
  /// Idempotent.
  void shutdown() {
    if (!thread_.joinable()) return;
    loop_->stop();
    thread_.join();
    // The worker unbound the role on exit; re-claim its state from this
    // thread and tear down on the (now stopped) loop's structures.
    loop_role_.assert_held();
    for (auto& [fd, conn] : connections_) {
      loop_->unwatch(fd);
      (void)conn;
    }
    connections_.clear();
    active_ = 0;
    if (listener_.valid()) {
      loop_->unwatch(listener_.get());
      listener_.reset();
    }
    loop_.reset();
  }

  /// Queue a task on this worker's loop (rendezvous door for the group).
  void post(std::function<void()> task) { loop_->post(std::move(task)); }

  /// Post `fn` to the loop and block until it ran. Must not be called from
  /// this worker's own thread.
  void run_and_wait(const std::function<void()>& fn) {
    if (!thread_.joinable()) {
      loop_role_.assert_held();  // not running: the caller owns all state
      fn();
      return;
    }
    assert(thread_.get_id() != std::this_thread::get_id() &&
           "run_and_wait called from the worker thread");
    core::sync::Mutex mutex;
    core::sync::CondVar done_cv;
    bool done = false;
    loop_->post([&] {
      fn();
      const core::sync::MutexLock lock(mutex);
      done = true;
      done_cv.notify_one();
    });
    const core::sync::MutexLock lock(mutex);
    while (!done) done_cv.wait(mutex);
  }

  /// Take ownership of an accepted fd from any thread (the fallback
  /// dispatch path). Cross-thread handoffs wrap the fd in a shared
  /// ScopedFd so it still closes if the loop stops before running the
  /// task.
  void adopt_from_any_thread(int fd, std::string peer) {
    if (thread_.get_id() == std::this_thread::get_id()) {
      loop_role_.assert_held();
      adopt_connection(ScopedFd(fd), std::move(peer));
      return;
    }
    auto guard = std::make_shared<ScopedFd>(fd);
    loop_->post([this, guard, peer = std::move(peer)]() mutable {
      loop_role_.assert_held();
      adopt_connection(std::move(*guard), std::move(peer));
    });
  }

  [[nodiscard]] std::size_t active_connections() const noexcept {
    return active_.value();
  }
  [[nodiscard]] std::thread::id thread_id() const noexcept {
    return thread_.get_id();
  }

  [[nodiscard]] ServerGroup::Stats stats() const IDICN_EXCLUDES(stats_mutex_) {
    const core::sync::MutexLock lock(stats_mutex_);
    return stats_;
  }

 private:
  struct Connection {
    ScopedFd fd;
    std::string peer;                ///< "ip:port", passed as `from`
    net::HttpDecoder decoder;
    std::string out;                 ///< bytes awaiting the socket
    std::size_t out_offset = 0;
    bool closing = false;            ///< close once `out` drains
    bool write_armed = false;        ///< poller is watching writability
    std::uint64_t last_activity_ms = 0;
    std::uint64_t message_start_ms = 0;  ///< first byte of in-flight request
    TimerWheel::TimerId timer = 0;

    Connection(ScopedFd fd_in, std::string peer_in,
               const net::HttpDecoder::Limits& limits)
        : fd(std::move(fd_in)),
          peer(std::move(peer_in)),
          decoder(net::HttpDecoder::Mode::Request, limits) {}
  };

  void on_accept() IDICN_REQUIRES(loop_role_) {
    while (true) {
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      const int fd = ::accept(listener_.get(),
                              reinterpret_cast<sockaddr*>(&addr), &len);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        return;  // transient accept failure; the listener stays armed
      }
      if (dispatch_round_robin_) {
        group_->dispatch_accepted(fd, peer_name(addr));
      } else {
        adopt_connection(ScopedFd(fd), peer_name(addr));
      }
    }
  }

  void adopt_connection(ScopedFd fd, std::string peer)
      IDICN_REQUIRES(loop_role_) {
    if (draining_) return;  // shutting down: refuse, ScopedFd closes
    if (connections_.size() >= options_.max_connections) {
      net::HttpResponse rejection =
          net::make_response(503, "server at connection capacity");
      rejection.headers.set("Retry-After",
                            std::to_string(options_.retry_after_s));
      const std::string reply = rejection.serialize();
      (void)!::send(fd.get(), reply.data(), reply.size(), MSG_NOSIGNAL);
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_rejected;
      return;  // ScopedFd closes
    }
    set_nonblocking(fd.get());
    set_nodelay(fd.get());

    const int raw = fd.get();
    auto conn = std::make_unique<Connection>(std::move(fd), std::move(peer),
                                             options_.decoder_limits);
    conn->last_activity_ms = loop_->now_ms();
    arm_timer(*conn);
    loop_->watch(raw, true, false,
                 [this, raw](bool readable, bool writable, bool error) {
                   loop_role_.assert_held();
                   on_connection_event(raw, readable, writable, error);
                 });
    connections_.emplace(raw, std::move(conn));
    ++active_;
    const core::sync::MutexLock lock(stats_mutex_);
    ++stats_.connections_accepted;
  }

  void arm_timer(Connection& conn) IDICN_REQUIRES(loop_role_) {
    // Lazy deadline check: fire at the nearest possible deadline and
    // recompute; reads just bump last_activity_ms without timer churn.
    const std::uint64_t delay =
        std::min(options_.idle_timeout_ms, options_.request_timeout_ms);
    const int fd = conn.fd.get();
    conn.timer = loop_->add_timer(delay, [this, fd] {
      loop_role_.assert_held();
      check_deadlines(fd);
    });
  }

  void check_deadlines(int fd) IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    if (conn.closing) {  // already draining towards close; stop waiting
      close_connection(fd);
      return;
    }
    const std::uint64_t now = loop_->now_ms();

    const bool mid_request = conn.decoder.buffered_bytes() > 0;
    const bool request_expired =
        mid_request &&
        now - conn.message_start_ms >= options_.request_timeout_ms;
    const bool idle_expired =
        now - conn.last_activity_ms >= options_.idle_timeout_ms;

    if (request_expired || idle_expired) {
      {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.timeouts;
      }
      if (request_expired) {
        conn.out += net::make_response(408, "request timed out").serialize();
      }
      conn.closing = true;
      flush(conn);  // may close the connection
      if (connections_.count(fd) != 0) arm_timer(conn);
      return;
    }
    arm_timer(conn);
  }

  void close_connection(int fd) IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    loop_->cancel_timer(it->second->timer);
    loop_->unwatch(fd);
    connections_.erase(it);  // ScopedFd closes
    --active_;
    {
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_closed;
    }
    group_->notify_connection_closed();  // a drain wait may be pending
  }

  void serve_decoded(Connection& conn) IDICN_REQUIRES(loop_role_) {
    // Drain every pipelined request in arrival order.
    while (auto request = conn.decoder.next_request()) {
      net::HttpResponse response;
      try {
        response = host_->handle_http(*request, conn.peer);
      } catch (const std::exception& e) {
        response =
            net::make_response(500, std::string("handler error: ") + e.what());
      }
      const bool peer_wants_close = [&] {
        const auto connection = request->headers.get("Connection");
        if (connection) return *connection == "close" || *connection == "Close";
        return request->version == "HTTP/1.0";
      }();
      if (peer_wants_close) {
        response.headers.set("Connection", "close");
        conn.closing = true;
      }
      conn.out += response.serialize();
      {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.requests_served;
      }
      if (conn.closing) break;
    }
    // A draining worker closes each connection once its buffered requests
    // are answered — further keep-alive traffic would outlive the window.
    if (draining_) conn.closing = true;

    if (conn.decoder.failed()) {
      {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.decode_errors;
      }
      conn.out += net::make_response(conn.decoder.suggested_status(),
                                     "malformed request: " +
                                         conn.decoder.error())
                      .serialize();
      conn.closing = true;
    }
  }

  void flush(Connection& conn) IDICN_REQUIRES(loop_role_) {
    const int fd = conn.fd.get();
    while (conn.out_offset < conn.out.size()) {
      const ssize_t n = ::send(fd, conn.out.data() + conn.out_offset,
                               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Backpressure: park the rest until the socket drains.
          if (!conn.write_armed) {
            conn.write_armed = true;
            loop_->update(fd, !conn.closing, true);
          }
          return;
        }
        close_connection(fd);
        return;
      }
      conn.out_offset += static_cast<std::size_t>(n);
      const core::sync::MutexLock lock(stats_mutex_);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
    }
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.closing) {
      close_connection(fd);
      return;
    }
    if (conn.write_armed) {
      conn.write_armed = false;
      loop_->update(fd, true, false);
    }
  }

  void on_connection_event(int fd, bool readable, bool writable, bool error)
      IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;

    if (error) {
      close_connection(fd);
      return;
    }

    if (readable) {
      char buffer[16 * 1024];
      while (true) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n == 0) {  // orderly shutdown by the peer
          close_connection(fd);
          return;
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          close_connection(fd);
          return;
        }
        const std::uint64_t now = loop_->now_ms();
        if (conn.decoder.buffered_bytes() == 0) conn.message_start_ms = now;
        conn.last_activity_ms = now;
        {
          const core::sync::MutexLock lock(stats_mutex_);
          stats_.bytes_in += static_cast<std::uint64_t>(n);
        }
        conn.decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      }
      serve_decoded(conn);
    }

    if (writable || !conn.out.empty()) flush(conn);
  }

  /// Owns this worker's connection state while its thread runs; bound by
  /// the worker thread body, re-claimed by shutdown() after the join.
  core::sync::ThreadRole loop_role_;

  net::SimHost* host_;  ///< shared across workers; thread-safe handle_http
  const ServerGroup::Options& options_;  ///< owned by the ServerGroup
  ServerGroup* group_;                   ///< owns this worker
  /// Created by start() before the thread exists, destroyed by shutdown()
  /// after the join; the pointer itself is never touched concurrently.
  std::unique_ptr<EventLoop> loop_;
  ScopedFd listener_ IDICN_GUARDED_BY(loop_role_);
  bool dispatch_round_robin_ IDICN_GUARDED_BY(loop_role_) = false;
  bool draining_ IDICN_GUARDED_BY(loop_role_) = false;
  core::sync::Thread thread_;
  std::map<int, std::unique_ptr<Connection>> connections_
      IDICN_GUARDED_BY(loop_role_);
  /// Live connection gauge sampled by the group's drain wait.
  core::sync::RelaxedCounter active_;

  mutable core::sync::Mutex stats_mutex_;
  ServerGroup::Stats stats_ IDICN_GUARDED_BY(stats_mutex_);
};

ServerGroup::ServerGroup(net::SimHost* host, std::string address)
    : ServerGroup(host, std::move(address), Options{}) {}

ServerGroup::ServerGroup(net::SimHost* host, std::string address,
                         Options options)
    : host_(host), address_(std::move(address)), options_(options) {
  if (host_ == nullptr) throw std::invalid_argument("ServerGroup: null host");
}

ServerGroup::~ServerGroup() { stop(); }

std::uint16_t ServerGroup::start(std::uint16_t port) {
  if (!workers_.empty()) {
    throw std::runtime_error("ServerGroup: already started");
  }
  const std::size_t worker_total = std::max<std::size_t>(1, options_.workers);

  // Preferred path: one SO_REUSEPORT listener per worker, all bound to the
  // same port — the kernel spreads accepted connections across them. Any
  // bind failure falls back to the portable single-acceptor layout.
  std::vector<ScopedFd> listeners;
  std::uint16_t bound = 0;
  std::string error;
  reuseport_active_ = false;
  if (worker_total > 1 && options_.reuseport && reuseport_supported()) {
    ListenOptions listen_options;
    listen_options.reuseport = true;
    bool all_bound = true;
    for (std::size_t i = 0; i < worker_total; ++i) {
      // The first bind resolves an ephemeral request; siblings join it.
      const std::uint16_t request = listeners.empty() ? port : bound;
      const int fd = listen_tcp(request, &bound, &error, listen_options);
      if (fd < 0) {
        all_bound = false;
        break;
      }
      listeners.emplace_back(fd);
    }
    if (all_bound) {
      reuseport_active_ = true;
    } else {
      listeners.clear();
      bound = 0;
    }
  }
  if (!reuseport_active_) {
    const int fd = listen_tcp(port, &bound, &error);
    if (fd < 0) {
      throw std::runtime_error("ServerGroup[" + address_ + "]: " + error);
    }
    listeners.emplace_back(fd);
  }
  port_ = bound;

  for (std::size_t i = 0; i < worker_total; ++i) {
    workers_.push_back(
        std::make_unique<ServerWorker>(host_, options_, this));
  }
  if (reuseport_active_) {
    for (std::size_t i = 0; i < worker_total; ++i) {
      workers_[i]->set_listener(std::move(listeners[i]),
                                /*dispatch_round_robin=*/false);
    }
  } else {
    // Single acceptor on worker 0; with more than one worker it
    // round-robins accepted fds across the group (including itself).
    workers_[0]->set_listener(std::move(listeners[0]),
                              /*dispatch_round_robin=*/worker_total > 1);
  }
  for (auto& worker : workers_) worker->start();
  return port_;
}

void ServerGroup::stop() {
  if (workers_.empty()) return;
  // 1. Stop accepting: every listener closes before any drain begins.
  for (auto& worker : workers_) worker->stop_accepting();
  // 2. Drain: idle connections close immediately, in-flight requests get
  //    up to drain_timeout_ms; each close signals drain_cv_.
  for (auto& worker : workers_) worker->begin_drain();
  {
    const core::sync::MutexLock lock(drain_mutex_);
    drain_cv_.wait_for(drain_mutex_, options_.drain_timeout_ms,
                       [this] { return total_active_connections() == 0; });
  }
  // 3. Join every worker; stragglers past the deadline are force-closed.
  for (auto& worker : workers_) worker->shutdown();
  {
    const core::sync::MutexLock lock(lifecycle_mutex_);
    retired_worker_stats_.clear();
    for (auto& worker : workers_) {
      const Stats part = worker->stats();
      accumulate(retired_total_, part);
      retired_worker_stats_.push_back(part);
    }
    workers_.clear();
  }
  next_worker_.store(0, std::memory_order_relaxed);
}

void ServerGroup::run_on_all_workers(const std::function<void()>& fn) {
  if (workers_.empty()) {
    fn();  // not running: the caller owns all state
    return;
  }
#ifndef NDEBUG
  for (const auto& worker : workers_) {
    assert(worker->thread_id() != std::this_thread::get_id() &&
           "run_on_all_workers called from a worker thread");
  }
#endif
  struct Rendezvous {
    core::sync::Mutex mutex;
    core::sync::CondVar cv;
    std::size_t parked IDICN_GUARDED_BY(mutex) = 0;
    bool resume IDICN_GUARDED_BY(mutex) = false;
  };
  // Heap-held and shared with every worker task: the last worker to wake
  // may still touch the mutex after this function has already returned.
  auto rendezvous = std::make_shared<Rendezvous>();
  const std::size_t worker_total = workers_.size();
  for (auto& worker : workers_) {
    worker->post([rendezvous] {
      const core::sync::MutexLock lock(rendezvous->mutex);
      ++rendezvous->parked;
      rendezvous->cv.notify_all();
      while (!rendezvous->resume) rendezvous->cv.wait(rendezvous->mutex);
    });
  }
  {
    const core::sync::MutexLock lock(rendezvous->mutex);
    while (rendezvous->parked != worker_total) {
      rendezvous->cv.wait(rendezvous->mutex);
    }
  }
  // Every worker is parked: this thread has exclusive access to the host.
  const auto release = [&rendezvous] {
    {
      const core::sync::MutexLock lock(rendezvous->mutex);
      rendezvous->resume = true;
    }
    rendezvous->cv.notify_all();
  };
  try {
    fn();
  } catch (...) {
    release();
    throw;
  }
  release();
}

std::size_t ServerGroup::worker_count() const noexcept {
  if (!workers_.empty()) return workers_.size();
  return std::max<std::size_t>(1, options_.workers);
}

ServerGroup::Stats ServerGroup::stats() const {
  const core::sync::MutexLock lock(lifecycle_mutex_);
  Stats total = retired_total_;
  for (const auto& worker : workers_) accumulate(total, worker->stats());
  return total;
}

ServerGroup::Stats ServerGroup::worker_stats(std::size_t worker) const {
  const core::sync::MutexLock lock(lifecycle_mutex_);
  if (!workers_.empty()) {
    if (worker >= workers_.size()) {
      throw std::out_of_range("ServerGroup::worker_stats: no such worker");
    }
    return workers_[worker]->stats();
  }
  // Stopped: answer from the last run's retirement snapshot.
  if (worker >= retired_worker_stats_.size()) {
    throw std::out_of_range("ServerGroup::worker_stats: no such worker");
  }
  return retired_worker_stats_[worker];
}

void ServerGroup::dispatch_accepted(int fd, std::string peer) {
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  workers_[target]->adopt_from_any_thread(fd, std::move(peer));
}

void ServerGroup::notify_connection_closed() {
  // Taken-and-dropped so a concurrent drain wait cannot miss the signal
  // between its predicate check and its sleep.
  const core::sync::MutexLock lock(drain_mutex_);
  drain_cv_.notify_all();
}

std::size_t ServerGroup::total_active_connections() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->active_connections();
  return total;
}

}  // namespace idicn::runtime
