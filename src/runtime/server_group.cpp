#include "runtime/server_group.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <stdexcept>

#include "core/buffer.hpp"
#include "core/hot_path.hpp"
#include "net/http_internal.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/tcp.hpp"

namespace idicn::runtime {
namespace {

/// Refill target for producer-backed bodies: pump the producer until this
/// many bytes sit in the connection's output queue, then let the socket
/// drain before pulling more. Bounds per-connection memory while a large
/// object streams through, independent of the object's size.
constexpr std::size_t kProducerWindow = 256 * 1024;

/// Scatter-gather width per sendmsg() call. Chunks are slab-sized (256 KB
/// default), so 16 iovecs cover multiple megabytes per syscall.
constexpr std::size_t kMaxIov = 16;

/// Re-poll period while a connection's body producer is starved (queue
/// empty, producer Pending): no socket edge will fire, so the timer wheel
/// drives the retry. One wheel tick.
constexpr std::uint64_t kProducerPollMs = 10;

/// Mirror of HttpResponse::serialize_head()'s framing choice, so the
/// writer knows whether the producer body needs chunked framing on the
/// wire (no declared length) or raw bytes (Content-Length known).
bool producer_uses_chunked(const net::HttpResponse& response) {
  if (const auto te = response.headers.get_view("Transfer-Encoding")) {
    return net::detail::iequals(*te, "chunked");
  }
  if (response.headers.contains("Content-Length")) return false;
  return !response.producer->total_size().has_value();
}

/// RFC 7230 §4.1 chunk header for one data chunk.
std::string chunk_size_line(std::size_t size) {
  char buffer[32];
  const int n = std::snprintf(buffer, sizeof(buffer), "%zx\r\n", size);
  return std::string(buffer, static_cast<std::size_t>(n));
}

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

void accumulate(ServerGroup::Stats& total, const ServerGroup::Stats& part) {
  total.connections_accepted += part.connections_accepted;
  total.connections_closed += part.connections_closed;
  total.connections_rejected += part.connections_rejected;
  total.requests_served += part.requests_served;
  total.bytes_in += part.bytes_in;
  total.bytes_out += part.bytes_out;
  total.decode_errors += part.decode_errors;
  total.timeouts += part.timeouts;
}

}  // namespace

// One reactor: an EventLoop thread owning a connection table and (in
// SO_REUSEPORT mode) its own listener. The hosted SimHost is shared across
// workers — everything else here is single-worker-owned, guarded by this
// worker's loop_role_. Lifecycle methods (start / stop_accepting /
// begin_drain / shutdown) are driven by the ServerGroup's controlling
// thread in that order.
//
// Requests are dispatched through SimHost::handle_http_async with this
// worker's loop as the executor: a handler that must fetch upstream parks
// its request in a per-connection ResponseSlot and returns immediately,
// so one slow MISS never blocks the reactor — concurrent cache HITs on
// the same worker keep flowing. Slots drain FIFO per connection, which
// preserves HTTP/1.1 pipeline order across out-of-order completions.
class ServerWorker {
 public:
  ServerWorker(net::SimHost* host, const ServerGroup::Options& options,
               ServerGroup* group)
      : host_(host), options_(options), group_(group) {}
  ~ServerWorker() { shutdown(); }

  ServerWorker(const ServerWorker&) = delete;
  ServerWorker& operator=(const ServerWorker&) = delete;

  /// Install this worker's listener before start(). `dispatch_round_robin`
  /// switches the accept handler from "adopt locally" (SO_REUSEPORT mode)
  /// to "hand off via the group's round-robin cursor" (fallback mode,
  /// worker 0 only).
  void set_listener(ScopedFd listener, bool dispatch_round_robin) {
    loop_role_.assert_held();  // pre-start: the role is unbound
    listener_ = std::move(listener);
    dispatch_round_robin_ = dispatch_round_robin;
  }

  void start() {
    loop_role_.assert_held();  // pre-start: the role is unbound
    loop_ = std::make_unique<EventLoop>(options_.backend);
    if (listener_.valid()) {
      loop_->watch(listener_.get(), true, false,
                   [this](bool readable, bool, bool) {
                     loop_role_.assert_held();
                     if (readable) on_accept();
                   });
    }
    thread_ = core::sync::Thread([this] {
      loop_role_.bind();  // the worker owns its connections (+ shared host)
      loop_->run();
      loop_role_.unbind();
    });
  }

  /// Stop() phase 1: close the listener (post-and-wait, so no accept
  /// handler is mid-flight once this returns). No-op for listenerless
  /// fallback workers.
  void stop_accepting() {
    run_and_wait([this] {
      loop_role_.assert_held();
      if (listener_.valid()) {
        loop_->unwatch(listener_.get());
        listener_.reset();
      }
    });
  }

  /// Stop() phase 2 kickoff: close idle keep-alive connections now and
  /// mark the rest to close as soon as their buffered requests are
  /// answered (serve_decoded / flush consult draining_).
  void begin_drain() {
    loop_->post([this] {
      loop_role_.assert_held();
      draining_ = true;
      std::vector<int> idle;
      for (auto& [fd, conn] : connections_) {
        const bool mid_request = conn->decoder.mid_message();
        if (!mid_request && !conn->response_pending()) {
          idle.push_back(fd);
        } else {
          conn->closing = true;
        }
      }
      for (const int fd : idle) close_connection(fd);
    });
  }

  /// Stop() phase 3: stop the loop, join, force-close drain stragglers.
  /// Idempotent.
  void shutdown() {
    if (!thread_.joinable()) return;
    loop_->stop();
    thread_.join();
    // The worker unbound the role on exit; re-claim its state from this
    // thread and tear down on the (now stopped) loop's structures.
    loop_role_.assert_held();
    for (auto& [fd, conn] : connections_) {
      loop_->unwatch(fd);
      // Straggling parked handlers are told their client is gone before
      // the connection state (and the respond callbacks' target) vanishes.
      for (Connection::ResponseSlot& slot : conn->slots) {
        if (slot.op != nullptr) slot.op->abort();
      }
    }
    connections_.clear();
    active_ = 0;
    if (listener_.valid()) {
      loop_->unwatch(listener_.get());
      listener_.reset();
    }
    loop_.reset();
  }

  /// Queue a task on this worker's loop (rendezvous door for the group).
  void post(std::function<void()> task) { loop_->post(std::move(task)); }

  /// Post `fn` to the loop and block until it ran. Must not be called from
  /// this worker's own thread.
  void run_and_wait(const std::function<void()>& fn) {
    if (!thread_.joinable()) {
      loop_role_.assert_held();  // not running: the caller owns all state
      fn();
      return;
    }
    assert(thread_.get_id() != std::this_thread::get_id() &&
           "run_and_wait called from the worker thread");
    core::sync::Mutex mutex;
    core::sync::CondVar done_cv;
    bool done = false;
    loop_->post([&] {
      fn();
      const core::sync::MutexLock lock(mutex);
      done = true;
      done_cv.notify_one();
    });
    const core::sync::MutexLock lock(mutex);
    while (!done) done_cv.wait(mutex);
  }

  /// Take ownership of an accepted fd from any thread (the fallback
  /// dispatch path). Cross-thread handoffs wrap the fd in a shared
  /// ScopedFd so it still closes if the loop stops before running the
  /// task.
  void adopt_from_any_thread(int fd, std::string peer) {
    if (thread_.get_id() == std::this_thread::get_id()) {
      loop_role_.assert_held();
      adopt_connection(ScopedFd(fd), std::move(peer));
      return;
    }
    auto guard = std::make_shared<ScopedFd>(fd);
    loop_->post([this, guard, peer = std::move(peer)]() mutable {
      loop_role_.assert_held();
      adopt_connection(std::move(*guard), std::move(peer));
    });
  }

  [[nodiscard]] std::size_t active_connections() const noexcept {
    return active_.value();
  }
  [[nodiscard]] std::thread::id thread_id() const noexcept {
    return thread_.get_id();
  }

  [[nodiscard]] ServerGroup::Stats stats() const IDICN_EXCLUDES(stats_mutex_) {
    const core::sync::MutexLock lock(stats_mutex_);
    return stats_;
  }

 private:
  struct Connection {
    /// One decoded request's place in the response pipeline. The host may
    /// answer inline (cache hit) or park the request and resume later from
    /// the event loop (upstream MISS fetch); either way the slot keeps the
    /// request's position, and slots drain strictly FIFO so responses
    /// leave in request order even when a parked MISS resolves after a
    /// later pipelined HIT.
    struct ResponseSlot {
      std::uint64_t id = 0;
      bool ready = false;          ///< response present; may drain at front
      bool count_served = false;   ///< tally in requests_served on drain
      bool peer_wants_close = false;  ///< request asked to close after it
      net::HttpResponse response;
      std::shared_ptr<net::AsyncOp> op;  ///< cancellation handle while parked
    };

    ScopedFd fd;
    std::string peer;                ///< "ip:port", passed as `from`
    net::HttpDecoder decoder;
    /// Output queue of shared, immutable chunks awaiting the socket. A
    /// cached object fanned out to N connections puts the *same* chunks in
    /// N queues — no per-connection body copy, and memory is released
    /// chunk by chunk as each connection drains (the old `std::string out`
    /// buffer both copied the body per connection and kept its grown
    /// capacity for the connection's lifetime).
    std::deque<core::Chunk> outq;
    std::size_t outq_offset = 0;     ///< bytes of outq.front() already sent
    std::size_t outq_bytes = 0;      ///< total unsent bytes across outq
    /// In-flight incremental body: chunks are pulled on demand while the
    /// socket drains, keeping at most ~kProducerWindow bytes queued.
    std::shared_ptr<net::BodyProducer> producer;
    bool producer_chunked = false;   ///< wire framing for producer chunks
    /// Pipelined responses that decoded behind an active producer; they
    /// enqueue in order once the producer finishes.
    std::deque<net::HttpResponse> deferred;
    bool producer_poll_armed = false;  ///< starvation re-poll timer pending
    bool closing = false;            ///< close once the queue drains
    bool write_armed = false;        ///< poller is watching writability
    std::uint64_t last_activity_ms = 0;
    std::uint64_t message_start_ms = 0;  ///< first byte of in-flight request
    TimerWheel::TimerId timer = 0;
    /// Outstanding + resolved-but-blocked response slots, in request
    /// order. Non-empty ⇔ the front slot is still parked on its handler
    /// (ready fronts drain immediately).
    std::deque<ResponseSlot> slots;
    std::uint64_t next_slot_id = 1;
    /// Distinguishes this connection from a later one reusing the same fd,
    /// so a parked handler's late respond callback cannot cross wires.
    std::uint64_t generation = 0;
    /// True while serve_decoded is inside handle_http_async: an inline
    /// respond just fills its slot and lets the dispatch loop drain.
    bool in_handler = false;

    Connection(ScopedFd fd_in, std::string peer_in,
               const net::HttpDecoder::Limits& limits)
        : fd(std::move(fd_in)),
          peer(std::move(peer_in)),
          decoder(net::HttpDecoder::Mode::Request, limits) {}

    /// True while any response bytes remain unsent, unproduced, or still
    /// owed by a parked handler.
    [[nodiscard]] bool response_pending() const {
      return !outq.empty() || producer != nullptr || !deferred.empty() ||
             !slots.empty();
    }
  };

  void on_accept() IDICN_REQUIRES(loop_role_) {
    while (true) {
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      const int fd = ::accept(listener_.get(),
                              reinterpret_cast<sockaddr*>(&addr), &len);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        return;  // transient accept failure; the listener stays armed
      }
      if (dispatch_round_robin_) {
        group_->dispatch_accepted(fd, peer_name(addr));
      } else {
        adopt_connection(ScopedFd(fd), peer_name(addr));
      }
    }
  }

  void adopt_connection(ScopedFd fd, std::string peer)
      IDICN_REQUIRES(loop_role_) {
    if (draining_) return;  // shutting down: refuse, ScopedFd closes
    if (connections_.size() >= options_.max_connections) {
      net::HttpResponse rejection =
          net::make_response(503, "server at connection capacity");
      rejection.headers.set("Retry-After",
                            std::to_string(options_.retry_after_s));
      const std::string reply = rejection.serialize_head() + rejection.body;
      (void)!::send(fd.get(), reply.data(), reply.size(), MSG_NOSIGNAL);
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_rejected;
      return;  // ScopedFd closes
    }
    set_nonblocking(fd.get());
    set_nodelay(fd.get());

    const int raw = fd.get();
    auto conn = std::make_unique<Connection>(std::move(fd), std::move(peer),
                                             options_.decoder_limits);
    conn->generation = next_generation_++;
    conn->last_activity_ms = loop_->now_ms();
    arm_timer(*conn);
    loop_->watch(raw, true, false,
                 [this, raw](bool readable, bool writable, bool error) {
                   loop_role_.assert_held();
                   on_connection_event(raw, readable, writable, error);
                 });
    connections_.emplace(raw, std::move(conn));
    ++active_;
    const core::sync::MutexLock lock(stats_mutex_);
    ++stats_.connections_accepted;
  }

  void arm_timer(Connection& conn) IDICN_REQUIRES(loop_role_) {
    // Lazy deadline check: fire at the nearest possible deadline and
    // recompute; reads just bump last_activity_ms without timer churn.
    const std::uint64_t delay =
        std::min(options_.idle_timeout_ms, options_.request_timeout_ms);
    const int fd = conn.fd.get();
    conn.timer = loop_->add_timer(delay, [this, fd] {
      loop_role_.assert_held();
      check_deadlines(fd);
    });
  }

  void check_deadlines(int fd) IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    // A parked connection is waiting on this server, not the client: the
    // handler's own deadlines (connect/IO timeouts, the retry envelope's
    // overall deadline) bound that wait, so neither the idle clock nor a
    // pending close may tear it down under the handler.
    const bool parked = !conn.slots.empty();
    if (conn.closing) {  // already draining towards close; stop waiting
      if (parked) {
        arm_timer(conn);
        return;
      }
      close_connection(fd);
      return;
    }
    const std::uint64_t now = loop_->now_ms();

    const bool mid_request = conn.decoder.mid_message();
    const bool request_expired =
        mid_request &&
        now - conn.message_start_ms >= options_.request_timeout_ms;
    const bool idle_expired =
        !parked && now - conn.last_activity_ms >= options_.idle_timeout_ms;

    if (request_expired || idle_expired) {
      {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.timeouts;
      }
      if (request_expired) {
        // Pre-resolved slot: the 408 queues behind any earlier parked
        // responses instead of jumping the pipeline.
        conn.slots.push_back({});
        Connection::ResponseSlot& slot = conn.slots.back();
        slot.id = conn.next_slot_id++;
        slot.ready = true;
        slot.response = net::make_response(408, "request timed out");
        drain_slots(conn);
      }
      conn.closing = true;
      flush(conn);  // may close the connection
      if (connections_.count(fd) != 0) arm_timer(conn);
      return;
    }
    arm_timer(conn);
  }

  void close_connection(int fd) IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    // The client went away: abort parked handler work so the host stops
    // fetching for a response nobody will read. A respond callback that
    // races the abort finds the fd gone (or the generation changed) and
    // drops its response.
    for (Connection::ResponseSlot& slot : it->second->slots) {
      if (slot.op != nullptr) slot.op->abort();
    }
    loop_->cancel_timer(it->second->timer);
    loop_->unwatch(fd);
    connections_.erase(it);  // ScopedFd closes
    --active_;
    {
      const core::sync::MutexLock lock(stats_mutex_);
      ++stats_.connections_closed;
    }
    group_->notify_connection_closed();  // a drain wait may be pending
  }

  void serve_decoded(Connection& conn) IDICN_REQUIRES(loop_role_) {
    const int fd = conn.fd.get();
    // Dispatch every pipelined request in arrival order. Each gets an
    // ordered ResponseSlot; the host answers via the respond callback —
    // inline for cache hits and other synchronous paths, later from the
    // event loop when the handler parks on upstream work. The loop thread
    // stays free to serve other connections while a request is parked.
    while (auto request = conn.decoder.next_request()) {
      const bool peer_wants_close = [&] {
        const auto connection = request->headers.get_view("Connection");
        if (connection) return *connection == "close" || *connection == "Close";
        return request->version == "HTTP/1.0";
      }();
      conn.slots.push_back({});
      {
        Connection::ResponseSlot& slot = conn.slots.back();
        slot.id = conn.next_slot_id++;
        slot.count_served = true;
        slot.peer_wants_close = peer_wants_close;
      }
      const std::uint64_t slot_id = conn.slots.back().id;
      const std::uint64_t generation = conn.generation;

      conn.in_handler = true;  // inline respond defers to the drain below
      try {
        auto op = host_->handle_http_async(
            *request, conn.peer, loop_.get(),
            [this, fd, generation, slot_id](net::HttpResponse response) {
              loop_role_.assert_held();
              resolve_slot(fd, generation, slot_id, std::move(response));
            });
        // Keep the cancellation handle only while the request is parked,
        // so close_connection can tell the host the client went away.
        if (op != nullptr) {
          for (Connection::ResponseSlot& pending : conn.slots) {
            if (pending.id == slot_id && !pending.ready) {
              pending.op = std::move(op);
              break;
            }
          }
        }
      } catch (const std::exception& e) {
        resolve_slot(fd, generation, slot_id,
                     net::make_response(
                         500, std::string("handler error: ") + e.what()));
      }
      conn.in_handler = false;

      if (peer_wants_close) conn.closing = true;  // last request we serve
      drain_slots(conn);
      if (conn.closing) break;
    }
    // A draining worker closes each connection once its buffered requests
    // are answered — further keep-alive traffic would outlive the window.
    if (draining_) conn.closing = true;

    if (conn.decoder.failed()) {
      {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.decode_errors;
      }
      // Pre-resolved slot so the error response queues behind any parked
      // requests instead of jumping the pipeline.
      conn.slots.push_back({});
      Connection::ResponseSlot& slot = conn.slots.back();
      slot.id = conn.next_slot_id++;
      slot.ready = true;
      slot.response = net::make_response(conn.decoder.suggested_status(),
                                         "malformed request: " +
                                             conn.decoder.error());
      conn.closing = true;
      drain_slots(conn);
    }
  }

  /// A handler finished — inline or after parking. Fill the slot and, on
  /// an asynchronous resume, push whatever became drainable to the wire.
  /// A missing fd or a generation mismatch means the client disconnected
  /// (and the fd was possibly reused) while the handler ran; the response
  /// is dropped.
  void resolve_slot(int fd, std::uint64_t generation, std::uint64_t slot_id,
                    net::HttpResponse response) IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    if (conn.generation != generation) return;
    for (Connection::ResponseSlot& slot : conn.slots) {
      if (slot.id != slot_id) continue;
      if (slot.ready) return;  // respond fires once; tolerate repeats
      slot.ready = true;
      slot.op.reset();
      slot.response = std::move(response);
      break;
    }
    if (conn.in_handler) return;  // serve_decoded drains after dispatch
    drain_slots(conn);
    flush(conn);  // may close the connection
  }

  /// Move ready slots at the queue front into the write path, preserving
  /// request order. Stops at the first slot still parked on its handler.
  void drain_slots(Connection& conn) IDICN_REQUIRES(loop_role_) {
    while (!conn.slots.empty() && conn.slots.front().ready) {
      Connection::ResponseSlot slot = std::move(conn.slots.front());
      conn.slots.pop_front();
      if (slot.peer_wants_close) {
        slot.response.headers.set("Connection", "close");
        conn.closing = true;
      }
      enqueue_response(conn, std::move(slot.response));
      if (slot.count_served) {
        const core::sync::MutexLock lock(stats_mutex_);
        ++stats_.requests_served;
      }
    }
  }

  void enqueue_chunk(Connection& conn, core::Chunk chunk)
      IDICN_REQUIRES(loop_role_) {
    if (chunk.empty()) return;
    conn.outq_bytes += chunk.size();
    conn.outq.push_back(std::move(chunk));
  }

  void enqueue_bytes(Connection& conn, std::string bytes)
      IDICN_REQUIRES(loop_role_) {
    if (bytes.empty()) return;
    enqueue_chunk(conn, core::Chunk::from_string(std::move(bytes)));
  }

  /// Queue a response for the wire, respecting pipeline order: while a
  /// producer-backed body is in flight, later responses wait in `deferred`
  /// until the producer's terminator is queued.
  void enqueue_response(Connection& conn, net::HttpResponse response)
      IDICN_REQUIRES(loop_role_) {
    if (conn.producer != nullptr || !conn.deferred.empty()) {
      conn.deferred.push_back(std::move(response));
      return;
    }
    enqueue_response_now(conn, std::move(response));
  }

  void enqueue_response_now(Connection& conn, net::HttpResponse response)
      IDICN_REQUIRES(loop_role_) {
    if (response.producer != nullptr) {
      conn.producer_chunked = producer_uses_chunked(response);
      enqueue_bytes(conn, response.serialize_head());
      conn.producer = std::move(response.producer);
      return;
    }
    // Flat and chunked bodies alike go out as shared chunks behind the
    // head; the cached object's chunks are referenced, never copied.
    enqueue_bytes(conn, response.serialize_head());
    for (core::Chunk& chunk : response.take_body_chunks().take()) {
      enqueue_chunk(conn, std::move(chunk));
    }
  }

  /// Pull from the connection's producer until ~kProducerWindow bytes are
  /// queued (or it runs dry). Returns true when new bytes were queued.
  ///
  /// Fail-closed by construction: a producer error closes the connection
  /// *without* queueing the chunked terminator (or, with Content-Length
  /// framing, short of the declared length) — the client sees a truncated
  /// body it must discard, never a clean end to corrupt content.
  bool pump_producer(Connection& conn) IDICN_REQUIRES(loop_role_) {
    bool queued = false;
    while (conn.producer != nullptr && conn.outq_bytes < kProducerWindow) {
      core::Chunk chunk;
      const net::BodyProducer::Pull pull = conn.producer->pull(&chunk);
      if (pull == net::BodyProducer::Pull::Ready) {
        if (chunk.empty()) continue;
        if (conn.producer_chunked) {
          enqueue_bytes(conn, chunk_size_line(chunk.size()));
          enqueue_chunk(conn, std::move(chunk));
          enqueue_bytes(conn, "\r\n");
        } else {
          enqueue_chunk(conn, std::move(chunk));
        }
        queued = true;
        continue;
      }
      if (pull == net::BodyProducer::Pull::Pending) break;
      if (pull == net::BodyProducer::Pull::Done) {
        if (conn.producer_chunked) {
          enqueue_bytes(conn, "0\r\n\r\n");
          queued = true;
        }
        conn.producer.reset();
        // The producer's response is complete: queue what piled up behind
        // it (which may itself install the next producer).
        while (conn.producer == nullptr && !conn.deferred.empty()) {
          net::HttpResponse next = std::move(conn.deferred.front());
          conn.deferred.pop_front();
          enqueue_response_now(conn, std::move(next));
          queued = true;
        }
        continue;
      }
      // Pull::Error — the body can never complete (e.g. upstream died or
      // content verification failed mid-stream). Drop everything after the
      // already-queued prefix and close.
      conn.producer.reset();
      conn.deferred.clear();
      conn.closing = true;
      break;
    }
    return queued;
  }

  IDICN_HOT_PATH void flush(Connection& conn) IDICN_REQUIRES(loop_role_) {
    const int fd = conn.fd.get();
    std::uint64_t sent_total = 0;
    bool blocked = false;
    bool dead = false;
    while (true) {
      if (conn.producer != nullptr && conn.outq_bytes < kProducerWindow) {
        pump_producer(conn);
      }
      if (conn.outq.empty()) break;

      // Gather up to kMaxIov chunks into one sendmsg() — header, cached
      // body chunks, and chunked-framing lines go out in a single syscall
      // without ever being copied into a contiguous buffer.
      iovec iov[kMaxIov];
      std::size_t iov_count = 0;
      std::size_t skip = conn.outq_offset;
      for (const core::Chunk& chunk : conn.outq) {
        if (iov_count == kMaxIov) break;
        const std::string_view view = chunk.view();
        iov[iov_count].iov_base =
            const_cast<char*>(view.data()) + skip;
        iov[iov_count].iov_len = view.size() - skip;
        skip = 0;
        ++iov_count;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iov_count;
      const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;  // backpressure: park until the socket drains
          break;
        }
        dead = true;
        break;
      }
      sent_total += static_cast<std::uint64_t>(n);
      std::size_t remaining = static_cast<std::size_t>(n);
      while (remaining > 0) {
        const std::size_t avail =
            conn.outq.front().size() - conn.outq_offset;
        if (remaining < avail) {
          conn.outq_offset += remaining;
          conn.outq_bytes -= remaining;
          remaining = 0;
        } else {
          remaining -= avail;
          conn.outq_bytes -= avail;
          conn.outq_offset = 0;
          conn.outq.pop_front();  // releases the chunk reference
        }
      }
    }
    if (sent_total > 0) {
      // One stats fold per flush, not one lock round trip per syscall.
      const core::sync::MutexLock lock(stats_mutex_);
      stats_.bytes_out += sent_total;
    }
    if (dead) {
      close_connection(fd);
      return;
    }
    if (conn.closing && !conn.response_pending()) {
      close_connection(fd);
      return;
    }
    const bool want_write = blocked && !conn.outq.empty();
    if (want_write != conn.write_armed) {
      conn.write_armed = want_write;
      loop_->update(fd, !conn.closing, want_write);
    }
    // Starvation: queue drained but the producer has no bytes yet (its
    // upstream is still fetching). The socket gives no edge to wake on, so
    // re-poll on the timer wheel until bytes (or the error) arrive.
    if (conn.outq.empty() && conn.producer != nullptr &&
        !conn.producer_poll_armed) {
      conn.producer_poll_armed = true;
      loop_->add_timer(kProducerPollMs, [this, fd] {
        loop_role_.assert_held();
        const auto it = connections_.find(fd);
        if (it == connections_.end()) return;
        it->second->producer_poll_armed = false;
        flush(*it->second);
      });
    }
  }

  void on_connection_event(int fd, bool readable, bool writable, bool error)
      IDICN_REQUIRES(loop_role_) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;

    if (error) {
      close_connection(fd);
      return;
    }

    if (readable) {
      char buffer[16 * 1024];
      while (true) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n == 0) {  // orderly shutdown by the peer
          close_connection(fd);
          return;
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          close_connection(fd);
          return;
        }
        const std::uint64_t now = loop_->now_ms();
        if (!conn.decoder.mid_message()) conn.message_start_ms = now;
        conn.last_activity_ms = now;
        {
          const core::sync::MutexLock lock(stats_mutex_);
          stats_.bytes_in += static_cast<std::uint64_t>(n);
        }
        conn.decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      }
      serve_decoded(conn);
    }

    if (writable || conn.response_pending()) flush(conn);
  }

  /// Owns this worker's connection state while its thread runs; bound by
  /// the worker thread body, re-claimed by shutdown() after the join.
  core::sync::ThreadRole loop_role_;

  net::SimHost* host_;  ///< shared across workers; thread-safe handlers
  const ServerGroup::Options& options_;  ///< owned by the ServerGroup
  ServerGroup* group_;                   ///< owns this worker
  /// Connection identity counter for parked-handler resume callbacks (fd
  /// values get reused; generations do not).
  std::uint64_t next_generation_ IDICN_GUARDED_BY(loop_role_) = 1;
  /// Created by start() before the thread exists, destroyed by shutdown()
  /// after the join; the pointer itself is never touched concurrently.
  std::unique_ptr<EventLoop> loop_;
  ScopedFd listener_ IDICN_GUARDED_BY(loop_role_);
  bool dispatch_round_robin_ IDICN_GUARDED_BY(loop_role_) = false;
  bool draining_ IDICN_GUARDED_BY(loop_role_) = false;
  core::sync::Thread thread_;
  std::map<int, std::unique_ptr<Connection>> connections_
      IDICN_GUARDED_BY(loop_role_);
  /// Live connection gauge sampled by the group's drain wait.
  core::sync::RelaxedCounter active_;

  mutable core::sync::Mutex stats_mutex_;
  ServerGroup::Stats stats_ IDICN_GUARDED_BY(stats_mutex_);
};

ServerGroup::ServerGroup(net::SimHost* host, std::string address)
    : ServerGroup(host, std::move(address), Options{}) {}

ServerGroup::ServerGroup(net::SimHost* host, std::string address,
                         Options options)
    : host_(host), address_(std::move(address)), options_(options) {
  if (host_ == nullptr) throw std::invalid_argument("ServerGroup: null host");
}

ServerGroup::~ServerGroup() { stop(); }

std::uint16_t ServerGroup::start(std::uint16_t port) {
  if (!workers_.empty()) {
    throw std::runtime_error("ServerGroup: already started");
  }
  const std::size_t worker_total = std::max<std::size_t>(1, options_.workers);

  // Preferred path: one SO_REUSEPORT listener per worker, all bound to the
  // same port — the kernel spreads accepted connections across them. Any
  // bind failure falls back to the portable single-acceptor layout.
  std::vector<ScopedFd> listeners;
  std::uint16_t bound = 0;
  std::string error;
  reuseport_active_ = false;
  if (worker_total > 1 && options_.reuseport && reuseport_supported()) {
    ListenOptions listen_options;
    listen_options.reuseport = true;
    bool all_bound = true;
    for (std::size_t i = 0; i < worker_total; ++i) {
      // The first bind resolves an ephemeral request; siblings join it.
      const std::uint16_t request = listeners.empty() ? port : bound;
      const int fd = listen_tcp(request, &bound, &error, listen_options);
      if (fd < 0) {
        all_bound = false;
        break;
      }
      listeners.emplace_back(fd);
    }
    if (all_bound) {
      reuseport_active_ = true;
    } else {
      listeners.clear();
      bound = 0;
    }
  }
  if (!reuseport_active_) {
    const int fd = listen_tcp(port, &bound, &error);
    if (fd < 0) {
      throw std::runtime_error("ServerGroup[" + address_ + "]: " + error);
    }
    listeners.emplace_back(fd);
  }
  port_ = bound;

  for (std::size_t i = 0; i < worker_total; ++i) {
    workers_.push_back(
        std::make_unique<ServerWorker>(host_, options_, this));
  }
  if (reuseport_active_) {
    for (std::size_t i = 0; i < worker_total; ++i) {
      workers_[i]->set_listener(std::move(listeners[i]),
                                /*dispatch_round_robin=*/false);
    }
  } else {
    // Single acceptor on worker 0; with more than one worker it
    // round-robins accepted fds across the group (including itself).
    workers_[0]->set_listener(std::move(listeners[0]),
                              /*dispatch_round_robin=*/worker_total > 1);
  }
  for (auto& worker : workers_) worker->start();
  return port_;
}

void ServerGroup::stop() {
  if (workers_.empty()) return;
  // 1. Stop accepting: every listener closes before any drain begins.
  for (auto& worker : workers_) worker->stop_accepting();
  // 2. Drain: idle connections close immediately, in-flight requests get
  //    up to drain_timeout_ms; each close signals drain_cv_.
  for (auto& worker : workers_) worker->begin_drain();
  {
    const core::sync::MutexLock lock(drain_mutex_);
    drain_cv_.wait_for(drain_mutex_, options_.drain_timeout_ms,
                       [this] { return total_active_connections() == 0; });
  }
  // 3. Join every worker; stragglers past the deadline are force-closed.
  for (auto& worker : workers_) worker->shutdown();
  {
    const core::sync::MutexLock lock(lifecycle_mutex_);
    retired_worker_stats_.clear();
    for (auto& worker : workers_) {
      const Stats part = worker->stats();
      accumulate(retired_total_, part);
      retired_worker_stats_.push_back(part);
    }
    workers_.clear();
  }
  next_worker_.store(0, std::memory_order_relaxed);
}

void ServerGroup::run_on_all_workers(const std::function<void()>& fn) {
  if (workers_.empty()) {
    fn();  // not running: the caller owns all state
    return;
  }
#ifndef NDEBUG
  for (const auto& worker : workers_) {
    assert(worker->thread_id() != std::this_thread::get_id() &&
           "run_on_all_workers called from a worker thread");
  }
#endif
  struct Rendezvous {
    core::sync::Mutex mutex;
    core::sync::CondVar cv;
    std::size_t parked IDICN_GUARDED_BY(mutex) = 0;
    bool resume IDICN_GUARDED_BY(mutex) = false;
  };
  // Heap-held and shared with every worker task: the last worker to wake
  // may still touch the mutex after this function has already returned.
  auto rendezvous = std::make_shared<Rendezvous>();
  const std::size_t worker_total = workers_.size();
  for (auto& worker : workers_) {
    worker->post([rendezvous] {
      const core::sync::MutexLock lock(rendezvous->mutex);
      ++rendezvous->parked;
      rendezvous->cv.notify_all();
      while (!rendezvous->resume) rendezvous->cv.wait(rendezvous->mutex);
    });
  }
  {
    const core::sync::MutexLock lock(rendezvous->mutex);
    while (rendezvous->parked != worker_total) {
      rendezvous->cv.wait(rendezvous->mutex);
    }
  }
  // Every worker is parked: this thread has exclusive access to the host.
  const auto release = [&rendezvous] {
    {
      const core::sync::MutexLock lock(rendezvous->mutex);
      rendezvous->resume = true;
    }
    rendezvous->cv.notify_all();
  };
  try {
    fn();
  } catch (...) {
    release();
    throw;
  }
  release();
}

std::size_t ServerGroup::worker_count() const noexcept {
  if (!workers_.empty()) return workers_.size();
  return std::max<std::size_t>(1, options_.workers);
}

ServerGroup::Stats ServerGroup::stats() const {
  const core::sync::MutexLock lock(lifecycle_mutex_);
  Stats total = retired_total_;
  for (const auto& worker : workers_) accumulate(total, worker->stats());
  return total;
}

ServerGroup::Stats ServerGroup::worker_stats(std::size_t worker) const {
  const core::sync::MutexLock lock(lifecycle_mutex_);
  if (!workers_.empty()) {
    if (worker >= workers_.size()) {
      throw std::out_of_range("ServerGroup::worker_stats: no such worker");
    }
    return workers_[worker]->stats();
  }
  // Stopped: answer from the last run's retirement snapshot.
  if (worker >= retired_worker_stats_.size()) {
    throw std::out_of_range("ServerGroup::worker_stats: no such worker");
  }
  return retired_worker_stats_[worker];
}

void ServerGroup::dispatch_accepted(int fd, std::string peer) {
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  workers_[target]->adopt_from_any_thread(fd, std::move(peer));
}

void ServerGroup::notify_connection_closed() {
  // Taken-and-dropped so a concurrent drain wait cannot miss the signal
  // between its predicate check and its sleep.
  const core::sync::MutexLock lock(drain_mutex_);
  drain_cv_.notify_all();
}

std::size_t ServerGroup::total_active_connections() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->active_connections();
  return total;
}

}  // namespace idicn::runtime
