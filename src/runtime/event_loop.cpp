#include "runtime/event_loop.hpp"

#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "runtime/tcp.hpp"

namespace idicn::runtime {

EventLoop::EventLoop(PollerBackend backend) : poller_(make_poller(backend)) {
  if (poller_ == nullptr) {
    throw std::runtime_error("EventLoop: requested poller backend unavailable");
  }
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("EventLoop: pipe failed");
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  watch(wake_read_fd_, true, false, [this](bool readable, bool, bool) {
    if (!readable) return;
    char buffer[256];
    while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool EventLoop::watch(int fd, bool want_read, bool want_write, IoHandler handler) {
  assert_on_loop_thread();
  if (handlers_.count(fd) != 0) return false;
  if (!poller_->add(fd, want_read, want_write)) return false;
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  return true;
}

bool EventLoop::update(int fd, bool want_read, bool want_write) {
  assert_on_loop_thread();
  if (handlers_.count(fd) == 0) return false;
  return poller_->modify(fd, want_read, want_write);
}

void EventLoop::unwatch(int fd) {
  assert_on_loop_thread();
  if (handlers_.erase(fd) != 0) poller_->remove(fd);
}

TimerWheel::TimerId EventLoop::add_timer(std::uint64_t delay_ms,
                                         TimerWheel::Callback callback) {
  assert_on_loop_thread();
  timers_.advance_to(now_ms());
  return timers_.schedule(delay_ms, std::move(callback));
}

bool EventLoop::cancel_timer(TimerWheel::TimerId id) {
  assert_on_loop_thread();
  return timers_.cancel(id);
}

void EventLoop::post(std::function<void()> task) {
  {
    const core::sync::MutexLock lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const char byte = 0;
  [[maybe_unused]] const auto written = ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::drain_tasks() {
  std::vector<std::function<void()>> tasks;
  {
    const core::sync::MutexLock lock(tasks_mutex_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

std::uint64_t EventLoop::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int EventLoop::next_timeout_ms(int cap_ms) const {
  const auto deadline = timers_.next_deadline_ms();
  if (!deadline) return cap_ms;
  const std::uint64_t now = now_ms();
  if (*deadline <= now) return 0;
  const std::uint64_t wait = *deadline - now;
  return wait < static_cast<std::uint64_t>(cap_ms) ? static_cast<int>(wait) : cap_ms;
}

void EventLoop::run_once(int timeout_ms) {
  assert_on_loop_thread();
  ready_.clear();
  poller_->wait(next_timeout_ms(timeout_ms), ready_);
  // Look handlers up per event: an earlier handler in this batch may have
  // unwatched a later fd, in which case its event must be dropped.
  for (const Ready& event : ready_) {
    const auto it = handlers_.find(event.fd);
    if (it == handlers_.end()) continue;
    const std::shared_ptr<IoHandler> handler = it->second;  // keep alive
    (*handler)(event.readable, event.writable, event.error);
  }
  timers_.advance_to(now_ms());
  drain_tasks();
}

void EventLoop::run() {
  loop_role_.bind();  // the calling thread owns loop state until return
  assert_on_loop_thread();
  while (!stopping_.load(std::memory_order_acquire)) {
    run_once(1000);
  }
  stopping_.store(false, std::memory_order_release);  // allow re-run
  loop_role_.unbind();
}

}  // namespace idicn::runtime
