// Thin POSIX TCP helpers for the runtime: RAII fds, non-blocking setup,
// loopback listeners with ephemeral-port support, and blocking connects
// with timeouts. Everything returns errors by value — the runtime treats
// socket failures as data, not exceptions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace idicn::runtime {

/// Move-only owning file descriptor.
class ScopedFd {
public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

private:
  int fd_ = -1;
};

bool set_nonblocking(int fd);
bool set_nodelay(int fd);
/// SO_RCVTIMEO + SO_SNDTIMEO for blocking sockets.
bool set_io_timeout(int fd, int timeout_ms);

/// Extra listener behavior for listen_tcp().
struct ListenOptions {
  /// Set SO_REUSEPORT before bind so several sockets (one per reactor
  /// worker) can share one port and let the kernel load-balance accepted
  /// connections across them. Binding fails with an error when the
  /// platform lacks the option (probe with reuseport_supported()).
  bool reuseport = false;
};

/// True when this platform can set SO_REUSEPORT on a TCP socket (probed
/// once per call on a throwaway socket — callers cache the answer).
[[nodiscard]] bool reuseport_supported();

/// Create a listening TCP socket bound to 127.0.0.1:`port` (0 = kernel
/// picks an ephemeral port). On success returns the fd (non-blocking,
/// SO_REUSEADDR) and stores the bound port; on failure returns -1 and
/// stores a reason in `error` when non-null.
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port, std::string* error,
               const ListenOptions& options = {});

/// Blocking connect to `host`:`port` with a timeout; the returned fd is in
/// blocking mode. -1 on failure (reason in `error` when non-null).
int connect_tcp(const std::string& host, std::uint16_t port, int timeout_ms,
                std::string* error);

/// Start a non-blocking connect to `host`:`port` and return the fd with
/// the connect possibly still in progress (EINPROGRESS is success). The
/// caller watches the fd for writability and then checks SO_ERROR to
/// learn the outcome; the fd stays non-blocking. -1 on immediate failure
/// (reason in `error` when non-null).
int connect_tcp_nonblocking(const std::string& host, std::uint16_t port,
                            std::string* error);

}  // namespace idicn::runtime
