#include "runtime/http_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/http_internal.hpp"

namespace idicn::runtime {
namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

bool HttpClient::stale_connection() const noexcept {
  if (!fd_.valid()) return false;
  char probe = 0;
  const ssize_t n =
      ::recv(fd_.get(), &probe, sizeof(probe), MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;  // peer FIN while pooled
  if (n > 0) return true;   // unsolicited bytes (stale response / garbage)
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void HttpClient::close() {
  fd_.reset();
  decoder_.reset();
}

bool HttpClient::ensure_connected(std::string* error) {
  if (fd_.valid()) return true;
  std::string reason;
  const int fd = connect_tcp(host_, port_, options_.connect_timeout_ms, &reason);
  if (fd < 0) {
    set_error(error, reason);
    return false;
  }
  set_nodelay(fd);
  set_io_timeout(fd, options_.io_timeout_ms);
  fd_.reset(fd);
  decoder_.reset();
  return true;
}

bool HttpClient::write_all(const std::string& bytes, std::string* error) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_.get(), bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, std::string("send: ") + std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<net::HttpResponse> HttpClient::read_response(std::string* error) {
  char buffer[16 * 1024];
  while (true) {
    if (auto response = decoder_.next_response()) return response;
    if (decoder_.failed()) {
      set_error(error, "malformed response: " + decoder_.error());
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n == 0) {
      set_error(error, "connection closed mid-response");
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timeout = errno == EAGAIN || errno == EWOULDBLOCK;
      set_error(error, timeout ? "receive timeout"
                               : std::string("recv: ") + std::strerror(errno));
      return std::nullopt;
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

std::optional<net::HttpResponse> HttpClient::round_trip(const std::string& wire,
                                                        std::string* error) {
  if (!write_all(wire, error)) return std::nullopt;
  return read_response(error);
}

std::optional<net::HttpResponse> HttpClient::request(const net::HttpRequest& request,
                                                     std::string* error) {
  const bool reused = fd_.valid();
  if (!ensure_connected(error)) return std::nullopt;
  ++requests_sent_;

  const std::string wire = request.serialize();
  auto response = round_trip(wire, error);
  if (!response && reused) {
    // Keep-alive race: the server idled the connection out between our
    // requests. One clean reconnect is safe for idempotent traffic.
    close();
    if (!ensure_connected(error)) return std::nullopt;
    response = round_trip(wire, error);
  }
  if (!response) {
    close();
    return std::nullopt;
  }
  if (const auto connection = response->headers.get("Connection");
      connection && net::detail::iequals(*connection, "close")) {
    close();
  }
  return response;
}

std::optional<net::HttpResponse> HttpClient::request_streaming(
    const net::HttpRequest& request, net::ChunkSink& sink, std::string* error) {
  const bool reused = fd_.valid();
  if (!ensure_connected(error)) return std::nullopt;
  ++requests_sent_;

  bool delivered = false;  // sink saw the head (or bytes) — no retries past here
  bool cancelled = false;
  net::HttpDecoder::StreamHooks hooks;
  hooks.on_head = [&](const net::HttpResponse& head) {
    delivered = true;
    if (!sink.on_head(head)) cancelled = true;
  };
  hooks.on_chunk = [&](core::Chunk chunk) {
    if (cancelled) return;  // decoder may still flush a staged slab
    if (!sink.on_chunk(std::move(chunk))) cancelled = true;
  };
  decoder_.set_stream_hooks(std::move(hooks));

  const std::string wire = request.serialize();
  auto head = round_trip(wire, error);
  if (!head && reused && !delivered) {
    // Keep-alive race: the server idled the connection out between our
    // requests; nothing reached the sink, so a clean replay is safe.
    close();
    if (!ensure_connected(error)) {
      decoder_.set_stream_hooks({});
      return std::nullopt;
    }
    head = round_trip(wire, error);
  }
  decoder_.set_stream_hooks({});
  if (cancelled) {
    // A half-read body poisons keep-alive reuse; drop the connection.
    close();
    set_error(error, "streaming cancelled by sink");
    return std::nullopt;
  }
  if (!head) {
    close();
    return std::nullopt;
  }
  if (const auto connection = head->headers.get("Connection");
      connection && net::detail::iequals(*connection, "close")) {
    close();
  }
  return head;
}

std::optional<net::HttpResponse> HttpClient::get(const std::string& target,
                                                 std::string* error) {
  net::HttpRequest get_request;
  get_request.method = "GET";
  get_request.target = target;
  return request(get_request, error);
}

}  // namespace idicn::runtime
