// Real-socket net::Transport.
//
// SocketNet maps logical idICN addresses ("proxy0", "nrs.idicn.org", …) to
// TCP endpoints (always 127.0.0.1:<port> in this prototype) and carries
// Transport::send() over blocking keep-alive HttpClients. Existing hosts
// built against net::Transport — Proxy, ReverseProxy, Client, the NRS —
// run over it unmodified.
//
// Connections are pooled per destination: send() borrows a client from the
// destination's pool (or dials a fresh one), performs the round trip, and
// returns the client on success. Concurrent senders to the same destination
// therefore get independent connections instead of serializing. Pooled
// connections the peer closed while idle are detected on borrow (a
// zero-byte MSG_PEEK probe) and discarded rather than surfacing a spurious
// failure or replaying a stale buffered response.
//
// Failure semantics match SimNet: an unknown or unreachable destination
// yields a synthesized 504 Gateway Timeout, never an exception. On top of
// that sits the fault-tolerance layer (DESIGN.md §"Failure model &
// degradation"):
//   * transport failures are retried with RetryPolicy's full-jitter capped
//     exponential backoff, bounded per send by max_attempts and the overall
//     deadline (each try's connect/IO timeouts are the per-try deadline),
//     and globally by a RetryBudget so retries cannot amplify overload;
//   * every destination gets a CircuitBreaker — after
//     `failure_threshold` consecutive transport failures the breaker opens
//     and sends fast-fail with a synthesized 503 + Retry-After instead of
//     burning the connect timeout, then half-opens and probes its way back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.hpp"
#include "net/transport.hpp"
#include "runtime/async_http_client.hpp"
#include "runtime/http_client.hpp"
#include "runtime/retry.hpp"

namespace idicn::runtime {

class ServerGroup;

/// Parse a delay-seconds Retry-After value (RFC 7231 §7.1.3, the only form
/// this runtime emits) to milliseconds; nullopt for HTTP-date or garbage —
/// callers fall back to the backoff curve. Values over a day are treated
/// as a refusal, not a hint.
[[nodiscard]] std::optional<std::uint64_t> parse_retry_after_ms(
    std::string_view value);

class SocketNet final : public net::Transport {
public:
  struct Options {
    HttpClient::Options client;
    /// Retry transport failures with backoff (off ⇒ one attempt per send).
    bool enable_retries = true;
    /// Fast-fail via per-destination circuit breakers.
    bool enable_breakers = true;
    RetryPolicy::Options retry;
    RetryBudget::Options budget;
    CircuitBreaker::Options breaker;
  };

  SocketNet();
  explicit SocketNet(HttpClient::Options client_options);
  explicit SocketNet(Options options);
  ~SocketNet() override = default;

  SocketNet(const SocketNet&) = delete;
  SocketNet& operator=(const SocketNet&) = delete;

  /// Map `address` to host:port. Re-registering replaces the endpoint and
  /// drops its pooled connections.
  void register_endpoint(const net::Address& address, std::string host,
                         std::uint16_t port);
  /// Convenience: register a started ServerGroup (or HostServer) under its
  /// own address.
  void register_endpoint(const ServerGroup& server);
  /// Forget `address`; subsequent sends to it synthesize 504. Also forgets
  /// the destination's breaker state.
  void unregister_endpoint(const net::Address& address);

  /// Add `address` to `group` for multicast fan-out (idempotent).
  void join_group(const net::Address& address, const std::string& group);

  // net::Transport
  net::HttpResponse send(const net::Address& from, const net::Address& to,
                         const net::HttpRequest& request) override;
  /// Streaming send: body chunks flow to `sink` as the wire produces them
  /// instead of buffering in the client. Same failure envelope as send()
  /// (504 synthesis, breakers, budgeted retries) with one restriction:
  /// retries stop the moment the sink has seen anything — a replay would
  /// deliver the prefix twice. A mid-body failure therefore surfaces as a
  /// 504 *after* the sink consumed a partial body; callers must treat an
  /// error head as "discard what you streamed".
  net::HttpResponse send_streaming(const net::Address& from,
                                   const net::Address& to,
                                   const net::HttpRequest& request,
                                   net::ChunkSink& sink) override;
  std::vector<net::HttpResponse> multicast(const net::Address& from,
                                           const std::string& group,
                                           const net::HttpRequest& request) override;
  [[nodiscard]] std::uint64_t now_ms() const override;

  /// Loop-native sends: the same failure envelope as send()/send_streaming()
  /// — 504 synthesis, breaker fast-fail, budgeted full-jitter retries — but
  /// each attempt runs on `exec` via a pooled AsyncHttpClient and backoff is
  /// a timer-wheel reschedule instead of a sleeping thread. `done` fires
  /// exactly once on the loop thread (inline for the synthesized fast
  /// failures). A null `exec` falls back to the blocking path inline; never
  /// do that on a loop thread.
  void send_async(const net::Address& from, const net::Address& to,
                  const net::HttpRequest& request, net::Executor* exec,
                  net::SendCallback done) override;
  void send_streaming_async(const net::Address& from, const net::Address& to,
                            const net::HttpRequest& request,
                            std::shared_ptr<net::ChunkSink> sink,
                            net::Executor* exec,
                            net::SendCallback done) override;

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t send_failures = 0;  ///< unknown endpoint or socket error
    std::uint64_t connections_opened = 0;
    std::uint64_t retries = 0;             ///< backoff-delayed re-attempts
    std::uint64_t breaker_fast_fails = 0;  ///< 503s from an open breaker
    std::uint64_t stale_pool_drops = 0;    ///< dead pooled fds discarded
    /// Async retries whose delay was stretched to a peer's Retry-After
    /// hint on a 503 (instead of the generic backoff curve).
    std::uint64_t retry_after_honored = 0;
  };
  [[nodiscard]] Stats stats() const IDICN_EXCLUDES(mutex_);

  /// Observer view of a destination's breaker (Closed when the destination
  /// has no breaker yet or breakers are disabled).
  [[nodiscard]] CircuitBreaker::State breaker_state(const net::Address& to) const
      IDICN_EXCLUDES(mutex_);

  /// One in-flight async send's retry envelope (defined in the .cpp;
  /// public only so the .cpp's helper sink can name it).
  struct AsyncSendState;

private:
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::vector<std::unique_ptr<HttpClient>> idle;  ///< pooled connections
    /// Parked loop-native connections, per owning executor (an
    /// AsyncHttpClient is confined to its loop thread, so pools never mix
    /// executors). Parked clients are unwatched and timer-less — safe to
    /// destroy from any thread when the endpoint is replaced or forgotten.
    std::map<net::Executor*, std::vector<std::unique_ptr<AsyncHttpClient>>>
        async_idle;
  };

  /// Borrow a pooled (or freshly dialed) client for `to`; nullptr when the
  /// address is unknown. Pooled clients whose connection went stale while
  /// idle are discarded here. Ownership of the client transfers to the
  /// caller — the mutex hand-off is what makes pooled connections safe to
  /// pass between sender threads.
  std::unique_ptr<HttpClient> borrow(const net::Address& to) IDICN_EXCLUDES(mutex_);
  void give_back(const net::Address& to, std::unique_ptr<HttpClient> client)
      IDICN_EXCLUDES(mutex_);

  /// The destination's breaker, created on first use (shared_ptr so callers
  /// operate on it outside the map lock; CircuitBreaker is thread-safe).
  std::shared_ptr<CircuitBreaker> breaker_for(const net::Address& to)
      IDICN_EXCLUDES(mutex_);

  /// One borrow → round trip → give_back attempt. On failure the reason is
  /// left in `error` and nullopt returned.
  std::optional<net::HttpResponse> attempt(const net::Address& to,
                                           const net::HttpRequest& request,
                                           std::string* error)
      IDICN_EXCLUDES(mutex_);

  /// Streaming variant of attempt(); `delivered` is set once the sink has
  /// observed the head (the point past which retrying would double-deliver).
  std::optional<net::HttpResponse> attempt_streaming(
      const net::Address& to, const net::HttpRequest& request,
      net::ChunkSink& sink, bool* delivered, std::string* error)
      IDICN_EXCLUDES(mutex_);

  /// Shared front half of send_async/send_streaming_async: the unknown-
  /// destination and breaker fast-fail gates, then the first attempt.
  void start_async_send(std::shared_ptr<AsyncSendState> state)
      IDICN_EXCLUDES(mutex_);
  /// One borrow → issue attempt on the state's executor.
  void async_attempt(std::shared_ptr<AsyncSendState> state)
      IDICN_EXCLUDES(mutex_);
  /// Attempt outcome: success completes, failure walks the same retry
  /// ladder as the blocking envelope with timer-wheel backoff.
  void finish_async_attempt(std::shared_ptr<AsyncSendState> state,
                            std::optional<net::HttpResponse> head,
                            std::string error) IDICN_EXCLUDES(mutex_);

  /// Async counterpart of borrow(): pooled clients owned by `exec`, with
  /// the same borrow-time staleness probe. nullptr when `to` is unknown.
  std::unique_ptr<AsyncHttpClient> borrow_async(const net::Address& to,
                                                net::Executor* exec)
      IDICN_EXCLUDES(mutex_);
  void give_back_async(const net::Address& to, net::Executor* exec,
                       std::unique_ptr<AsyncHttpClient> client)
      IDICN_EXCLUDES(mutex_);

  Options options_;
  RetryPolicy retry_policy_;
  RetryBudget retry_budget_;
  mutable core::sync::Mutex mutex_;
  std::map<net::Address, Endpoint> endpoints_ IDICN_GUARDED_BY(mutex_);
  std::map<std::string, std::vector<net::Address>> groups_ IDICN_GUARDED_BY(mutex_);
  std::map<net::Address, std::shared_ptr<CircuitBreaker>> breakers_
      IDICN_GUARDED_BY(mutex_);
  Stats stats_ IDICN_GUARDED_BY(mutex_);
};

// Out of line: Options' default member initializers only become usable once
// SocketNet is a complete type.
inline SocketNet::SocketNet() : SocketNet(Options{}) {}
inline SocketNet::SocketNet(HttpClient::Options client_options)
    : SocketNet([&] {
        Options options;
        options.client = client_options;
        return options;
      }()) {}

}  // namespace idicn::runtime
