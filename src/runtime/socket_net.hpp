// Real-socket net::Transport.
//
// SocketNet maps logical idICN addresses ("proxy0", "nrs.idicn.org", …) to
// TCP endpoints (always 127.0.0.1:<port> in this prototype) and carries
// Transport::send() over blocking keep-alive HttpClients. Existing hosts
// built against net::Transport — Proxy, ReverseProxy, Client, the NRS —
// run over it unmodified.
//
// Connections are pooled per destination: send() borrows a client from the
// destination's pool (or dials a fresh one), performs the round trip, and
// returns the client on success. Concurrent senders to the same destination
// therefore get independent connections instead of serializing.
//
// Failure semantics match SimNet: an unknown or unreachable destination
// yields a synthesized 504 Gateway Timeout, never an exception.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sync.hpp"
#include "net/transport.hpp"
#include "runtime/http_client.hpp"

namespace idicn::runtime {

class ServerGroup;

class SocketNet final : public net::Transport {
public:
  explicit SocketNet(HttpClient::Options client_options = {});
  ~SocketNet() override = default;

  SocketNet(const SocketNet&) = delete;
  SocketNet& operator=(const SocketNet&) = delete;

  /// Map `address` to host:port. Re-registering replaces the endpoint and
  /// drops its pooled connections.
  void register_endpoint(const net::Address& address, std::string host,
                         std::uint16_t port);
  /// Convenience: register a started ServerGroup (or HostServer) under its
  /// own address.
  void register_endpoint(const ServerGroup& server);
  /// Forget `address`; subsequent sends to it synthesize 504.
  void unregister_endpoint(const net::Address& address);

  /// Add `address` to `group` for multicast fan-out (idempotent).
  void join_group(const net::Address& address, const std::string& group);

  // net::Transport
  net::HttpResponse send(const net::Address& from, const net::Address& to,
                         const net::HttpRequest& request) override;
  std::vector<net::HttpResponse> multicast(const net::Address& from,
                                           const std::string& group,
                                           const net::HttpRequest& request) override;
  [[nodiscard]] std::uint64_t now_ms() const override;

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t send_failures = 0;  ///< unknown endpoint or socket error
    std::uint64_t connections_opened = 0;
  };
  [[nodiscard]] Stats stats() const IDICN_EXCLUDES(mutex_);

private:
  struct Endpoint {
    std::string host;
    std::uint16_t port = 0;
    std::vector<std::unique_ptr<HttpClient>> idle;  ///< pooled connections
  };

  /// Borrow a pooled (or freshly dialed) client for `to`; nullptr when the
  /// address is unknown. Ownership of the client transfers to the caller —
  /// the mutex hand-off is what makes pooled connections safe to pass
  /// between sender threads.
  std::unique_ptr<HttpClient> borrow(const net::Address& to) IDICN_EXCLUDES(mutex_);
  void give_back(const net::Address& to, std::unique_ptr<HttpClient> client)
      IDICN_EXCLUDES(mutex_);

  HttpClient::Options client_options_;
  mutable core::sync::Mutex mutex_;
  std::map<net::Address, Endpoint> endpoints_ IDICN_GUARDED_BY(mutex_);
  std::map<std::string, std::vector<net::Address>> groups_ IDICN_GUARDED_BY(mutex_);
  Stats stats_ IDICN_GUARDED_BY(mutex_);
};

}  // namespace idicn::runtime
