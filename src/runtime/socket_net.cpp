#include "runtime/socket_net.hpp"

#include <algorithm>
#include <chrono>

#include "runtime/server_group.hpp"

namespace idicn::runtime {
namespace {

/// Retry-After is expressed in whole seconds (RFC 7231 §7.1.3); round up so
/// a compliant client never retries into a still-open breaker.
std::string retry_after_seconds(std::uint64_t retry_after_ms) {
  return std::to_string((retry_after_ms + 999) / 1000);
}

}  // namespace

std::optional<std::uint64_t> parse_retry_after_ms(std::string_view value) {
  if (value.empty()) return std::nullopt;
  std::uint64_t seconds = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    seconds = seconds * 10 + static_cast<std::uint64_t>(c - '0');
    if (seconds > 86'400) return std::nullopt;  // cap: a day is a refusal
  }
  return seconds * 1000;
}

namespace {

/// Wraps the caller's sink to record whether anything was delivered —
/// the retry loop must stop replaying attempts once the sink saw a head.
class DeliveryTrackingSink final : public net::ChunkSink {
public:
  DeliveryTrackingSink(net::ChunkSink& inner, bool* delivered)
      : inner_(inner), delivered_(delivered) {}

  bool on_head(const net::HttpResponse& head) override {
    *delivered_ = true;
    return inner_.on_head(head);
  }
  bool on_chunk(core::Chunk chunk) override {
    return inner_.on_chunk(std::move(chunk));
  }

private:
  net::ChunkSink& inner_;
  bool* delivered_;
};

}  // namespace

SocketNet::SocketNet(Options options)
    : options_(options),
      retry_policy_(options.retry),
      retry_budget_(options.budget) {}

void SocketNet::register_endpoint(const net::Address& address, std::string host,
                                  std::uint16_t port) {
  const core::sync::MutexLock lock(mutex_);
  Endpoint& endpoint = endpoints_[address];
  endpoint.host = std::move(host);
  endpoint.port = port;
  endpoint.idle.clear();
  endpoint.async_idle.clear();
}

void SocketNet::register_endpoint(const ServerGroup& server) {
  register_endpoint(server.address(), "127.0.0.1", server.port());
}

void SocketNet::unregister_endpoint(const net::Address& address) {
  const core::sync::MutexLock lock(mutex_);
  endpoints_.erase(address);
  breakers_.erase(address);
}

void SocketNet::join_group(const net::Address& address, const std::string& group) {
  const core::sync::MutexLock lock(mutex_);
  auto& members = groups_[group];
  if (std::find(members.begin(), members.end(), address) == members.end()) {
    members.push_back(address);
  }
}

std::unique_ptr<HttpClient> SocketNet::borrow(const net::Address& to) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return nullptr;
  Endpoint& endpoint = it->second;
  while (!endpoint.idle.empty()) {
    auto client = std::move(endpoint.idle.back());
    endpoint.idle.pop_back();
    // The peer may have closed (or written into) this connection while it
    // sat pooled — reusing it would either fail the round trip or, worse,
    // decode stale buffered bytes as the next response. Probe and discard.
    // idicn-analysis: allow(lock-across-io): MSG_PEEK|MSG_DONTWAIT probe never waits
    if (client->stale_connection()) {
      ++stats_.stale_pool_drops;
      continue;
    }
    return client;
  }
  ++stats_.connections_opened;
  return std::make_unique<HttpClient>(endpoint.host, endpoint.port,
                                      options_.client);
}

void SocketNet::give_back(const net::Address& to,
                          std::unique_ptr<HttpClient> client) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  // Drop the connection when the endpoint moved while we were using it.
  if (it == endpoints_.end() || it->second.port != client->port()) return;
  it->second.idle.push_back(std::move(client));
}

std::shared_ptr<CircuitBreaker> SocketNet::breaker_for(const net::Address& to) {
  const core::sync::MutexLock lock(mutex_);
  auto& breaker = breakers_[to];
  if (breaker == nullptr) {
    breaker = std::make_shared<CircuitBreaker>(options_.breaker);
  }
  return breaker;
}

std::optional<net::HttpResponse> SocketNet::attempt(
    const net::Address& to, const net::HttpRequest& request,
    std::string* error) {
  auto client = borrow(to);
  if (client == nullptr) {
    *error = "unknown destination";
    return std::nullopt;
  }
  auto response = client->request(request, error);
  if (!response) return std::nullopt;
  give_back(to, std::move(client));
  return response;
}

std::optional<net::HttpResponse> SocketNet::attempt_streaming(
    const net::Address& to, const net::HttpRequest& request,
    net::ChunkSink& sink, bool* delivered, std::string* error) {
  auto client = borrow(to);
  if (client == nullptr) {
    *error = "unknown destination";
    return std::nullopt;
  }
  DeliveryTrackingSink tracking(sink, delivered);
  auto response = client->request_streaming(request, tracking, error);
  if (!response) return std::nullopt;
  give_back(to, std::move(client));
  return response;
}

net::HttpResponse SocketNet::send_streaming(const net::Address& from,
                                            const net::Address& to,
                                            const net::HttpRequest& request,
                                            net::ChunkSink& sink) {
  (void)from;
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.requests_sent;
    if (endpoints_.find(to) == endpoints_.end()) {
      ++stats_.send_failures;
      return net::make_response(504, "unknown destination: " + to);
    }
  }

  std::shared_ptr<CircuitBreaker> breaker;
  if (options_.enable_breakers) {
    breaker = breaker_for(to);
    if (!breaker->allow(now_ms())) {
      const std::uint64_t wait_ms = breaker->retry_after_ms(now_ms());
      {
        const core::sync::MutexLock lock(mutex_);
        ++stats_.breaker_fast_fails;
        ++stats_.send_failures;
      }
      auto response =
          net::make_response(503, "circuit open for " + to + "; fast-fail");
      response.headers.set("Retry-After", retry_after_seconds(wait_ms));
      return response;
    }
  }

  retry_budget_.on_attempt();
  const std::uint64_t started_ms = now_ms();
  const int max_attempts =
      options_.enable_retries ? std::max(1, options_.retry.max_attempts) : 1;
  bool delivered = false;
  std::string error;
  for (int attempt = 1;; ++attempt) {
    auto response =
        attempt_streaming(to, request, sink, &delivered, &error);
    if (response) {
      if (breaker != nullptr) breaker->record_success(now_ms());
      return *response;
    }
    if (breaker != nullptr) breaker->record_failure(now_ms());
    // Once the sink has seen the head, a retry would deliver the body
    // prefix twice — the failure must surface to the caller instead.
    if (delivered) break;
    if (attempt >= max_attempts) break;
    if (breaker != nullptr &&
        breaker->state(now_ms()) == CircuitBreaker::State::Open) {
      break;
    }
    const std::uint64_t delay_ms = retry_policy_.backoff_delay_ms(attempt);
    if (!retry_policy_.within_deadline(now_ms() - started_ms, delay_ms)) break;
    if (!retry_budget_.try_spend()) break;
    {
      const core::sync::MutexLock lock(mutex_);
      ++stats_.retries;
    }
    RetryPolicy::sleep(delay_ms);
  }
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.send_failures;
  }
  return net::make_response(504, "upstream " + to + " unreachable: " + error);
}

net::HttpResponse SocketNet::send(const net::Address& from, const net::Address& to,
                                  const net::HttpRequest& request) {
  (void)from;  // the TCP peer address is what the receiving server reports
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.requests_sent;
    // Unknown destinations are a wiring error, not upstream ill health:
    // fail immediately, no breaker accounting, no retries.
    if (endpoints_.find(to) == endpoints_.end()) {
      ++stats_.send_failures;
      return net::make_response(504, "unknown destination: " + to);
    }
  }

  std::shared_ptr<CircuitBreaker> breaker;
  if (options_.enable_breakers) {
    breaker = breaker_for(to);
    if (!breaker->allow(now_ms())) {
      const std::uint64_t wait_ms = breaker->retry_after_ms(now_ms());
      {
        const core::sync::MutexLock lock(mutex_);
        ++stats_.breaker_fast_fails;
        ++stats_.send_failures;
      }
      auto response =
          net::make_response(503, "circuit open for " + to + "; fast-fail");
      response.headers.set("Retry-After", retry_after_seconds(wait_ms));
      return response;
    }
  }

  retry_budget_.on_attempt();
  const std::uint64_t started_ms = now_ms();
  const int max_attempts =
      options_.enable_retries ? std::max(1, options_.retry.max_attempts) : 1;
  std::string error;
  for (int attempt = 1;; ++attempt) {
    auto response = this->attempt(to, request, &error);
    if (response) {
      if (breaker != nullptr) breaker->record_success(now_ms());
      return *response;
    }
    if (breaker != nullptr) breaker->record_failure(now_ms());
    if (attempt >= max_attempts) break;
    // A breaker that opened on this failure wins over further retries —
    // the destination is down, stop dialing. (Observer only: allow() could
    // reserve a half-open probe slot we might never report an outcome for.)
    if (breaker != nullptr &&
        breaker->state(now_ms()) == CircuitBreaker::State::Open) {
      break;
    }
    const std::uint64_t delay_ms = retry_policy_.backoff_delay_ms(attempt);
    if (!retry_policy_.within_deadline(now_ms() - started_ms, delay_ms)) break;
    if (!retry_budget_.try_spend()) break;
    {
      const core::sync::MutexLock lock(mutex_);
      ++stats_.retries;
    }
    RetryPolicy::sleep(delay_ms);
  }
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.send_failures;
  }
  return net::make_response(504, "upstream " + to + " unreachable: " + error);
}

std::vector<net::HttpResponse> SocketNet::multicast(const net::Address& from,
                                                    const std::string& group,
                                                    const net::HttpRequest& request) {
  std::vector<net::Address> members;
  {
    const core::sync::MutexLock lock(mutex_);
    const auto it = groups_.find(group);
    if (it != groups_.end()) members = it->second;
  }
  std::vector<net::HttpResponse> responses;
  for (const auto& member : members) {
    if (member == from) continue;
    responses.push_back(send(from, member, request));
  }
  return responses;
}

std::uint64_t SocketNet::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- loop-native async send path -------------------------------------------

/// Everything one logical async send carries across attempts. The state is
/// shared between the issued op's completion, the tracking sink, and the
/// backoff timer; it dies when the last of them releases it (always after
/// `done` ran).
struct SocketNet::AsyncSendState {
  SocketNet* net = nullptr;
  net::Address to;
  net::HttpRequest request;
  std::shared_ptr<net::ChunkSink> sink;  ///< null ⇒ buffered send
  net::Executor* exec = nullptr;
  net::SendCallback done;
  std::shared_ptr<CircuitBreaker> breaker;
  std::uint64_t started_ms = 0;
  int max_attempts = 1;
  int attempt = 1;
  bool delivered = false;  ///< the caller's sink saw a head — no more retries
  std::unique_ptr<AsyncHttpClient> client;  ///< held across one attempt
};

namespace {

/// Async twin of DeliveryTrackingSink: flips the state's delivered flag on
/// the head so the retry ladder stops replaying into the caller's sink.
class AsyncTrackingSink final : public net::ChunkSink {
public:
  explicit AsyncTrackingSink(std::shared_ptr<SocketNet::AsyncSendState> state)
      : state_(std::move(state)) {}

  bool on_head(const net::HttpResponse& head) override {
    state_->delivered = true;
    return state_->sink->on_head(head);
  }
  bool on_chunk(core::Chunk chunk) override {
    return state_->sink->on_chunk(std::move(chunk));
  }

private:
  std::shared_ptr<SocketNet::AsyncSendState> state_;
};

}  // namespace

void SocketNet::send_async(const net::Address& from, const net::Address& to,
                           const net::HttpRequest& request, net::Executor* exec,
                           net::SendCallback done) {
  (void)from;
  if (exec == nullptr) {
    // idicn-analysis: allow(*): sync fallback used only off-loop (no executor supplied)
    done(send(from, to, request));
    return;
  }
  auto state = std::make_shared<AsyncSendState>();
  state->net = this;
  state->to = to;
  state->request = request;
  state->exec = exec;
  state->done = std::move(done);
  start_async_send(std::move(state));
}

void SocketNet::send_streaming_async(const net::Address& from,
                                     const net::Address& to,
                                     const net::HttpRequest& request,
                                     std::shared_ptr<net::ChunkSink> sink,
                                     net::Executor* exec,
                                     net::SendCallback done) {
  (void)from;
  if (exec == nullptr) {
    // idicn-analysis: allow(*): sync fallback used only off-loop (no executor supplied)
    done(send_streaming(from, to, request, *sink));
    return;
  }
  auto state = std::make_shared<AsyncSendState>();
  state->net = this;
  state->to = to;
  state->request = request;
  state->sink = std::move(sink);
  state->exec = exec;
  state->done = std::move(done);
  start_async_send(std::move(state));
}

void SocketNet::start_async_send(std::shared_ptr<AsyncSendState> state) {
  bool unknown = false;
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.requests_sent;
    // Unknown destinations are a wiring error, not upstream ill health:
    // fail immediately, no breaker accounting, no retries.
    if (endpoints_.find(state->to) == endpoints_.end()) {
      ++stats_.send_failures;
      unknown = true;
    }
  }
  if (unknown) {
    state->done(net::make_response(504, "unknown destination: " + state->to));
    return;
  }

  if (options_.enable_breakers) {
    state->breaker = breaker_for(state->to);
    if (!state->breaker->allow(now_ms())) {
      const std::uint64_t wait_ms = state->breaker->retry_after_ms(now_ms());
      {
        const core::sync::MutexLock lock(mutex_);
        ++stats_.breaker_fast_fails;
        ++stats_.send_failures;
      }
      auto response = net::make_response(
          503, "circuit open for " + state->to + "; fast-fail");
      response.headers.set("Retry-After", retry_after_seconds(wait_ms));
      state->done(std::move(response));
      return;
    }
  }

  retry_budget_.on_attempt();
  state->started_ms = now_ms();
  state->max_attempts =
      options_.enable_retries ? std::max(1, options_.retry.max_attempts) : 1;
  async_attempt(std::move(state));
}

void SocketNet::async_attempt(std::shared_ptr<AsyncSendState> state) {
  state->client = borrow_async(state->to, state->exec);
  if (state->client == nullptr) {
    finish_async_attempt(state, std::nullopt, "unknown destination");
    return;
  }
  std::shared_ptr<net::ChunkSink> attempt_sink;
  if (state->sink != nullptr) {
    attempt_sink = std::make_shared<AsyncTrackingSink>(state);
  }
  AsyncHttpClient* client = state->client.get();
  client->assert_owned();
  client->issue(state->request, std::move(attempt_sink),
                [state](std::optional<net::HttpResponse> head,
                        std::string error) {
                  state->net->finish_async_attempt(state, std::move(head),
                                                   std::move(error));
                });
}

void SocketNet::finish_async_attempt(std::shared_ptr<AsyncSendState> state,
                                     std::optional<net::HttpResponse> head,
                                     std::string error) {
  if (head) {
    // A 503 with a Retry-After hint is a breaker-fronted peer (or an
    // over-capacity server) saying exactly when to come back: replay the
    // attempt no earlier than the hint instead of surfacing the refusal.
    // Buffered sends only — a streaming sink already consumed this head —
    // and still bounded by attempts, deadline, and the retry budget. The
    // exchange itself was clean HTTP, so the connection pools and the
    // local breaker records nothing either way.
    if (head->status == 503 && !state->delivered &&
        state->attempt < state->max_attempts) {
      const auto hint = head->headers.get_view("Retry-After");
      const auto hint_ms =
          hint ? parse_retry_after_ms(*hint) : std::nullopt;
      if (hint_ms) {
        const std::uint64_t delay_ms = std::max(
            *hint_ms, retry_policy_.backoff_delay_ms(state->attempt));
        if (retry_policy_.within_deadline(now_ms() - state->started_ms,
                                          delay_ms) &&
            retry_budget_.try_spend()) {
          give_back_async(state->to, state->exec, std::move(state->client));
          {
            const core::sync::MutexLock lock(mutex_);
            ++stats_.retries;
            ++stats_.retry_after_honored;
          }
          RetryPolicy::schedule_backoff(*state->exec, delay_ms, [state]() {
            ++state->attempt;
            state->net->async_attempt(state);
          });
          return;
        }
      }
    }
    give_back_async(state->to, state->exec, std::move(state->client));
    if (state->breaker != nullptr) state->breaker->record_success(now_ms());
    state->done(std::move(*head));
    return;
  }
  state->client.reset();  // a failed connection is never pooled
  if (state->breaker != nullptr) state->breaker->record_failure(now_ms());

  // The same ladder as the blocking envelope, in the same order.
  bool give_up = false;
  // Once the sink has seen the head, a retry would deliver the body prefix
  // twice — the failure must surface to the caller instead.
  if (state->delivered) give_up = true;
  if (!give_up && state->attempt >= state->max_attempts) give_up = true;
  if (!give_up && state->breaker != nullptr &&
      state->breaker->state(now_ms()) == CircuitBreaker::State::Open) {
    give_up = true;
  }
  std::uint64_t delay_ms = 0;
  if (!give_up) {
    delay_ms = retry_policy_.backoff_delay_ms(state->attempt);
    if (!retry_policy_.within_deadline(now_ms() - state->started_ms,
                                       delay_ms)) {
      give_up = true;
    }
  }
  if (!give_up && !retry_budget_.try_spend()) give_up = true;
  if (give_up) {
    {
      const core::sync::MutexLock lock(mutex_);
      ++stats_.send_failures;
    }
    state->done(net::make_response(
        504, "upstream " + state->to + " unreachable: " + error));
    return;
  }
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.retries;
  }
  net::Executor* exec = state->exec;
  RetryPolicy::schedule_backoff(*exec, delay_ms, [state]() {
    ++state->attempt;
    state->net->async_attempt(state);
  });
}

std::unique_ptr<AsyncHttpClient> SocketNet::borrow_async(const net::Address& to,
                                                         net::Executor* exec) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return nullptr;
  Endpoint& endpoint = it->second;
  auto& pool = endpoint.async_idle[exec];
  while (!pool.empty()) {
    auto client = std::move(pool.back());
    pool.pop_back();
    // Same borrow-time staleness check as the blocking pool: a pooled
    // connection the peer closed (or wrote into) while idle must be
    // discarded, not reused.
    // idicn-analysis: allow(lock-across-io): MSG_PEEK|MSG_DONTWAIT probe never waits
    if (client->stale_connection()) {
      ++stats_.stale_pool_drops;
      continue;
    }
    return client;
  }
  ++stats_.connections_opened;
  AsyncHttpClient::Options client_options;
  client_options.connect_timeout_ms = options_.client.connect_timeout_ms;
  client_options.io_timeout_ms = options_.client.io_timeout_ms;
  return std::make_unique<AsyncHttpClient>(exec, endpoint.host, endpoint.port,
                                           client_options);
}

void SocketNet::give_back_async(const net::Address& to, net::Executor* exec,
                                std::unique_ptr<AsyncHttpClient> client) {
  if (client == nullptr || !client->idle()) return;
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  // Drop the connection when the endpoint moved while we were using it.
  if (it == endpoints_.end() || it->second.port != client->port()) return;
  it->second.async_idle[exec].push_back(std::move(client));
}

SocketNet::Stats SocketNet::stats() const {
  const core::sync::MutexLock lock(mutex_);
  return stats_;
}

CircuitBreaker::State SocketNet::breaker_state(const net::Address& to) const {
  std::shared_ptr<CircuitBreaker> breaker;
  {
    const core::sync::MutexLock lock(mutex_);
    const auto it = breakers_.find(to);
    if (it == breakers_.end()) return CircuitBreaker::State::Closed;
    breaker = it->second;
  }
  return breaker->state(now_ms());
}

}  // namespace idicn::runtime
