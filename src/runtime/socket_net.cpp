#include "runtime/socket_net.hpp"

#include <algorithm>
#include <chrono>

#include "runtime/server_group.hpp"

namespace idicn::runtime {

SocketNet::SocketNet(HttpClient::Options client_options)
    : client_options_(client_options) {}

void SocketNet::register_endpoint(const net::Address& address, std::string host,
                                  std::uint16_t port) {
  const core::sync::MutexLock lock(mutex_);
  Endpoint& endpoint = endpoints_[address];
  endpoint.host = std::move(host);
  endpoint.port = port;
  endpoint.idle.clear();
}

void SocketNet::register_endpoint(const ServerGroup& server) {
  register_endpoint(server.address(), "127.0.0.1", server.port());
}

void SocketNet::unregister_endpoint(const net::Address& address) {
  const core::sync::MutexLock lock(mutex_);
  endpoints_.erase(address);
}

void SocketNet::join_group(const net::Address& address, const std::string& group) {
  const core::sync::MutexLock lock(mutex_);
  auto& members = groups_[group];
  if (std::find(members.begin(), members.end(), address) == members.end()) {
    members.push_back(address);
  }
}

std::unique_ptr<HttpClient> SocketNet::borrow(const net::Address& to) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return nullptr;
  Endpoint& endpoint = it->second;
  if (!endpoint.idle.empty()) {
    auto client = std::move(endpoint.idle.back());
    endpoint.idle.pop_back();
    return client;
  }
  ++stats_.connections_opened;
  return std::make_unique<HttpClient>(endpoint.host, endpoint.port,
                                      client_options_);
}

void SocketNet::give_back(const net::Address& to,
                          std::unique_ptr<HttpClient> client) {
  const core::sync::MutexLock lock(mutex_);
  const auto it = endpoints_.find(to);
  // Drop the connection when the endpoint moved while we were using it.
  if (it == endpoints_.end() || it->second.port != client->port()) return;
  it->second.idle.push_back(std::move(client));
}

net::HttpResponse SocketNet::send(const net::Address& from, const net::Address& to,
                                  const net::HttpRequest& request) {
  (void)from;  // the TCP peer address is what the receiving server reports
  {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.requests_sent;
  }
  auto client = borrow(to);
  if (client == nullptr) {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.send_failures;
    return net::make_response(504, "unknown destination: " + to);
  }
  std::string error;
  auto response = client->request(request, &error);
  if (!response) {
    const core::sync::MutexLock lock(mutex_);
    ++stats_.send_failures;
    return net::make_response(504, "upstream " + to + " unreachable: " + error);
  }
  give_back(to, std::move(client));
  return *response;
}

std::vector<net::HttpResponse> SocketNet::multicast(const net::Address& from,
                                                    const std::string& group,
                                                    const net::HttpRequest& request) {
  std::vector<net::Address> members;
  {
    const core::sync::MutexLock lock(mutex_);
    const auto it = groups_.find(group);
    if (it != groups_.end()) members = it->second;
  }
  std::vector<net::HttpResponse> responses;
  for (const auto& member : members) {
    if (member == from) continue;
    responses.push_back(send(from, member, request));
  }
  return responses;
}

std::uint64_t SocketNet::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SocketNet::Stats SocketNet::stats() const {
  const core::sync::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace idicn::runtime
