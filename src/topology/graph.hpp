// Weighted undirected graph used for PoP-level (core) ISP topologies.
//
// The paper's simulations (§4.1) run over PoP-level maps from educational
// backbones and Rocketfuel, where each PoP node is annotated with the
// population of its metro region. This module provides the graph container;
// shortest_path.hpp provides the routing computations.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace idicn::topology {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// One PoP / router in a core topology.
struct Node {
  std::string name;        ///< human-readable PoP name (e.g. metro city)
  double population = 1.0; ///< metro population weight (requests & origins ∝ this)
};

/// An undirected link with a routing weight (hop metric by default).
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double weight = 1.0;
};

/// Adjacency entry: neighbor plus the link that reaches it.
struct Adjacency {
  NodeId neighbor = kInvalidNode;
  LinkId link = kInvalidLink;
  double weight = 1.0;
};

/// A simple undirected weighted graph with named, population-annotated nodes.
///
/// Invariants: no self loops; node ids are dense [0, node_count());
/// link ids are dense [0, link_count()).
class Graph {
public:
  Graph() = default;

  /// Add a node and return its id.
  NodeId add_node(std::string name, double population = 1.0);

  /// Add an undirected link between existing nodes. Throws std::out_of_range
  /// for unknown nodes and std::invalid_argument for self loops or
  /// non-positive weights.
  LinkId add_link(NodeId a, NodeId b, double weight = 1.0);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }

  [[nodiscard]] const std::vector<Adjacency>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }

  /// Find the link joining a and b, or kInvalidLink when absent.
  [[nodiscard]] LinkId link_between(NodeId a, NodeId b) const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// Total population across all nodes.
  [[nodiscard]] double total_population() const noexcept;

private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace idicn::topology
