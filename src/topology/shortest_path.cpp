#include "topology/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace idicn::topology {

ShortestPathTree dijkstra(const Graph& graph, NodeId source) {
  const std::size_t n = graph.node_count();
  ShortestPathTree tree;
  tree.distance.assign(n, kUnreachable);
  tree.predecessor.assign(n, kInvalidNode);

  // (distance, node); lower node id wins ties for determinism.
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.distance[source] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > tree.distance[u]) continue;  // stale entry
    for (const Adjacency& adj : graph.neighbors(u)) {
      const double candidate = dist + adj.weight;
      // Strictly-better, or equal-cost with a lower-id predecessor: the
      // second clause pins a unique deterministic shortest-path tree.
      if (candidate < tree.distance[adj.neighbor] ||
          (candidate == tree.distance[adj.neighbor] &&
           tree.predecessor[adj.neighbor] != kInvalidNode &&
           u < tree.predecessor[adj.neighbor])) {
        tree.distance[adj.neighbor] = candidate;
        tree.predecessor[adj.neighbor] = u;
        heap.emplace(candidate, adj.neighbor);
      }
    }
  }
  return tree;
}

AllPairsShortestPaths::AllPairsShortestPaths(const Graph& graph) {
  const std::size_t n = graph.node_count();
  distance_.resize(n);
  hops_.resize(n);
  predecessor_.resize(n);
  for (NodeId src = 0; src < n; ++src) {
    ShortestPathTree tree = dijkstra(graph, src);
    distance_[src] = std::move(tree.distance);
    predecessor_[src] = std::move(tree.predecessor);
    hops_[src].assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (distance_[src][v] == kUnreachable) continue;
      unsigned hops = 0;
      NodeId cursor = v;
      while (cursor != src) {
        cursor = predecessor_[src][cursor];
        ++hops;
      }
      hops_[src][v] = hops;
    }
  }
}

std::vector<NodeId> AllPairsShortestPaths::path(NodeId from, NodeId to) const {
  if (distance_[from][to] == kUnreachable) return {};
  std::vector<NodeId> nodes;
  NodeId cursor = to;
  while (cursor != from) {
    nodes.push_back(cursor);
    cursor = predecessor_[from][cursor];
  }
  nodes.push_back(from);
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace idicn::topology
