// Topology serialization.
//
// A small line-oriented text format so users can (a) inspect/export the
// embedded and generated maps and (b) plug in their own PoP-level
// topologies — e.g. ones derived from the actual Rocketfuel data, which we
// cannot redistribute (DESIGN.md §5):
//
//     # comments and blank lines ignored
//     node <name> <population>
//     link <name-a> <name-b> [weight]
//
// Node names may not contain whitespace; links reference previously
// declared nodes by name; weight defaults to 1.
#pragma once

#include <iosfwd>

#include "topology/graph.hpp"

namespace idicn::topology {

/// Serialize `graph` in the format above.
void write_topology(std::ostream& out, const Graph& graph);

/// Parse the format above; throws std::runtime_error with a line number on
/// malformed input (unknown node, duplicate name, bad number, …).
[[nodiscard]] Graph read_topology(std::istream& in);

}  // namespace idicn::topology
