#include "topology/access_tree.hpp"

#include <algorithm>

namespace idicn::topology {

AccessTreeShape::AccessTreeShape(unsigned arity, unsigned depth)
    : arity_(arity), depth_(depth) {
  if (arity < 1) throw std::invalid_argument("AccessTreeShape: arity must be >= 1");
  level_start_.resize(depth + 2);
  TreeIndex start = 0;
  TreeIndex width = 1;
  for (unsigned level = 0; level <= depth; ++level) {
    level_start_[level] = start;
    start += width;
    // Guard against overflow for absurd shapes.
    if (width > (1u << 26)) throw std::invalid_argument("AccessTreeShape: tree too large");
    width *= arity;
  }
  level_start_[depth + 1] = start;
  node_count_ = start;
  leaf_count_ = node_count_ - level_start_[depth];
}

AccessTreeShape AccessTreeShape::with_leaf_count(unsigned arity, unsigned leaves) {
  unsigned depth = 0;
  std::uint64_t width = 1;
  while (width < leaves) {
    width *= arity;
    ++depth;
  }
  if (width != leaves) {
    throw std::invalid_argument(
        "AccessTreeShape::with_leaf_count: leaves must be a power of arity");
  }
  return AccessTreeShape(arity, depth);
}

unsigned AccessTreeShape::level_of(TreeIndex node) const {
  if (node >= node_count_) throw std::out_of_range("AccessTreeShape::level_of");
  // depth_ is tiny (<= ~26); linear scan beats binary search in practice.
  for (unsigned level = 0; level <= depth_; ++level) {
    if (node < level_start_[level + 1]) return level;
  }
  return depth_;  // unreachable
}

TreeIndex AccessTreeShape::leaf(TreeIndex j) const {
  if (j >= leaf_count_) throw std::out_of_range("AccessTreeShape::leaf");
  return level_start_[depth_] + j;
}

TreeIndex AccessTreeShape::parent(TreeIndex node) const {
  if (node == 0) throw std::invalid_argument("AccessTreeShape::parent of root");
  if (node >= node_count_) throw std::out_of_range("AccessTreeShape::parent");
  return (node - 1) / arity_;
}

TreeIndex AccessTreeShape::first_child(TreeIndex node) const {
  if (is_leaf(node)) throw std::invalid_argument("AccessTreeShape::first_child of leaf");
  return node * arity_ + 1;
}

std::vector<TreeIndex> AccessTreeShape::siblings(TreeIndex node) const {
  if (node == 0) return {};
  const TreeIndex p = parent(node);
  const TreeIndex first = p * arity_ + 1;
  std::vector<TreeIndex> out;
  out.reserve(arity_ - 1);
  for (TreeIndex c = first; c < first + arity_; ++c) {
    if (c != node) out.push_back(c);
  }
  return out;
}

TreeIndex AccessTreeShape::lowest_common_ancestor(TreeIndex a, TreeIndex b) const {
  unsigned la = level_of(a);
  unsigned lb = level_of(b);
  while (la > lb) {
    a = parent(a);
    --la;
  }
  while (lb > la) {
    b = parent(b);
    --lb;
  }
  while (a != b) {
    a = parent(a);
    b = parent(b);
  }
  return a;
}

unsigned AccessTreeShape::hop_distance(TreeIndex a, TreeIndex b) const {
  const TreeIndex lca = lowest_common_ancestor(a, b);
  return (level_of(a) - level_of(lca)) + (level_of(b) - level_of(lca));
}

std::vector<TreeIndex> AccessTreeShape::path_to_root(TreeIndex node) const {
  std::vector<TreeIndex> out;
  out.reserve(depth_ + 1);
  out.push_back(node);
  while (node != 0) {
    node = parent(node);
    out.push_back(node);
  }
  return out;
}

std::vector<TreeIndex> AccessTreeShape::path(TreeIndex a, TreeIndex b) const {
  const TreeIndex lca = lowest_common_ancestor(a, b);
  std::vector<TreeIndex> up;
  TreeIndex cursor = a;
  while (cursor != lca) {
    up.push_back(cursor);
    cursor = parent(cursor);
  }
  up.push_back(lca);

  std::vector<TreeIndex> down;
  cursor = b;
  while (cursor != lca) {
    down.push_back(cursor);
    cursor = parent(cursor);
  }
  std::reverse(down.begin(), down.end());
  up.insert(up.end(), down.begin(), down.end());
  return up;
}

}  // namespace idicn::topology
