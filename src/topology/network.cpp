#include "topology/network.hpp"

#include <stdexcept>

namespace idicn::topology {

LatencyModel LatencyModel::uniform(unsigned depth) {
  LatencyModel m;
  m.tree_edge_cost.assign(depth, 1.0);
  m.core_hop_cost = 1.0;
  return m;
}

LatencyModel LatencyModel::arithmetic(unsigned depth) {
  LatencyModel m;
  m.tree_edge_cost.resize(depth);
  // Leaf uplink (level depth → depth−1) costs 1; costs grow by 1 per level
  // toward the core.
  for (unsigned l = 1; l <= depth; ++l) {
    m.tree_edge_cost[l - 1] = static_cast<double>(depth - l + 1);
  }
  m.core_hop_cost = static_cast<double>(depth + 1);
  return m;
}

LatencyModel LatencyModel::core_weighted(unsigned depth, double factor) {
  LatencyModel m;
  m.tree_edge_cost.assign(depth, 1.0);
  m.core_hop_cost = factor;
  return m;
}

HierarchicalNetwork::HierarchicalNetwork(Graph core, AccessTreeShape tree,
                                         LatencyModel latency)
    : core_(std::move(core)),
      tree_(tree),
      latency_(std::move(latency)),
      core_paths_(core_) {
  if (latency_.tree_edge_cost.empty()) {
    latency_ = LatencyModel::uniform(tree_.depth());
  }
  if (latency_.tree_edge_cost.size() != tree_.depth()) {
    throw std::invalid_argument(
        "HierarchicalNetwork: latency model does not match tree depth");
  }
  if (!core_.connected()) {
    throw std::invalid_argument("HierarchicalNetwork: core graph must be connected");
  }
  up_cost_.assign(tree_.depth() + 1, 0.0);
  for (unsigned l = 1; l <= tree_.depth(); ++l) {
    up_cost_[l] = up_cost_[l - 1] + latency_.tree_edge_cost[l - 1];
  }
  const PopId pops = pop_count();
  core_cost_.resize(static_cast<std::size_t>(pops) * pops);
  for (PopId a = 0; a < pops; ++a) {
    for (PopId b = 0; b < pops; ++b) {
      core_cost_[static_cast<std::size_t>(a) * pops + b] =
          static_cast<double>(core_paths_.hop_count(a, b)) * latency_.core_hop_cost;
    }
  }
}

double HierarchicalNetwork::distance(GlobalNodeId from, GlobalNodeId to) const {
  const PopId pa = pop_of(from);
  const PopId pb = pop_of(to);
  const TreeIndex ta = tree_index_of(from);
  const TreeIndex tb = tree_index_of(to);
  if (pa == pb) {
    const TreeIndex lca = tree_.lowest_common_ancestor(ta, tb);
    return up_cost_[tree_.level_of(ta)] + up_cost_[tree_.level_of(tb)] -
           2.0 * up_cost_[tree_.level_of(lca)];
  }
  return up_cost_[tree_.level_of(ta)] + core_cost(pa, pb) + up_cost_[tree_.level_of(tb)];
}

unsigned HierarchicalNetwork::hop_count(GlobalNodeId from, GlobalNodeId to) const {
  const PopId pa = pop_of(from);
  const PopId pb = pop_of(to);
  const TreeIndex ta = tree_index_of(from);
  const TreeIndex tb = tree_index_of(to);
  if (pa == pb) return tree_.hop_distance(ta, tb);
  return tree_.level_of(ta) + core_paths_.hop_count(pa, pb) + tree_.level_of(tb);
}

std::vector<GlobalNodeId> HierarchicalNetwork::path(GlobalNodeId from,
                                                    GlobalNodeId to) const {
  const PopId pa = pop_of(from);
  const PopId pb = pop_of(to);
  const TreeIndex ta = tree_index_of(from);
  const TreeIndex tb = tree_index_of(to);

  std::vector<GlobalNodeId> out;
  if (pa == pb) {
    for (const TreeIndex t : tree_.path(ta, tb)) {
      out.push_back(global_node(pa, t));
    }
    return out;
  }

  // Up the source tree (including the source pop root)…
  for (const TreeIndex t : tree_.path_to_root(ta)) {
    out.push_back(global_node(pa, t));
  }
  // …across the core (skipping the first pop, already emitted)…
  const std::vector<NodeId> core_nodes = core_paths_.path(pa, pb);
  for (std::size_t i = 1; i < core_nodes.size(); ++i) {
    out.push_back(pop_root(core_nodes[i]));
  }
  // …down the destination tree (skipping its root, already emitted).
  std::vector<TreeIndex> down = tree_.path_to_root(tb);  // tb → … → root
  for (std::size_t i = down.size() - 1; i-- > 0;) {
    out.push_back(global_node(pb, down[i]));
  }
  return out;
}

GlobalLinkId HierarchicalNetwork::link_between(GlobalNodeId a, GlobalNodeId b) const {
  const PopId pa = pop_of(a);
  const PopId pb = pop_of(b);
  const TreeIndex ta = tree_index_of(a);
  const TreeIndex tb = tree_index_of(b);

  if (pa == pb) {
    // Must be a parent-child pair within the tree.
    TreeIndex child;
    if (ta != 0 && tree_.parent(ta) == tb) {
      child = ta;
    } else if (tb != 0 && tree_.parent(tb) == ta) {
      child = tb;
    } else {
      throw std::invalid_argument("link_between: nodes not adjacent (same pop)");
    }
    return static_cast<GlobalLinkId>(core_.link_count()) +
           pa * (tree_.node_count() - 1) + (child - 1);
  }

  if (ta != 0 || tb != 0) {
    throw std::invalid_argument("link_between: cross-pop link must join pop roots");
  }
  const LinkId core_link = core_.link_between(pa, pb);
  if (core_link == kInvalidLink) {
    throw std::invalid_argument("link_between: pops not adjacent in core");
  }
  return core_link;
}

}  // namespace idicn::topology
