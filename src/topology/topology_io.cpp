#include "topology/topology_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace idicn::topology {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("topology line " + std::to_string(line) + ": " + what);
}

}  // namespace

void write_topology(std::ostream& out, const Graph& graph) {
  out << "# idicn topology: " << graph.node_count() << " nodes, "
      << graph.link_count() << " links\n";
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    out << "node " << graph.node(n).name << ' ' << graph.node(n).population << '\n';
  }
  for (LinkId l = 0; l < graph.link_count(); ++l) {
    const Link& link = graph.link(l);
    out << "link " << graph.node(link.a).name << ' ' << graph.node(link.b).name << ' '
        << link.weight << '\n';
  }
}

Graph read_topology(std::istream& in) {
  Graph graph;
  std::map<std::string, NodeId> by_name;
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword) || keyword[0] == '#') continue;

    if (keyword == "node") {
      std::string name;
      double population = 0.0;
      if (!(words >> name >> population)) fail(line_number, "expected: node <name> <population>");
      if (by_name.count(name) != 0) fail(line_number, "duplicate node: " + name);
      try {
        by_name[name] = graph.add_node(name, population);
      } catch (const std::exception& e) {
        fail(line_number, e.what());
      }
    } else if (keyword == "link") {
      std::string a, b;
      if (!(words >> a >> b)) fail(line_number, "expected: link <a> <b> [weight]");
      double weight = 1.0;
      words >> weight;  // optional
      const auto ita = by_name.find(a);
      const auto itb = by_name.find(b);
      if (ita == by_name.end()) fail(line_number, "unknown node: " + a);
      if (itb == by_name.end()) fail(line_number, "unknown node: " + b);
      try {
        graph.add_link(ita->second, itb->second, weight);
      } catch (const std::exception& e) {
        fail(line_number, e.what());
      }
    } else {
      fail(line_number, "unknown keyword: " + keyword);
    }
  }
  return graph;
}

}  // namespace idicn::topology
