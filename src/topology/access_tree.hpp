// Complete k-ary access trees.
//
// Per §4.1 of the paper, each PoP of the core topology is the root of a
// complete k-ary access tree (baseline k=2, depth 5); requests enter at the
// leaves. Trees are complete and regular, so we never materialize them —
// all structure (parent/children, levels, distances, paths) is computed
// from indices in level order: root = 0, children of i = k·i+1 … k·i+k.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace idicn::topology {

using TreeIndex = std::uint32_t;

/// Shape of a complete k-ary tree of the given depth (root at level 0,
/// leaves at level `depth`; depth 0 is a single-node tree).
class AccessTreeShape {
public:
  AccessTreeShape(unsigned arity, unsigned depth);

  /// Construct the shape with `arity` whose leaf count equals `leaves`
  /// (used by the Table-4 arity sweep, which holds leaves fixed).
  /// Throws std::invalid_argument when `leaves` is not a power of `arity`.
  [[nodiscard]] static AccessTreeShape with_leaf_count(unsigned arity, unsigned leaves);

  [[nodiscard]] unsigned arity() const noexcept { return arity_; }
  [[nodiscard]] unsigned depth() const noexcept { return depth_; }

  [[nodiscard]] TreeIndex node_count() const noexcept { return node_count_; }
  [[nodiscard]] TreeIndex leaf_count() const noexcept { return leaf_count_; }

  /// First index of level `level` (levels are stored contiguously).
  [[nodiscard]] TreeIndex level_start(unsigned level) const { return level_start_.at(level); }

  /// Level of a node (0 = root).
  [[nodiscard]] unsigned level_of(TreeIndex node) const;

  [[nodiscard]] bool is_leaf(TreeIndex node) const { return node >= level_start_[depth_]; }

  /// The j-th leaf (j in [0, leaf_count())).
  [[nodiscard]] TreeIndex leaf(TreeIndex j) const;

  /// Parent of a non-root node. Throws std::invalid_argument for the root.
  [[nodiscard]] TreeIndex parent(TreeIndex node) const;

  /// First child of a non-leaf node; children are contiguous
  /// [first_child, first_child + arity).
  [[nodiscard]] TreeIndex first_child(TreeIndex node) const;

  /// Siblings of `node` (same parent, excluding `node` itself). Empty for
  /// the root.
  [[nodiscard]] std::vector<TreeIndex> siblings(TreeIndex node) const;

  /// Hop distance between two nodes of the same tree.
  [[nodiscard]] unsigned hop_distance(TreeIndex a, TreeIndex b) const;

  /// Lowest common ancestor.
  [[nodiscard]] TreeIndex lowest_common_ancestor(TreeIndex a, TreeIndex b) const;

  /// Node sequence from `node` up to (and including) the root.
  [[nodiscard]] std::vector<TreeIndex> path_to_root(TreeIndex node) const;

  /// Node sequence a → … → b through their LCA (inclusive of both ends).
  [[nodiscard]] std::vector<TreeIndex> path(TreeIndex a, TreeIndex b) const;

  bool operator==(const AccessTreeShape&) const = default;

private:
  unsigned arity_ = 2;
  unsigned depth_ = 5;
  TreeIndex node_count_ = 0;
  TreeIndex leaf_count_ = 0;
  std::vector<TreeIndex> level_start_;  // level_start_[depth_+1] == node_count_
};

}  // namespace idicn::topology
