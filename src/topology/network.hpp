// The composed simulation network: a PoP-level core graph where every PoP
// is the root of a complete k-ary access tree (§4.1 of the paper).
//
// Global node numbering: with T = tree node count, node (pop p, tree index
// t) has global id p·T + t. The PoP core router IS tree index 0 of its own
// tree — there is exactly one physical node per PoP root.
//
// Global link numbering: core links keep their core graph ids; the uplink
// of tree node t>0 in pop p gets id core_link_count + p·(T−1) + (t−1).
//
// Latency models (§5 "other parameters"): hop costs may vary by level
// (arithmetic progression toward the core) or core links may cost a
// multiple of tree links. All distance/path computations take the model
// into account; the baseline model is unit cost everywhere, in which case
// distances equal hop counts.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/access_tree.hpp"
#include "topology/graph.hpp"
#include "topology/shortest_path.hpp"

namespace idicn::topology {

using PopId = std::uint32_t;
using GlobalNodeId = std::uint32_t;
using GlobalLinkId = std::uint32_t;

/// Per-hop cost model over the composed network.
struct LatencyModel {
  /// tree_edge_cost[l] = cost of the edge between tree level l and level
  /// l−1, for l in [1, depth]. Must have exactly `depth` entries.
  std::vector<double> tree_edge_cost;
  /// Cost of one core (PoP-to-PoP) hop.
  double core_hop_cost = 1.0;

  /// Unit cost everywhere: distances equal hop counts (the baseline).
  [[nodiscard]] static LatencyModel uniform(unsigned depth);

  /// Arithmetic progression toward the core: the leaf uplink costs 1, the
  /// next level 2, …; a core hop costs depth+1. (§5 latency variation 1.)
  [[nodiscard]] static LatencyModel arithmetic(unsigned depth);

  /// Unit tree hops, core hops cost `factor`. (§5 latency variation 2.)
  [[nodiscard]] static LatencyModel core_weighted(unsigned depth, double factor);
};

/// The composed core + access-tree network.
class HierarchicalNetwork {
public:
  HierarchicalNetwork(Graph core, AccessTreeShape tree,
                      LatencyModel latency = {});

  [[nodiscard]] const Graph& core() const noexcept { return core_; }
  [[nodiscard]] const AccessTreeShape& tree() const noexcept { return tree_; }
  [[nodiscard]] const LatencyModel& latency() const noexcept { return latency_; }
  [[nodiscard]] const AllPairsShortestPaths& core_paths() const noexcept {
    return core_paths_;
  }

  [[nodiscard]] PopId pop_count() const noexcept {
    return static_cast<PopId>(core_.node_count());
  }
  [[nodiscard]] GlobalNodeId node_count() const noexcept {
    return pop_count() * tree_.node_count();
  }
  [[nodiscard]] GlobalLinkId link_count() const noexcept {
    return static_cast<GlobalLinkId>(core_.link_count()) +
           pop_count() * (tree_.node_count() - 1);
  }

  // --- id mapping -----------------------------------------------------
  [[nodiscard]] GlobalNodeId global_node(PopId pop, TreeIndex t) const noexcept {
    return pop * tree_.node_count() + t;
  }
  [[nodiscard]] PopId pop_of(GlobalNodeId n) const noexcept {
    return n / tree_.node_count();
  }
  [[nodiscard]] TreeIndex tree_index_of(GlobalNodeId n) const noexcept {
    return n % tree_.node_count();
  }
  /// The PoP root router of pop p (tree index 0).
  [[nodiscard]] GlobalNodeId pop_root(PopId pop) const noexcept {
    return global_node(pop, 0);
  }
  /// The j-th leaf of pop p's access tree.
  [[nodiscard]] GlobalNodeId leaf(PopId pop, TreeIndex j) const {
    return global_node(pop, tree_.leaf(j));
  }
  [[nodiscard]] unsigned level_of(GlobalNodeId n) const {
    return tree_.level_of(tree_index_of(n));
  }

  // --- distances ------------------------------------------------------
  /// Latency-model distance between any two nodes.
  [[nodiscard]] double distance(GlobalNodeId from, GlobalNodeId to) const;

  /// Plain hop count between any two nodes (latency model ignored).
  [[nodiscard]] unsigned hop_count(GlobalNodeId from, GlobalNodeId to) const;

  /// Cost of descending from a pop root to a node at `level` (== cost of
  /// ascending from that node to its root).
  [[nodiscard]] double root_to_level_cost(unsigned level) const {
    return up_cost_[level];
  }
  /// Latency-model cost between two pop roots across the core. Answered
  /// from a flat matrix precomputed at construction — this sits on the
  /// nearest-replica hot path (one lookup per candidate PoP per request).
  [[nodiscard]] double core_cost(PopId a, PopId b) const {
    return core_cost_[static_cast<std::size_t>(a) * pop_count() + b];
  }

  // --- paths ----------------------------------------------------------
  /// The full node sequence from → … → to through the hierarchy: up the
  /// source tree to its root, across the core (through intermediate pop
  /// roots), and down the destination tree. Same-pop pairs route through
  /// their LCA only.
  [[nodiscard]] std::vector<GlobalNodeId> path(GlobalNodeId from, GlobalNodeId to) const;

  /// The global link joining two adjacent nodes. Throws
  /// std::invalid_argument if the nodes are not adjacent.
  [[nodiscard]] GlobalLinkId link_between(GlobalNodeId a, GlobalNodeId b) const;

private:
  Graph core_;
  AccessTreeShape tree_;
  LatencyModel latency_;
  AllPairsShortestPaths core_paths_;
  std::vector<double> up_cost_;  // up_cost_[l] = cost from level l up to root
  std::vector<double> core_cost_;  // pop_count × pop_count core-cost matrix
};

}  // namespace idicn::topology
