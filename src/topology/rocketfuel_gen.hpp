// Synthetic Rocketfuel-like ISP topology generator.
//
// The Rocketfuel PoP-level maps used by the paper are not redistributable
// here, so we synthesize graphs with the same high-level structure:
//   * a small ring backbone so the graph is 2-connected (ISP cores avoid
//     single points of failure),
//   * preferential attachment for the remaining PoPs, which yields the
//     heavy-tailed degree distribution observed in measured ISP maps,
//   * a few extra shortcut links to bring the mean degree to ≈2.5–3 and a
//     diameter comparable to measured PoP maps,
//   * power-law metro populations (rank^-1), since a handful of metros
//     dominate an ISP's customer base.
// Generation is fully deterministic given (pop_count, seed).
#pragma once

#include <cstdint>
#include <string>

#include "topology/graph.hpp"

namespace idicn::topology {

class RocketfuelLikeGenerator {
public:
  RocketfuelLikeGenerator(unsigned pop_count, std::uint64_t seed)
      : pop_count_(pop_count), seed_(seed) {}

  /// Build the graph; node names are "<isp_name>-PoP<i>".
  [[nodiscard]] Graph generate(const std::string& isp_name) const;

private:
  unsigned pop_count_;
  std::uint64_t seed_;
};

}  // namespace idicn::topology
