#include "topology/graph.hpp"

#include <queue>

namespace idicn::topology {

NodeId Graph::add_node(std::string name, double population) {
  if (population <= 0.0) {
    throw std::invalid_argument("Graph::add_node: population must be positive");
  }
  nodes_.push_back(Node{std::move(name), population});
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Graph::add_link(NodeId a, NodeId b, double weight) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Graph::add_link: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("Graph::add_link: self loops are not allowed");
  }
  if (weight <= 0.0) {
    throw std::invalid_argument("Graph::add_link: weight must be positive");
  }
  if (link_between(a, b) != kInvalidLink) {
    throw std::invalid_argument("Graph::add_link: duplicate link");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, weight});
  adjacency_[a].push_back(Adjacency{b, id, weight});
  adjacency_[b].push_back(Adjacency{a, id, weight});
  return id;
}

LinkId Graph::link_between(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) return kInvalidLink;
  for (const Adjacency& adj : adjacency_[a]) {
    if (adj.neighbor == b) return adj.link;
  }
  return kInvalidLink;
}

bool Graph::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : adjacency_[u]) {
      if (!seen[adj.neighbor]) {
        seen[adj.neighbor] = true;
        ++visited;
        frontier.push(adj.neighbor);
      }
    }
  }
  return visited == nodes_.size();
}

double Graph::total_population() const noexcept {
  double total = 0.0;
  for (const Node& n : nodes_) total += n.population;
  return total;
}

}  // namespace idicn::topology
