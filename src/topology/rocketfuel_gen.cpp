#include "topology/rocketfuel_gen.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace idicn::topology {

Graph RocketfuelLikeGenerator::generate(const std::string& isp_name) const {
  if (pop_count_ < 4) {
    throw std::invalid_argument("RocketfuelLikeGenerator: need at least 4 PoPs");
  }
  std::mt19937_64 rng(seed_);
  Graph g;

  // Power-law metro populations: the i-th largest metro has weight 1/(i+1),
  // shuffled so population rank is not correlated with node id (and hence
  // not with backbone position).
  std::vector<double> populations(pop_count_);
  for (unsigned i = 0; i < pop_count_; ++i) {
    populations[i] = 100.0 / static_cast<double>(i + 1);
  }
  std::shuffle(populations.begin(), populations.end(), rng);

  for (unsigned i = 0; i < pop_count_; ++i) {
    g.add_node(isp_name + "-PoP" + std::to_string(i), populations[i]);
  }

  // Ring backbone over the first `backbone` PoPs.
  const unsigned backbone = std::max(4u, pop_count_ / 8);
  for (unsigned i = 0; i < backbone; ++i) {
    g.add_link(i, (i + 1) % backbone);
  }

  // Preferential attachment for the remaining PoPs: each new PoP connects
  // to 1–2 existing PoPs chosen with probability proportional to degree+1.
  std::vector<unsigned> degree(pop_count_, 0);
  for (unsigned i = 0; i < backbone; ++i) degree[i] = 2;

  const auto pick_preferential = [&](unsigned limit) -> NodeId {
    std::uint64_t total = 0;
    for (unsigned i = 0; i < limit; ++i) total += degree[i] + 1;
    std::uniform_int_distribution<std::uint64_t> dist(0, total - 1);
    std::uint64_t r = dist(rng);
    for (unsigned i = 0; i < limit; ++i) {
      const std::uint64_t w = degree[i] + 1;
      if (r < w) return i;
      r -= w;
    }
    return limit - 1;
  };

  std::uniform_int_distribution<int> extra_link(0, 2);
  for (unsigned i = backbone; i < pop_count_; ++i) {
    const NodeId first = pick_preferential(i);
    g.add_link(i, first);
    degree[i] += 1;
    degree[first] += 1;
    // One extra uplink for roughly a third of access PoPs (multi-homing).
    if (extra_link(rng) == 0) {
      NodeId second = pick_preferential(i);
      if (second != first && g.link_between(i, second) == kInvalidLink) {
        g.add_link(i, second);
        degree[i] += 1;
        degree[second] += 1;
      }
    }
  }

  // A few random backbone shortcuts to lower the diameter toward measured
  // PoP-map values.
  const unsigned shortcuts = std::max(2u, pop_count_ / 12);
  std::uniform_int_distribution<NodeId> any(0, pop_count_ - 1);
  unsigned added = 0;
  unsigned attempts = 0;
  while (added < shortcuts && attempts < 100 * shortcuts) {
    ++attempts;
    const NodeId a = any(rng);
    const NodeId b = any(rng);
    if (a == b || g.link_between(a, b) != kInvalidLink) continue;
    g.add_link(a, b);
    ++added;
  }
  return g;
}

}  // namespace idicn::topology
