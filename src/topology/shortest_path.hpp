// Shortest-path computations over core topologies.
//
// The simulator needs (a) hop distances between every pair of PoPs (for
// request/response path lengths and nearest-replica search) and (b) actual
// next-hop paths (for per-link congestion accounting). Core graphs are
// small (tens to ~150 PoPs), so we precompute all-pairs tables once with
// repeated Dijkstra runs.
#pragma once

#include <limits>
#include <vector>

#include "topology/graph.hpp"

namespace idicn::topology {

constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest-path result.
struct ShortestPathTree {
  std::vector<double> distance;   ///< distance[v] from the source
  std::vector<NodeId> predecessor;///< predecessor[v] on a shortest path (kInvalidNode at source)
};

/// Dijkstra from `source`. Ties are broken toward the lower node id so the
/// produced paths (and hence congestion counts) are deterministic.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& graph, NodeId source);

/// All-pairs shortest paths with next-hop extraction.
class AllPairsShortestPaths {
public:
  explicit AllPairsShortestPaths(const Graph& graph);

  [[nodiscard]] double distance(NodeId from, NodeId to) const {
    return distance_[from][to];
  }

  /// Unweighted hop count along the (weighted-)shortest path.
  [[nodiscard]] unsigned hop_count(NodeId from, NodeId to) const {
    return hops_[from][to];
  }

  /// The node sequence from → … → to (inclusive). Empty when unreachable.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return distance_.size(); }

private:
  std::vector<std::vector<double>> distance_;
  std::vector<std::vector<unsigned>> hops_;
  std::vector<std::vector<NodeId>> predecessor_;  // predecessor_[src][v]
};

}  // namespace idicn::topology
